//! End-to-end functional validation: every transformation candidate the
//! explorer emits must compute the same array state as the original
//! program — legality checking, program rewriting, unrolled DFG
//! construction, and the execution model all verified at once against
//! the reference interpreter.

use pt_map::ir::dfg::build_dfg;
use pt_map::ir::interp::{self, Memory};
use pt_map::ir::{Program, ProgramBuilder};
use pt_map::sim::execute_mapped_nest;
use pt_map::transform::{explore, ExploreConfig};

/// Runs all of a program's PNLs (candidate-transformed) over a patterned
/// memory; returns the final image. `candidates` is one candidate per
/// PNL position.
fn run_candidates(
    original: &Program,
    candidates: &[&pt_map::transform::PnlCandidate],
    seed: u64,
) -> Memory {
    let mut mem = Memory::patterned(original, seed);
    for c in candidates {
        let dfg = build_dfg(&c.program, &c.nest, &c.unroll).expect("candidate DFG builds");
        execute_mapped_nest(&c.program, &c.nest, &c.unroll, &dfg, &mut mem);
    }
    mem
}

fn assert_arrays_equal(original: &Program, a: &Memory, b: &Memory, context: &str) {
    for decl in original.arrays() {
        assert_eq!(
            a.array(decl.id),
            b.array(decl.id),
            "array {} differs ({context})",
            decl.name
        );
    }
}

/// Divisible-size GEMM (all tile sizes/unroll factors in the default
/// grids divide 64, so no padded iterations disturb memory).
fn gemm64() -> Program {
    let n = 64;
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[n, n]);
    let bm = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let i = b.open_loop("i", n);
    let j = b.open_loop("j", n);
    let k = b.open_loop("k", n);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bm, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.finish()
}

#[test]
fn every_gemm_candidate_is_functionally_correct() {
    let p = gemm64();
    let reference = interp::run_patterned(&p, 1234);
    let forest = explore(&p, &ExploreConfig::default());
    let mut checked = 0;
    for variant in &forest.variants {
        for cand in variant.pnl_candidates[0].iter() {
            // Skip candidates whose unroll factors do not divide the
            // (possibly tiled) tripcounts — padding over-executes by
            // design and is excluded from functional validation.
            let divisible = cand
                .nest
                .loops
                .iter()
                .zip(&cand.nest.tripcounts)
                .all(|(&l, &tc)| tc % cand.unroll_factor(l) as u64 == 0);
            if !divisible {
                continue;
            }
            let mem = run_candidates(&p, &[cand], 1234);
            assert_arrays_equal(&p, &mem, &reference, &cand.desc);
            checked += 1;
        }
    }
    assert!(checked >= 20, "only {checked} candidates validated");
}

#[test]
fn producer_consumer_fusion_is_functionally_correct() {
    // Two kernels sharing an array: fused and unfused variants must both
    // match the reference.
    let mut b = ProgramBuilder::new("pc");
    let a = b.array("A", &[128]);
    let x = b.array("X", &[128]);
    let y = b.array("Y", &[128]);
    let i = b.open_loop("i", 128);
    let v = b.mul(b.load(a, &[b.idx(i)]), b.constant(2));
    b.store(x, &[b.idx(i)], v);
    b.close_loop();
    let j = b.open_loop("j", 128);
    let w = b.add(b.load(x, &[b.idx(j)]), b.constant(1));
    b.store(y, &[b.idx(j)], w);
    b.close_loop();
    let p = b.finish();

    let reference = interp::run_patterned(&p, 77);
    let forest = explore(&p, &ExploreConfig::default());
    let mut variants_checked = 0;
    for variant in &forest.variants {
        // Execute the first divisible candidate of each PNL, in order.
        let picks: Option<Vec<_>> = variant
            .pnl_candidates
            .iter()
            .map(|ra| {
                ra.iter().find(|c| {
                    c.nest
                        .loops
                        .iter()
                        .zip(&c.nest.tripcounts)
                        .all(|(&l, &tc)| tc % c.unroll_factor(l) as u64 == 0)
                })
            })
            .collect();
        let Some(picks) = picks else { continue };
        let mem = run_candidates(&p, &picks, 77);
        assert_arrays_equal(&p, &mem, &reference, &format!("{:?}", variant.fusion));
        variants_checked += 1;
    }
    assert!(
        variants_checked >= 2,
        "fused and unfused variants both validated"
    );
}

#[test]
fn app_kernels_validate_through_identity_dfgs() {
    // For every evaluation app: executing each PNL's (untransformed) DFG
    // in program order reproduces the interpreter's array state.
    for (name, p) in pt_map::workloads::apps::all() {
        let reference = interp::run_patterned(&p, 5);
        let mut mem = Memory::patterned(&p, 5);
        // Execute non-PNL statements and PNLs in program order: the
        // interpreter handles the full program; here we rely on apps
        // whose non-PNL statements interleave correctly only when the
        // program is a pure PNL sequence — skip the others.
        let nests = p.perfect_nests();
        let pnl_stmts: usize = nests.iter().map(|n| n.stmts.len()).sum();
        if pnl_stmts != p.all_stmts().len() {
            continue; // trisolv-style imperfect statements
        }
        for nest in &nests {
            let dfg = build_dfg(&p, nest, &[]).expect("app DFG builds");
            execute_mapped_nest(&p, nest, &[], &dfg, &mut mem);
        }
        assert_arrays_equal(&p, &mem, &reference, name);
    }
}
