//! End-to-end determinism guarantees of the batch pipeline.
//!
//! Three properties, each required by the pipeline design:
//!   1. compiling the same (program, arch, config) twice yields identical
//!      reports modulo wall-clock timing;
//!   2. a batch run with many workers is byte-identical to the same batch
//!      run serially;
//!   3. a warm cache returns exactly what the cold run produced.

use pt_map::arch::presets;
use pt_map::core::{PtMap, PtMapConfig};
use pt_map::eval::AnalyticalPredictor;
use pt_map::pipeline::{
    run_batch, run_batch_with_cache, BatchConfig, Job, Manifest, PredictorSpec, ReportCache,
};
use pt_map::workloads::micro;

fn demo_manifest() -> Vec<Job> {
    let json = r#"{
        "jobs": [
            { "kernel": "gemm:8", "arch": "S4" },
            { "kernel": "gemm:8", "arch": "H6" },
            { "kernel": "vecsum:64", "arch": "S4", "mode": "pareto" },
            { "kernel": "app:TMM", "arch": "SL8", "predictor": "oracle" },
            { "kernel": "app:BLU", "arch": "R4" }
        ]
    }"#;
    Manifest::from_json(json).unwrap().resolve().unwrap()
}

#[test]
fn repeated_compiles_are_identical_modulo_timing() {
    let arch = presets::s4();
    let program = micro::gemm(16);
    let compile = || {
        PtMap::new(Box::new(AnalyticalPredictor), PtMapConfig::default())
            .compile(&program, &arch)
            .unwrap()
    };
    let (a, b) = (compile(), compile());
    assert_eq!(a.without_timing(), b.without_timing());
    // And the serialized form agrees too, so cache round-trips are exact.
    let json =
        |r: &pt_map::core::CompileReport| serde_json::to_string(&r.without_timing()).unwrap();
    assert_eq!(json(&a), json(&b));
}

#[test]
fn parallel_batch_is_byte_identical_to_serial() {
    let jobs = demo_manifest();
    let serial = run_batch(
        &jobs,
        &BatchConfig {
            workers: 1,
            ..BatchConfig::default()
        },
    );
    let wide = run_batch(
        &jobs,
        &BatchConfig {
            workers: 8,
            ..BatchConfig::default()
        },
    );
    assert_eq!(serial.deterministic_json(), wide.deterministic_json());
    // Order follows the manifest, not completion order.
    let names: Vec<&str> = wide.outcomes.iter().map(|o| o.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "gemm:8@S4",
            "gemm:8@H6",
            "vecsum:64@S4",
            "app:TMM@SL8",
            "app:BLU@R4"
        ]
    );
}

#[test]
fn warm_cache_reproduces_cold_run() {
    let jobs = demo_manifest();
    let cache = ReportCache::in_memory();
    let config = BatchConfig {
        workers: 4,
        ..BatchConfig::default()
    };
    let cold = run_batch_with_cache(&jobs, &config, &cache);
    let warm = run_batch_with_cache(&jobs, &config, &cache);
    assert_eq!(cold.metrics.cache_hits, 0);
    assert_eq!(warm.metrics.cache_hits, jobs.len() as u64);
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert!(!c.cache_hit && w.cache_hit);
        // Cached reports keep even the original measured timing.
        assert_eq!(c.report, w.report);
    }
}

#[test]
fn sharded_evaluation_does_not_change_batch_output() {
    let jobs = demo_manifest();
    let narrow = BatchConfig::default();
    let sharded = BatchConfig {
        base: PtMapConfig {
            eval_workers: 4,
            ..PtMapConfig::default()
        },
        ..BatchConfig::default()
    };
    let a = run_batch(&jobs, &narrow);
    let b = run_batch(&jobs, &sharded);
    assert_eq!(a.deterministic_json(), b.deterministic_json());
}

#[test]
fn predictor_identity_separates_cache_entries() {
    // Same kernel+arch under two predictors must occupy distinct cache
    // slots: a shared cache across heterogeneous manifests must never
    // serve one predictor's report for another.
    let json = r#"{
        "jobs": [
            { "name": "a", "kernel": "gemm:8", "arch": "S4" },
            { "name": "b", "kernel": "gemm:8", "arch": "S4", "predictor": "oracle" }
        ]
    }"#;
    let jobs = Manifest::from_json(json).unwrap().resolve().unwrap();
    assert!(matches!(jobs[0].predictor, PredictorSpec::Analytical));
    let cache = ReportCache::in_memory();
    let report = run_batch_with_cache(&jobs, &BatchConfig::default(), &cache);
    assert_eq!(report.metrics.cache_hits, 0);
    assert_eq!(cache.len(), 2);
}
