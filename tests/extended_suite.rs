//! Integration coverage for the extended workload set and secondary
//! pipeline paths (exploration statistics, arch files, DOT exports,
//! context generation through the public API).

use pt_map::arch::{io as arch_io, presets};
use pt_map::core::{realize_program, PtMap, PtMapConfig};
use pt_map::eval::AnalyticalPredictor;
use pt_map::ir::dfg::build_dfg;
use pt_map::ir::{dot, parse::parse_program};
use pt_map::mapper::{generate_contexts, map_dfg, MapperConfig};
use pt_map::transform::{explore, ExploreConfig};
use pt_map::workloads::apps_extra;

#[test]
fn extra_apps_compile_end_to_end() {
    let config = PtMapConfig {
        explore: ExploreConfig::quick(),
        ..PtMapConfig::default()
    };
    let arch = presets::s4();
    for (name, program) in apps_extra::all_extra() {
        let ptmap = PtMap::new(Box::new(AnalyticalPredictor), config.clone());
        let report = ptmap.compile(&program, &arch);
        assert!(report.is_ok(), "{name}: {report:?}");
        let ramp = realize_program(
            &program,
            &arch,
            &Default::default(),
            &Default::default(),
            &[],
        )
        .unwrap();
        assert!(
            report.unwrap().cycles <= ramp.cycles,
            "{name}: PT-Map must not lose to the identity"
        );
    }
}

#[test]
fn exploration_stats_are_populated() {
    let p = pt_map::workloads::micro::gemm(64);
    let forest = explore(&p, &ExploreConfig::default());
    let s = forest.stats;
    assert!(s.orders_enumerated >= 6, "{s:?}");
    assert!(s.tiled > 0, "{s:?}");
    assert!(s.unrolled > 0, "{s:?}");
    // GEMM has no illegal order (all deps are reductions/zero).
    assert_eq!(s.orders_illegal, 0, "{s:?}");
}

#[test]
fn illegal_orders_are_counted() {
    // A[i][j] = A[i-1][j+1]: interchange is illegal.
    let src = r#"
        int A[32][32];
        for (i = 1; i < 31; i++) { A[i][i] = 0; }
    "#;
    // (parse path requires 0-based loops; build via the builder instead)
    let _ = src;
    let mut b = pt_map::ir::ProgramBuilder::new("skew");
    let a = b.array("A", &[32, 32]);
    let i = b.open_loop("i", 31);
    let j = b.open_loop("j", 31);
    let v = b.load(
        a,
        &[
            b.idx(i) - pt_map::ir::AffineExpr::constant(1),
            b.idx(j) + pt_map::ir::AffineExpr::constant(1),
        ],
    );
    b.store(a, &[b.idx(i), b.idx(j)], v);
    b.close_loop();
    b.close_loop();
    let p = b.finish();
    let forest = explore(&p, &ExploreConfig::default());
    assert!(forest.stats.orders_illegal > 0, "{:?}", forest.stats);
    // Every surviving candidate preserves the original order prefix of
    // the illegal interchange (i before j).
    for v in &forest.variants {
        for c in v.pnl_candidates.iter().flatten() {
            let pos_i = c.nest.position(i);
            let pos_j = c.nest.position(j);
            if let (Some(a), Some(b)) = (pos_i, pos_j) {
                assert!(a < b, "illegal interchange survived: {}", c.desc);
            }
        }
    }
}

#[test]
fn arch_files_round_trip_through_full_compile() {
    let dir = std::env::temp_dir().join("ptmap-extended-suite");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("h6.json");
    arch_io::save(&presets::h6(), &path).unwrap();
    let arch = arch_io::load(&path).unwrap();
    let p = pt_map::workloads::micro::gemm(32);
    let config = PtMapConfig {
        explore: ExploreConfig::quick(),
        ..PtMapConfig::default()
    };
    let report = PtMap::new(Box::new(AnalyticalPredictor), config)
        .compile(&p, &arch)
        .unwrap();
    assert_eq!(report.arch, "H6");
}

#[test]
fn parsed_source_compiles_and_exports() {
    let src = r#"
        int A[32]; int B[32];
        #pragma PTMAP
        for (i = 0; i < 32; i++) {
            B[i] = max(A[i], 0) + 1;
        }
        #pragma ENDMAP
    "#;
    let p = parse_program("relu1", src).unwrap();
    let nest = p.perfect_nests().remove(0);
    let dfg = build_dfg(&p, &nest, &[]).unwrap();

    // DOT exports render both views.
    assert!(dot::program_to_dot(&p).contains("for i < 32"));
    assert!(dot::dfg_to_dot(&dfg).contains("max"));

    // Context generation through the public API.
    let arch = presets::s4();
    let mapping = map_dfg(&dfg, &arch, &MapperConfig::default()).unwrap();
    let image = generate_contexts(&dfg, &mapping, &arch);
    assert_eq!(image.words(), dfg.len());
    assert!(image.fits(&arch));
}

#[test]
fn context_images_fit_cb_for_all_apps_on_s4() {
    let arch = presets::s4();
    for (name, p) in pt_map::workloads::apps::all() {
        for nest in p.perfect_nests() {
            let dfg = build_dfg(&p, &nest, &[]).unwrap();
            let mapping = map_dfg(&dfg, &arch, &MapperConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let image = generate_contexts(&dfg, &mapping, &arch);
            assert!(
                image.fits(&arch) || mapping.ii > arch.cb_capacity(),
                "{name}: image/II inconsistency"
            );
        }
    }
}
