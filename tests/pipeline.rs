//! Cross-crate integration tests: the full PT-Map pipeline against the
//! baselines on the paper's workloads.

use pt_map::arch::presets;
use pt_map::baselines::{Baseline, Pbp, Ramp};
use pt_map::core::{realize_program, PtMap, PtMapConfig};
use pt_map::eval::{AnalyticalPredictor, RankMode};
use pt_map::ir::DependenceSet;
use pt_map::transform::{explore, ExploreConfig};
use pt_map::workloads::{apps, micro};

fn ptmap_default() -> PtMap {
    PtMap::new(Box::new(AnalyticalPredictor), PtMapConfig::default())
}

#[test]
fn ptmap_beats_ramp_on_large_arrays() {
    // The headline claim at small scale: transformation wins on big
    // arrays where the rolled loop underutilizes the fabric.
    let arch = presets::sl8();
    let program = micro::gemm(32);
    let ptmap = ptmap_default().compile(&program, &arch).unwrap();
    let ramp = Ramp::default().run(&program, &arch).unwrap();
    assert!(
        (ptmap.cycles as f64) < ramp.cycles as f64 * 0.7,
        "expected >1.4x speedup: PT-Map {} vs RAMP {}",
        ptmap.cycles,
        ramp.cycles
    );
}

#[test]
fn ptmap_with_accurate_predictor_matches_pbp_on_unrollable_apps() {
    // TMM has the unrollable dimensions the paper calls out. With an
    // accurate evaluator (here: the mapper itself as oracle; in the
    // paper: the GNN) PT-Map's superset space must not lose to PBP.
    // (With the MII analytical model it *can* lose — that is exactly
    // the paper's AM ablation finding.)
    let arch = presets::sl8();
    let program = apps::three_mm();
    let config = PtMapConfig::default();
    let ptmap = PtMap::new(Box::new(pt_map::eval::OraclePredictor::default()), config)
        .compile(&program, &arch)
        .unwrap();
    let pbp = Pbp::default().run(&program, &arch).unwrap();
    assert!(
        ptmap.cycles <= pbp.cycles,
        "PT-Map {} should be at least as fast as PBP {}",
        ptmap.cycles,
        pbp.cycles
    );
}

#[test]
fn every_app_compiles_on_every_architecture() {
    // Coarse sweep with the quick exploration config (full grids run in
    // the bench harness).
    let config = PtMapConfig {
        explore: ExploreConfig::quick(),
        ..PtMapConfig::default()
    };
    for arch in presets::evaluation_suite() {
        for (name, program) in apps::all() {
            let ptmap = PtMap::new(Box::new(AnalyticalPredictor), config.clone());
            let report = ptmap.compile(&program, &arch);
            assert!(
                report.is_ok(),
                "{name} on {} failed: {report:?}",
                arch.name()
            );
            let report = report.unwrap();
            assert!(report.cycles > 0);
            assert!(report.energy_pj > 0.0);
            for pnl in &report.pnls {
                assert!(pnl.ii >= pnl.mii, "{name}: II below MII");
                assert!(pnl.ii <= arch.cb_capacity() + 20, "{name}: absurd II");
                assert!(pnl.utilization > 0.0 && pnl.utilization <= 1.0);
            }
        }
    }
}

#[test]
fn chosen_transformations_respect_dependences() {
    // The chosen candidate's program must carry the same dependence
    // structure legality-wise: every recorded dependence distance stays
    // lexicographically non-negative (analysis on the transformed
    // program re-derives distances, so a violation would show up as a
    // backward exact vector).
    let program = apps::blur2d();
    let forest = explore(&program, &ExploreConfig::default());
    for variant in &forest.variants {
        for ra in &variant.pnl_candidates {
            for cand in ra.iter().take(8) {
                let deps = DependenceSet::analyze(&cand.program);
                for dep in deps.iter() {
                    let exact: Vec<i64> = dep
                        .distance
                        .iter()
                        .map_while(|d| match d {
                            pt_map::ir::Distance::Exact(x) => Some(*x),
                            _ => None,
                        })
                        .collect();
                    if exact.len() == dep.distance.len() {
                        assert!(
                            exact.iter().find(|&&x| x != 0).is_none_or(|&x| x > 0),
                            "backward dependence in {}: {dep}",
                            cand.desc
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn pareto_mode_never_increases_volume_at_same_choice_quality() {
    let arch = presets::s4();
    let program = micro::gemm(64);
    let perf = PtMap::new(
        Box::new(AnalyticalPredictor),
        PtMapConfig {
            mode: RankMode::Performance,
            ..PtMapConfig::default()
        },
    )
    .compile(&program, &arch)
    .unwrap();
    let pareto = PtMap::new(
        Box::new(AnalyticalPredictor),
        PtMapConfig {
            mode: RankMode::Pareto,
            ..PtMapConfig::default()
        },
    )
    .compile(&program, &arch)
    .unwrap();
    let vol = |r: &pt_map::core::CompileReport| r.pnls.iter().map(|p| p.volume).sum::<u64>();
    assert!(vol(&pareto) <= vol(&perf));
}

#[test]
fn doubled_db_never_hurts_volume() {
    let arch = presets::s4();
    let doubled = arch.with_db_bytes(arch.db_bytes() * 2);
    for (name, program) in apps::all().into_iter().take(4) {
        let r1 = realize_program(
            &program,
            &arch,
            &Default::default(),
            &Default::default(),
            &[],
        )
        .unwrap();
        let r2 = realize_program(
            &program,
            &doubled,
            &Default::default(),
            &Default::default(),
            &[],
        )
        .unwrap();
        let vol = |r: &pt_map::core::CompileReport| r.pnls.iter().map(|p| p.volume).sum::<u64>();
        assert!(vol(&r2) <= vol(&r1), "{name}: doubled DB increased volume");
    }
}

#[test]
fn compile_reports_are_reproducible() {
    let arch = presets::h6();
    let program = apps::doitgen();
    let a = ptmap_default().compile(&program, &arch).unwrap();
    let b = ptmap_default().compile(&program, &arch).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.energy_pj, b.energy_pj);
    assert_eq!(a.pnls, b.pnls);
}
