//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use pt_map::arch::presets;
use pt_map::eval::{hypervolume, rank_pareto, rank_performance};
use pt_map::ir::dfg::build_dfg;
use pt_map::ir::{AffineExpr, LoopId, ProgramBuilder};
use pt_map::mapper::{map_dfg, MapperConfig};
use pt_map::sim::verify_mapping;
use pt_map::workloads::{RandomProgramConfig, RandomProgramGenerator};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Affine substitution distributes over addition.
    #[test]
    fn affine_substitution_distributes(a in -8i64..8, b in -8i64..8, c in -8i64..8) {
        let i = LoopId(0);
        let j = LoopId(1);
        let e1 = AffineExpr::var(i) * a + AffineExpr::constant(b);
        let e2 = AffineExpr::var(i) * c;
        let repl = AffineExpr::var(j) * 4 + AffineExpr::constant(1);
        let lhs = (e1.clone() + e2.clone()).substitute(i, &repl);
        let rhs = e1.substitute(i, &repl) + e2.substitute(i, &repl);
        prop_assert_eq!(lhs, rhs);
    }

    /// Evaluation of a substituted expression equals evaluation of the
    /// original under the substituted assignment.
    #[test]
    fn affine_substitution_sound(a in -8i64..8, b in -8i64..8, iv in 0i64..16, jv in 0i64..16) {
        let i = LoopId(0);
        let j = LoopId(1);
        let e = AffineExpr::var(i) * a + AffineExpr::constant(b);
        let repl = AffineExpr::var(j) * 2 + AffineExpr::constant(3);
        let substituted = e.substitute(i, &repl);
        let mut asg = std::collections::BTreeMap::new();
        asg.insert(j, jv);
        let mut asg_orig = asg.clone();
        asg_orig.insert(i, repl.eval(&asg));
        let _ = iv;
        prop_assert_eq!(substituted.eval(&asg), e.eval(&asg_orig));
    }

    /// Hypervolume is monotone: dominating points never rank lower.
    #[test]
    fn hypervolume_monotone(c in 1u64..1000, v in 1u64..1000, dc in 0u64..100, dv in 0u64..100) {
        let reference = (2000, 2000);
        prop_assert!(hypervolume((c, v), reference) >= hypervolume((c + dc, v + dv), reference));
    }

    /// Performance ranking returns a permutation sorted by (cycles, volume).
    #[test]
    fn performance_rank_is_sorted_permutation(points in proptest::collection::vec((1u64..10_000, 1u64..10_000), 1..24)) {
        let order = rank_performance(&points);
        let mut seen = vec![false; points.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(points[w[0]] <= points[w[1]]);
        }
        let pareto_order = rank_pareto(&points);
        prop_assert_eq!(pareto_order.len(), points.len());
    }

    /// Random programs: DFGs are structurally valid for any unroll
    /// factor, and unrolling multiplies the non-CSE'd op count at most
    /// linearly.
    #[test]
    fn random_program_dfgs_valid(seed in 0u64..500, factor in 1u32..8) {
        let mut g = RandomProgramGenerator::new(RandomProgramConfig::default(), seed);
        let p = g.next_program();
        let nest = p.perfect_nests().remove(0);
        let base = build_dfg(&p, &nest, &[]).unwrap();
        let unrolled = build_dfg(&p, &nest, &[(nest.pipelined_loop(), factor)]).unwrap();
        prop_assert!(base.validate().is_ok());
        prop_assert!(unrolled.validate().is_ok());
        prop_assert!(unrolled.len() <= base.len() * factor as usize);
        prop_assert!(unrolled.len() >= base.len());
    }

    /// Every successful mapping of a random program verifies: slots are
    /// exclusive and all edge timings hold.
    #[test]
    fn random_mappings_verify(seed in 0u64..200) {
        let mut g = RandomProgramGenerator::new(RandomProgramConfig::default(), seed);
        let p = g.next_program();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        if let Ok(m) = map_dfg(&dfg, &presets::s4(), &MapperConfig::default()) {
            prop_assert!(verify_mapping(&dfg, &m).is_ok());
            prop_assert!(m.ii >= m.mii);
        }
    }

    /// The dependence analysis never reports a lexicographically
    /// backward exact vector (normalization invariant).
    #[test]
    fn dependences_are_forward(seed in 0u64..300) {
        let mut g = RandomProgramGenerator::new(RandomProgramConfig::default(), seed);
        let p = g.next_program();
        let deps = pt_map::ir::DependenceSet::analyze(&p);
        for dep in deps.iter() {
            let mut verdict = true;
            for d in &dep.distance {
                match d {
                    pt_map::ir::Distance::Exact(0) => continue,
                    pt_map::ir::Distance::Exact(x) => { verdict = *x > 0; break; }
                    _ => break,
                }
            }
            prop_assert!(verdict, "backward dependence: {}", dep);
        }
    }

    /// Tiling preserves the total iteration count up to ceil padding.
    #[test]
    fn strip_mine_preserves_iterations(n_pow in 3u32..8, t_pow in 1u32..6) {
        let n = 1u64 << n_pow;
        let tile = 1u64 << t_pow;
        prop_assume!(tile < n);
        let mut b = ProgramBuilder::new("p");
        let x = b.array("X", &[n]);
        let i = b.open_loop("i", n);
        let v = b.add(b.load(x, &[b.idx(i)]), b.constant(1));
        b.store(x, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let (q, _) = pt_map::transform::primitives::strip_mine(&p, i, tile).unwrap();
        let nest = q.perfect_nests().remove(0);
        prop_assert_eq!(nest.total_iterations(), n.div_ceil(tile) * tile);
    }
}
