//! PT-Map: program transformation optimization for CGRA mapping.
//!
//! This is the umbrella crate of the PT-Map reproduction (DAC 2024). It
//! re-exports every subsystem so examples and downstream users can depend
//! on a single crate:
//!
//! * [`ir`] — affine loop-nest IR, dependence analysis, DFG construction;
//! * [`arch`] — CGRA architecture models and the time-extended MRRG;
//! * [`mapper`] — RAMP-like modulo-scheduling loop mapper behind the
//!   pluggable [`mapper::MapperBackend`] trait;
//! * [`exact`] — exact branch-and-bound backend and the raced
//!   heuristic+exact portfolio;
//! * [`sim`] — cycle-level simulator and energy model;
//! * [`model`] — analytical performance/memory models;
//! * [`transform`] — loop index tree and transformation primitives with
//!   the top-down exploration;
//! * [`gnn`] — graph neural network predictive model (with a from-scratch
//!   autograd engine);
//! * [`governor`] — cooperative compilation budgets (deadline /
//!   cancellation / work units) and the fault-injection harness;
//! * [`eval`] — bottom-up evaluation, pruning, and two-mode ranking;
//! * [`core`] — the end-to-end `PtMap` pipeline;
//! * [`pipeline`] — manifest-driven batch compilation with a
//!   content-addressed report cache and stage-level metrics;
//! * [`baselines`] — RAMP / LISA / MapZero / IP / PBP / AL / AM baselines;
//! * [`workloads`] — the paper's benchmark applications and the random
//!   program generator used for GNN training.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a kernel,
//! pick an architecture, run PT-Map, and inspect the chosen
//! transformation and its simulated performance.

pub use ptmap_arch as arch;
pub use ptmap_baselines as baselines;
pub use ptmap_core as core;
pub use ptmap_eval as eval;
pub use ptmap_exact as exact;
pub use ptmap_gnn as gnn;
pub use ptmap_governor as governor;
pub use ptmap_ir as ir;
pub use ptmap_mapper as mapper;
pub use ptmap_model as model;
pub use ptmap_pipeline as pipeline;
pub use ptmap_sim as sim;
pub use ptmap_transform as transform;
pub use ptmap_workloads as workloads;
