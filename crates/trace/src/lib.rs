//! `ptmap-trace`: std-only hierarchical tracing for PT-Map compiles.
//!
//! The pipeline's [`Recorder`](../ptmap_pipeline/metrics) keeps flat
//! name→(sum, count) aggregates; that tells you *how much* time a stage
//! took across a batch, but not *where* one slow compile spent it. This
//! crate records a per-compile **span tree**:
//!
//! * a [`Tracer`] owns one trace (trace ID, monotonic epoch, span
//!   storage) and hands out RAII [`Span`] guards;
//! * spans nest — a `Span` created from another span's
//!   [`Span::tracer`] becomes its child — and carry typed
//!   `key=value` [`AttrValue`] attributes plus point-in-time
//!   [`EventRecord`] annotations (governor deadline hits, degraded
//!   retries, cache hits);
//! * dropping a `Span` stamps its end time, even during a panic
//!   unwind, so partial traces from failed compiles stay well-formed;
//! * [`Tracer::finish`] snapshots the tree into a serializable
//!   [`Trace`], and [`chrome_trace_json`] renders it as Chrome
//!   trace-event JSON loadable in `chrome://tracing` or Perfetto.
//!
//! **Disabled is free-ish**: [`Tracer::disabled`] carries no
//! allocation, and every operation on it (span creation, attributes,
//! events) is a branch on an `Option` — the same pattern the governor
//! uses for `Budget::unlimited`. Hot mapper loops therefore call the
//! traced entry points unconditionally.
//!
//! Trace IDs are deterministic: an FNV-1a hash of the root span name
//! mixed with a process-global counter, formatted as 16 hex digits.
//! No wall-clock or RNG is consulted, which keeps `--trace-dir` output
//! reproducible enough for CI to assert on and keeps this crate out of
//! the mapper's determinism budget.
//!
//! Head-based sampling lives here too: [`SamplePolicy::keep`] decides
//! from the trace ID hash (stable across processes) whether a finished
//! trace is exported, with a slow-compile threshold that force-keeps
//! outliers regardless of the sample fraction.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

mod chrome;
pub mod obs;
mod stitch;

pub use chrome::chrome_trace_json;
pub use stitch::{stitch, FORWARD_SPAN, WINNER_ATTR};

/// Locks a mutex, recovering from poisoning. A panicking compile (the
/// pipeline isolates it with `catch_unwind`) must not wedge the trace
/// it was writing: every guarded value (the span vector) is valid
/// after any interrupted mutation, since records are pushed or field-
/// assigned atomically from the structure's point of view.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A typed attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::UInt(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Event names of the online-learning lifecycle (`ptmap-learn`).
///
/// The trainer runs as a governor-budgeted background loop, and its
/// state machine — accumulate samples, fine-tune a candidate, shadow
/// it against the serving model, promote or reject — is recorded as
/// events on the learn tracer's root span, next to the governor's own
/// `deadline_hit` / `cancelled` events. Shared constants so the engine
/// and the tests asserting on the trace agree on spelling.
pub mod learn_events {
    /// A fine-tuning round started (attrs: `samples`, `from_version`).
    pub const TRAIN_START: &str = "learn_train_start";
    /// A fine-tuning round finished and produced a candidate.
    pub const TRAIN_DONE: &str = "learn_train_done";
    /// A candidate entered shadow evaluation (attr: `window`).
    pub const SHADOW_START: &str = "learn_shadow_start";
    /// The shadow window closed and the candidate won; the serving
    /// model was hot-swapped (attrs: `version`, MAPE pair).
    pub const PROMOTE: &str = "learn_promote";
    /// The shadow window closed and the candidate lost; it was
    /// discarded and the serving model kept (attrs: MAPE pair).
    pub const REJECT: &str = "learn_reject";
}

/// A point-in-time annotation inside a span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    pub name: String,
    /// Nanoseconds since the trace epoch.
    pub at_ns: u64,
    pub attrs: Vec<(String, AttrValue)>,
}

/// One recorded span. `id` is the span's index in [`Trace::spans`];
/// `parent` is `None` for the root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub id: u32,
    pub parent: Option<u32>,
    pub name: String,
    /// Nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Nanoseconds since the trace epoch; `u64::MAX` while the span
    /// is open (a span that never closed before the snapshot exports
    /// with the trace's wall time instead).
    pub end_ns: u64,
    pub attrs: Vec<(String, AttrValue)>,
    pub events: Vec<EventRecord>,
}

impl SpanRecord {
    /// End timestamp for export: an unclosed span (recorded `end_ns`
    /// predates `start_ns`, i.e. the guard never dropped before the
    /// snapshot) is clamped to the trace wall time.
    pub fn end_ns_or(&self, wall_ns: u64) -> u64 {
        if self.end_ns == u64::MAX || self.end_ns < self.start_ns {
            wall_ns.max(self.start_ns)
        } else {
            self.end_ns
        }
    }
}

/// A finished, serializable span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub trace_id: String,
    /// Root name (the job name for pipeline compiles).
    pub name: String,
    /// Total nanoseconds from trace creation to [`Tracer::finish`].
    pub wall_ns: u64,
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    pub fn wall_seconds(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// Spans with the given name, in creation order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

struct Inner {
    trace_id: String,
    name: String,
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Handle into one trace, scoped to a parent span.
///
/// Cloning is cheap (an `Arc` bump); a clone records into the same
/// trace under the same parent. [`Tracer::disabled`] is the no-op
/// handle threaded through untraced call paths.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
    parent: Option<u32>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(i) => write!(f, "Tracer({}, parent={:?})", i.trace_id, self.parent),
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

/// FNV-1a 64-bit hash: stable across processes and platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 64-bit finalizer (MurmurHash3 fmix64). Raw FNV-1a output is badly
/// distributed in its high bits for short, similar inputs — sampling
/// sequential hex trace IDs through it alone keeps ~0% instead of the
/// requested fraction — so sampling decisions mix through this first.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Deterministic trace ID: FNV-1a of `name` mixed with a process-wide
/// sequence counter, as 16 lowercase hex digits. No clock, no RNG.
pub fn next_trace_id(name: &str) -> String {
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    format!(
        "{:016x}",
        fnv1a(name.as_bytes()) ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    )
}

impl Tracer {
    /// A handle that records nothing; every operation is a no-op.
    pub fn disabled() -> Self {
        Tracer {
            inner: None,
            parent: None,
        }
    }

    /// Starts a new trace with a generated deterministic trace ID.
    pub fn root(name: &str) -> Self {
        Self::root_with_id(name, next_trace_id(name))
    }

    /// Starts a new trace under a caller-supplied trace ID (e.g. an
    /// `X-Ptmap-Trace-Id` request header).
    pub fn root_with_id(name: &str, trace_id: impl Into<String>) -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                trace_id: trace_id.into(),
                name: name.to_string(),
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
            })),
            parent: None,
        }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub fn trace_id(&self) -> Option<&str> {
        self.inner.as_deref().map(|i| i.trace_id.as_str())
    }

    /// Opens a span as a child of this handle's scope. The returned
    /// guard stamps the end time on drop (panic-safe).
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                tracer: Tracer::disabled(),
            };
        };
        let now = inner.now_ns();
        let mut spans = lock_unpoisoned(&inner.spans);
        let id = spans.len() as u32;
        spans.push(SpanRecord {
            id,
            parent: self.parent,
            name: name.to_string(),
            start_ns: now,
            end_ns: u64::MAX,
            attrs: Vec::new(),
            events: Vec::new(),
        });
        drop(spans);
        Span {
            tracer: Tracer {
                inner: Some(Arc::clone(inner)),
                parent: Some(id),
            },
        }
    }

    /// Records an event on the span this handle is scoped to (no-op at
    /// trace root or when disabled).
    pub fn event(&self, name: &str) {
        self.event_with(name, &mut std::iter::empty());
    }

    fn event_with(&self, name: &str, attrs: &mut dyn Iterator<Item = (String, AttrValue)>) {
        let (Some(inner), Some(parent)) = (&self.inner, self.parent) else {
            return;
        };
        let now = inner.now_ns();
        let mut spans = lock_unpoisoned(&inner.spans);
        if let Some(rec) = spans.get_mut(parent as usize) {
            rec.events.push(EventRecord {
                name: name.to_string(),
                at_ns: now,
                attrs: attrs.collect(),
            });
        }
    }

    /// Snapshots the trace. Returns `None` on a disabled handle.
    /// Spans still open at this point export with the wall time as
    /// their end (see [`SpanRecord::end_ns_or`]).
    pub fn finish(&self) -> Option<Trace> {
        let inner = self.inner.as_deref()?;
        let wall_ns = inner.now_ns();
        let spans = lock_unpoisoned(&inner.spans).clone();
        Some(Trace {
            trace_id: inner.trace_id.clone(),
            name: inner.name.clone(),
            wall_ns,
            spans,
        })
    }
}

/// RAII span guard. Create children via [`Span::tracer`]; attach
/// attributes and events through the setter methods. The end
/// timestamp is recorded on drop — including drops during a panic
/// unwind, so a failed compile still produces a balanced tree.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
}

impl Span {
    /// Handle scoped to this span: children created from it (or
    /// events recorded on it) nest under this span.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    fn with_record<R>(&self, f: impl FnOnce(&mut SpanRecord) -> R) -> Option<R> {
        let inner = self.tracer.inner.as_deref()?;
        let id = self.tracer.parent?;
        let mut spans = lock_unpoisoned(&inner.spans);
        spans.get_mut(id as usize).map(f)
    }

    pub fn attr(&self, key: &str, value: impl Into<AttrValue>) {
        let value = value.into();
        self.with_record(|rec| rec.attrs.push((key.to_string(), value)));
    }

    pub fn event(&self, name: &str) {
        self.tracer.event(name);
    }

    pub fn event_attr(&self, name: &str, key: &str, value: impl Into<AttrValue>) {
        let mut attrs = std::iter::once((key.to_string(), value.into()));
        self.tracer.event_with(name, &mut attrs);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.tracer.inner.as_deref() {
            let now = inner.now_ns();
            if let Some(id) = self.tracer.parent {
                let mut spans = lock_unpoisoned(&inner.spans);
                if let Some(rec) = spans.get_mut(id as usize) {
                    rec.end_ns = now;
                }
            }
        }
    }
}

/// Head-based sampling with a slow-compile escape hatch.
///
/// The keep/drop decision hashes the trace ID (so it is stable for a
/// given ID across processes and restarts) and compares against the
/// sample fraction; traces at least `slow_ms` long are kept
/// regardless, so the outliers worth debugging always survive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePolicy {
    /// Fraction of traces to keep, in `[0.0, 1.0]`.
    pub sample: f64,
    /// Wall-time threshold that force-keeps a trace.
    pub slow_ms: Option<u64>,
}

impl Default for SamplePolicy {
    fn default() -> Self {
        SamplePolicy {
            sample: 1.0,
            slow_ms: None,
        }
    }
}

impl SamplePolicy {
    /// Head decision from the trace ID alone.
    pub fn sampled(&self, trace_id: &str) -> bool {
        if self.sample >= 1.0 {
            return true;
        }
        if self.sample <= 0.0 {
            return false;
        }
        // Uniform in [0, 1) from the top 53 bits of the mixed hash.
        let unit = (mix64(fnv1a(trace_id.as_bytes())) >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.sample
    }

    /// Final keep decision for a finished trace.
    pub fn keep(&self, trace_id: &str, wall: Duration) -> bool {
        if self.sampled(trace_id) {
            return true;
        }
        match self.slow_ms {
            Some(ms) => wall >= Duration::from_millis(ms),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.trace_id(), None);
        let s = t.span("x");
        s.attr("k", 1u64);
        s.event("e");
        drop(s);
        assert!(t.finish().is_none());
    }

    #[test]
    fn spans_nest_and_close() {
        let t = Tracer::root("job");
        {
            let a = t.span("explore");
            a.attr("candidates", 12u64);
            {
                let b = a.tracer().span("evaluate");
                b.event("pruned");
            }
            a.event_attr("note", "k", "v");
        }
        let trace = t.finish().unwrap();
        assert_eq!(trace.name, "job");
        assert_eq!(trace.spans.len(), 2);
        let a = &trace.spans[0];
        let b = &trace.spans[1];
        assert_eq!(a.name, "explore");
        assert_eq!(a.parent, None);
        assert_eq!(b.name, "evaluate");
        assert_eq!(b.parent, Some(a.id));
        assert!(a.end_ns >= a.start_ns);
        assert!(b.end_ns >= b.start_ns);
        assert!(b.start_ns >= a.start_ns);
        assert_eq!(
            a.attrs,
            vec![("candidates".to_string(), AttrValue::UInt(12))]
        );
        assert_eq!(a.events.len(), 1);
        assert_eq!(b.events.len(), 1);
        assert_eq!(b.events[0].name, "pruned");
    }

    #[test]
    fn span_end_recorded_during_panic_unwind() {
        let t = Tracer::root("job");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _s = t.span("doomed");
            panic!("boom");
        }));
        assert!(err.is_err());
        let trace = t.finish().unwrap();
        assert_eq!(trace.spans.len(), 1);
        // The guard dropped during unwind, so the span closed.
        assert!(trace.spans[0].end_ns >= trace.spans[0].start_ns);
    }

    #[test]
    fn unclosed_span_clamps_to_wall() {
        let t = Tracer::root("job");
        let s = t.span("open");
        let trace = t.finish().unwrap();
        drop(s);
        let rec = &trace.spans[0];
        assert_eq!(rec.end_ns, u64::MAX);
        assert!(rec.end_ns_or(trace.wall_ns) >= rec.start_ns);
        assert_ne!(rec.end_ns_or(trace.wall_ns), u64::MAX);
    }

    #[test]
    fn trace_ids_are_unique_and_hex() {
        let a = next_trace_id("x");
        let b = next_trace_id("x");
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn explicit_trace_id_round_trips() {
        let t = Tracer::root_with_id("job", "deadbeef00000001");
        assert_eq!(t.trace_id(), Some("deadbeef00000001"));
        let trace = t.finish().unwrap();
        assert_eq!(trace.trace_id, "deadbeef00000001");
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let policy = SamplePolicy {
            sample: 0.5,
            slow_ms: None,
        };
        let ids: Vec<String> = (0..200).map(|i| format!("{i:016x}")).collect();
        let kept: Vec<bool> = ids.iter().map(|id| policy.sampled(id)).collect();
        let again: Vec<bool> = ids.iter().map(|id| policy.sampled(id)).collect();
        assert_eq!(kept, again);
        let n = kept.iter().filter(|&&k| k).count();
        assert!(n > 50 && n < 150, "sample=0.5 kept {n}/200");
        assert!(SamplePolicy::default().sampled("anything"));
        let none = SamplePolicy {
            sample: 0.0,
            slow_ms: None,
        };
        assert!(!none.sampled("anything"));
    }

    #[test]
    fn slow_traces_are_force_kept() {
        let policy = SamplePolicy {
            sample: 0.0,
            slow_ms: Some(100),
        };
        assert!(!policy.keep("id", Duration::from_millis(10)));
        assert!(policy.keep("id", Duration::from_millis(100)));
        assert!(policy.keep("id", Duration::from_secs(5)));
    }

    #[test]
    fn trace_serde_round_trip() {
        let t = Tracer::root_with_id("job", "0000000000000abc");
        {
            let s = t.span("map");
            s.attr("ii", 4u64);
            s.attr("ok", true);
            s.attr("ratio", 0.5f64);
            s.attr("label", "quick");
            s.attr("delta", -1i64);
            s.event("restart");
        }
        let trace = t.finish().unwrap();
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn clone_records_into_same_trace() {
        let t = Tracer::root("job");
        let t2 = t.clone();
        {
            let _a = t.span("a");
        }
        {
            let _b = t2.span("b");
        }
        let trace = t.finish().unwrap();
        assert_eq!(trace.spans.len(), 2);
    }
}
