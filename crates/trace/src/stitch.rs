//! Cross-process trace stitching.
//!
//! A clustered compile produces two span trees with the same trace ID
//! on two different monotonic clocks: the gateway's (admission, ring
//! lookup, per-attempt `forward` spans, hedge races) and the daemon's
//! (the `compile` tree the pipeline records). [`stitch`] merges them
//! into one tree the Chrome renderer can draw:
//!
//! * gateway spans keep their IDs and timestamps — the gateway's
//!   epoch is the stitched timeline;
//! * each daemon tree is re-IDed past the gateway's spans and grafted
//!   under the gateway's **anchor** span — the `forward` attempt
//!   marked `winner=true` (falling back to the last `forward`, then
//!   the gateway root) — since that is the interval during which the
//!   daemon was actually working on the request;
//! * daemon timestamps are rebased so the daemon root starts at the
//!   anchor's start and are clamped to the anchor's interval: the two
//!   clocks share no epoch, so relative placement inside the enclosing
//!   forward attempt is the only honest rendering.
//!
//! The result is a single connected tree under the gateway's trace ID;
//! [`chrome_trace_json`](crate::chrome_trace_json) renders it with its
//! usual child-clamping, so stitched output is always B/E balanced.

use crate::{SpanRecord, Trace};

/// Name of the per-attempt forwarding span the gateway records.
pub const FORWARD_SPAN: &str = "forward";
/// Attribute the gateway sets on the forward attempt that produced
/// the response the client saw.
pub const WINNER_ATTR: &str = "winner";

/// Index of the span daemon trees should be grafted under: the
/// winning `forward` attempt, else the last `forward`, else the first
/// root, else `None` (empty gateway trace).
fn anchor_index(spans: &[SpanRecord]) -> Option<usize> {
    let forwards: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == FORWARD_SPAN)
        .map(|(i, _)| i)
        .collect();
    let winner = forwards.iter().copied().find(|&i| {
        spans[i]
            .attrs
            .iter()
            .any(|(k, v)| k == WINNER_ATTR && *v == crate::AttrValue::Bool(true))
    });
    winner
        .or_else(|| forwards.last().copied())
        .or_else(|| spans.iter().position(|s| s.parent.is_none()))
}

/// Merges daemon span trees into a gateway trace (see module docs).
///
/// Passing an empty `daemons` slice returns a (normalized) copy of
/// the gateway trace. An empty gateway trace gets a synthetic
/// `gateway` root so the result is still one connected tree.
pub fn stitch(gateway: &Trace, daemons: &[Trace]) -> Trace {
    let mut spans: Vec<SpanRecord> = gateway.spans.clone();
    let gateway_wall = gateway.wall_ns;
    // Close anything the gateway left open so grafted subtrees can't
    // outlive a dangling interval.
    for s in &mut spans {
        s.end_ns = s.end_ns_or(gateway_wall);
    }
    if spans.is_empty() {
        spans.push(SpanRecord {
            id: 0,
            parent: None,
            name: "gateway".to_string(),
            start_ns: 0,
            end_ns: gateway_wall,
            attrs: Vec::new(),
            events: Vec::new(),
        });
    }

    let anchor = anchor_index(&spans).expect("stitched trace always has a root");
    let (anchor_id, anchor_start, anchor_end) = {
        let a = &spans[anchor];
        (a.id, a.start_ns, a.end_ns.max(a.start_ns))
    };

    let mut wall_ns = gateway_wall;
    for daemon in daemons {
        let offset = spans.len() as u32;
        let Some(droot) = daemon.spans.iter().find(|s| s.parent.is_none()) else {
            continue;
        };
        let dbase = droot.start_ns;
        // Rebase a daemon timestamp onto the gateway timeline: the
        // daemon root lands at the anchor's start, everything else
        // keeps its distance from that root, clipped to the anchor.
        let rebase = |t: u64| -> u64 {
            anchor_start
                .saturating_add(t.saturating_sub(dbase))
                .clamp(anchor_start, anchor_end)
        };
        for span in &daemon.spans {
            let mut copy = span.clone();
            copy.id = span.id + offset;
            copy.parent = match span.parent {
                Some(p) => Some(p + offset),
                None => Some(anchor_id),
            };
            copy.start_ns = rebase(span.start_ns);
            copy.end_ns = rebase(span.end_ns_or(daemon.wall_ns));
            for ev in &mut copy.events {
                ev.at_ns = rebase(ev.at_ns);
            }
            wall_ns = wall_ns.max(copy.end_ns);
            spans.push(copy);
        }
    }

    Trace {
        trace_id: gateway.trace_id.clone(),
        name: gateway.name.clone(),
        wall_ns,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chrome_trace_json, AttrValue, Tracer};
    use proptest::prelude::*;
    use serde::Value;

    /// Builds a gateway-shaped trace: root > admission + N forward
    /// attempts, optionally marking one the winner.
    fn gateway_trace(attempts: usize, winner: Option<usize>) -> Trace {
        let t = Tracer::root_with_id("gateway", "00000000000000aa");
        {
            let root = t.span("gateway");
            {
                let adm = root.tracer().span("admission");
                adm.attr("key", "job");
            }
            for i in 0..attempts {
                let fwd = root.tracer().span(FORWARD_SPAN);
                fwd.attr("attempt", i as u64);
                if winner == Some(i) {
                    fwd.attr(WINNER_ATTR, true);
                }
            }
        }
        t.finish().unwrap()
    }

    /// Builds a daemon-shaped trace: compile > map > ii_attempt,
    /// with `depth` extra nested levels under map.
    fn daemon_trace(depth: usize) -> Trace {
        let t = Tracer::root_with_id("job", "00000000000000aa");
        {
            let compile = t.span("compile");
            compile.attr("ok", true);
            let map = compile.tracer().span("map");
            let mut scope = map.tracer().clone();
            let mut guards = Vec::new();
            for _ in 0..depth {
                let s = scope.span("ii_attempt");
                scope = s.tracer().clone();
                guards.push(s);
            }
            drop(guards);
        }
        t.finish().unwrap()
    }

    /// Structural invariants: ids are vec indices, exactly one root,
    /// every parent exists at a lower index.
    fn assert_connected_tree(trace: &Trace) {
        let mut roots = 0;
        for (i, s) in trace.spans.iter().enumerate() {
            assert_eq!(s.id as usize, i, "span id matches its index");
            match s.parent {
                None => roots += 1,
                Some(p) => assert!((p as usize) < i, "parent {p} precedes span {i}"),
            }
            assert!(s.start_ns <= s.end_ns, "span {i} interval is ordered");
        }
        assert_eq!(roots, 1, "stitched trace has exactly one root");
    }

    fn assert_chrome_balanced(trace: &Trace) {
        let doc = serde_json::from_str::<Value>(&chrome_trace_json(trace)).unwrap();
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let mut open: Vec<String> = Vec::new();
        for ev in events {
            let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap();
            let name = ev.get("name").and_then(|v| v.as_str()).unwrap();
            match ph {
                "B" => open.push(name.to_string()),
                "E" => assert_eq!(open.pop().as_deref(), Some(name), "E closes innermost B"),
                _ => {}
            }
        }
        assert!(open.is_empty(), "unclosed spans: {open:?}");
    }

    #[test]
    fn daemon_tree_grafts_under_winning_forward() {
        let gw = gateway_trace(3, Some(1));
        let stitched = stitch(&gw, &[daemon_trace(2)]);
        assert_connected_tree(&stitched);
        assert_eq!(stitched.trace_id, "00000000000000aa");

        let winner = stitched
            .spans_named(FORWARD_SPAN)
            .find(|s| {
                s.attrs
                    .iter()
                    .any(|(k, v)| k == WINNER_ATTR && *v == AttrValue::Bool(true))
            })
            .expect("winner forward span survives stitching");
        let compile = stitched
            .spans_named("compile")
            .next()
            .expect("daemon compile root present");
        assert_eq!(compile.parent, Some(winner.id));
        assert!(compile.start_ns >= winner.start_ns);
        assert!(compile.end_ns <= winner.end_ns.max(winner.start_ns));
        assert_chrome_balanced(&stitched);
    }

    #[test]
    fn no_winner_falls_back_to_last_forward_then_root() {
        let gw = gateway_trace(2, None);
        let stitched = stitch(&gw, &[daemon_trace(0)]);
        let last_forward = stitched.spans_named(FORWARD_SPAN).last().unwrap().id;
        let compile = stitched.spans_named("compile").next().unwrap();
        assert_eq!(compile.parent, Some(last_forward));

        let gw = gateway_trace(0, None);
        let stitched = stitch(&gw, &[daemon_trace(0)]);
        let root = stitched.spans.iter().find(|s| s.parent.is_none()).unwrap();
        let compile = stitched.spans_named("compile").next().unwrap();
        assert_eq!(compile.parent, Some(root.id));
        assert_connected_tree(&stitched);
    }

    #[test]
    fn empty_inputs_stay_well_formed() {
        let gw = gateway_trace(1, Some(0));
        let alone = stitch(&gw, &[]);
        assert_connected_tree(&alone);
        assert_eq!(alone.spans.len(), gw.spans.len());

        let empty = Tracer::root_with_id("gateway", "bb").finish().unwrap();
        let stitched = stitch(&empty, &[daemon_trace(1)]);
        assert_connected_tree(&stitched);
        assert!(stitched.spans_named("compile").next().is_some());
        assert_chrome_balanced(&stitched);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Any mix of gateway attempts, winner position, daemon count
        /// and nesting depth stitches to one connected tree whose
        /// Chrome rendering is B/E balanced, with every daemon compile
        /// root enclosed by the anchor forward span.
        #[test]
        fn stitched_cluster_trace_is_one_connected_tree(
            attempts in 0usize..4,
            pick_winner in any::<bool>(),
            daemons in 0usize..3,
            depth in 0usize..4,
        ) {
            let winner = if pick_winner && attempts > 0 {
                Some(attempts - 1)
            } else {
                None
            };
            let gw = gateway_trace(attempts, winner);
            let dtraces: Vec<Trace> = (0..daemons).map(|_| daemon_trace(depth)).collect();
            let stitched = stitch(&gw, &dtraces);

            assert_connected_tree(&stitched);
            assert_chrome_balanced(&stitched);
            prop_assert_eq!(
                stitched.spans_named("compile").count(),
                daemons,
                "every daemon root survives"
            );
            if attempts > 0 {
                let anchor = stitched.spans_named(FORWARD_SPAN).last().unwrap();
                for compile in stitched.spans_named("compile") {
                    prop_assert_eq!(compile.parent, Some(anchor.id));
                    prop_assert!(compile.start_ns >= anchor.start_ns);
                    prop_assert!(compile.end_ns <= anchor.end_ns.max(anchor.start_ns));
                }
            }
        }
    }
}
