//! Chrome trace-event JSON export.
//!
//! Renders a [`Trace`] in the [Trace Event Format] consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array of duration-begin (`ph:"B"`) / duration-end
//! (`ph:"E"`) pairs emitted by depth-first walk of the span tree, with
//! span events as thread-scoped instants (`ph:"i"`). Timestamps are
//! microseconds from the trace epoch; all events share one pid/tid so
//! the viewer reconstructs nesting purely from B/E balance.
//!
//! Two clamps keep the output well-formed for any input tree:
//!
//! * a span still open at snapshot time ends at the trace wall time
//!   ([`SpanRecord::end_ns_or`](crate::SpanRecord::end_ns_or));
//! * a child is clipped to its parent's interval, so a guard that
//!   outlived its parent (or an unwind-truncated subtree) can never
//!   produce crossing B/E pairs.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{AttrValue, Trace};
use serde::Value;

const PID: u64 = 1;
const TID: u64 = 1;

fn attr_value(v: &AttrValue) -> Value {
    match v {
        AttrValue::Bool(b) => Value::Bool(*b),
        AttrValue::Int(i) => Value::Int(*i),
        AttrValue::UInt(u) => Value::UInt(*u),
        AttrValue::Float(f) => Value::Float(*f),
        AttrValue::Str(s) => Value::Str(s.clone()),
    }
}

fn args_object(attrs: &[(String, AttrValue)]) -> Value {
    Value::Object(
        attrs
            .iter()
            .map(|(k, v)| (k.clone(), attr_value(v)))
            .collect(),
    )
}

fn ts_us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

fn event(name: &str, ph: &str, ns: u64, extra: Vec<(String, Value)>) -> Value {
    let mut pairs = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("ts".to_string(), ts_us(ns)),
        ("pid".to_string(), Value::UInt(PID)),
        ("tid".to_string(), Value::UInt(TID)),
    ];
    pairs.extend(extra);
    Value::Object(pairs)
}

/// Renders a trace as Chrome trace-event JSON (one self-contained
/// document per compile; this is what `ptmap batch --trace-dir` writes
/// to `<job>.trace.json` and `ptmap serve` returns from
/// `GET /jobs/<id>/trace`).
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); trace.spans.len()];
    let mut roots: Vec<u32> = Vec::new();
    for span in &trace.spans {
        match span.parent {
            Some(p) => children[p as usize].push(span.id),
            None => roots.push(span.id),
        }
    }

    let mut events: Vec<Value> = vec![
        event(
            "process_name",
            "M",
            0,
            vec![(
                "args".to_string(),
                Value::Object(vec![(
                    "name".to_string(),
                    Value::Str(format!("ptmap {}", trace.name)),
                )]),
            )],
        ),
        event(
            "thread_name",
            "M",
            0,
            vec![(
                "args".to_string(),
                Value::Object(vec![(
                    "name".to_string(),
                    Value::Str("compile".to_string()),
                )]),
            )],
        ),
    ];

    // Iterative DFS: (span id, parent interval). Children are pushed
    // in reverse so they emit in creation (= start) order.
    let wall = trace.wall_ns;
    let mut stack: Vec<(u32, u64, u64, bool)> = Vec::new();
    for &r in roots.iter().rev() {
        stack.push((r, 0, wall, false));
    }
    let mut close: Vec<(String, u64)> = Vec::new();
    while let Some((id, lo, hi, visited)) = stack.pop() {
        let span = &trace.spans[id as usize];
        let start = span.start_ns.clamp(lo, hi);
        let end = span.end_ns_or(wall).clamp(start, hi);
        if visited {
            let (name, end_ns) = close.pop().expect("DFS close stack underflow");
            events.push(event(&name, "E", end_ns, Vec::new()));
            continue;
        }
        events.push(event(
            &span.name,
            "B",
            start,
            vec![("args".to_string(), args_object(&span.attrs))],
        ));
        for ev in &span.events {
            events.push(event(
                &ev.name,
                "i",
                ev.at_ns.clamp(start, end),
                vec![
                    ("s".to_string(), Value::Str("t".to_string())),
                    ("args".to_string(), args_object(&ev.attrs)),
                ],
            ));
        }
        close.push((span.name.clone(), end));
        stack.push((id, lo, hi, true));
        for &c in children[id as usize].iter().rev() {
            stack.push((c, start, end, false));
        }
    }

    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Value::Object(vec![
                ("trace_id".to_string(), Value::Str(trace.trace_id.clone())),
                ("name".to_string(), Value::Str(trace.name.clone())),
                ("wall_ns".to_string(), Value::UInt(trace.wall_ns)),
            ]),
        ),
    ]);
    serde_json::to_string(&doc).expect("chrome trace rendering is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn parse(json: &str) -> Value {
        serde_json::from_str::<Value>(json).expect("trace JSON parses")
    }

    fn trace_events(doc: &Value) -> Vec<Value> {
        doc.get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array")
            .to_vec()
    }

    /// Walks B/E events like a viewer would: every E must match the
    /// name of the innermost open B, and nothing stays open.
    fn assert_balanced(events: &[Value]) {
        let mut open: Vec<String> = Vec::new();
        for ev in events {
            let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
            let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
            match ph {
                "B" => open.push(name.to_string()),
                "E" => {
                    let top = open
                        .pop()
                        .unwrap_or_else(|| panic!("E {name} with no open B"));
                    assert_eq!(top, name, "E closes the innermost B");
                }
                "i" | "M" => {}
                other => panic!("unexpected ph {other:?}"),
            }
        }
        assert!(open.is_empty(), "unclosed B events: {open:?}");
    }

    fn sample_trace() -> crate::Trace {
        let t = Tracer::root_with_id("gemm:24@S4", "00000000000000aa");
        {
            let compile = t.span("compile");
            {
                let explore = compile.tracer().span("explore");
                explore.attr("candidates", 9u64);
            }
            {
                let map = compile.tracer().span("map");
                let ii = map.tracer().span("ii_attempt");
                ii.attr("ii", 3u64);
                ii.event("restart");
            }
            compile.event_attr("degraded_retry", "rung", "quick");
        }
        t.finish().unwrap()
    }

    #[test]
    fn export_is_balanced_and_nested() {
        let json = chrome_trace_json(&sample_trace());
        let doc = parse(&json);
        let events = trace_events(&doc);
        assert_balanced(&events);
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("B"))
            .map(|e| e.get("name").and_then(|v| v.as_str()).unwrap())
            .collect();
        assert_eq!(names, vec!["compile", "explore", "map", "ii_attempt"]);
        // Instants emit grouped under their owning span's B record
        // (viewers re-sort by ts), so assert membership, not order.
        let mut instants: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("i"))
            .map(|e| e.get("name").and_then(|v| v.as_str()).unwrap())
            .collect();
        instants.sort_unstable();
        assert_eq!(instants, vec!["degraded_retry", "restart"]);
    }

    #[test]
    fn export_carries_attrs_and_metadata() {
        let json = chrome_trace_json(&sample_trace());
        let doc = parse(&json);
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("trace_id"))
                .and_then(|v| v.as_str()),
            Some("00000000000000aa")
        );
        let events = trace_events(&doc);
        let ii = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("ii_attempt"))
            .expect("ii_attempt B event");
        assert_eq!(
            ii.get("args")
                .and_then(|a| a.get("ii"))
                .and_then(|v| v.as_u64()),
            Some(3)
        );
    }

    #[test]
    fn unclosed_spans_still_export_balanced() {
        let t = Tracer::root("job");
        let outer = t.span("compile");
        let _inner = outer.tracer().span("map");
        // Snapshot with both spans still open.
        let trace = t.finish().unwrap();
        let json = chrome_trace_json(&trace);
        assert_balanced(&trace_events(&parse(&json)));
    }

    #[test]
    fn empty_trace_exports() {
        let t = Tracer::root("empty");
        let trace = t.finish().unwrap();
        let doc = parse(&chrome_trace_json(&trace));
        assert_balanced(&trace_events(&doc));
    }
}
