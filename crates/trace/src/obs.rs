//! Structured event log and flight recorder.
//!
//! Spans (the rest of this crate) answer *where one request's time
//! went*; this module answers *what the process has been doing lately*.
//! An [`EventLog`] is a leveled, trace-id-correlated event sink with
//! two outputs:
//!
//! * **stderr**, rendered per [`LogFormat`] (`text` for humans, `json`
//!   for log shippers) — this replaces the ad-hoc `eprintln!`s that
//!   used to be scattered through the serve/gateway/pipeline code;
//! * a bounded in-memory **ring buffer** (the flight recorder) that
//!   always keeps the last [`EventLog::capacity`] events as JSON
//!   lines, regardless of the stderr format, so `GET /debug/events`
//!   can replay recent history and a drain or panic can dump it.
//!
//! Events never feed back into compile results: the log is observe-
//! only, so fixed-seed reports stay bit-identical with logging on or
//! off (the same contract the span tracer honours).
//!
//! One log per process is the norm (daemon and gateway are separate
//! processes); [`install`] publishes a log as the process-wide default
//! so library code without a handle — the pipeline's cache warnings,
//! for instance — can reach it via [`logger`]. In-process cluster
//! tests boot several services in one process; each keeps its own
//! `Arc<EventLog>` for `/debug/events`, and the first to install wins
//! the global slot.

use crate::AttrValue;
use serde::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default flight-recorder depth (events).
pub const DEFAULT_CAPACITY: usize = 256;

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses `debug|info|warn|error` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// How events are rendered on stderr. The flight recorder always
/// keeps JSON, so `/debug/events` output is format-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    Text,
    Json,
}

impl LogFormat {
    /// Parses `text|json` (case-insensitive).
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// A leveled structured-event sink with a bounded flight recorder.
pub struct EventLog {
    component: String,
    level: Level,
    format: LogFormat,
    ring: Mutex<VecDeque<String>>,
    capacity: usize,
    emitted: AtomicU64,
    suppressed: AtomicU64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EventLog({}, level={}, cap={})",
            self.component,
            self.level.as_str(),
            self.capacity
        )
    }
}

fn unix_seconds() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

fn attr_json(v: &AttrValue) -> Value {
    match v {
        AttrValue::Bool(b) => Value::Bool(*b),
        AttrValue::Int(i) => Value::Int(*i),
        AttrValue::UInt(u) => Value::UInt(*u),
        AttrValue::Float(f) => Value::Float(*f),
        AttrValue::Str(s) => Value::Str(s.clone()),
    }
}

fn attr_text(v: &AttrValue) -> String {
    match v {
        AttrValue::Bool(b) => b.to_string(),
        AttrValue::Int(i) => i.to_string(),
        AttrValue::UInt(u) => u.to_string(),
        AttrValue::Float(f) => format!("{f}"),
        AttrValue::Str(s) => {
            if s.chars().any(|c| c.is_whitespace() || c == '"') {
                format!("{s:?}")
            } else {
                s.clone()
            }
        }
    }
}

impl EventLog {
    pub fn new(component: &str, level: Level, format: LogFormat) -> EventLog {
        EventLog::with_capacity(component, level, format, DEFAULT_CAPACITY)
    }

    pub fn with_capacity(
        component: &str,
        level: Level,
        format: LogFormat,
        capacity: usize,
    ) -> EventLog {
        EventLog {
            component: component.to_string(),
            level,
            format,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            emitted: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }

    pub fn component(&self) -> &str {
        &self.component
    }

    pub fn level(&self) -> Level {
        self.level
    }

    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Flight-recorder depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events that passed the level filter so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Events dropped by the level filter so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Records one event: a JSON line into the flight recorder and a
    /// format-dependent line on stderr. `fields` are flat key/values;
    /// `trace_id` correlates the event with a span tree.
    pub fn log(
        &self,
        level: Level,
        event: &str,
        trace_id: Option<&str>,
        msg: &str,
        fields: &[(&str, AttrValue)],
    ) {
        if level < self.level {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let ts = unix_seconds();
        let json = self.render_json(ts, level, event, trace_id, msg, fields);
        {
            let mut ring = crate::lock_unpoisoned(&self.ring);
            if ring.len() >= self.capacity {
                ring.pop_front();
            }
            ring.push_back(json.clone());
        }
        match self.format {
            LogFormat::Json => eprintln!("{json}"),
            LogFormat::Text => {
                eprintln!(
                    "{}",
                    self.render_text(ts, level, event, trace_id, msg, fields)
                );
            }
        }
    }

    pub fn debug(&self, event: &str, trace_id: Option<&str>, msg: &str, f: &[(&str, AttrValue)]) {
        self.log(Level::Debug, event, trace_id, msg, f);
    }

    pub fn info(&self, event: &str, trace_id: Option<&str>, msg: &str, f: &[(&str, AttrValue)]) {
        self.log(Level::Info, event, trace_id, msg, f);
    }

    pub fn warn(&self, event: &str, trace_id: Option<&str>, msg: &str, f: &[(&str, AttrValue)]) {
        self.log(Level::Warn, event, trace_id, msg, f);
    }

    pub fn error(&self, event: &str, trace_id: Option<&str>, msg: &str, f: &[(&str, AttrValue)]) {
        self.log(Level::Error, event, trace_id, msg, f);
    }

    fn render_json(
        &self,
        ts: f64,
        level: Level,
        event: &str,
        trace_id: Option<&str>,
        msg: &str,
        fields: &[(&str, AttrValue)],
    ) -> String {
        let mut pairs: Vec<(String, Value)> = vec![
            ("ts".to_string(), Value::Float(ts)),
            ("level".to_string(), Value::Str(level.as_str().to_string())),
            ("component".to_string(), Value::Str(self.component.clone())),
            ("event".to_string(), Value::Str(event.to_string())),
        ];
        if let Some(id) = trace_id {
            pairs.push(("trace_id".to_string(), Value::Str(id.to_string())));
        }
        if !msg.is_empty() {
            pairs.push(("msg".to_string(), Value::Str(msg.to_string())));
        }
        for (k, v) in fields {
            pairs.push((k.to_string(), attr_json(v)));
        }
        serde_json::to_string(&Value::Object(pairs)).expect("event rendering is infallible")
    }

    fn render_text(
        &self,
        ts: f64,
        level: Level,
        event: &str,
        trace_id: Option<&str>,
        msg: &str,
        fields: &[(&str, AttrValue)],
    ) -> String {
        let mut line = format!(
            "[{ts:.3}] {:5} {} {event}",
            level.as_str().to_ascii_uppercase(),
            self.component
        );
        if let Some(id) = trace_id {
            line.push_str(&format!(" trace_id={id}"));
        }
        for (k, v) in fields {
            line.push_str(&format!(" {k}={}", attr_text(v)));
        }
        if !msg.is_empty() {
            line.push_str(": ");
            line.push_str(msg);
        }
        line
    }

    /// The last `n` recorded events as JSON lines, oldest first.
    pub fn recent(&self, n: usize) -> Vec<String> {
        let ring = crate::lock_unpoisoned(&self.ring);
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn buffered(&self) -> usize {
        crate::lock_unpoisoned(&self.ring).len()
    }

    /// Dumps the flight recorder to stderr (drain, panic, post-mortem).
    pub fn dump_to_stderr(&self, reason: &str) {
        let lines = self.recent(usize::MAX);
        eprintln!(
            "--- flight recorder ({} events, reason: {reason}) ---",
            lines.len()
        );
        for line in lines {
            eprintln!("{line}");
        }
    }
}

static GLOBAL: OnceLock<Arc<EventLog>> = OnceLock::new();

/// Publishes `log` as the process-wide default. The first caller
/// wins; returns whether this call installed it.
pub fn install(log: Arc<EventLog>) -> bool {
    GLOBAL.set(log).is_ok()
}

/// The process-wide log: the installed one, or a lazily created
/// `info`/`text` default so library code can always emit.
pub fn logger() -> Arc<EventLog> {
    GLOBAL
        .get_or_init(|| Arc::new(EventLog::new("ptmap", Level::Info, LogFormat::Text)))
        .clone()
}

/// Chains a panic hook that dumps the flight recorder before the
/// previous hook (the default backtrace printer) runs. Call once from
/// a binary entry point; repeated installs stack harmlessly.
pub fn install_panic_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let log = logger();
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let location = info
            .location()
            .map(|l| format!("{}:{}", l.file(), l.line()))
            .unwrap_or_else(|| "unknown".to_string());
        log.error(
            "panic",
            None,
            &msg,
            &[("location", AttrValue::Str(location))],
        );
        log.dump_to_stderr("panic");
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Value {
        serde_json::from_str::<Value>(line).expect("event line parses as JSON")
    }

    #[test]
    fn levels_parse_and_order() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(LogFormat::parse("JSON"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("yaml"), None);
    }

    #[test]
    fn events_are_recorded_as_schema_valid_json() {
        let log = EventLog::new("test", Level::Debug, LogFormat::Json);
        log.info(
            "compile",
            Some("00000000000000aa"),
            "done",
            &[
                ("status", AttrValue::UInt(200)),
                ("peer", AttrValue::Str("127.0.0.1:1".into())),
            ],
        );
        let lines = log.recent(10);
        assert_eq!(lines.len(), 1);
        let ev = parse(&lines[0]);
        assert_eq!(ev.get("level").and_then(|v| v.as_str()), Some("info"));
        assert_eq!(ev.get("component").and_then(|v| v.as_str()), Some("test"));
        assert_eq!(ev.get("event").and_then(|v| v.as_str()), Some("compile"));
        assert_eq!(
            ev.get("trace_id").and_then(|v| v.as_str()),
            Some("00000000000000aa")
        );
        assert_eq!(ev.get("status").and_then(|v| v.as_u64()), Some(200));
        assert!(ev.get("ts").is_some(), "events carry a timestamp");
    }

    #[test]
    fn level_filter_suppresses_and_counts() {
        let log = EventLog::new("test", Level::Warn, LogFormat::Text);
        log.debug("noise", None, "", &[]);
        log.info("noise", None, "", &[]);
        log.warn("kept", None, "", &[]);
        assert_eq!(log.buffered(), 1);
        assert_eq!(log.emitted(), 1);
        assert_eq!(log.suppressed(), 2);
    }

    #[test]
    fn ring_is_bounded_and_replays_most_recent() {
        let log = EventLog::with_capacity("test", Level::Debug, LogFormat::Json, 4);
        for i in 0..10u64 {
            log.info("tick", None, "", &[("i", AttrValue::UInt(i))]);
        }
        let lines = log.recent(usize::MAX);
        assert_eq!(lines.len(), 4);
        let first = parse(&lines[0]);
        let last = parse(&lines[3]);
        assert_eq!(first.get("i").and_then(|v| v.as_u64()), Some(6));
        assert_eq!(last.get("i").and_then(|v| v.as_u64()), Some(9));
        // recent(n) trims from the old end.
        let tail = log.recent(2);
        assert_eq!(parse(&tail[0]).get("i").and_then(|v| v.as_u64()), Some(8));
    }

    #[test]
    fn text_rendering_quotes_awkward_values() {
        let log = EventLog::new("gw", Level::Debug, LogFormat::Text);
        let line = log.render_text(
            1.5,
            Level::Warn,
            "requeue",
            Some("ab"),
            "peer died",
            &[("peer", AttrValue::Str("a b".into()))],
        );
        assert!(line.contains("WARN"), "{line}");
        assert!(line.contains("requeue"), "{line}");
        assert!(line.contains("trace_id=ab"), "{line}");
        assert!(line.contains("peer=\"a b\""), "{line}");
        assert!(line.ends_with(": peer died"), "{line}");
    }

    #[test]
    fn global_logger_is_always_available() {
        let log = logger();
        log.info("global", None, "", &[]);
        assert!(log.emitted() >= 1);
    }
}
