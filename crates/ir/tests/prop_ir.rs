//! Property tests for the IR crate's core invariants.

use proptest::prelude::*;
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::{AffineExpr, DependenceSet, Distance, LoopId, OpKind, ProgramBuilder};

fn arb_affine() -> impl Strategy<Value = AffineExpr> {
    (
        proptest::collection::vec((-4i64..=4, 0u32..4), 0..3),
        -16i64..16,
    )
        .prop_map(|(terms, c)| {
            let mut e = AffineExpr::constant(c);
            for (coeff, l) in terms {
                e = e + AffineExpr::var(LoopId(l)) * coeff;
            }
            e
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Addition is commutative and associative.
    #[test]
    fn affine_add_commutes(a in arb_affine(), b in arb_affine(), c in arb_affine()) {
        prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        prop_assert_eq!((a.clone() + b.clone()) + c.clone(), a + (b + c));
    }

    /// Negation is an involution; `e - e == 0`.
    #[test]
    fn affine_negation(a in arb_affine()) {
        prop_assert_eq!(-(-a.clone()), a.clone());
        prop_assert_eq!(a.clone() - a, AffineExpr::zero());
    }

    /// Scalar multiplication distributes over addition.
    #[test]
    fn affine_scale_distributes(a in arb_affine(), b in arb_affine(), k in -8i64..8) {
        prop_assert_eq!((a.clone() + b.clone()) * k, a * k + b * k);
    }

    /// Substituting a variable not present is the identity.
    #[test]
    fn substitute_absent_identity(a in arb_affine()) {
        let fresh = LoopId(99);
        let repl = AffineExpr::var(LoopId(98)) + AffineExpr::constant(5);
        prop_assert_eq!(a.substitute(fresh, &repl), a);
    }

    /// Elementwise kernels with shifted reads: the dependence distance
    /// extracted equals the shift.
    #[test]
    fn dependence_distance_matches_shift(shift in 1i64..6, n in 16u64..64) {
        let mut b = ProgramBuilder::new("shift");
        let a = b.array("A", &[n + shift as u64]);
        let i = b.open_loop("i", n);
        let v = b.add(b.load(a, &[b.idx(i) - AffineExpr::constant(shift)]), b.constant(1));
        b.store(a, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let deps = DependenceSet::analyze(&p);
        let flow = deps
            .iter()
            .find(|d| d.kind == ptmap_ir::DepKind::Flow && d.array.is_some())
            .expect("flow dependence exists");
        prop_assert_eq!(flow.distance[0], Distance::Exact(shift));
    }

    /// The DFG of any elementwise chain has as many stores as statements
    /// and a valid structure; its critical path is at least the longest
    /// operator latency.
    #[test]
    fn elementwise_dfg_structure(n_stmts in 1usize..5, depth in 0usize..3) {
        let mut b = ProgramBuilder::new("chain");
        let x = b.array("X", &[128]);
        let y = b.array("Y", &[128]);
        let i = b.open_loop("i", 128);
        for _ in 0..n_stmts {
            let mut e = b.load(x, &[b.idx(i)]);
            for _ in 0..depth {
                e = b.mul(e, b.constant(3));
            }
            b.store(y, &[b.idx(i)], e);
        }
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        prop_assert!(dfg.validate().is_ok());
        let stores = dfg.nodes().iter().filter(|nd| nd.op == OpKind::Store).count();
        prop_assert_eq!(stores, n_stmts);
        prop_assert!(dfg.critical_path() >= OpKind::Load.latency());
    }

    /// Unrolling never decreases per-op-kind counts, and CSE keeps the
    /// unrolled count at or below factor x base.
    #[test]
    fn unroll_counts_bounded(factor in 2u32..8) {
        let mut b = ProgramBuilder::new("u");
        let x = b.array("X", &[512]);
        let y = b.array("Y", &[512]);
        let i = b.open_loop("i", 512);
        let v = b.mul(b.load(x, &[b.idx(i)]), b.load(y, &[b.idx(i)]));
        b.store(y, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let base = build_dfg(&p, &nest, &[]).unwrap();
        let unrolled = build_dfg(&p, &nest, &[(nest.loops[0], factor)]).unwrap();
        for (op, count) in base.op_counts() {
            let uc = unrolled.op_counts().get(&op).copied().unwrap_or(0);
            prop_assert!(uc >= count, "{op}: {uc} < {count}");
            prop_assert!(uc <= count * factor as usize);
        }
    }
}
