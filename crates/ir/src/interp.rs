//! A reference interpreter for [`Program`]s.
//!
//! Executes the loop nest sequentially over a word-level memory image —
//! the semantic ground truth that transformed programs and mapped DFGs
//! are validated against (a transformation or mapping is correct exactly
//! when the final memory state matches the interpreter's).

use crate::access::ArrayAccess;
use crate::expr::{Expr, LValue};
use crate::id::{ArrayId, LoopId, ScalarId};
use crate::op::OpKind;
use crate::program::{Node, Program};
use std::collections::BTreeMap;
use std::fmt;

/// Word-level memory image: one `i64` vector per array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    arrays: Vec<Vec<i64>>,
    scalars: Vec<i64>,
}

impl Memory {
    /// Zero-initialized memory for a program's declarations.
    pub fn zeroed(program: &Program) -> Self {
        Memory {
            arrays: program
                .arrays()
                .iter()
                .map(|a| vec![0; a.len() as usize])
                .collect(),
            scalars: vec![0; program.scalars().len()],
        }
    }

    /// Memory with each array element set to a deterministic pseudo-random
    /// value derived from `seed` (for differential testing).
    pub fn patterned(program: &Program, seed: u64) -> Self {
        let mut mem = Memory::zeroed(program);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 64) as i64 - 16
        };
        for a in &mut mem.arrays {
            for v in a.iter_mut() {
                *v = next();
            }
        }
        for s in &mut mem.scalars {
            *s = next();
        }
        mem
    }

    /// The contents of one array.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn array(&self, id: ArrayId) -> &[i64] {
        &self.arrays[id.index()]
    }

    /// The value of one scalar.
    pub fn scalar(&self, id: ScalarId) -> i64 {
        self.scalars[id.index()]
    }

    /// Reads a linearized element (out-of-bounds reads return 0,
    /// modeling the padded iteration domains of ceil tiling).
    pub fn load(&self, id: ArrayId, index: i64) -> i64 {
        if index < 0 {
            return 0;
        }
        self.arrays[id.index()]
            .get(index as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Writes a linearized element (out-of-bounds writes are dropped).
    pub fn store(&mut self, id: ArrayId, index: i64, value: i64) {
        if index < 0 {
            return;
        }
        if let Some(slot) = self.arrays[id.index()].get_mut(index as usize) {
            *slot = value;
        }
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Memory({} arrays, {} scalars)",
            self.arrays.len(),
            self.scalars.len()
        )
    }
}

/// Executes a program over a memory image, mutating it in place.
/// Returns the number of statement instances executed.
pub fn execute(program: &Program, mem: &mut Memory) -> u64 {
    let mut env: BTreeMap<LoopId, i64> = BTreeMap::new();
    exec_nodes(program, &program.roots, mem, &mut env)
}

/// Runs a program on a patterned memory and returns the final image —
/// the one-call differential-testing helper.
pub fn run_patterned(program: &Program, seed: u64) -> Memory {
    let mut mem = Memory::patterned(program, seed);
    execute(program, &mut mem);
    mem
}

fn exec_nodes(
    program: &Program,
    nodes: &[Node],
    mem: &mut Memory,
    env: &mut BTreeMap<LoopId, i64>,
) -> u64 {
    let mut count = 0;
    for n in nodes {
        match n {
            Node::Loop(l) => {
                for i in 0..l.tripcount as i64 {
                    env.insert(l.id, i);
                    count += exec_nodes(program, &l.body, mem, env);
                }
                env.remove(&l.id);
            }
            Node::Stmt(s) => {
                let value = eval(program, &s.value, mem, env);
                match &s.target {
                    LValue::Scalar(id) => mem.scalars[id.index()] = value,
                    LValue::Array(acc) => {
                        let idx = linearize(program, acc, env);
                        mem.store(acc.array, idx, value);
                    }
                }
                count += 1;
            }
        }
    }
    count
}

fn linearize(program: &Program, acc: &ArrayAccess, env: &BTreeMap<LoopId, i64>) -> i64 {
    let decl = program.array(acc.array).expect("declared array");
    if acc.indices.len() == 1 && decl.dims.len() != 1 {
        // Flattened (linear-view) access.
        return acc.indices[0].eval(env);
    }
    acc.linearize(&decl.dims, env)
}

fn eval(program: &Program, e: &Expr, mem: &Memory, env: &BTreeMap<LoopId, i64>) -> i64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Index(l) => env.get(l).copied().unwrap_or(0),
        Expr::Scalar(s) => mem.scalars[s.index()],
        Expr::Load(acc) => mem.load(acc.array, linearize(program, acc, env)),
        Expr::Unary(op, a) => apply_unary(*op, eval(program, a, mem, env)),
        Expr::Binary(op, a, b) => {
            apply_binary(*op, eval(program, a, mem, env), eval(program, b, mem, env))
        }
    }
}

/// Applies a unary operator with the CGRA's word semantics.
pub fn apply_unary(op: OpKind, a: i64) -> i64 {
    match op {
        OpKind::Abs => a.wrapping_abs(),
        OpKind::Route | OpKind::Const => a,
        other => apply_binary(other, a, a),
    }
}

/// Applies a binary operator with the CGRA's word semantics (wrapping
/// arithmetic, shift counts masked to 6 bits, division by zero yields 0).
pub fn apply_binary(op: OpKind, a: i64, b: i64) -> i64 {
    match op {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        OpKind::Min => a.min(b),
        OpKind::Max => a.max(b),
        OpKind::Abs => a.wrapping_abs(),
        OpKind::Shl => a.wrapping_shl((b & 63) as u32),
        OpKind::Shr => a.wrapping_shr((b & 63) as u32),
        OpKind::And => a & b,
        OpKind::Or => a | b,
        OpKind::Xor => a ^ b,
        OpKind::Cmp => i64::from(a < b),
        OpKind::Select => {
            if a != 0 {
                b
            } else {
                0
            }
        }
        OpKind::Load | OpKind::Store | OpKind::Const | OpKind::Route => a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn gemm(n: u64) -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[n, n]);
        let bb = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        let i = b.open_loop("i", n);
        let j = b.open_loop("j", n);
        let k = b.open_loop("k", n);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn gemm_matches_reference() {
        let n = 4usize;
        let p = gemm(n as u64);
        let mut mem = Memory::patterned(&p, 7);
        let a: Vec<i64> = mem.array(crate::ArrayId(0)).to_vec();
        let b: Vec<i64> = mem.array(crate::ArrayId(1)).to_vec();
        let c0: Vec<i64> = mem.array(crate::ArrayId(2)).to_vec();
        execute(&p, &mut mem);
        for i in 0..n {
            for j in 0..n {
                let mut expect = c0[i * n + j];
                for k in 0..n {
                    expect += a[i * n + k] * b[k * n + j];
                }
                assert_eq!(mem.array(crate::ArrayId(2))[i * n + j], expect);
            }
        }
    }

    #[test]
    fn statement_count_matches_iteration_space() {
        let p = gemm(5);
        let mut mem = Memory::zeroed(&p);
        assert_eq!(execute(&p, &mut mem), 125);
    }

    #[test]
    fn scalar_reduction_sums() {
        let mut b = ProgramBuilder::new("sum");
        let a = b.array("A", &[10]);
        let s = b.scalar("s");
        let i = b.open_loop("i", 10);
        let v = b.add(b.read_scalar(s), b.load(a, &[b.idx(i)]));
        b.assign(s, v);
        b.close_loop();
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        for (k, v) in mem.arrays[0].iter_mut().enumerate() {
            *v = k as i64;
        }
        mem.scalars[0] = 0;
        execute(&p, &mut mem);
        assert_eq!(mem.scalar(ScalarId(0)), 45);
    }

    #[test]
    fn out_of_bounds_reads_are_zero() {
        let mut b = ProgramBuilder::new("oob");
        let a = b.array("A", &[4]);
        let out = b.array("B", &[4]);
        let i = b.open_loop("i", 4);
        // A[i + 2] walks past the end for i in {2, 3}.
        let v = b.load(a, &[b.idx(i) + crate::AffineExpr::constant(2)]);
        b.store(out, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let mut mem = Memory::zeroed(&p);
        mem.arrays[0] = vec![1, 2, 3, 4];
        execute(&p, &mut mem);
        assert_eq!(mem.array(ArrayId(1)), &[3, 4, 0, 0]);
    }

    #[test]
    fn patterned_memory_is_deterministic() {
        let p = gemm(4);
        assert_eq!(Memory::patterned(&p, 3), Memory::patterned(&p, 3));
        assert_ne!(Memory::patterned(&p, 3), Memory::patterned(&p, 4));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        assert_eq!(apply_binary(OpKind::Div, 10, 0), 0);
        assert_eq!(apply_binary(OpKind::Div, 10, 3), 3);
    }
}
