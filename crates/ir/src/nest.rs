//! Perfectly nested loops (PNLs), the unit of CGRA pipelining.

use crate::expr::Stmt;
use crate::id::LoopId;
use crate::program::Loop;
use serde::{Deserialize, Serialize};

/// A perfectly nested loop extracted from a [`crate::Program`].
///
/// The innermost loop of a PNL is the *pipelined loop* executed on the
/// CGRA; the remaining loops of the nest (plus any imperfect outer loops
/// recorded in [`outer`](Self::outer)) are *temporally folded*: each of
/// their iterations re-launches the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfectNest {
    /// Loops of the nest, outermost first. Never empty.
    pub loops: Vec<LoopId>,
    /// Tripcount of each loop in [`loops`](Self::loops).
    pub tripcounts: Vec<u64>,
    /// Names of the nest loops (diagnostics).
    pub names: Vec<String>,
    /// Imperfect enclosing loops `(id, tripcount)`, outermost first.
    /// Their tripcounts multiply the whole-nest cycle count.
    pub outer: Vec<(LoopId, u64)>,
    /// The straight-line statements of the innermost body.
    pub stmts: Vec<Stmt>,
}

impl PerfectNest {
    /// Builds a nest descriptor from a perfect loop subtree.
    ///
    /// `outer` carries the imperfect enclosing loops.
    pub fn from_loop(root: &Loop, outer: &[(LoopId, u64)]) -> Self {
        let mut loops = Vec::new();
        let mut tripcounts = Vec::new();
        let mut names = Vec::new();
        let mut cur = root;
        loop {
            loops.push(cur.id);
            tripcounts.push(cur.tripcount);
            names.push(cur.name.clone());
            let inner: Vec<&Loop> = cur.direct_loops().collect();
            match inner.len() {
                0 => break,
                1 => cur = inner[0],
                _ => unreachable!("from_loop on a non-perfect nest"),
            }
        }
        let stmts = cur.direct_stmts().cloned().collect();
        PerfectNest {
            loops,
            tripcounts,
            names,
            outer: outer.to_vec(),
            stmts,
        }
    }

    /// The pipelined (innermost) loop.
    pub fn pipelined_loop(&self) -> LoopId {
        *self.loops.last().expect("nest has at least one loop")
    }

    /// Tripcount of the pipelined loop (`TC_l` in Eqn. 1).
    pub fn pipelined_tripcount(&self) -> u64 {
        *self.tripcounts.last().expect("nest has at least one loop")
    }

    /// Product of the tripcounts of the temporally folded loops — the
    /// nest loops above the pipelined one (`prod TC_idx, idx in O(l)` in
    /// Eqn. 2). Does not include [`outer`](Self::outer) loops.
    pub fn folded_tripcount(&self) -> u64 {
        self.tripcounts[..self.tripcounts.len() - 1]
            .iter()
            .product()
    }

    /// Product of the tripcounts of the imperfect enclosing loops.
    pub fn outer_tripcount(&self) -> u64 {
        self.outer.iter().map(|&(_, tc)| tc).product()
    }

    /// Total iterations of the innermost body.
    pub fn total_iterations(&self) -> u64 {
        self.tripcounts.iter().product::<u64>() * self.outer_tripcount()
    }

    /// Depth of the nest.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Position of a loop within the nest, if present.
    pub fn position(&self, l: LoopId) -> Option<usize> {
        self.loops.iter().position(|&x| x == l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn nest3() -> PerfectNest {
        let mut b = ProgramBuilder::new("t");
        let x = b.array("X", &[4, 5, 6]);
        let i = b.open_loop("i", 4);
        let j = b.open_loop("j", 5);
        let k = b.open_loop("k", 6);
        b.store(x, &[b.idx(i), b.idx(j), b.idx(k)], b.constant(0));
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish().perfect_nests().remove(0)
    }

    #[test]
    fn tripcount_products() {
        let n = nest3();
        assert_eq!(n.pipelined_tripcount(), 6);
        assert_eq!(n.folded_tripcount(), 20);
        assert_eq!(n.total_iterations(), 120);
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn position_lookup() {
        let n = nest3();
        assert_eq!(n.position(n.pipelined_loop()), Some(2));
        assert_eq!(n.position(LoopId(99)), None);
    }
}
