//! Array declarations and affine array accesses.

use crate::affine::AffineExpr;
use crate::id::{ArrayId, LoopId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Declaration of an array in a [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Identifier assigned by the program builder.
    pub id: ArrayId,
    /// Source-level name (for diagnostics and code dumps).
    pub name: String,
    /// Extent of each dimension, outermost first.
    pub dims: Vec<u64>,
    /// Element size in bytes (word-level CGRAs typically use 4).
    pub elem_bytes: u64,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Whether the array has zero elements (degenerate declaration).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.len() * self.elem_bytes
    }
}

/// An affine access `A[e_0][e_1]...` to an array.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayAccess {
    /// The accessed array.
    pub array: ArrayId,
    /// One affine subscript per dimension.
    pub indices: Vec<AffineExpr>,
}

impl ArrayAccess {
    /// Creates an access from subscript expressions.
    pub fn new(array: ArrayId, indices: Vec<AffineExpr>) -> Self {
        ArrayAccess { array, indices }
    }

    /// The set of loops appearing in any subscript.
    pub fn loops(&self) -> impl Iterator<Item = LoopId> + '_ {
        self.indices.iter().flat_map(|e| e.loops())
    }

    /// Substitutes a loop index in every subscript.
    pub fn substitute(&self, loop_id: LoopId, repl: &AffineExpr) -> ArrayAccess {
        ArrayAccess {
            array: self.array,
            indices: self
                .indices
                .iter()
                .map(|e| e.substitute(loop_id, repl))
                .collect(),
        }
    }

    /// Renames loop ids in every subscript.
    pub fn rename_loops(&self, map: &BTreeMap<LoopId, LoopId>) -> ArrayAccess {
        ArrayAccess {
            array: self.array,
            indices: self.indices.iter().map(|e| e.rename_loops(map)).collect(),
        }
    }

    /// Evaluates the linearized element index for a concrete iteration,
    /// given the array's dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() != self.indices.len()`.
    pub fn linearize(&self, dims: &[u64], assignment: &BTreeMap<LoopId, i64>) -> i64 {
        assert_eq!(dims.len(), self.indices.len(), "dimension mismatch");
        let mut idx = 0i64;
        for (e, &d) in self.indices.iter().zip(dims) {
            idx = idx * d as i64 + e.eval(assignment);
        }
        idx
    }

    /// Whether two accesses to the same array have identical coefficients
    /// on every subscript (they may differ in constants). Such access
    /// pairs give *uniform* dependences with exact distance vectors.
    pub fn is_uniform_with(&self, other: &ArrayAccess) -> bool {
        self.array == other.array
            && self.indices.len() == other.indices.len()
            && self.indices.iter().zip(&other.indices).all(|(a, b)| {
                let mut loops: Vec<LoopId> = a.loops().chain(b.loops()).collect();
                loops.sort_unstable();
                loops.dedup();
                loops.into_iter().all(|l| a.coeff(l) == b.coeff(l))
            })
    }
}

impl fmt::Display for ArrayAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.array)?;
        for e in &self.indices {
            write!(f, "[{e}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decl() -> ArrayDecl {
        ArrayDecl {
            id: ArrayId(0),
            name: "A".into(),
            dims: vec![24, 24],
            elem_bytes: 4,
        }
    }

    #[test]
    fn footprint() {
        let d = decl();
        assert_eq!(d.len(), 576);
        assert_eq!(d.bytes(), 2304);
        assert!(!d.is_empty());
    }

    #[test]
    fn linearize_row_major() {
        let acc = ArrayAccess::new(
            ArrayId(0),
            vec![AffineExpr::var(LoopId(0)), AffineExpr::var(LoopId(1))],
        );
        let mut asg = BTreeMap::new();
        asg.insert(LoopId(0), 2);
        asg.insert(LoopId(1), 3);
        assert_eq!(acc.linearize(&[24, 24], &asg), 2 * 24 + 3);
    }

    #[test]
    fn uniformity() {
        let a = ArrayAccess::new(ArrayId(0), vec![AffineExpr::var(LoopId(0))]);
        let b = ArrayAccess::new(
            ArrayId(0),
            vec![AffineExpr::var(LoopId(0)) + AffineExpr::constant(1)],
        );
        let c = ArrayAccess::new(ArrayId(0), vec![AffineExpr::var(LoopId(0)) * 2]);
        assert!(a.is_uniform_with(&b));
        assert!(!a.is_uniform_with(&c));
    }
}
