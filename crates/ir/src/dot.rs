//! Graphviz (DOT) exports for programs and DFGs.
//!
//! Rendering the loop tree or the dataflow graph is the fastest way to
//! see what a transformation did:
//!
//! ```sh
//! cargo run --release -p ptmap-core --bin ptmap -- parse --source k.c
//! # or from code:
//! ```
//!
//! ```
//! use ptmap_ir::{ProgramBuilder, dot};
//! let mut b = ProgramBuilder::new("k");
//! let a = b.array("A", &[16]);
//! let i = b.open_loop("i", 16);
//! let v = b.add(b.load(a, &[b.idx(i)]), b.constant(1));
//! b.store(a, &[b.idx(i)], v);
//! b.close_loop();
//! let p = b.finish();
//! let text = dot::program_to_dot(&p);
//! assert!(text.starts_with("digraph"));
//! ```

use crate::dfg::{Dfg, EdgeKind};
use crate::program::{Node, Program};
use std::fmt::Write as _;

/// Renders the loop-nest tree of a program as DOT.
pub fn program_to_dot(program: &Program) -> String {
    let mut out = String::from("digraph program {\n  rankdir=TB;\n  node [shape=box];\n");
    let _ = writeln!(out, "  root [label=\"{}\", shape=ellipse];", program.name);
    let mut next = 0usize;
    fn rec(nodes: &[Node], parent: &str, next: &mut usize, out: &mut String) {
        for n in nodes {
            let id = format!("n{}", *next);
            *next += 1;
            match n {
                Node::Loop(l) => {
                    let _ = writeln!(
                        out,
                        "  {id} [label=\"for {} < {}\"];\n  {parent} -> {id};",
                        l.name, l.tripcount
                    );
                    rec(&l.body, &id, next, out);
                }
                Node::Stmt(s) => {
                    let _ = writeln!(
                        out,
                        "  {id} [label=\"{}\", shape=note];\n  {parent} -> {id};",
                        s.id
                    );
                }
            }
        }
    }
    rec(&program.roots, "root", &mut next, &mut out);
    out.push_str("}\n");
    out
}

/// Renders a DFG as DOT: solid edges are routed dataflow, dashed edges
/// are memory/ordering constraints; loop-carried edges are labeled with
/// their distance.
pub fn dfg_to_dot(dfg: &Dfg) -> String {
    let mut out = String::from("digraph dfg {\n  rankdir=LR;\n");
    for n in dfg.nodes() {
        let extra = match (&n.access, n.imm) {
            (Some(a), _) => format!("\\n{a}"),
            (None, Some(c)) => format!("\\n#{c}"),
            _ => String::new(),
        };
        let _ = writeln!(out, "  {} [label=\"{}: {}{}\"];", n.id, n.id, n.op, extra);
    }
    for e in dfg.edges() {
        let style = match e.kind {
            EdgeKind::Data => "solid",
            EdgeKind::Order => "dashed",
        };
        if e.dist > 0 {
            let _ = writeln!(
                out,
                "  {} -> {} [style={style}, label=\"{}\", constraint=false];",
                e.src, e.dst, e.dist
            );
        } else {
            let _ = writeln!(out, "  {} -> {} [style={style}];", e.src, e.dst);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::build_dfg;
    use crate::program::ProgramBuilder;

    fn kernel() -> Program {
        let mut b = ProgramBuilder::new("k");
        let a = b.array("A", &[16]);
        let s = b.scalar("s");
        let i = b.open_loop("i", 16);
        let v = b.add(b.read_scalar(s), b.load(a, &[b.idx(i)]));
        b.assign(s, v);
        b.close_loop();
        b.finish()
    }

    #[test]
    fn program_dot_structure() {
        let text = program_to_dot(&kernel());
        assert!(text.starts_with("digraph program"));
        assert!(text.contains("for i < 16"));
        assert!(text.contains("root ->"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn dfg_dot_marks_carried_edges() {
        let p = kernel();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let text = dfg_to_dot(&dfg);
        assert!(text.contains("label=\"1\""), "carried edge labeled: {text}");
        assert!(text.contains("add"));
        assert!(text.contains("load"));
    }

    #[test]
    fn order_edges_render_dashed() {
        let mut b = ProgramBuilder::new("rmw");
        let a = b.array("A", &[16]);
        let i = b.open_loop("i", 16);
        let v = b.add(b.load(a, &[b.idx(i)]), b.constant(1));
        b.store(a, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let text = dfg_to_dot(&dfg);
        assert!(text.contains("style=dashed"));
    }
}
