//! Affine index expressions over loop index variables.

use crate::id::LoopId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `sum(coeff_k * i_k) + constant` over loop indices.
///
/// Affine expressions appear as array subscripts and describe the memory
/// access patterns that the dependence analysis and the memory profiler
/// reason about. The zero coefficients are never stored.
///
/// # Example
///
/// ```
/// use ptmap_ir::{AffineExpr, LoopId};
///
/// let i = AffineExpr::var(LoopId(0));
/// let j = AffineExpr::var(LoopId(1));
/// let e = i.clone() * 24 + j + AffineExpr::constant(1); // 24*i + j + 1
/// assert_eq!(e.coeff(LoopId(0)), 24);
/// assert_eq!(e.coeff(LoopId(1)), 1);
/// assert_eq!(e.constant_term(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AffineExpr {
    coeffs: BTreeMap<LoopId, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression consisting of a single loop index with coefficient 1.
    pub fn var(loop_id: LoopId) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(loop_id, 1);
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Coefficient of `loop_id` (zero when absent).
    pub fn coeff(&self, loop_id: LoopId) -> i64 {
        self.coeffs.get(&loop_id).copied().unwrap_or(0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Iterator over `(loop, coefficient)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (LoopId, i64)> + '_ {
        self.coeffs.iter().map(|(&l, &c)| (l, c))
    }

    /// The set of loops this expression depends on.
    pub fn loops(&self) -> impl Iterator<Item = LoopId> + '_ {
        self.coeffs.keys().copied()
    }

    /// Whether the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Substitutes `loop_id := replacement` and returns the new expression.
    ///
    /// Used by loop transformations: unrolling substitutes `i := i + k`,
    /// tiling substitutes `i := T*it + ii`, flattening `i := k / N` etc.
    /// (flattening keeps only affine-representable substitutions).
    pub fn substitute(&self, loop_id: LoopId, replacement: &AffineExpr) -> AffineExpr {
        let c = self.coeff(loop_id);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(&loop_id);
        out + replacement.clone() * c
    }

    /// Evaluates the expression for a concrete assignment of loop indices.
    ///
    /// Loops absent from `assignment` evaluate as zero.
    pub fn eval(&self, assignment: &BTreeMap<LoopId, i64>) -> i64 {
        self.constant
            + self
                .coeffs
                .iter()
                .map(|(l, c)| c * assignment.get(l).copied().unwrap_or(0))
                .sum::<i64>()
    }

    /// Renames loop ids according to `map`, leaving unmapped ids unchanged.
    pub fn rename_loops(&self, map: &BTreeMap<LoopId, LoopId>) -> AffineExpr {
        let mut coeffs = BTreeMap::new();
        for (&l, &c) in &self.coeffs {
            let target = map.get(&l).copied().unwrap_or(l);
            *coeffs.entry(target).or_insert(0) += c;
        }
        coeffs.retain(|_, c| *c != 0);
        AffineExpr {
            coeffs,
            constant: self.constant,
        }
    }

    fn normalized(mut self) -> Self {
        self.coeffs.retain(|_, c| *c != 0);
        self
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: AffineExpr) -> AffineExpr {
        for (l, c) in rhs.coeffs {
            *self.coeffs.entry(l).or_insert(0) += c;
        }
        self.constant += rhs.constant;
        self.normalized()
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + (-rhs)
    }
}

impl Neg for AffineExpr {
    type Output = AffineExpr;
    fn neg(mut self) -> AffineExpr {
        for c in self.coeffs.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(mut self, rhs: i64) -> AffineExpr {
        for c in self.coeffs.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self.normalized()
    }
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        AffineExpr::constant(c)
    }
}

impl From<LoopId> for AffineExpr {
    fn from(l: LoopId) -> Self {
        AffineExpr::var(l)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (l, c) in self.terms() {
            if first {
                if c == 1 {
                    write!(f, "{l}")?;
                } else if c == -1 {
                    write!(f, "-{l}")?;
                } else {
                    write!(f, "{c}*{l}")?;
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, " + {l}")?;
                } else {
                    write!(f, " + {c}*{l}")?;
                }
            } else if c == -1 {
                write!(f, " - {l}")?;
            } else {
                write!(f, " - {}*{l}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i() -> AffineExpr {
        AffineExpr::var(LoopId(0))
    }
    fn j() -> AffineExpr {
        AffineExpr::var(LoopId(1))
    }

    #[test]
    fn arithmetic_and_normalization() {
        let e = i() * 3 + j() - i() * 3; // 3i + j - 3i == j
        assert_eq!(e, j());
        assert!(e.coeff(LoopId(0)) == 0);
    }

    #[test]
    fn substitute_tiling() {
        // i := 8*it + ii applied to  24*i + j
        let e = i() * 24 + j();
        let it = AffineExpr::var(LoopId(2));
        let ii = AffineExpr::var(LoopId(3));
        let sub = it * 8 + ii;
        let out = e.substitute(LoopId(0), &sub);
        assert_eq!(out.coeff(LoopId(2)), 192);
        assert_eq!(out.coeff(LoopId(3)), 24);
        assert_eq!(out.coeff(LoopId(1)), 1);
    }

    #[test]
    fn substitute_unroll_offset() {
        // i := i + 2 applied to i + 5
        let e = i() + AffineExpr::constant(5);
        let out = e.substitute(LoopId(0), &(i() + AffineExpr::constant(2)));
        assert_eq!(out.coeff(LoopId(0)), 1);
        assert_eq!(out.constant_term(), 7);
    }

    #[test]
    fn eval_assignment() {
        let e = i() * 10 + j() + AffineExpr::constant(3);
        let mut asg = BTreeMap::new();
        asg.insert(LoopId(0), 2);
        asg.insert(LoopId(1), 7);
        assert_eq!(e.eval(&asg), 30);
    }

    #[test]
    fn display_readable() {
        let e = i() * 24 + j() - AffineExpr::constant(1);
        assert_eq!(e.to_string(), "24*L0 + L1 - 1");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
    }

    #[test]
    fn rename_merges_coefficients() {
        let e = i() + j();
        let mut map = BTreeMap::new();
        map.insert(LoopId(1), LoopId(0));
        let out = e.rename_loops(&map);
        assert_eq!(out.coeff(LoopId(0)), 2);
        assert_eq!(out.coeff(LoopId(1)), 0);
    }
}
