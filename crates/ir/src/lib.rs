//! Affine loop-nest intermediate representation for PT-Map.
//!
//! This crate provides the software-side substrate of the PT-Map framework:
//!
//! * a loop-nest IR ([`Program`], [`Loop`], [`Stmt`]) with rectangular,
//!   constant-tripcount loops and affine array accesses — the fragment of
//!   C covered by `#pragma PTMAP` regions in the paper;
//! * dependence analysis ([`deps`]) computing distance/direction vectors
//!   for uniform affine dependences, the legality oracle used by every
//!   transformation primitive;
//! * dataflow-graph construction ([`dfg`]) turning the body of a pipelined
//!   innermost loop (optionally unrolled) into the operation graph that the
//!   modulo-scheduling mapper and the GNN predictive model consume.
//!
//! # Example
//!
//! Build a vector-add kernel and derive its DFG:
//!
//! ```
//! use ptmap_ir::{ProgramBuilder, OpKind};
//!
//! let mut b = ProgramBuilder::new("vadd");
//! let a = b.array("A", &[1024]);
//! let c = b.array("B", &[1024]);
//! let d = b.array("C", &[1024]);
//! let i = b.open_loop("i", 1024);
//! let sum = b.add(b.load(a, &[b.idx(i)]), b.load(c, &[b.idx(i)]));
//! b.store(d, &[b.idx(i)], sum);
//! b.close_loop();
//! let program = b.finish();
//!
//! let nest = program.perfect_nests();
//! assert_eq!(nest.len(), 1);
//! let dfg = ptmap_ir::dfg::build_dfg(&program, &nest[0], &[]).unwrap();
//! // two loads, one add, one store
//! assert_eq!(dfg.nodes().len(), 4);
//! assert_eq!(dfg.nodes().iter().filter(|n| n.op == OpKind::Add).count(), 1);
//! ```

pub mod access;
pub mod affine;
pub mod deps;
pub mod dfg;
pub mod dot;
pub mod error;
pub mod expr;
pub mod id;
pub mod interp;
pub mod nest;
pub mod op;
pub mod parse;
pub mod program;

pub use access::{ArrayAccess, ArrayDecl};
pub use affine::AffineExpr;
pub use deps::{access_distance, DepKind, Dependence, DependenceSet, Distance};
pub use dfg::{Dfg, DfgEdge, DfgNode};
pub use error::IrError;
pub use expr::{Expr, LValue, Stmt};
pub use id::{ArrayId, LoopId, NodeId, ScalarId, StmtId};
pub use nest::PerfectNest;
pub use op::{OpClass, OpKind};
pub use program::{Loop, Node, Program, ProgramBuilder};
