//! Operation kinds executed by CGRA processing elements.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The word-level operations a PE's ALU (or load/store unit) can perform.
///
/// The set mirrors the PE function classes of the paper's architecture
/// space (Tab. 4): arithmetic, logic and memory operators, without complex
/// control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Integer/fixed-point addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (rarely supported; reduced architectures drop it).
    Div,
    /// Minimum of two operands.
    Min,
    /// Maximum of two operands.
    Max,
    /// Absolute value.
    Abs,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Comparison producing a predicate word.
    Cmp,
    /// Predicated selection (`cond ? a : b`).
    Select,
    /// Load from the on-chip data buffer.
    Load,
    /// Store to the on-chip data buffer.
    Store,
    /// Materialization of an immediate constant.
    Const,
    /// Pure data movement (used for routing through a PE).
    Route,
}

/// Coarse functional classes used to describe heterogeneous PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Add/sub/mul/div/min/max/abs.
    Arithmetic,
    /// Shifts, bitwise ops, comparisons, selects.
    Logic,
    /// Loads and stores to the data buffer.
    Memory,
    /// Constants and routing moves (supported by every PE).
    Move,
}

impl OpKind {
    /// All operation kinds, in a stable order (useful for feature vectors).
    pub const ALL: [OpKind; 18] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Min,
        OpKind::Max,
        OpKind::Abs,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Cmp,
        OpKind::Select,
        OpKind::Load,
        OpKind::Store,
        OpKind::Const,
        OpKind::Route,
    ];

    /// The functional class this operation belongs to.
    pub fn class(self) -> OpClass {
        match self {
            OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Min
            | OpKind::Max
            | OpKind::Abs => OpClass::Arithmetic,
            OpKind::Shl
            | OpKind::Shr
            | OpKind::And
            | OpKind::Or
            | OpKind::Xor
            | OpKind::Cmp
            | OpKind::Select => OpClass::Logic,
            OpKind::Load | OpKind::Store => OpClass::Memory,
            OpKind::Const | OpKind::Route => OpClass::Move,
        }
    }

    /// Latency in cycles on a single-cycle-issue PE.
    ///
    /// CGRA PEs are typically fully pipelined with short latencies; the
    /// values here follow common CGRA compiler assumptions (single-cycle
    /// ALU ops, multi-cycle multiply/divide and memory).
    pub fn latency(self) -> u32 {
        match self {
            OpKind::Mul => 2,
            OpKind::Div => 4,
            OpKind::Load => 2,
            OpKind::Store => 1,
            _ => 1,
        }
    }

    /// Whether this operation commutes in its two operands.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Mul
                | OpKind::Min
                | OpKind::Max
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
        )
    }

    /// Whether `self` is associative (used to recognize reductions whose
    /// loop order may be changed legally).
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Mul
                | OpKind::Min
                | OpKind::Max
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
        )
    }

    /// Stable small integer code, used when encoding node features.
    pub fn code(self) -> usize {
        OpKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("op in ALL")
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::Abs => "abs",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Cmp => "cmp",
            OpKind::Select => "select",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Const => "const",
            OpKind::Route => "route",
        };
        f.write_str(s)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Arithmetic => "arithmetic",
            OpClass::Logic => "logic",
            OpClass::Memory => "memory",
            OpClass::Move => "move",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_ops() {
        for op in OpKind::ALL {
            // class() must not panic and Move ops must include const/route
            let _ = op.class();
        }
        assert_eq!(OpKind::Const.class(), OpClass::Move);
        assert_eq!(OpKind::Load.class(), OpClass::Memory);
        assert_eq!(OpKind::Cmp.class(), OpClass::Logic);
        assert_eq!(OpKind::Mul.class(), OpClass::Arithmetic);
    }

    #[test]
    fn codes_are_unique_and_dense() {
        let mut seen = vec![false; OpKind::ALL.len()];
        for op in OpKind::ALL {
            assert!(!seen[op.code()], "duplicate code for {op}");
            seen[op.code()] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn latencies_are_positive() {
        for op in OpKind::ALL {
            assert!(op.latency() >= 1);
        }
    }

    #[test]
    fn commutative_ops_are_associative() {
        for op in OpKind::ALL {
            if op.is_commutative() {
                assert!(op.is_associative(), "{op} commutative but not associative");
            }
        }
        assert!(!OpKind::Sub.is_commutative());
    }
}
