//! Statement bodies: expression trees and assignments.

use crate::access::ArrayAccess;
use crate::affine::AffineExpr;
use crate::id::{LoopId, ScalarId, StmtId};
use crate::op::OpKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A side-effect-free expression computed by a statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// An immediate constant.
    Const(i64),
    /// The current value of a loop index variable (used e.g. by
    /// address-like computations inside the body).
    Index(LoopId),
    /// A read of a scalar variable.
    Scalar(ScalarId),
    /// A load from an array.
    Load(ArrayAccess),
    /// A unary operation.
    Unary(OpKind, Box<Expr>),
    /// A binary operation.
    Binary(OpKind, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Number of operation nodes (loads and ALU ops; constants and reads
    /// of scalars/indices are leaves materialized for free or by `Const`).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Index(_) | Expr::Scalar(_) => 0,
            Expr::Load(_) => 1,
            Expr::Unary(_, a) => 1 + a.op_count(),
            Expr::Binary(_, a, b) => 1 + a.op_count() + b.op_count(),
        }
    }

    /// All array reads in the expression, in evaluation order.
    pub fn loads(&self) -> Vec<&ArrayAccess> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<&'a ArrayAccess>) {
        match self {
            Expr::Load(a) => out.push(a),
            Expr::Unary(_, a) => a.collect_loads(out),
            Expr::Binary(_, a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            _ => {}
        }
    }

    /// All scalar reads in the expression.
    pub fn scalar_reads(&self) -> Vec<ScalarId> {
        let mut out = Vec::new();
        self.collect_scalars(&mut out);
        out
    }

    fn collect_scalars(&self, out: &mut Vec<ScalarId>) {
        match self {
            Expr::Scalar(s) => out.push(*s),
            Expr::Unary(_, a) => a.collect_scalars(out),
            Expr::Binary(_, a, b) => {
                a.collect_scalars(out);
                b.collect_scalars(out);
            }
            _ => {}
        }
    }

    /// Substitutes a loop index inside every affine subscript (and `Index`
    /// leaves when the replacement is itself a pure index or constant).
    pub fn substitute(&self, loop_id: LoopId, repl: &AffineExpr) -> Expr {
        match self {
            Expr::Const(_) | Expr::Scalar(_) => self.clone(),
            Expr::Index(l) if *l == loop_id => {
                // An Index leaf refers to the raw loop variable; an affine
                // replacement is re-expressed as a sub-expression tree.
                affine_to_expr(repl)
            }
            Expr::Index(_) => self.clone(),
            Expr::Load(a) => Expr::Load(a.substitute(loop_id, repl)),
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(a.substitute(loop_id, repl))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.substitute(loop_id, repl)),
                Box::new(b.substitute(loop_id, repl)),
            ),
        }
    }

    /// Renames loop ids throughout the expression.
    pub fn rename_loops(&self, map: &BTreeMap<LoopId, LoopId>) -> Expr {
        match self {
            Expr::Const(_) | Expr::Scalar(_) => self.clone(),
            Expr::Index(l) => Expr::Index(map.get(l).copied().unwrap_or(*l)),
            Expr::Load(a) => Expr::Load(a.rename_loops(map)),
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(a.rename_loops(map))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.rename_loops(map)),
                Box::new(b.rename_loops(map)),
            ),
        }
    }
}

fn affine_to_expr(e: &AffineExpr) -> Expr {
    let mut acc: Option<Expr> = None;
    for (l, c) in e.terms() {
        let term = if c == 1 {
            Expr::Index(l)
        } else {
            Expr::Binary(
                OpKind::Mul,
                Box::new(Expr::Const(c)),
                Box::new(Expr::Index(l)),
            )
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => Expr::Binary(OpKind::Add, Box::new(prev), Box::new(term)),
        });
    }
    let c = e.constant_term();
    match acc {
        None => Expr::Const(c),
        Some(prev) if c == 0 => prev,
        Some(prev) => Expr::Binary(OpKind::Add, Box::new(prev), Box::new(Expr::Const(c))),
    }
}

/// The destination of an assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LValue {
    /// A store to an array element.
    Array(ArrayAccess),
    /// A write to a scalar variable.
    Scalar(ScalarId),
}

impl LValue {
    /// The array access when this lvalue is an array store.
    pub fn as_array(&self) -> Option<&ArrayAccess> {
        match self {
            LValue::Array(a) => Some(a),
            LValue::Scalar(_) => None,
        }
    }
}

/// An assignment statement `target = value`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Stmt {
    /// Identifier assigned by the program builder (stable across clones).
    pub id: StmtId,
    /// Destination of the assignment.
    pub target: LValue,
    /// The computed value.
    pub value: Expr,
}

impl Stmt {
    /// Whether this statement is a scalar or array *reduction*: the target
    /// also appears as an operand of an associative top-level operation
    /// (e.g. `s = s + x` or `C[i][j] = C[i][j] + a*b`).
    ///
    /// Reductions carry a recurrence but may be reordered legally thanks
    /// to associativity; the dependence analysis treats them specially.
    pub fn is_reduction(&self) -> bool {
        fn refers_to(e: &Expr, t: &LValue) -> bool {
            match (e, t) {
                (Expr::Scalar(s), LValue::Scalar(ts)) => s == ts,
                (Expr::Load(a), LValue::Array(ta)) => a == ta,
                _ => false,
            }
        }
        match &self.value {
            Expr::Binary(op, a, b) if op.is_associative() => {
                refers_to(a, &self.target) || refers_to(b, &self.target)
            }
            _ => false,
        }
    }

    /// Substitutes a loop index across target and value.
    pub fn substitute(&self, loop_id: LoopId, repl: &AffineExpr) -> Stmt {
        let target = match &self.target {
            LValue::Array(a) => LValue::Array(a.substitute(loop_id, repl)),
            LValue::Scalar(s) => LValue::Scalar(*s),
        };
        Stmt {
            id: self.id,
            target,
            value: self.value.substitute(loop_id, repl),
        }
    }

    /// Renames loop ids across target and value.
    pub fn rename_loops(&self, map: &BTreeMap<LoopId, LoopId>) -> Stmt {
        let target = match &self.target {
            LValue::Array(a) => LValue::Array(a.rename_loops(map)),
            LValue::Scalar(s) => LValue::Scalar(*s),
        };
        Stmt {
            id: self.id,
            target,
            value: self.value.rename_loops(map),
        }
    }

    /// All array accesses (reads then the write, if any).
    pub fn accesses(&self) -> (Vec<&ArrayAccess>, Option<&ArrayAccess>) {
        (self.value.loads(), self.target.as_array())
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            LValue::Array(a) => write!(f, "{a} = ...")?,
            LValue::Scalar(s) => write!(f, "{s} = ...")?,
        }
        write!(f, " ({} ops)", self.value.op_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ArrayId;

    fn acc(l: LoopId) -> ArrayAccess {
        ArrayAccess::new(ArrayId(0), vec![AffineExpr::var(l)])
    }

    #[test]
    fn op_count_counts_loads_and_alu() {
        let e = Expr::Binary(
            OpKind::Add,
            Box::new(Expr::Load(acc(LoopId(0)))),
            Box::new(Expr::Const(3)),
        );
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn reduction_detection_scalar() {
        let s = Stmt {
            id: StmtId(0),
            target: LValue::Scalar(ScalarId(0)),
            value: Expr::Binary(
                OpKind::Add,
                Box::new(Expr::Scalar(ScalarId(0))),
                Box::new(Expr::Load(acc(LoopId(0)))),
            ),
        };
        assert!(s.is_reduction());
    }

    #[test]
    fn reduction_detection_array() {
        let target = acc(LoopId(0));
        let s = Stmt {
            id: StmtId(0),
            target: LValue::Array(target.clone()),
            value: Expr::Binary(
                OpKind::Add,
                Box::new(Expr::Load(target)),
                Box::new(Expr::Const(1)),
            ),
        };
        assert!(s.is_reduction());
    }

    #[test]
    fn non_reduction() {
        let s = Stmt {
            id: StmtId(0),
            target: LValue::Scalar(ScalarId(0)),
            value: Expr::Binary(
                OpKind::Sub,
                Box::new(Expr::Scalar(ScalarId(0))),
                Box::new(Expr::Const(1)),
            ),
        };
        // Sub is not associative.
        assert!(!s.is_reduction());
    }

    #[test]
    fn substitute_affects_target_and_value() {
        let s = Stmt {
            id: StmtId(0),
            target: LValue::Array(acc(LoopId(0))),
            value: Expr::Load(acc(LoopId(0))),
        };
        let repl = AffineExpr::var(LoopId(0)) + AffineExpr::constant(1);
        let out = s.substitute(LoopId(0), &repl);
        match &out.target {
            LValue::Array(a) => assert_eq!(a.indices[0].constant_term(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn index_leaf_substitution_builds_tree() {
        let e = Expr::Index(LoopId(0));
        let repl = AffineExpr::var(LoopId(1)) * 4 + AffineExpr::constant(2);
        let out = e.substitute(LoopId(0), &repl);
        assert_eq!(out.op_count(), 2); // mul + add
    }
}
