//! Newtype identifiers for IR entities.
//!
//! All IR objects are referred to by small integer ids; the newtypes keep
//! loop indices, arrays, scalars, statements and DFG nodes statically
//! distinct (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index backing this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Identifier of a loop (and its index variable) within a [`crate::Program`].
    LoopId,
    "L"
);
define_id!(
    /// Identifier of an array declared in a [`crate::Program`].
    ArrayId,
    "A"
);
define_id!(
    /// Identifier of a scalar variable within a [`crate::Program`].
    ScalarId,
    "s"
);
define_id!(
    /// Identifier of a statement within a [`crate::Program`].
    StmtId,
    "S"
);
define_id!(
    /// Identifier of a node in a [`crate::Dfg`].
    NodeId,
    "n"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(LoopId(3).to_string(), "L3");
        assert_eq!(ArrayId(0).to_string(), "A0");
        assert_eq!(NodeId(7).to_string(), "n7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<LoopId> = [LoopId(2), LoopId(0), LoopId(1)].into_iter().collect();
        assert_eq!(set.iter().next(), Some(&LoopId(0)));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(StmtId::from(9).index(), 9);
    }
}
