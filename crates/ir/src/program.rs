//! The loop-nest program representation and its builder.

use crate::access::{ArrayAccess, ArrayDecl};
use crate::affine::AffineExpr;
use crate::error::IrError;
use crate::expr::{Expr, LValue, Stmt};
use crate::id::{ArrayId, LoopId, ScalarId, StmtId};
use crate::nest::PerfectNest;
use crate::op::OpKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node of the loop-nest tree: either a loop or a statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A counted loop.
    Loop(Loop),
    /// An assignment statement.
    Stmt(Stmt),
}

impl Node {
    /// The loop inside this node, if any.
    pub fn as_loop(&self) -> Option<&Loop> {
        match self {
            Node::Loop(l) => Some(l),
            Node::Stmt(_) => None,
        }
    }

    /// The statement inside this node, if any.
    pub fn as_stmt(&self) -> Option<&Stmt> {
        match self {
            Node::Stmt(s) => Some(s),
            Node::Loop(_) => None,
        }
    }
}

/// A rectangular counted loop `for (i = 0; i < tripcount; i++)`.
///
/// Bounds are normalized: lower bound 0, step 1, constant tripcount. The
/// PolyBench-style kernels of the paper's evaluation all fit this form
/// after standard normalization; triangular bounds (trisolv, covariance)
/// are modeled with their average tripcount, which preserves the cycle and
/// volume totals that PT-Map's models consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    /// Identity of the loop (also names its index variable).
    pub id: LoopId,
    /// Source-level index name (diagnostics only).
    pub name: String,
    /// Number of iterations.
    pub tripcount: u64,
    /// Loop body, in program order.
    pub body: Vec<Node>,
}

impl Loop {
    /// Statements directly in the body (not inside nested loops).
    pub fn direct_stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.body.iter().filter_map(Node::as_stmt)
    }

    /// Loops directly in the body.
    pub fn direct_loops(&self) -> impl Iterator<Item = &Loop> {
        self.body.iter().filter_map(Node::as_loop)
    }

    /// Whether the subtree rooted here is a perfectly nested loop: a chain
    /// of single-child loops whose innermost body contains only statements.
    pub fn is_perfect_nest(&self) -> bool {
        let loops: Vec<&Loop> = self.direct_loops().collect();
        let stmts = self.direct_stmts().count();
        match (loops.len(), stmts) {
            (0, _) => true,
            (1, 0) => loops[0].is_perfect_nest(),
            _ => false,
        }
    }

    /// All statements in the subtree, in program order.
    pub fn all_stmts(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        self.collect_stmts(&mut out);
        out
    }

    fn collect_stmts<'a>(&'a self, out: &mut Vec<&'a Stmt>) {
        for n in &self.body {
            match n {
                Node::Stmt(s) => out.push(s),
                Node::Loop(l) => l.collect_stmts(out),
            }
        }
    }
}

/// A whole program: array/scalar declarations plus a forest of loop nests.
///
/// Programs are produced by [`ProgramBuilder`] and transformed (cloned and
/// rewritten) by the `ptmap-transform` crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable program name.
    pub name: String,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<String>,
    /// Top-level loops and statements, in program order.
    pub roots: Vec<Node>,
    next_loop: u32,
    next_stmt: u32,
}

impl Program {
    /// The declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Looks up an array declaration.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownArray`] when the id is out of range.
    pub fn array(&self, id: ArrayId) -> Result<&ArrayDecl, IrError> {
        self.arrays.get(id.index()).ok_or(IrError::UnknownArray(id))
    }

    /// The declared scalar names.
    pub fn scalars(&self) -> &[String] {
        &self.scalars
    }

    /// Mints a fresh loop id (used by tiling/flattening which create loops).
    pub fn fresh_loop_id(&mut self, name: impl Into<String>) -> (LoopId, String) {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        (id, name.into())
    }

    /// Mints a fresh statement id.
    pub fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    /// Finds a loop anywhere in the forest.
    pub fn find_loop(&self, id: LoopId) -> Option<&Loop> {
        fn rec(nodes: &[Node], id: LoopId) -> Option<&Loop> {
            for n in nodes {
                if let Node::Loop(l) = n {
                    if l.id == id {
                        return Some(l);
                    }
                    if let Some(found) = rec(&l.body, id) {
                        return Some(found);
                    }
                }
            }
            None
        }
        rec(&self.roots, id)
    }

    /// The loops enclosing `id` (outermost first), excluding `id` itself.
    pub fn enclosing_loops(&self, id: LoopId) -> Vec<LoopId> {
        fn rec(nodes: &[Node], id: LoopId, chain: &mut Vec<LoopId>) -> bool {
            for n in nodes {
                if let Node::Loop(l) = n {
                    if l.id == id {
                        return true;
                    }
                    chain.push(l.id);
                    if rec(&l.body, id, chain) {
                        return true;
                    }
                    chain.pop();
                }
            }
            false
        }
        let mut chain = Vec::new();
        if rec(&self.roots, id, &mut chain) {
            chain
        } else {
            Vec::new()
        }
    }

    /// Finds a loop anywhere in the forest, mutably.
    pub fn find_loop_mut(&mut self, id: LoopId) -> Option<&mut Loop> {
        fn rec(nodes: &mut [Node], id: LoopId) -> Option<&mut Loop> {
            for n in nodes {
                if let Node::Loop(l) = n {
                    if l.id == id {
                        return Some(l);
                    }
                    if let Some(found) = rec(&mut l.body, id) {
                        return Some(found);
                    }
                }
            }
            None
        }
        rec(&mut self.roots, id)
    }

    /// Tripcount of a loop.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownLoop`] if the loop does not exist.
    pub fn tripcount(&self, id: LoopId) -> Result<u64, IrError> {
        self.find_loop(id)
            .map(|l| l.tripcount)
            .ok_or(IrError::UnknownLoop(id))
    }

    /// All statements in the program, in program order.
    pub fn all_stmts(&self) -> Vec<&Stmt> {
        fn rec<'a>(nodes: &'a [Node], out: &mut Vec<&'a Stmt>) {
            for n in nodes {
                match n {
                    Node::Stmt(s) => out.push(s),
                    Node::Loop(l) => rec(&l.body, out),
                }
            }
        }
        let mut out = Vec::new();
        rec(&self.roots, &mut out);
        out
    }

    /// The maximal perfectly nested loops (PNLs) of the program, in
    /// program order.
    ///
    /// A PNL starts at the outermost loop from which the nest is a chain
    /// of single-child loops ending in straight-line statements — exactly
    /// the sub-LITs the paper's exploration descends into.
    pub fn perfect_nests(&self) -> Vec<PerfectNest> {
        fn visit(nodes: &[Node], outer: &[(LoopId, u64)], out: &mut Vec<PerfectNest>) {
            for n in nodes {
                if let Node::Loop(l) = n {
                    if l.is_perfect_nest() {
                        out.push(PerfectNest::from_loop(l, outer));
                    } else {
                        let mut chain = outer.to_vec();
                        chain.push((l.id, l.tripcount));
                        visit(&l.body, &chain, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        visit(&self.roots, &[], &mut out);
        out
    }

    /// Renders the program as pseudo-C for diagnostics and examples.
    pub fn to_pseudo_c(&self) -> String {
        fn render(nodes: &[Node], depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            for n in nodes {
                match n {
                    Node::Loop(l) => {
                        out.push_str(&format!(
                            "{pad}for ({name} = 0; {name} < {tc}; {name}++) {{\n",
                            name = l.name,
                            tc = l.tripcount
                        ));
                        render(&l.body, depth + 1, out);
                        out.push_str(&format!("{pad}}}\n"));
                    }
                    Node::Stmt(s) => {
                        out.push_str(&format!("{pad}{s};\n"));
                    }
                }
            }
        }
        let mut out = format!("// {}\n", self.name);
        render(&self.roots, 0, &mut out);
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program {} ({} stmts)",
            self.name,
            self.all_stmts().len()
        )
    }
}

/// Stack-based builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use ptmap_ir::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new("scale");
/// let x = b.array("X", &[128]);
/// let i = b.open_loop("i", 128);
/// let v = b.mul(b.load(x, &[b.idx(i)]), b.constant(3));
/// b.store(x, &[b.idx(i)], v);
/// b.close_loop();
/// let p = b.finish();
/// assert_eq!(p.perfect_nests().len(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    stack: Vec<Loop>,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program {
                name: name.into(),
                arrays: Vec::new(),
                scalars: Vec::new(),
                roots: Vec::new(),
                next_loop: 0,
                next_stmt: 0,
            },
            stack: Vec::new(),
        }
    }

    /// Declares an array with 4-byte elements.
    pub fn array(&mut self, name: impl Into<String>, dims: &[u64]) -> ArrayId {
        self.array_with_elem_bytes(name, dims, 4)
    }

    /// Declares an array with an explicit element size.
    pub fn array_with_elem_bytes(
        &mut self,
        name: impl Into<String>,
        dims: &[u64],
        elem_bytes: u64,
    ) -> ArrayId {
        let id = ArrayId(self.program.arrays.len() as u32);
        self.program.arrays.push(ArrayDecl {
            id,
            name: name.into(),
            dims: dims.to_vec(),
            elem_bytes,
        });
        id
    }

    /// Declares a scalar variable.
    pub fn scalar(&mut self, name: impl Into<String>) -> ScalarId {
        let id = ScalarId(self.program.scalars.len() as u32);
        self.program.scalars.push(name.into());
        id
    }

    /// Opens a loop; subsequent statements/loops go into its body until
    /// [`close_loop`](Self::close_loop).
    pub fn open_loop(&mut self, name: impl Into<String>, tripcount: u64) -> LoopId {
        let (id, name) = self.program.fresh_loop_id(name);
        self.stack.push(Loop {
            id,
            name,
            tripcount,
            body: Vec::new(),
        });
        id
    }

    /// Closes the innermost open loop.
    ///
    /// # Panics
    ///
    /// Panics if no loop is open; use [`try_close_loop`](Self::try_close_loop)
    /// for a fallible variant.
    pub fn close_loop(&mut self) {
        self.try_close_loop().expect("close_loop with no open loop");
    }

    /// Closes the innermost open loop, reporting an error if none is open.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NoOpenLoop`] when the loop stack is empty.
    pub fn try_close_loop(&mut self) -> Result<(), IrError> {
        let l = self.stack.pop().ok_or(IrError::NoOpenLoop)?;
        match self.stack.last_mut() {
            Some(parent) => parent.body.push(Node::Loop(l)),
            None => self.program.roots.push(Node::Loop(l)),
        }
        Ok(())
    }

    /// The affine expression for a loop's index variable.
    pub fn idx(&self, l: LoopId) -> AffineExpr {
        AffineExpr::var(l)
    }

    /// A constant expression.
    pub fn constant(&self, c: i64) -> Expr {
        Expr::Const(c)
    }

    /// A load expression.
    pub fn load(&self, array: ArrayId, indices: &[AffineExpr]) -> Expr {
        Expr::Load(ArrayAccess::new(array, indices.to_vec()))
    }

    /// A scalar-read expression.
    pub fn read_scalar(&self, s: ScalarId) -> Expr {
        Expr::Scalar(s)
    }

    /// A binary operation expression.
    pub fn binary(&self, op: OpKind, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Addition.
    pub fn add(&self, a: Expr, b: Expr) -> Expr {
        self.binary(OpKind::Add, a, b)
    }

    /// Subtraction.
    pub fn sub(&self, a: Expr, b: Expr) -> Expr {
        self.binary(OpKind::Sub, a, b)
    }

    /// Multiplication.
    pub fn mul(&self, a: Expr, b: Expr) -> Expr {
        self.binary(OpKind::Mul, a, b)
    }

    /// Maximum.
    pub fn max(&self, a: Expr, b: Expr) -> Expr {
        self.binary(OpKind::Max, a, b)
    }

    /// A unary operation expression.
    pub fn unary(&self, op: OpKind, a: Expr) -> Expr {
        Expr::Unary(op, Box::new(a))
    }

    /// Appends an array-store statement at the current position.
    pub fn store(&mut self, array: ArrayId, indices: &[AffineExpr], value: Expr) -> StmtId {
        let target = LValue::Array(ArrayAccess::new(array, indices.to_vec()));
        self.push_stmt(target, value)
    }

    /// Appends a scalar-assignment statement at the current position.
    pub fn assign(&mut self, s: ScalarId, value: Expr) -> StmtId {
        self.push_stmt(LValue::Scalar(s), value)
    }

    fn push_stmt(&mut self, target: LValue, value: Expr) -> StmtId {
        let id = self.program.fresh_stmt_id();
        let stmt = Stmt { id, target, value };
        match self.stack.last_mut() {
            Some(l) => l.body.push(Node::Stmt(stmt)),
            None => self.program.roots.push(Node::Stmt(stmt)),
        }
        id
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if loops remain open; use [`try_finish`](Self::try_finish)
    /// for a fallible variant.
    pub fn finish(self) -> Program {
        self.try_finish().expect("finish with open loops")
    }

    /// Finishes the program, reporting an error if loops remain open.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnclosedLoops`] when loops are still open.
    pub fn try_finish(self) -> Result<Program, IrError> {
        if !self.stack.is_empty() {
            return Err(IrError::UnclosedLoops(self.stack.len()));
        }
        Ok(self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm(n: u64) -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[n, n]);
        let bb = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        let i = b.open_loop("i", n);
        let j = b.open_loop("j", n);
        let k = b.open_loop("k", n);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn gemm_is_single_perfect_nest() {
        let p = gemm(24);
        let nests = p.perfect_nests();
        assert_eq!(nests.len(), 1);
        assert_eq!(nests[0].loops.len(), 3);
        assert_eq!(nests[0].stmts.len(), 1);
        assert_eq!(nests[0].tripcounts, vec![24, 24, 24]);
    }

    #[test]
    fn imperfect_nest_splits_into_pnls() {
        // for i { S1; for j { S2 } }  ->  PNL is the j loop only
        let mut b = ProgramBuilder::new("imperfect");
        let x = b.array("X", &[16]);
        let y = b.array("Y", &[16, 16]);
        let i = b.open_loop("i", 16);
        b.store(x, &[b.idx(i)], b.constant(0));
        let j = b.open_loop("j", 16);
        let v = b.add(b.load(y, &[b.idx(i), b.idx(j)]), b.constant(1));
        b.store(y, &[b.idx(i), b.idx(j)], v);
        b.close_loop();
        b.close_loop();
        let p = b.finish();

        assert!(!p.find_loop(i).unwrap().is_perfect_nest());
        let nests = p.perfect_nests();
        assert_eq!(nests.len(), 1);
        assert_eq!(nests[0].loops, vec![j]);
        assert_eq!(nests[0].outer, vec![(i, 16)]);
    }

    #[test]
    fn two_sibling_nests() {
        let mut b = ProgramBuilder::new("siblings");
        let x = b.array("X", &[8]);
        let i = b.open_loop("i", 8);
        b.store(x, &[b.idx(i)], b.constant(1));
        b.close_loop();
        let j = b.open_loop("j", 8);
        b.store(x, &[b.idx(j)], b.constant(2));
        b.close_loop();
        let p = b.finish();
        assert_eq!(p.perfect_nests().len(), 2);
    }

    #[test]
    fn find_loop_and_tripcount() {
        let p = gemm(8);
        let nests = p.perfect_nests();
        let inner = *nests[0].loops.last().unwrap();
        assert_eq!(p.tripcount(inner).unwrap(), 8);
        assert!(p.tripcount(LoopId(99)).is_err());
    }

    #[test]
    fn builder_errors() {
        let mut b = ProgramBuilder::new("bad");
        assert_eq!(b.try_close_loop(), Err(IrError::NoOpenLoop));
        b.open_loop("i", 4);
        assert!(matches!(b.try_finish(), Err(IrError::UnclosedLoops(1))));
    }

    #[test]
    fn pseudo_c_renders() {
        let p = gemm(4);
        let s = p.to_pseudo_c();
        assert!(s.contains("for (i = 0; i < 4; i++)"));
        assert!(s.contains("for (k = 0; k < 4; k++)"));
    }

    #[test]
    fn program_display() {
        let p = gemm(4);
        assert_eq!(p.to_string(), "program gemm (1 stmts)");
    }
}
