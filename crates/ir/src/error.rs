//! Error type for IR construction and analysis.

use crate::id::{ArrayId, LoopId};
use std::fmt;

/// Errors produced while building or analyzing IR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A loop id was referenced but does not exist in the program.
    UnknownLoop(LoopId),
    /// An array id was referenced but does not exist in the program.
    UnknownArray(ArrayId),
    /// An array access has the wrong number of subscripts.
    SubscriptArity {
        /// The offending array.
        array: ArrayId,
        /// Subscripts supplied.
        got: usize,
        /// Dimensions declared.
        expected: usize,
    },
    /// `close_loop` was called with no loop open.
    NoOpenLoop,
    /// `finish` was called while loops were still open.
    UnclosedLoops(usize),
    /// The requested nest is not a perfectly nested loop.
    NotPerfectNest,
    /// An unroll factor vector refers to more loops than the nest has.
    BadUnrollArity {
        /// Loops in the nest.
        loops: usize,
        /// Factors supplied.
        factors: usize,
    },
    /// An unroll factor was zero.
    ZeroUnrollFactor,
    /// A tripcount of zero was supplied for a loop.
    ZeroTripcount(LoopId),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownLoop(l) => write!(f, "unknown loop {l}"),
            IrError::UnknownArray(a) => write!(f, "unknown array {a}"),
            IrError::SubscriptArity {
                array,
                got,
                expected,
            } => {
                write!(
                    f,
                    "array {array} accessed with {got} subscripts, declared with {expected}"
                )
            }
            IrError::NoOpenLoop => write!(f, "close_loop called with no loop open"),
            IrError::UnclosedLoops(n) => write!(f, "program finished with {n} unclosed loops"),
            IrError::NotPerfectNest => write!(f, "loop nest is not perfectly nested"),
            IrError::BadUnrollArity { loops, factors } => {
                write!(
                    f,
                    "unroll vector has {factors} factors for a nest of {loops} loops"
                )
            }
            IrError::ZeroUnrollFactor => write!(f, "unroll factor must be at least 1"),
            IrError::ZeroTripcount(l) => write!(f, "loop {l} has zero tripcount"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_trailing_punctuation() {
        let msgs = [
            IrError::UnknownLoop(LoopId(1)).to_string(),
            IrError::NoOpenLoop.to_string(),
            IrError::ZeroUnrollFactor.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
