//! Dataflow-graph construction for pipelined innermost loops.
//!
//! The DFG of a PNL's innermost body (optionally unrolled along any nest
//! dimensions) is what the modulo-scheduling mapper places onto the PE
//! array and what the GNN model consumes as `G_sw`.
//!
//! Modeling decisions (documented per DESIGN.md):
//!
//! * Affine address computation is folded into load/store nodes (CGRA
//!   load/store units include affine address generation), so a load is a
//!   single 2-cycle node rather than a chain of index ALU ops.
//! * Identical loads are CSE'd until a potentially aliasing store
//!   invalidates them — this is what makes unrolling profitable for
//!   kernels with input reuse (e.g. `A[i][k]` shared across an unrolled
//!   `j` dimension in GEMM).
//! * Associative scalar reductions are *reassociated*: each unroll
//!   instance keeps a private accumulator realized as a self-edge with
//!   iteration distance 1, the standard CGRA-compiler treatment that
//!   keeps RecMII at the operator latency.
//! * Memory-carried recurrences (store feeding a later load of the same
//!   element) become cross-iteration edges with their exact distance, so
//!   through-memory accumulation (GEMM with `k` innermost) correctly
//!   limits the initiation interval.

use crate::access::ArrayAccess;
use crate::affine::AffineExpr;
use crate::error::IrError;
use crate::expr::{Expr, LValue, Stmt};
use crate::id::{LoopId, NodeId, ScalarId};
use crate::nest::PerfectNest;
use crate::op::{OpClass, OpKind};
use crate::program::Program;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A node of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfgNode {
    /// Node identity (dense, equals the index into [`Dfg::nodes`]).
    pub id: NodeId,
    /// Operation performed.
    pub op: OpKind,
    /// The array access for load/store nodes.
    pub access: Option<ArrayAccess>,
    /// Immediate value for constant nodes.
    pub imm: Option<i64>,
    /// For live-in constants: the scalar parameter they materialize.
    #[serde(default)]
    pub scalar: Option<ScalarId>,
}

impl DfgNode {
    /// Latency of this node in cycles.
    pub fn latency(&self) -> u32 {
        self.op.latency()
    }
}

/// How an edge constrains the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// A value flows through registers/interconnect: must be routed.
    Data,
    /// A memory-carried or anti ordering constraint: the destination
    /// must not start before the source finishes (plus the iteration
    /// distance), but nothing travels on the interconnect — the data
    /// buffer carries it.
    Order,
}

/// A directed edge of the dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfgEdge {
    /// Producer node.
    pub src: NodeId,
    /// Consumer node.
    pub dst: NodeId,
    /// Iteration distance: 0 for intra-iteration dataflow, ≥ 1 for
    /// loop-carried recurrences (in iterations of the pipelined loop).
    pub dist: u32,
    /// Data (routed) or ordering-only constraint.
    pub kind: EdgeKind,
}

/// The dataflow graph of one pipelined loop body.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dfg {
    nodes: Vec<DfgNode>,
    edges: Vec<DfgEdge>,
}

impl Dfg {
    /// Creates an empty DFG.
    pub fn new() -> Self {
        Self::default()
    }

    /// The nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    /// The edges.
    pub fn edges(&self) -> &[DfgEdge] {
        &self.edges
    }

    /// Adds a node and returns its id.
    pub fn add_node(
        &mut self,
        op: OpKind,
        access: Option<ArrayAccess>,
        imm: Option<i64>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(DfgNode {
            id,
            op,
            access,
            imm,
            scalar: None,
        });
        id
    }

    /// Binds a live-in scalar parameter to a constant node.
    pub fn bind_scalar(&mut self, node: NodeId, scalar: ScalarId) {
        self.nodes[node.index()].scalar = Some(scalar);
    }

    /// Adds a data (routed) edge. Parallel edges are deduplicated.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, dist: u32) {
        self.add_edge_kind(src, dst, dist, EdgeKind::Data);
    }

    /// Adds an edge of an explicit kind. Parallel edges are deduplicated.
    pub fn add_edge_kind(&mut self, src: NodeId, dst: NodeId, dist: u32, kind: EdgeKind) {
        let e = DfgEdge {
            src,
            dst,
            dist,
            kind,
        };
        if !self.edges.contains(&e) {
            self.edges.push(e);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Predecessor edges of a node.
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = &DfgEdge> {
        self.edges.iter().filter(move |e| e.dst == n)
    }

    /// Successor edges of a node.
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = &DfgEdge> {
        self.edges.iter().filter(move |e| e.src == n)
    }

    /// In-degree (number of incoming edges).
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.preds(n).count()
    }

    /// Out-degree (number of outgoing edges).
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succs(n).count()
    }

    /// Maximum out-degree over all nodes (the `Max Fanout` GNN feature).
    pub fn max_fanout(&self) -> usize {
        (0..self.nodes.len())
            .map(|i| self.out_degree(NodeId(i as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Count of nodes per operation class.
    pub fn class_counts(&self) -> BTreeMap<OpClass, usize> {
        let mut out = BTreeMap::new();
        for n in &self.nodes {
            *out.entry(n.op.class()).or_insert(0) += 1;
        }
        out
    }

    /// Count of nodes per operation kind.
    pub fn op_counts(&self) -> BTreeMap<OpKind, usize> {
        let mut out = BTreeMap::new();
        for n in &self.nodes {
            *out.entry(n.op).or_insert(0) += 1;
        }
        out
    }

    /// ASAP start times over intra-iteration (distance-0) edges.
    ///
    /// # Panics
    ///
    /// Panics if the distance-0 subgraph has a cycle (a malformed DFG;
    /// [`validate`](Self::validate) catches this).
    pub fn asap(&self) -> Vec<u32> {
        let order = self
            .topo_order_dist0()
            .expect("dist-0 subgraph must be acyclic");
        let mut asap = vec![0u32; self.nodes.len()];
        for &n in &order {
            for e in self
                .edges
                .iter()
                .filter(|e| e.dist == 0 && e.dst.index() == n)
            {
                let src = e.src.index();
                let cand = asap[src] + self.nodes[src].latency();
                asap[n] = asap[n].max(cand);
            }
        }
        asap
    }

    /// ALAP start times against the ASAP schedule length.
    pub fn alap(&self) -> Vec<u32> {
        let asap = self.asap();
        let horizon = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| asap[i] + n.latency())
            .max()
            .unwrap_or(0);
        let order = self
            .topo_order_dist0()
            .expect("dist-0 subgraph must be acyclic");
        let mut alap: Vec<u32> = self
            .nodes
            .iter()
            .map(|n| horizon.saturating_sub(n.latency()))
            .collect();
        for &n in order.iter().rev() {
            for e in self
                .edges
                .iter()
                .filter(|e| e.dist == 0 && e.src.index() == n)
            {
                let cand = alap[e.dst.index()].saturating_sub(self.nodes[n].latency());
                alap[n] = alap[n].min(cand);
            }
        }
        alap
    }

    /// Length of the critical path (cycles) through distance-0 edges,
    /// including the latency of the last node.
    pub fn critical_path(&self) -> u32 {
        let asap = self.asap();
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| asap[i] + n.latency())
            .max()
            .unwrap_or(0)
    }

    /// Topological order of the distance-0 subgraph, or `None` on a cycle.
    pub fn topo_order_dist0(&self) -> Option<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in self.edges.iter().filter(|e| e.dist == 0) {
            indeg[e.dst.index()] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for e in self
                .edges
                .iter()
                .filter(|e| e.dist == 0 && e.src.index() == v)
            {
                indeg[e.dst.index()] -= 1;
                if indeg[e.dst.index()] == 0 {
                    queue.push(e.dst.index());
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Checks structural invariants: edge endpoints in range, positive
    /// self-edge distances, acyclic distance-0 subgraph.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NotPerfectNest`] never; this method reports
    /// violations as a list of human-readable strings instead so callers
    /// can aggregate them.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for e in &self.edges {
            if e.src.index() >= self.nodes.len() || e.dst.index() >= self.nodes.len() {
                problems.push(format!("edge {}->{} out of range", e.src, e.dst));
            }
            if e.src == e.dst && e.dist == 0 {
                problems.push(format!("zero-distance self edge on {}", e.src));
            }
        }
        if self.topo_order_dist0().is_none() {
            problems.push("distance-0 subgraph has a cycle".to_string());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

/// Builds the DFG of a PNL's innermost body with optional multi-dimensional
/// unrolling.
///
/// `unroll` maps nest loops to factors (absent loops keep factor 1). The
/// replication order is outermost-unrolled-first, matching source-level
/// unroll-and-jam.
///
/// # Errors
///
/// Returns [`IrError::ZeroUnrollFactor`] for zero factors and
/// [`IrError::BadUnrollArity`] when a factor refers to a loop outside the
/// nest.
pub fn build_dfg(
    program: &Program,
    nest: &PerfectNest,
    unroll: &[(LoopId, u32)],
) -> Result<Dfg, IrError> {
    for &(l, f) in unroll {
        if f == 0 {
            return Err(IrError::ZeroUnrollFactor);
        }
        if nest.position(l).is_none() {
            return Err(IrError::BadUnrollArity {
                loops: nest.loops.len(),
                factors: unroll.len(),
            });
        }
    }
    let _ = program; // array decls only matter to downstream consumers

    // Unrolled loops in nest order with their factors.
    let mut dims: Vec<(LoopId, u32)> = Vec::new();
    for &l in &nest.loops {
        let f = unroll
            .iter()
            .find(|&&(ul, _)| ul == l)
            .map(|&(_, f)| f)
            .unwrap_or(1);
        if f > 1 {
            dims.push((l, f));
        }
    }

    let mut builder = DfgBuilder::default();

    // Pre-scan: which scalars are written anywhere in the body.
    let written: Vec<ScalarId> = nest
        .stmts
        .iter()
        .filter_map(|s| match &s.target {
            LValue::Scalar(sc) => Some(*sc),
            _ => None,
        })
        .collect();
    builder.written_scalars = written;

    // Enumerate offset combinations in lexicographic order.
    let total: u64 = dims.iter().map(|&(_, f)| f as u64).product();
    for combo in 0..total.max(1) {
        let mut rem = combo;
        let mut offsets: Vec<(LoopId, u32, u32)> = Vec::new(); // (loop, factor, offset)
        for &(l, f) in dims.iter().rev() {
            offsets.push((l, f, (rem % f as u64) as u32));
            rem /= f as u64;
        }
        offsets.reverse();
        for stmt in &nest.stmts {
            let mut inst = stmt.clone();
            for &(l, f, off) in &offsets {
                // i := f*i + off
                let repl = AffineExpr::var(l) * f as i64 + AffineExpr::constant(off as i64);
                inst = inst.substitute(l, &repl);
            }
            builder.emit_stmt(&inst);
        }
    }
    builder.patch_pending();
    builder.add_memory_edges(nest.pipelined_loop());
    Ok(builder.dfg)
}

#[derive(Default)]
struct DfgBuilder {
    dfg: Dfg,
    /// CSE cache of loads, keyed by exact access. Invalidated per array by
    /// stores.
    load_cache: HashMap<ArrayAccess, NodeId>,
    const_cache: HashMap<i64, NodeId>,
    index_cache: HashMap<LoopId, NodeId>,
    scalar_env: HashMap<ScalarId, NodeId>,
    /// Scalar reads that occurred before any write in body order:
    /// (scalar, consumer). Patched at the end to the last write (distance
    /// 1 recurrence) or a live-in constant node.
    pending_reads: Vec<(ScalarId, NodeId)>,
    written_scalars: Vec<ScalarId>,
    stores: Vec<NodeId>,
    loads: Vec<NodeId>,
}

impl DfgBuilder {
    fn emit_stmt(&mut self, stmt: &Stmt) {
        // Reassociated scalar reduction: `s = s ⊕ x` becomes an ⊕ node
        // with a distance-1 self edge; no separate read of `s`.
        if stmt.is_reduction() {
            if let (LValue::Scalar(s), Expr::Binary(op, a, b)) = (&stmt.target, &stmt.value) {
                let other = if matches!(**a, Expr::Scalar(x) if x == *s) {
                    b
                } else if matches!(**b, Expr::Scalar(x) if x == *s) {
                    a
                } else {
                    unreachable!("is_reduction guarantees an operand reads the target")
                };
                let x = self.emit_expr(other);
                let acc = self.dfg.add_node(*op, None, None);
                self.dfg.add_edge(x, acc, 0);
                self.dfg.add_edge(acc, acc, 1);
                self.scalar_env.insert(*s, acc);
                return;
            }
        }
        let value = self.emit_expr(&stmt.value);
        match &stmt.target {
            LValue::Scalar(s) => {
                self.scalar_env.insert(*s, value);
            }
            LValue::Array(acc) => {
                let st = self.dfg.add_node(OpKind::Store, Some(acc.clone()), None);
                self.dfg.add_edge(value, st, 0);
                self.stores.push(st);
                // Invalidate cached loads of this array (conservative
                // may-alias within the body).
                self.load_cache.retain(|k, _| k.array != acc.array);
            }
        }
    }

    fn emit_expr(&mut self, e: &Expr) -> NodeId {
        match e {
            Expr::Const(c) => {
                if let Some(&n) = self.const_cache.get(c) {
                    return n;
                }
                let n = self.dfg.add_node(OpKind::Const, None, Some(*c));
                self.const_cache.insert(*c, n);
                n
            }
            Expr::Index(l) => {
                if let Some(&n) = self.index_cache.get(l) {
                    return n;
                }
                // Loop counters are produced by the controller; model as a
                // constant-class node occupying an issue slot once.
                let n = self.dfg.add_node(OpKind::Const, None, None);
                self.index_cache.insert(*l, n);
                n
            }
            Expr::Scalar(s) => {
                if let Some(&n) = self.scalar_env.get(s) {
                    n
                } else if self.written_scalars.contains(s) {
                    // Read-before-write: loop-carried; patched later.
                    let n = self.dfg.add_node(OpKind::Route, None, None);
                    self.pending_reads.push((*s, n));
                    n
                } else {
                    // Live-in parameter: materialized once.
                    let n = self.dfg.add_node(OpKind::Const, None, None);
                    self.dfg.bind_scalar(n, *s);
                    self.scalar_env.insert(*s, n);
                    n
                }
            }
            Expr::Load(acc) => {
                if let Some(&n) = self.load_cache.get(acc) {
                    return n;
                }
                let n = self.dfg.add_node(OpKind::Load, Some(acc.clone()), None);
                self.load_cache.insert(acc.clone(), n);
                self.loads.push(n);
                n
            }
            Expr::Unary(op, a) => {
                let an = self.emit_expr(a);
                let n = self.dfg.add_node(*op, None, None);
                self.dfg.add_edge(an, n, 0);
                n
            }
            Expr::Binary(op, a, b) => {
                let an = self.emit_expr(a);
                let bn = self.emit_expr(b);
                let n = self.dfg.add_node(*op, None, None);
                self.dfg.add_edge(an, n, 0);
                self.dfg.add_edge(bn, n, 0);
                n
            }
        }
    }

    fn patch_pending(&mut self) {
        for (s, consumer) in std::mem::take(&mut self.pending_reads) {
            if let Some(&producer) = self.scalar_env.get(&s) {
                // Value flows from the last write of the previous iteration.
                self.dfg.add_edge(producer, consumer, 1);
            }
            // A scalar read with no write at all was already handled as a
            // live-in, so `scalar_env` always has an entry here.
        }
    }

    /// Adds memory-carried edges between stores and loads of the same
    /// element across iterations of the pipelined loop `p`.
    fn add_memory_edges(&mut self, p: LoopId) {
        let stores = self.stores.clone();
        let loads = self.loads.clone();
        for &st in &stores {
            let sa = self.dfg.nodes[st.index()]
                .access
                .clone()
                .expect("store has access");
            for &ld in &loads {
                let la = self.dfg.nodes[ld.index()]
                    .access
                    .clone()
                    .expect("load has access");
                if la.array != sa.array || !la.is_uniform_with(&sa) {
                    continue;
                }
                // Solve e_store(t) == e_load(t + d) per dimension.
                let mut d: Option<i64> = None;
                let mut same_everywhere = true;
                let mut feasible = true;
                for (es, el) in sa.indices.iter().zip(&la.indices) {
                    let diff = es.clone() - el.clone(); // constant by uniformity
                    let k = diff.constant_term();
                    let c = el.coeff(p);
                    if c == 0 {
                        if k != 0 {
                            feasible = false;
                            break;
                        }
                    } else {
                        same_everywhere = false;
                        if k % c != 0 {
                            feasible = false;
                            break;
                        }
                        let this_d = k / c;
                        match d {
                            None => d = Some(this_d),
                            Some(prev) if prev != this_d => {
                                feasible = false;
                                break;
                            }
                            _ => {}
                        }
                    }
                }
                if !feasible {
                    continue;
                }
                // Same address every iteration (e.g. an accumulator cell
                // read-modify-written several times per unrolled body):
                // program order within the iteration, distance 1 across.
                let dist = if same_everywhere {
                    if st.index() < ld.index() {
                        0
                    } else {
                        1
                    }
                } else {
                    d.unwrap_or(0)
                };
                match dist.cmp(&0) {
                    std::cmp::Ordering::Greater => {
                        self.dfg.add_edge_kind(st, ld, dist as u32, EdgeKind::Order);
                    }
                    std::cmp::Ordering::Equal => {
                        // Same iteration: order by emission (store first ->
                        // forwardable flow; load first -> anti ordering).
                        if st.index() < ld.index() {
                            self.dfg.add_edge_kind(st, ld, 0, EdgeKind::Order);
                        } else {
                            self.dfg.add_edge_kind(ld, st, 0, EdgeKind::Order);
                        }
                    }
                    std::cmp::Ordering::Less => {
                        // Load of a *later* element than the store writes:
                        // anti dependence across iterations.
                        self.dfg
                            .add_edge_kind(ld, st, (-dist) as u32, EdgeKind::Order);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn gemm(n: u64) -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[n, n]);
        let bb = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        let i = b.open_loop("i", n);
        let j = b.open_loop("j", n);
        let k = b.open_loop("k", n);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn gemm_base_dfg() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        // 3 loads + mul + add + store
        assert_eq!(dfg.len(), 6);
        dfg.validate().unwrap();
        // Through-memory accumulation: store C -> load C with dist 1.
        let has_mem_rec = dfg
            .edges()
            .iter()
            .any(|e| e.dist == 1 && dfg.nodes()[e.src.index()].op == OpKind::Store);
        assert!(has_mem_rec, "edges: {:?}", dfg.edges());
    }

    #[test]
    fn gemm_unroll_replicates_and_cses() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        let dfg = build_dfg(&p, &nest, &[(i, 2), (j, 2)]).unwrap();
        // Loads of A[i][k] shared across j instances: 2 unique A loads,
        // 2 unique B loads, 4 C loads, 4 muls, 4 adds, 4 stores = 20.
        let counts = dfg.op_counts();
        assert_eq!(counts[&OpKind::Load], 8);
        assert_eq!(counts[&OpKind::Mul], 4);
        assert_eq!(counts[&OpKind::Add], 4);
        assert_eq!(counts[&OpKind::Store], 4);
        dfg.validate().unwrap();
    }

    #[test]
    fn reduction_becomes_self_edge() {
        let mut b = ProgramBuilder::new("red");
        let a = b.array("A", &[64]);
        let s = b.scalar("s");
        let i = b.open_loop("i", 64);
        let v = b.add(b.read_scalar(s), b.load(a, &[b.idx(i)]));
        b.assign(s, v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        // load + add, with a self edge dist 1 on the add.
        assert_eq!(dfg.len(), 2);
        assert!(dfg.edges().iter().any(|e| e.src == e.dst && e.dist == 1));
        dfg.validate().unwrap();
    }

    #[test]
    fn unrolled_reduction_has_independent_accumulators() {
        let mut b = ProgramBuilder::new("red");
        let a = b.array("A", &[64]);
        let s = b.scalar("s");
        let i = b.open_loop("i", 64);
        let v = b.add(b.read_scalar(s), b.load(a, &[b.idx(i)]));
        b.assign(s, v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[(nest.loops[0], 4)]).unwrap();
        // 4 loads + 4 accumulators; each accumulator has its own self edge.
        let self_edges = dfg
            .edges()
            .iter()
            .filter(|e| e.src == e.dst && e.dist == 1)
            .count();
        assert_eq!(self_edges, 4);
        dfg.validate().unwrap();
    }

    #[test]
    fn stencil_memory_distance() {
        // A[i] = A[i-2] + 1  -> store A[i] feeds load A[i-2] two
        // iterations later: edge dist 2.
        let mut b = ProgramBuilder::new("st");
        let a = b.array("A", &[64]);
        let i = b.open_loop("i", 64);
        let v = b.add(
            b.load(a, &[b.idx(i) - AffineExpr::constant(2)]),
            b.constant(1),
        );
        b.store(a, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        assert!(dfg.edges().iter().any(|e| e.dist == 2));
        dfg.validate().unwrap();
    }

    #[test]
    fn asap_alap_consistent() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let asap = dfg.asap();
        let alap = dfg.alap();
        for (i, (&a, &l)) in asap.iter().zip(&alap).enumerate() {
            assert!(a <= l, "node {i}: asap {a} > alap {l}");
        }
        assert!(dfg.critical_path() >= 1);
    }

    #[test]
    fn zero_unroll_factor_rejected() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let err = build_dfg(&p, &nest, &[(nest.loops[0], 0)]).unwrap_err();
        assert_eq!(err, IrError::ZeroUnrollFactor);
    }

    #[test]
    fn foreign_loop_rejected() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let err = build_dfg(&p, &nest, &[(LoopId(77), 2)]).unwrap_err();
        assert!(matches!(err, IrError::BadUnrollArity { .. }));
    }

    #[test]
    fn max_fanout_counts() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        let dfg = build_dfg(&p, &nest, &[(i, 1), (j, 4)]).unwrap();
        // A[i][k] load feeds 4 muls.
        assert!(dfg.max_fanout() >= 4);
    }

    use crate::affine::AffineExpr;
}
