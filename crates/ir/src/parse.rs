//! A C-like textual front-end for the `#pragma PTMAP` region.
//!
//! The paper's input is a C/C++ program with the mapped region wrapped in
//! `#pragma PTMAP ... #pragma ENDMAP`. This module parses exactly that
//! fragment — array declarations, rectangular `for` loops, and
//! assignment statements over affine subscripts — into a [`Program`]:
//!
//! ```
//! let src = r#"
//!     int A[64][64]; int B[64][64]; int C[64][64];
//!     #pragma PTMAP
//!     for (i = 0; i < 64; i++) {
//!         for (j = 0; j < 64; j++) {
//!             for (k = 0; k < 64; k++) {
//!                 C[i][j] = C[i][j] + A[i][k] * B[k][j];
//!             }
//!         }
//!     }
//!     #pragma ENDMAP
//! "#;
//! let program = ptmap_ir::parse::parse_program("gemm", src)?;
//! assert_eq!(program.perfect_nests().len(), 1);
//! # Ok::<(), ptmap_ir::parse::ParseError>(())
//! ```
//!
//! Grammar (EBNF-ish):
//!
//! ```text
//! program   := { decl } [ "#pragma PTMAP" ] { item } [ "#pragma ENDMAP" ]
//! decl      := "int" ident { "[" number "]" } ";"
//! item      := loop | stmt
//! loop      := "for" "(" ident "=" "0" ";" ident "<" number ";" ident "++" ")"
//!              "{" { item } "}"
//! stmt      := lvalue "=" expr ";"
//! lvalue    := ident { "[" affine "]" }        (no subscripts = scalar)
//! expr      := term { ("+" | "-" | "&" | "|" | "^") term }
//! term      := factor { ("*" | "/" | "<<" | ">>") factor }
//! factor    := number | lvalue-use | "(" expr ")"
//!            | ("min" | "max") "(" expr "," expr ")"
//! affine    := affine-term { ("+" | "-") affine-term }
//! affine-term := [number "*"] ident | number
//! ```

use crate::affine::AffineExpr;
use crate::expr::Expr;
use crate::id::{ArrayId, LoopId, ScalarId};
use crate::op::OpKind;
use crate::program::{Program, ProgramBuilder};
use std::collections::HashMap;
use std::fmt;

/// Errors produced by the textual front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Token position (index into the token stream).
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a C-like source fragment into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending token.
pub fn parse_program(name: &str, src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let p = Parser {
        tokens,
        pos: 0,
        builder: ProgramBuilder::new(name),
        arrays: HashMap::new(),
        scalars: HashMap::new(),
        loops: Vec::new(),
    };
    p.program()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(i64),
    Punct(&'static str),
    Pragma(String),
}

fn lex(src: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '#' => {
                // #pragma <word>
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let line = &src[start..i];
                let word = line
                    .trim_start_matches('#')
                    .trim()
                    .strip_prefix("pragma")
                    .map(str::trim)
                    .unwrap_or("");
                out.push(Tok::Pragma(word.to_string()));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i].parse().map_err(|_| ParseError {
                    message: format!("bad number {}", &src[start..i]),
                    position: out.len(),
                })?;
                out.push(Tok::Number(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            _ => {
                let two = src.get(i..i + 2).unwrap_or("");
                let tok = match two {
                    "++" => Some("++"),
                    "<<" => Some("<<"),
                    ">>" => Some(">>"),
                    _ => None,
                };
                if let Some(t) = tok {
                    out.push(Tok::Punct(t));
                    i += 2;
                    continue;
                }
                let one = match c {
                    '(' => "(",
                    ')' => ")",
                    '{' => "{",
                    '}' => "}",
                    '[' => "[",
                    ']' => "]",
                    ';' => ";",
                    ',' => ",",
                    '=' => "=",
                    '<' => "<",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '&' => "&",
                    '|' => "|",
                    '^' => "^",
                    other => {
                        return Err(ParseError {
                            message: format!("unexpected character {other:?}"),
                            position: out.len(),
                        })
                    }
                };
                out.push(Tok::Punct(one));
                i += 1;
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
    builder: ProgramBuilder,
    arrays: HashMap<String, ArrayId>,
    scalars: HashMap<String, ScalarId>,
    loops: Vec<(String, LoopId)>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Punct(q)) if q == p => Ok(()),
            other => Err(self.err(format!("expected {p:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<i64, ParseError> {
        match self.bump() {
            Some(Tok::Number(n)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn program(mut self) -> Result<Program, ParseError> {
        // Declarations before the pragma.
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if s == "int" => self.decl()?,
                Some(Tok::Pragma(w)) if w.eq_ignore_ascii_case("PTMAP") => {
                    self.bump();
                    break;
                }
                Some(Tok::Ident(s)) if s == "for" => break, // pragma optional
                None => break,
                other => return Err(self.err(format!("expected declaration, found {other:?}"))),
            }
        }
        // Items until ENDMAP / EOF.
        loop {
            match self.peek() {
                None => break,
                Some(Tok::Pragma(w)) if w.eq_ignore_ascii_case("ENDMAP") => {
                    self.bump();
                    break;
                }
                _ => self.item()?,
            }
        }
        self.builder.try_finish().map_err(|e| ParseError {
            message: e.to_string(),
            position: self.pos,
        })
    }

    fn decl(&mut self) -> Result<(), ParseError> {
        self.expect_ident()?; // int
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.peek() == Some(&Tok::Punct("[")) {
            self.bump();
            let n = self.expect_number()?;
            if n <= 0 {
                return Err(self.err("array dimension must be positive"));
            }
            dims.push(n as u64);
            self.expect_punct("]")?;
        }
        self.expect_punct(";")?;
        if dims.is_empty() {
            let id = self.builder.scalar(name.clone());
            self.scalars.insert(name, id);
        } else {
            let id = self.builder.array(name.clone(), &dims);
            self.arrays.insert(name, id);
        }
        Ok(())
    }

    fn item(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "for" => self.for_loop(),
            Some(Tok::Ident(_)) => self.stmt(),
            other => Err(self.err(format!("expected statement or loop, found {other:?}"))),
        }
    }

    fn for_loop(&mut self) -> Result<(), ParseError> {
        self.bump(); // for
        self.expect_punct("(")?;
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let lo = self.expect_number()?;
        if lo != 0 {
            return Err(self.err("loops must be normalized to start at 0"));
        }
        self.expect_punct(";")?;
        let var2 = self.expect_ident()?;
        if var2 != var {
            return Err(self.err("loop condition must test the loop variable"));
        }
        self.expect_punct("<")?;
        let bound = self.expect_number()?;
        if bound <= 0 {
            return Err(self.err("loop bound must be positive"));
        }
        self.expect_punct(";")?;
        let var3 = self.expect_ident()?;
        if var3 != var {
            return Err(self.err("loop increment must use the loop variable"));
        }
        self.expect_punct("++")?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let id = self.builder.open_loop(var.clone(), bound as u64);
        self.loops.push((var, id));
        while self.peek() != Some(&Tok::Punct("}")) {
            if self.peek().is_none() {
                return Err(self.err("unterminated loop body"));
            }
            self.item()?;
        }
        self.bump(); // }
        self.loops.pop();
        self.builder.try_close_loop().map_err(|e| ParseError {
            message: e.to_string(),
            position: self.pos,
        })
    }

    fn lookup_loop(&self, name: &str) -> Option<LoopId> {
        self.loops
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }

    fn stmt(&mut self) -> Result<(), ParseError> {
        let name = self.expect_ident()?;
        if let Some(&array) = self.arrays.get(&name) {
            let indices = self.subscripts()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            self.builder.store(array, &indices, value);
            Ok(())
        } else {
            // Scalar assignment (declare on first use).
            let id = *self
                .scalars
                .entry(name.clone())
                .or_insert_with(|| self.builder.scalar(name));
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            self.builder.assign(id, value);
            Ok(())
        }
    }

    fn subscripts(&mut self) -> Result<Vec<AffineExpr>, ParseError> {
        let mut out = Vec::new();
        while self.peek() == Some(&Tok::Punct("[")) {
            self.bump();
            out.push(self.affine()?);
            self.expect_punct("]")?;
        }
        if out.is_empty() {
            return Err(self.err("expected at least one subscript"));
        }
        Ok(out)
    }

    fn affine(&mut self) -> Result<AffineExpr, ParseError> {
        let mut e = self.affine_term(1)?;
        loop {
            match self.peek() {
                Some(Tok::Punct("+")) => {
                    self.bump();
                    e = e + self.affine_term(1)?;
                }
                Some(Tok::Punct("-")) => {
                    self.bump();
                    e = e + self.affine_term(-1)?;
                }
                _ => return Ok(e),
            }
        }
    }

    fn affine_term(&mut self, sign: i64) -> Result<AffineExpr, ParseError> {
        match self.bump() {
            Some(Tok::Number(n)) => {
                if self.peek() == Some(&Tok::Punct("*")) {
                    self.bump();
                    let v = self.expect_ident()?;
                    let l = self
                        .lookup_loop(&v)
                        .ok_or_else(|| self.err(format!("unknown loop variable {v}")))?;
                    Ok(AffineExpr::var(l) * (sign * n))
                } else {
                    Ok(AffineExpr::constant(sign * n))
                }
            }
            Some(Tok::Ident(v)) => {
                let l = self
                    .lookup_loop(&v)
                    .ok_or_else(|| self.err(format!("unknown loop variable {v}")))?;
                let mut e = AffineExpr::var(l);
                if self.peek() == Some(&Tok::Punct("*")) {
                    self.bump();
                    let n = self.expect_number()?;
                    e = e * n;
                }
                Ok(e * sign)
            }
            other => Err(self.err(format!("expected affine term, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("+")) => OpKind::Add,
                Some(Tok::Punct("-")) => OpKind::Sub,
                Some(Tok::Punct("&")) => OpKind::And,
                Some(Tok::Punct("|")) => OpKind::Or,
                Some(Tok::Punct("^")) => OpKind::Xor,
                _ => return Ok(e),
            };
            self.bump();
            let rhs = self.term()?;
            e = self.builder.binary(op, e, rhs);
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("*")) => OpKind::Mul,
                Some(Tok::Punct("/")) => OpKind::Div,
                Some(Tok::Punct("<<")) => OpKind::Shl,
                Some(Tok::Punct(">>")) => OpKind::Shr,
                _ => return Ok(e),
            };
            self.bump();
            let rhs = self.factor()?;
            e = self.builder.binary(op, e, rhs);
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.bump();
                Ok(self.builder.constant(n))
            }
            Some(Tok::Punct("(")) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "min" || name == "max" => {
                self.bump();
                self.expect_punct("(")?;
                let a = self.expr()?;
                self.expect_punct(",")?;
                let b = self.expr()?;
                self.expect_punct(")")?;
                let op = if name == "min" {
                    OpKind::Min
                } else {
                    OpKind::Max
                };
                Ok(self.builder.binary(op, a, b))
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                if let Some(&array) = self.arrays.get(&name) {
                    let indices = self.subscripts()?;
                    Ok(self.builder.load(array, &indices))
                } else if let Some(&s) = self.scalars.get(&name) {
                    Ok(self.builder.read_scalar(s))
                } else if self.lookup_loop(&name).is_some() {
                    let l = self.lookup_loop(&name).expect("checked");
                    Ok(Expr::Index(l))
                } else {
                    // Unseen scalar read: a live-in parameter.
                    let id = self.builder.scalar(name.clone());
                    self.scalars.insert(name, id);
                    Ok(self.builder.read_scalar(id))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gemm() {
        let src = r#"
            int A[8][8]; int B[8][8]; int C[8][8];
            #pragma PTMAP
            for (i = 0; i < 8; i++) {
                for (j = 0; j < 8; j++) {
                    for (k = 0; k < 8; k++) {
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
                    }
                }
            }
            #pragma ENDMAP
        "#;
        let p = parse_program("gemm", src).unwrap();
        let nests = p.perfect_nests();
        assert_eq!(nests.len(), 1);
        assert_eq!(nests[0].tripcounts, vec![8, 8, 8]);
        assert!(nests[0].stmts[0].is_reduction());
    }

    #[test]
    fn parses_stencil_offsets_and_strides() {
        let src = r#"
            int A[64]; int B[64];
            for (i = 0; i < 31; i++) {
                B[2*i] = A[i + 1] - A[i];
            }
        "#;
        let p = parse_program("stencil", src).unwrap();
        let nest = p.perfect_nests().remove(0);
        let stmt = &nest.stmts[0];
        let (reads, write) = stmt.accesses();
        assert_eq!(write.unwrap().indices[0].coeff(nest.loops[0]), 2);
        assert_eq!(reads[0].indices[0].constant_term(), 1);
    }

    #[test]
    fn parses_scalar_reduction() {
        let src = r#"
            int A[128];
            for (i = 0; i < 128; i++) {
                s = s + A[i];
            }
        "#;
        let p = parse_program("red", src).unwrap();
        assert!(p.perfect_nests()[0].stmts[0].is_reduction());
    }

    #[test]
    fn parses_min_max_and_shifts() {
        let src = r#"
            int A[16]; int B[16];
            for (i = 0; i < 16; i++) {
                B[i] = max(A[i], 3) << 1;
            }
        "#;
        let p = parse_program("mm", src).unwrap();
        let dfg = crate::dfg::build_dfg(&p, &p.perfect_nests()[0], &[]).unwrap();
        assert!(dfg.nodes().iter().any(|n| n.op == OpKind::Max));
        assert!(dfg.nodes().iter().any(|n| n.op == OpKind::Shl));
    }

    #[test]
    fn rejects_unnormalized_loop() {
        let src = "int A[8]; for (i = 1; i < 8; i++) { A[i] = 0; }";
        assert!(parse_program("bad", src).is_err());
    }

    #[test]
    fn rejects_unknown_loop_variable_in_subscript() {
        let src = "int A[8]; for (i = 0; i < 8; i++) { A[q] = 0; }";
        let err = parse_program("bad", src).unwrap_err();
        assert!(err.message.contains("unknown loop variable"));
    }

    #[test]
    fn rejects_unterminated_body() {
        let src = "int A[8]; for (i = 0; i < 8; i++) { A[i] = 0;";
        assert!(parse_program("bad", src).is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let src = r#"
            int A[8]; // input
            for (i = 0; i < 8; i++) { // hot loop
                A[i] = A[i] + 1;
            }
        "#;
        assert!(parse_program("c", src).is_ok());
    }

    #[test]
    fn pragma_is_optional_but_respected() {
        let with = parse_program(
            "p",
            "int A[4];\n#pragma PTMAP\nfor (i = 0; i < 4; i++) { A[i] = 1; }\n#pragma ENDMAP",
        )
        .unwrap();
        let without =
            parse_program("p", "int A[4];\nfor (i = 0; i < 4; i++) { A[i] = 1; }").unwrap();
        assert_eq!(with.perfect_nests(), without.perfect_nests());
    }
}
