//! Data-dependence analysis on affine loop nests.
//!
//! For *uniform* dependences — access pairs whose subscripts share the same
//! loop coefficients and differ only in constants, which covers the
//! PolyBench/image/DL kernels of the paper's evaluation — the analysis
//! produces exact distance vectors. Anything else degrades conservatively
//! to an unknown (`Star`) direction that blocks reordering-style
//! transformations, mirroring how PT-Map's PLuTo front-end only applies
//! transformations it can prove legal.

use crate::access::ArrayAccess;
use crate::expr::{LValue, Stmt};
use crate::id::{ArrayId, LoopId, ScalarId, StmtId};
use crate::program::{Node, Program};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Dependence distance (`iteration(dst) - iteration(src)`) on one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Distance {
    /// Exactly this many iterations apart.
    Exact(i64),
    /// Carried forward by one or more iterations (distance ≥ 1).
    Plus,
    /// Unknown direction.
    Star,
}

impl Distance {
    /// Whether the component is known to be zero.
    pub fn is_zero(self) -> bool {
        self == Distance::Exact(0)
    }

    /// Whether the component is known to be strictly positive.
    pub fn is_positive(self) -> bool {
        matches!(self, Distance::Exact(d) if d > 0) || self == Distance::Plus
    }

    /// Whether the component could be negative.
    pub fn may_be_negative(self) -> bool {
        matches!(self, Distance::Star) || matches!(self, Distance::Exact(d) if d < 0)
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distance::Exact(d) => write!(f, "{d}"),
            Distance::Plus => write!(f, "+"),
            Distance::Star => write!(f, "*"),
        }
    }
}

/// Classification of a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Write then read (true dependence).
    Flow,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
}

/// A single data dependence between two statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependence {
    /// Source statement (executes first).
    pub src: StmtId,
    /// Destination statement (executes later, depends on `src`).
    pub dst: StmtId,
    /// The array carrying the dependence, or `None` for scalar deps.
    pub array: Option<ArrayId>,
    /// The scalar carrying the dependence, when `array` is `None`.
    pub scalar: Option<ScalarId>,
    /// Kind of the dependence.
    pub kind: DepKind,
    /// Common enclosing loops, outermost first.
    pub loops: Vec<LoopId>,
    /// One distance component per common loop.
    pub distance: Vec<Distance>,
    /// Whether the dependence stems from an associative reduction
    /// (reordering-tolerant; still constrains the pipeline recurrence).
    pub is_reduction: bool,
}

impl Dependence {
    /// Distance component for a given loop, if the loop is common.
    pub fn distance_on(&self, l: LoopId) -> Option<Distance> {
        self.loops
            .iter()
            .position(|&x| x == l)
            .map(|i| self.distance[i])
    }

    /// Whether the dependence is carried by (first nonzero at) loop `l`
    /// or could be.
    pub fn may_be_carried_by(&self, l: LoopId) -> bool {
        for (&lp, &d) in self.loops.iter().zip(&self.distance) {
            if lp == l {
                return !d.is_zero();
            }
            if d.is_positive() || d.may_be_negative() {
                return false; // carried (or killed) at an outer level
            }
        }
        false
    }
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        };
        write!(f, "{} -> {} [{kind}] (", self.src, self.dst)?;
        for (i, d) in self.distance.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")?;
        if self.is_reduction {
            write!(f, " [reduction]")?;
        }
        Ok(())
    }
}

/// All dependences of a program, with legality queries used by the
/// transformation engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DependenceSet {
    deps: Vec<Dependence>,
}

impl DependenceSet {
    /// Runs the dependence analysis over a whole program.
    pub fn analyze(program: &Program) -> Self {
        let mut ctx = AnalysisCtx::default();
        collect_stmts(&program.roots, &mut Vec::new(), &mut ctx);
        let mut deps = Vec::new();
        for i in 0..ctx.stmts.len() {
            for j in i..ctx.stmts.len() {
                analyze_pair(&ctx, i, j, &mut deps);
            }
        }
        DependenceSet { deps }
    }

    /// The raw dependences.
    pub fn iter(&self) -> impl Iterator<Item = &Dependence> {
        self.deps.iter()
    }

    /// Number of dependences found.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether no dependence was found.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Dependences whose common loops include `l`.
    pub fn involving(&self, l: LoopId) -> impl Iterator<Item = &Dependence> {
        self.deps.iter().filter(move |d| d.loops.contains(&l))
    }

    /// Checks whether reordering the loops of a band to `new_order`
    /// preserves every dependence.
    ///
    /// `new_order` lists the band's loop ids outermost-first. Loops of a
    /// dependence that are outside the band keep their position; band
    /// loops are permuted *in place* (the band is assumed contiguous in
    /// the nesting, which holds for the PNL chains PT-Map reorders).
    ///
    /// Reduction dependences are exempt (associativity allows reordering).
    pub fn permutation_legal(&self, new_order: &[LoopId]) -> bool {
        self.deps.iter().all(|dep| {
            if dep.is_reduction {
                return true;
            }
            // Permute the mentioned loops in place within dep.loops.
            let mentioned: Vec<LoopId> = new_order
                .iter()
                .copied()
                .filter(|l| dep.loops.contains(l))
                .collect();
            let mut next = mentioned.iter();
            let mut seq: Vec<Distance> = Vec::with_capacity(dep.loops.len());
            for (&l, &d) in dep.loops.iter().zip(&dep.distance) {
                if new_order.contains(&l) {
                    let repl = *next.next().expect("same multiset of band loops");
                    seq.push(dep.distance_on(repl).expect("band loop is common"));
                } else {
                    seq.push(d);
                }
            }
            lex_non_negative(&seq)
        })
    }

    /// Checks whether fusing loop `l2` into loop `l1` (adjacent siblings,
    /// same tripcount) is legal: every dependence from a statement under
    /// `l1` to a statement under `l2` must have non-negative distance on
    /// the fused index.
    ///
    /// The caller provides `fused_deps`, the dependence set of the
    /// *speculatively fused* program; this method then checks it contains
    /// no negative or unknown component on `fused_loop`.
    pub fn fusion_legal(fused_deps: &DependenceSet, fused_loop: LoopId) -> bool {
        fused_deps.iter().all(|dep| {
            if dep.is_reduction {
                return true;
            }
            match dep.distance_on(fused_loop) {
                Some(Distance::Exact(d)) => {
                    if d != 0 {
                        // Carried on the fused loop: the full vector must
                        // stay lexicographically non-negative.
                        let seq: Vec<Distance> = dep.distance.clone();
                        lex_non_negative(&seq)
                    } else {
                        true
                    }
                }
                Some(Distance::Plus) | None => true,
                Some(Distance::Star) => {
                    // Unknown on the fused loop: legal only if killed by an
                    // outer positive component.
                    let mut killed = false;
                    for (&lp, &d) in dep.loops.iter().zip(&dep.distance) {
                        if lp == fused_loop {
                            break;
                        }
                        if d.is_positive() {
                            killed = true;
                            break;
                        }
                    }
                    killed
                }
            }
        })
    }
}

impl<'a> IntoIterator for &'a DependenceSet {
    type Item = &'a Dependence;
    type IntoIter = std::slice::Iter<'a, Dependence>;
    fn into_iter(self) -> Self::IntoIter {
        self.deps.iter()
    }
}

/// A distance vector is acceptable if its first non-zero component is
/// known positive (`Exact(>0)` or `Plus`); all-zero is acceptable too
/// (program order within the body is preserved by the transformations we
/// check). `Star` before any positive component is rejected.
fn lex_non_negative(seq: &[Distance]) -> bool {
    for &d in seq {
        match d {
            Distance::Exact(0) => continue,
            Distance::Exact(x) if x > 0 => return true,
            Distance::Plus => return true,
            _ => return false,
        }
    }
    true
}

#[derive(Default)]
struct AnalysisCtx {
    /// (statement, enclosing loops outermost-first, program-order index)
    stmts: Vec<(Stmt, Vec<LoopId>)>,
}

fn collect_stmts(nodes: &[Node], loops: &mut Vec<LoopId>, ctx: &mut AnalysisCtx) {
    for n in nodes {
        match n {
            Node::Stmt(s) => ctx.stmts.push((s.clone(), loops.clone())),
            Node::Loop(l) => {
                loops.push(l.id);
                collect_stmts(&l.body, loops, ctx);
                loops.pop();
            }
        }
    }
}

fn common_loops(a: &[LoopId], b: &[LoopId]) -> Vec<LoopId> {
    a.iter()
        .zip(b)
        .take_while(|(x, y)| x == y)
        .map(|(x, _)| *x)
        .collect()
}

fn analyze_pair(ctx: &AnalysisCtx, i: usize, j: usize, out: &mut Vec<Dependence>) {
    let (s1, l1) = &ctx.stmts[i];
    let (s2, l2) = &ctx.stmts[j];
    let common = common_loops(l1, l2);

    // Array dependences.
    let (r1, w1) = s1.accesses();
    let (r2, w2) = s2.accesses();
    let mut pairs: Vec<(&ArrayAccess, &ArrayAccess, DepKind)> = Vec::new();
    if let Some(w) = w1 {
        for r in &r2 {
            if r.array == w.array {
                pairs.push((w, r, DepKind::Flow));
            }
        }
        if let Some(w2a) = w2 {
            if w2a.array == w.array {
                pairs.push((w, w2a, DepKind::Output));
            }
        }
    }
    if let Some(w) = w2 {
        for r in &r1 {
            if r.array == w.array {
                pairs.push((r, w, DepKind::Anti));
            }
        }
    }
    // Self-pair special case: when i == j the (w, r) flow pair above
    // already covers read-after-write across iterations; the (r, w) anti
    // pair duplicates distances but with src == dst it is still useful
    // for RecMII, so we keep both.
    let reduction = i == j && s1.is_reduction();
    for (src_acc, dst_acc, kind) in pairs {
        if let Some(dist) = solve_uniform(src_acc, dst_acc, &common) {
            if let Some(dep) = normalize(
                s1.id,
                s2.id,
                Some(src_acc.array),
                None,
                kind,
                &common,
                dist,
                reduction,
                i == j,
            ) {
                out.push(dep);
            }
        }
    }

    // Scalar dependences.
    scalar_deps(ctx, i, j, &common, out);
}

/// Solves for the distance vector (`iteration(dst) - iteration(src)`)
/// of an access pair over the given common loops. Returns `None` when
/// the accesses provably never overlap; returns per-loop distances with
/// `Plus`/`Star` for anything it cannot pin down.
///
/// Exposed for clients (like loop fusion) that must reason about
/// dependences between statements whose *original* execution order is
/// not the lexical order of a single program (C-INTERMEDIATE).
pub fn access_distance(
    src: &ArrayAccess,
    dst: &ArrayAccess,
    common: &[LoopId],
) -> Option<Vec<Distance>> {
    solve_uniform(src, dst, common)
}

/// Solves for the distance vector of a uniform access pair. Returns `None`
/// when the accesses provably never overlap; returns per-loop distances
/// with `Star` for anything it cannot pin down.
fn solve_uniform(src: &ArrayAccess, dst: &ArrayAccess, common: &[LoopId]) -> Option<Vec<Distance>> {
    if src.indices.len() != dst.indices.len() || !src.is_uniform_with(dst) {
        // Non-uniform: conservative Star on every common loop.
        return Some(vec![Distance::Star; common.len()]);
    }
    // Per dimension: sum_l c_l * delta_l = k_src - k_dst.
    // Private (non-common) loops make the equation under-determined ->
    // treat that dimension as unconstraining (Star influence handled by
    // leaving loops unpinned).
    let mut pinned: BTreeMap<LoopId, i64> = BTreeMap::new();
    let mut equations: Vec<(BTreeMap<LoopId, i64>, i64)> = Vec::new();
    for (e_src, e_dst) in src.indices.iter().zip(&dst.indices) {
        let rhs = e_src.constant_term() - e_dst.constant_term();
        let mut coeffs: BTreeMap<LoopId, i64> = BTreeMap::new();
        let mut has_private = false;
        let mut loops: Vec<LoopId> = e_src.loops().chain(e_dst.loops()).collect();
        loops.sort_unstable();
        loops.dedup();
        for l in loops {
            let c = e_src.coeff(l); // uniform: same in both
            if c == 0 {
                continue;
            }
            if common.contains(&l) {
                coeffs.insert(l, c);
            } else {
                has_private = true;
            }
        }
        if has_private {
            continue; // under-determined dimension
        }
        equations.push((coeffs, rhs));
    }
    // Iteratively pin single-variable equations and substitute.
    let mut changed = true;
    while changed {
        changed = false;
        for (coeffs, rhs) in &mut equations {
            // Substitute already-pinned loops.
            let pins: Vec<(LoopId, i64)> = coeffs
                .iter()
                .filter(|(l, _)| pinned.contains_key(l))
                .map(|(&l, &c)| (l, c))
                .collect();
            for (l, c) in pins {
                *rhs -= c * pinned[&l];
                coeffs.remove(&l);
                changed = true;
            }
            if coeffs.len() == 1 {
                let (&l, &c) = coeffs.iter().next().expect("len 1");
                if *rhs % c != 0 {
                    return None; // no integer solution: independent
                }
                pinned.insert(l, *rhs / c);
                coeffs.clear();
                *rhs = 0;
                changed = true;
            } else if coeffs.is_empty() && *rhs != 0 {
                return None; // contradictory: independent
            }
        }
        equations.retain(|(c, r)| !(c.is_empty() && *r == 0));
    }
    let dist = common
        .iter()
        .map(|l| match pinned.get(l) {
            Some(&d) => Distance::Exact(d),
            // Unpinned common loop: element reuse across all its
            // iterations. Distances of both signs exist; normalization
            // keeps the forward (>=1) direction as `Plus` and the
            // backward one is represented by the symmetric record of the
            // swapped pair.
            None => Distance::Plus,
        })
        .collect();
    Some(dist)
}

/// Scalar dependences between two statements (or a statement with itself).
fn scalar_deps(
    ctx: &AnalysisCtx,
    i: usize,
    j: usize,
    common: &[LoopId],
    out: &mut Vec<Dependence>,
) {
    let (s1, _) = &ctx.stmts[i];
    let (s2, _) = &ctx.stmts[j];
    let w1 = match &s1.target {
        LValue::Scalar(s) => Some(*s),
        _ => None,
    };
    let w2 = match &s2.target {
        LValue::Scalar(s) => Some(*s),
        _ => None,
    };
    let r1 = s1.value.scalar_reads();
    let r2 = s2.value.scalar_reads();

    let mut push = |kind: DepKind, scalar: ScalarId, reduction: bool, zero_ok: bool| {
        let dist = if reduction {
            // Reduction recurrence: carried once around the innermost
            // common loop.
            let mut d = vec![Distance::Exact(0); common.len()];
            if let Some(last) = d.last_mut() {
                *last = Distance::Exact(1);
            }
            d
        } else if zero_ok {
            // Privatizable temporary: defined before use each iteration.
            vec![Distance::Exact(0); common.len()]
        } else {
            vec![Distance::Star; common.len()]
        };
        if let Some(dep) = normalize(
            s1.id,
            s2.id,
            None,
            Some(scalar),
            kind,
            common,
            dist,
            reduction,
            i == j,
        ) {
            out.push(dep);
        }
    };

    if i == j {
        if let Some(w) = w1 {
            if r1.contains(&w) {
                // Self recurrence: reduction when associative.
                push(DepKind::Flow, w, s1.is_reduction(), false);
            }
        }
        return;
    }
    if let Some(w) = w1 {
        if r2.contains(&w) {
            // Write in s1 (textually earlier), read in s2: treat as a
            // privatizable within-iteration def-use (distance 0) — the
            // standard scalar privatization assumption for temporaries.
            push(DepKind::Flow, w, false, true);
        }
        if w2 == Some(w) {
            push(DepKind::Output, w, false, true);
        }
    }
    if let Some(w) = w2 {
        if r1.contains(&w) {
            // Read before write across statements: loop-carried use.
            push(DepKind::Anti, w, false, false);
        }
    }
}

/// Normalizes a raw distance vector: drops provably-backward exact vectors
/// by reversing src/dst (the symmetric pair enumeration produces the
/// forward record too), keeps forward and unknown ones.
#[allow(clippy::too_many_arguments)]
fn normalize(
    src: StmtId,
    dst: StmtId,
    array: Option<ArrayId>,
    scalar: Option<ScalarId>,
    kind: DepKind,
    common: &[LoopId],
    dist: Vec<Distance>,
    is_reduction: bool,
    self_pair: bool,
) -> Option<Dependence> {
    // A statement instance never depends on itself.
    if self_pair && dist.iter().all(|d| d.is_zero()) {
        return None;
    }
    // Determine the lexicographic sign of the exact prefix.
    for &d in &dist {
        match d {
            Distance::Exact(0) => continue,
            Distance::Exact(x) if x > 0 => break,
            Distance::Plus => break,
            Distance::Exact(_) => {
                // Backward vector: for a self pair the forward direction
                // is the meaningful one, so flip it; for distinct
                // statements the swapped enumeration (j,i is never
                // visited since we enumerate i<=j) requires flipping too.
                let flipped: Vec<Distance> = dist
                    .iter()
                    .map(|&d| match d {
                        Distance::Exact(x) => Distance::Exact(-x),
                        other => other,
                    })
                    .collect();
                let kind = match kind {
                    DepKind::Flow => DepKind::Anti,
                    DepKind::Anti => DepKind::Flow,
                    DepKind::Output => DepKind::Output,
                };
                return Some(Dependence {
                    src: dst,
                    dst: src,
                    array,
                    scalar,
                    kind,
                    loops: common.to_vec(),
                    distance: flipped,
                    is_reduction,
                });
            }
            Distance::Star => break,
        }
    }
    Some(Dependence {
        src,
        dst,
        array,
        scalar,
        kind,
        loops: common.to_vec(),
        distance: dist,
        is_reduction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    /// C[i][j] += A[i][k] * B[k][j]
    fn gemm() -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[8, 8]);
        let bb = b.array("B", &[8, 8]);
        let c = b.array("C", &[8, 8]);
        let i = b.open_loop("i", 8);
        let j = b.open_loop("j", 8);
        let k = b.open_loop("k", 8);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn gemm_accumulation_dep() {
        let p = gemm();
        let deps = DependenceSet::analyze(&p);
        // The C[i][j] self-dependence: (0, 0, +) flow.
        let flow: Vec<_> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert!(!flow.is_empty());
        let d = flow[0];
        assert_eq!(d.distance[0], Distance::Exact(0));
        assert_eq!(d.distance[1], Distance::Exact(0));
        assert_eq!(d.distance[2], Distance::Plus);
        assert!(d.is_reduction, "C[i][j] += ... is an array reduction");
    }

    #[test]
    fn gemm_all_permutations_legal() {
        let p = gemm();
        let deps = DependenceSet::analyze(&p);
        let nest = p.perfect_nests().remove(0);
        let [i, j, k] = [nest.loops[0], nest.loops[1], nest.loops[2]];
        for order in [
            [i, j, k],
            [i, k, j],
            [k, i, j],
            [j, i, k],
            [k, j, i],
            [j, k, i],
        ] {
            assert!(
                deps.permutation_legal(&order),
                "order {order:?} should be legal"
            );
        }
    }

    #[test]
    fn stencil_forward_dep_blocks_reversal_like_orders() {
        // A[i][j] = A[i-1][j] + A[i][j-1]: distances (1,0) and (0,1).
        let mut b = ProgramBuilder::new("stencil");
        let a = b.array("A", &[16, 16]);
        let i = b.open_loop("i", 16);
        let j = b.open_loop("j", 16);
        let up = b.load(a, &[b.idx(i) - AffineExpr::constant(1), b.idx(j)]);
        let left = b.load(a, &[b.idx(i), b.idx(j) - AffineExpr::constant(1)]);
        let v = b.add(up, left);
        b.store(a, &[b.idx(i), b.idx(j)], v);
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let deps = DependenceSet::analyze(&p);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        // (1,0) and (0,1) stay legal under interchange (both non-negative).
        assert!(deps.permutation_legal(&[j, i]));
        // Exact distances were extracted.
        let exact: Vec<_> = deps
            .iter()
            .filter(|d| d.kind == DepKind::Flow)
            .map(|d| d.distance.clone())
            .collect();
        assert!(exact.contains(&vec![Distance::Exact(1), Distance::Exact(0)]));
        assert!(exact.contains(&vec![Distance::Exact(0), Distance::Exact(1)]));
    }

    use crate::affine::AffineExpr;

    #[test]
    fn anti_lexicographic_dep_blocks_interchange() {
        // A[i][j] = A[i-1][j+1]: distance (1, -1); interchange -> (-1, 1) illegal.
        let mut b = ProgramBuilder::new("skew");
        let a = b.array("A", &[16, 16]);
        let i = b.open_loop("i", 16);
        let j = b.open_loop("j", 16);
        let v = b.load(
            a,
            &[
                b.idx(i) - AffineExpr::constant(1),
                b.idx(j) + AffineExpr::constant(1),
            ],
        );
        b.store(a, &[b.idx(i), b.idx(j)], v);
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let deps = DependenceSet::analyze(&p);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        assert!(deps.permutation_legal(&[i, j]));
        assert!(!deps.permutation_legal(&[j, i]));
    }

    #[test]
    fn independent_constant_offsets() {
        // A[2i] vs A[2i+1] never alias.
        let mut b = ProgramBuilder::new("strided");
        let a = b.array("A", &[32]);
        let i = b.open_loop("i", 16);
        let v = b.load(a, &[b.idx(i) * 2 + AffineExpr::constant(1)]);
        b.store(a, &[b.idx(i) * 2], v);
        b.close_loop();
        let p = b.finish();
        let deps = DependenceSet::analyze(&p);
        // No array dependence should be recorded (gcd test fails).
        assert!(deps.iter().all(|d| d.array.is_none()), "{:?}", deps);
    }

    #[test]
    fn scalar_reduction_is_marked() {
        let mut b = ProgramBuilder::new("red");
        let a = b.array("A", &[64]);
        let s = b.scalar("s");
        let i = b.open_loop("i", 64);
        let v = b.add(b.read_scalar(s), b.load(a, &[b.idx(i)]));
        b.assign(s, v);
        b.close_loop();
        let p = b.finish();
        let deps = DependenceSet::analyze(&p);
        let red: Vec<_> = deps.iter().filter(|d| d.is_reduction).collect();
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].distance, vec![Distance::Exact(1)]);
    }

    #[test]
    fn non_uniform_access_gives_star() {
        // A[i] vs A[2i]: non-uniform -> Star.
        let mut b = ProgramBuilder::new("nonuniform");
        let a = b.array("A", &[64]);
        let x = b.array("X", &[64]);
        let i = b.open_loop("i", 32);
        let v = b.load(a, &[b.idx(i) * 2]);
        b.store(x, &[b.idx(i)], v);
        b.store(a, &[b.idx(i)], b.constant(0));
        b.close_loop();
        let p = b.finish();
        let deps = DependenceSet::analyze(&p);
        let star = deps
            .iter()
            .any(|d| d.array.is_some() && d.distance.contains(&Distance::Star));
        assert!(star);
        let nest = p.perfect_nests().remove(0);
        assert!(
            !deps.permutation_legal(&[nest.loops[0]]) || deps.permutation_legal(&[nest.loops[0]])
        );
        // (single-loop permutation is identity; just ensure no panic)
    }

    #[test]
    fn carried_by_queries() {
        let p = gemm();
        let deps = DependenceSet::analyze(&p);
        let nest = p.perfect_nests().remove(0);
        let k = nest.loops[2];
        assert!(deps.iter().any(|d| d.may_be_carried_by(k)));
        let i = nest.loops[0];
        assert!(!deps
            .iter()
            .filter(|d| d.kind == DepKind::Flow)
            .any(|d| d.may_be_carried_by(i)));
    }
}
