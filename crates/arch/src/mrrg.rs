//! Modulo routing resource graph (MRRG), the time-extended CGRA.
//!
//! For a candidate initiation interval `II`, the MRRG unfolds the PE
//! array over `II` time slots. A node `(pe, t)` represents PE `pe` at
//! cycle `t (mod II)`; routing a value forward one cycle follows an edge
//! to `(pe', (t+1) mod II)` where `pe'` is an interconnect neighbor, the
//! same PE (holding in its local register file), or the shared global
//! register file hub. This is the `TEC/MRRG` hardware representation the
//! paper's GNN consumes and the structure the modulo scheduler routes on.

use crate::arch::CgraArch;
use crate::pe::PeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node of the MRRG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteNode {
    /// PE `pe` at time slot `t`.
    Pe {
        /// The PE.
        pe: PeId,
        /// Time slot in `0..II`.
        t: u32,
    },
    /// The global register file at time slot `t`.
    Grf {
        /// Time slot in `0..II`.
        t: u32,
    },
}

impl fmt::Display for RouteNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteNode::Pe { pe, t } => write!(f, "{pe}@{t}"),
            RouteNode::Grf { t } => write!(f, "GRF@{t}"),
        }
    }
}

/// The time-extended routing graph for one candidate II.
///
/// Adjacency is stored in CSR form (one flat successor array plus
/// per-node offsets) so the routing BFS walks contiguous memory instead
/// of chasing one heap allocation per node.
#[derive(Debug, Clone)]
pub struct Mrrg {
    ii: u32,
    pe_count: u32,
    has_grf: bool,
    grf_size: u32,
    lrf: Vec<u32>,
    /// Flat forward adjacency; node `i`'s successors are
    /// `adj[off[i] as usize..off[i + 1] as usize]`.
    adj: Vec<u32>,
    /// CSR offsets, length `node_count + 1`.
    off: Vec<u32>,
}

impl Mrrg {
    /// Builds the MRRG of `arch` unrolled over `ii` time slots.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(arch: &CgraArch, ii: u32) -> Self {
        assert!(ii > 0, "II must be at least 1");
        let pe_count = arch.pe_count() as u32;
        let has_grf = arch.grf_size() > 0;
        let node_count = (ii * pe_count + if has_grf { ii } else { 0 }) as usize;
        let mut mrrg = Mrrg {
            ii,
            pe_count,
            has_grf,
            grf_size: arch.grf_size(),
            lrf: arch.pe_ids().map(|p| arch.pe(p).lrf_size).collect(),
            adj: Vec::new(),
            off: Vec::new(),
        };
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); node_count];
        for t in 0..ii {
            let nt = (t + 1) % ii;
            for pe in arch.pe_ids() {
                let from = mrrg.pe_slot(pe, t);
                for n in arch.neighbors(pe) {
                    let to = mrrg.pe_slot(n, nt) as u32;
                    lists[from].push(to);
                }
                if arch.pe(pe).lrf_size > 0 {
                    let to = mrrg.pe_slot(pe, nt) as u32;
                    lists[from].push(to);
                }
                if has_grf {
                    let to_grf = mrrg.grf_slot(0, nt) as u32;
                    lists[from].push(to_grf);
                    let g = mrrg.grf_slot(0, t);
                    let to_pe = mrrg.pe_slot(pe, nt) as u32;
                    lists[g].push(to_pe);
                }
            }
            if has_grf {
                let g = mrrg.grf_slot(0, t);
                let hold = mrrg.grf_slot(0, nt) as u32;
                if !lists[g].contains(&hold) {
                    lists[g].push(hold);
                }
            }
        }
        mrrg.off = Vec::with_capacity(node_count + 1);
        mrrg.off.push(0);
        mrrg.adj = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        for l in &lists {
            mrrg.adj.extend_from_slice(l);
            mrrg.off.push(mrrg.adj.len() as u32);
        }
        mrrg
    }

    /// The initiation interval this MRRG was unfolded for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of PE slots (`II * pe_count`), i.e. compute capacity.
    pub fn slots(&self) -> usize {
        (self.ii * self.pe_count) as usize
    }

    /// Total node count including GRF slots.
    pub fn node_count(&self) -> usize {
        self.off.len() - 1
    }

    /// Index of PE slot `(pe, t)`.
    pub fn pe_slot(&self, pe: PeId, t: u32) -> usize {
        (t * self.pe_count + pe.0) as usize
    }

    /// Index of the GRF slot at time `t`.
    ///
    /// The first argument is ignored (kept for symmetry in internal call
    /// sites); panics if the architecture has no GRF.
    fn grf_slot(&self, _unused: u32, t: u32) -> usize {
        assert!(self.has_grf, "architecture has no GRF");
        (self.ii * self.pe_count + t) as usize
    }

    /// Index of the GRF slot at time `t`, if a GRF exists.
    pub fn grf_slot_at(&self, t: u32) -> Option<usize> {
        self.has_grf.then(|| (self.ii * self.pe_count + t) as usize)
    }

    /// Decodes a node index.
    pub fn decode(&self, idx: usize) -> RouteNode {
        let pe_slots = self.slots();
        if idx < pe_slots {
            let t = idx as u32 / self.pe_count;
            let pe = PeId(idx as u32 % self.pe_count);
            RouteNode::Pe { pe, t }
        } else {
            RouteNode::Grf {
                t: (idx - pe_slots) as u32,
            }
        }
    }

    /// Successor node indices (one-cycle data movement).
    pub fn succ(&self, idx: usize) -> &[u32] {
        &self.adj[self.off[idx] as usize..self.off[idx + 1] as usize]
    }

    /// Routing capacity of a node: how many distinct values may occupy it
    /// in one slot (LRF entries for PEs, GRF entries for the hub).
    pub fn route_capacity(&self, idx: usize) -> u32 {
        match self.decode(idx) {
            RouteNode::Pe { pe, .. } => self.lrf[pe.index()].max(1),
            RouteNode::Grf { .. } => self.grf_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::CgraArchBuilder;
    use crate::pe::Pe;
    use crate::topology::Topology;

    fn arch(grf: u32, lrf: u32) -> CgraArch {
        CgraArchBuilder::new("t", 2, 2)
            .topology(Topology::Mesh {
                diagonal: false,
                torus: false,
            })
            .uniform_pe(Pe::full(lrf))
            .grf_size(grf)
            .build()
            .unwrap()
    }

    #[test]
    fn node_counts() {
        let m = Mrrg::new(&arch(0, 1), 3);
        assert_eq!(m.slots(), 12);
        assert_eq!(m.node_count(), 12);
        let m = Mrrg::new(&arch(4, 1), 3);
        assert_eq!(m.node_count(), 15);
    }

    #[test]
    fn decode_round_trip() {
        let m = Mrrg::new(&arch(4, 1), 2);
        for idx in 0..m.node_count() {
            match m.decode(idx) {
                RouteNode::Pe { pe, t } => assert_eq!(m.pe_slot(pe, t), idx),
                RouteNode::Grf { t } => assert_eq!(m.grf_slot_at(t), Some(idx)),
            }
        }
    }

    #[test]
    fn edges_advance_time() {
        let m = Mrrg::new(&arch(2, 1), 4);
        for idx in 0..m.node_count() {
            let t0 = match m.decode(idx) {
                RouteNode::Pe { t, .. } | RouteNode::Grf { t } => t,
            };
            for &s in m.succ(idx) {
                let t1 = match m.decode(s as usize) {
                    RouteNode::Pe { t, .. } | RouteNode::Grf { t } => t,
                };
                assert_eq!(t1, (t0 + 1) % 4, "edge {idx}->{s} does not advance time");
            }
        }
    }

    #[test]
    fn self_hold_requires_lrf() {
        let m = Mrrg::new(&arch(0, 0), 2);
        // No LRF: (pe, t) must not reach (pe, t+1).
        for pe in 0..4u32 {
            let from = m.pe_slot(PeId(pe), 0);
            let to = m.pe_slot(PeId(pe), 1) as u32;
            assert!(!m.succ(from).contains(&to));
        }
        let m = Mrrg::new(&arch(0, 1), 2);
        for pe in 0..4u32 {
            let from = m.pe_slot(PeId(pe), 0);
            let to = m.pe_slot(PeId(pe), 1) as u32;
            assert!(m.succ(from).contains(&to));
        }
    }

    #[test]
    fn grf_is_reachable_hub() {
        let m = Mrrg::new(&arch(4, 1), 2);
        let g0 = m.grf_slot_at(0).unwrap();
        // GRF slot 0 reaches every PE at t=1 plus its own hold.
        assert_eq!(m.succ(g0).len(), 5);
    }

    #[test]
    fn capacities() {
        let m = Mrrg::new(&arch(4, 2), 2);
        assert_eq!(m.route_capacity(m.pe_slot(PeId(0), 0)), 2);
        assert_eq!(m.route_capacity(m.grf_slot_at(1).unwrap()), 4);
    }

    #[test]
    #[should_panic(expected = "II must be at least 1")]
    fn zero_ii_panics() {
        let _ = Mrrg::new(&arch(0, 1), 0);
    }
}
