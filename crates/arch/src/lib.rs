//! CGRA architecture models for PT-Map.
//!
//! This crate is the hardware-side substrate: it describes a
//! coarse-grained reconfigurable array — the PE grid with per-PE operator
//! lists and local register files (LRF), a shared global register file
//! (GRF), the context buffer (CB) and data buffer (DB) — together with
//! the interconnect [`Topology`] and the time-extended modulo routing
//! resource graph ([`Mrrg`]) that the modulo-scheduling mapper places and
//! routes on.
//!
//! The four evaluation architectures of the paper (S4, R4, H6, SL8) plus
//! the HReA-like generality architecture are available as
//! [`presets`].
//!
//! # Example
//!
//! ```
//! use ptmap_arch::{presets, Mrrg};
//! use ptmap_ir::OpKind;
//!
//! let s4 = presets::s4();
//! assert_eq!(s4.pe_count(), 16);
//! assert!(s4.pe(ptmap_arch::PeId(0)).supports(OpKind::Mul));
//! let mrrg = Mrrg::new(&s4, 2); // II = 2
//! assert_eq!(mrrg.slots(), 2 * 16);
//! ```

pub mod arch;
pub mod io;
pub mod mrrg;
pub mod pe;
pub mod presets;
pub mod topology;

pub use arch::{ArchError, CgraArch, CgraArchBuilder};
pub use mrrg::{Mrrg, RouteNode};
pub use pe::{Pe, PeId};
pub use topology::Topology;
