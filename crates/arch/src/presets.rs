//! The evaluation architectures of the paper.
//!
//! | Name | Array | Topology | Notes | DB |
//! |---|---|---|---|---|
//! | S4  | 4×4 | mesh + diagonals | standard, homogeneous, LRF 2, GRF 4 | 4 KiB |
//! | R4  | 4×4 | mesh | reduced (Pillars-like): heterogeneous PEs, LRF 1 | 4 KiB |
//! | H6  | 6×6 | HyCube (3 hops) | LRF 1, GRF 2 | 6 KiB |
//! | SL8 | 8×8 | mesh | less routing: LRF 1, no GRF | 8 KiB |
//! | HReA4 | 4×4 | row/column | generality experiment | 4 KiB |
//!
//! All presets use the paper's CB capacity of 8 contexts.

use crate::arch::{CgraArch, CgraArchBuilder};
use crate::pe::Pe;
use crate::topology::Topology;
use ptmap_ir::OpClass;

/// S4: the 4×4 standard CGRA.
pub fn s4() -> CgraArch {
    CgraArchBuilder::new("S4", 4, 4)
        .topology(Topology::Mesh {
            diagonal: true,
            torus: false,
        })
        .uniform_pe(Pe::full(2))
        .grf_size(4)
        .cb_capacity(8)
        .db_bytes(4 * 1024)
        .build()
        .expect("preset is valid")
}

/// R4: the 4×4 reduced CGRA (heterogeneous, similar to the reduced
/// architecture built with Pillars in the paper): only the even PEs
/// multiply, only the first column reaches the data buffer, plain mesh,
/// LRF 1, no GRF.
pub fn r4() -> CgraArch {
    let full = Pe::full(1);
    let no_mul = Pe::with_classes(&[OpClass::Logic, OpClass::Memory], 1);
    let mut b = CgraArchBuilder::new("R4", 4, 4)
        .topology(Topology::Mesh {
            diagonal: false,
            torus: false,
        })
        .uniform_pe(full)
        .grf_size(0)
        .cb_capacity(8)
        .db_bytes(4 * 1024);
    for y in 0..4 {
        for x in 0..4 {
            let idx = y * 4 + x;
            if idx % 2 == 1 {
                b = b.pe_at(x, y, no_mul.clone());
            }
        }
    }
    // Memory restricted to the first column: strip memory from others.
    for y in 0..4 {
        for x in 1..4 {
            let idx = (y * 4 + x) % 2;
            let classes: &[OpClass] = if idx == 0 {
                &[OpClass::Arithmetic, OpClass::Logic]
            } else {
                &[OpClass::Logic]
            };
            b = b.pe_at(x, y, Pe::with_classes(classes, 1));
        }
    }
    b.build().expect("preset is valid")
}

/// H6: the 6×6 HyCube-like CGRA with single-cycle multi-hop interconnect.
pub fn h6() -> CgraArch {
    CgraArchBuilder::new("H6", 6, 6)
        .topology(Topology::HyCube { max_hops: 3 })
        .uniform_pe(Pe::full(1))
        .grf_size(2)
        .cb_capacity(8)
        .db_bytes(6 * 1024)
        .build()
        .expect("preset is valid")
}

/// SL8: the 8×8 CGRA with less routing resource: plain mesh, LRF 1, no
/// GRF.
pub fn sl8() -> CgraArch {
    CgraArchBuilder::new("SL8", 8, 8)
        .topology(Topology::Mesh {
            diagonal: false,
            torus: false,
        })
        .uniform_pe(Pe::full(1))
        .grf_size(0)
        .cb_capacity(8)
        .db_bytes(8 * 1024)
        .build()
        .expect("preset is valid")
}

/// HReA-like 4×4 CGRA with a rich row/column interconnect — the unseen
/// architecture of the generality experiment.
pub fn hrea4() -> CgraArch {
    CgraArchBuilder::new("HReA4", 4, 4)
        .topology(Topology::RowColumn)
        .uniform_pe(Pe::full(2))
        .grf_size(4)
        .cb_capacity(8)
        .db_bytes(4 * 1024)
        .build()
        .expect("preset is valid")
}

/// The four main evaluation architectures, in the paper's order.
pub fn evaluation_suite() -> Vec<CgraArch> {
    vec![s4(), r4(), h6(), sl8()]
}

/// A small same-PE-count family for the Fig. 2b motivation experiment:
/// the legend `abc` denotes an `a×b` array with `c` LRF entries per PE.
pub fn fig2b_family() -> Vec<CgraArch> {
    let mk = |name: &str, rows: u32, cols: u32, lrf: u32| {
        CgraArchBuilder::new(name, rows, cols)
            .topology(Topology::Mesh {
                diagonal: false,
                torus: false,
            })
            .uniform_pe(Pe::full(lrf))
            .grf_size(0)
            .cb_capacity(16)
            .db_bytes(4 * 1024)
            .build()
            .expect("preset is valid")
    };
    vec![
        mk("220", 2, 2, 0),
        mk("221", 2, 2, 1),
        mk("222", 2, 2, 2),
        mk("224", 2, 2, 4),
        mk("410", 4, 1, 0),
        mk("412", 4, 1, 2),
        mk("144", 1, 4, 4),
    ]
}

/// A plain `rows x cols` mesh with full PEs — used by the Fig. 2a
/// utilization sweep (3×3, 4×4, 8×8).
pub fn mesh(rows: u32, cols: u32, lrf: u32) -> CgraArch {
    CgraArchBuilder::new(format!("M{rows}x{cols}"), rows, cols)
        .topology(Topology::Mesh {
            diagonal: false,
            torus: false,
        })
        .uniform_pe(Pe::full(lrf))
        .grf_size(2)
        .cb_capacity(8)
        .db_bytes(4 * 1024)
        .build()
        .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_ir::OpKind;

    #[test]
    fn suite_shapes() {
        let suite = evaluation_suite();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].pe_count(), 16);
        assert_eq!(suite[1].pe_count(), 16);
        assert_eq!(suite[2].pe_count(), 36);
        assert_eq!(suite[3].pe_count(), 64);
    }

    #[test]
    fn r4_is_heterogeneous() {
        let r4 = r4();
        assert!(r4.pes_supporting(OpKind::Mul) < r4.pe_count());
        assert!(r4.pes_supporting(OpKind::Load) < r4.pe_count());
        assert!(r4.pes_supporting(OpKind::Mul) > 0);
        assert!(r4.pes_supporting(OpKind::Load) > 0);
    }

    #[test]
    fn db_capacities_match_paper() {
        assert_eq!(s4().db_bytes(), 4096);
        assert_eq!(r4().db_bytes(), 4096);
        assert_eq!(h6().db_bytes(), 6144);
        assert_eq!(sl8().db_bytes(), 8192);
    }

    #[test]
    fn cb_capacity_is_eight_everywhere() {
        for a in evaluation_suite() {
            assert_eq!(a.cb_capacity(), 8);
        }
        assert_eq!(hrea4().cb_capacity(), 8);
    }

    #[test]
    fn fig2b_family_same_pe_count() {
        let fam = fig2b_family();
        assert!(fam.iter().all(|a| a.pe_count() == 4));
    }

    #[test]
    fn hrea_richer_than_sl8_mesh() {
        let hrea = hrea4();
        let d_hrea = hrea.topology().mean_degree(4, 4);
        let d_mesh = sl8().topology().mean_degree(4, 4);
        assert!(d_hrea > d_mesh);
    }
}
