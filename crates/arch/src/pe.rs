//! Processing elements.

use ptmap_ir::{OpClass, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a PE within an array, in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeId(pub u32);

impl PeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a PE id from grid coordinates given the column count.
    pub fn from_xy(x: u32, y: u32, cols: u32) -> Self {
        PeId(y * cols + x)
    }

    /// Grid coordinates `(x, y)` given the column count.
    pub fn to_xy(self, cols: u32) -> (u32, u32) {
        (self.0 % cols, self.0 / cols)
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// A processing element: an ALU with an operator list, a local register
/// file used for time-multiplexed routing, and an output register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pe {
    /// Operations this PE's functional unit supports (`op_list` in the
    /// paper's `G_hw` attributes).
    pub ops: Vec<OpKind>,
    /// Local register file entries available for buffering/routing.
    pub lrf_size: u32,
}

impl Pe {
    /// A PE supporting every operation (homogeneous "standard" arrays).
    pub fn full(lrf_size: u32) -> Self {
        Pe {
            ops: OpKind::ALL.to_vec(),
            lrf_size,
        }
    }

    /// A PE supporting only the listed classes (plus moves, which every
    /// PE supports: routing is always possible through a PE).
    pub fn with_classes(classes: &[OpClass], lrf_size: u32) -> Self {
        let ops = OpKind::ALL
            .into_iter()
            .filter(|op| classes.contains(&op.class()) || op.class() == OpClass::Move)
            .collect();
        Pe { ops, lrf_size }
    }

    /// Whether this PE supports an operation.
    pub fn supports(&self, op: OpKind) -> bool {
        self.ops.contains(&op)
    }

    /// Whether this PE supports any operation of the class.
    pub fn supports_class(&self, class: OpClass) -> bool {
        self.ops.iter().any(|op| op.class() == class)
    }
}

impl Default for Pe {
    fn default() -> Self {
        Pe::full(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_round_trip() {
        let cols = 6;
        for y in 0..6u32 {
            for x in 0..6u32 {
                let id = PeId::from_xy(x, y, cols);
                assert_eq!(id.to_xy(cols), (x, y));
            }
        }
    }

    #[test]
    fn full_pe_supports_everything() {
        let pe = Pe::full(2);
        for op in OpKind::ALL {
            assert!(pe.supports(op));
        }
    }

    #[test]
    fn class_restricted_pe_keeps_moves() {
        let pe = Pe::with_classes(&[OpClass::Logic], 1);
        assert!(pe.supports(OpKind::And));
        assert!(pe.supports(OpKind::Route));
        assert!(pe.supports(OpKind::Const));
        assert!(!pe.supports(OpKind::Mul));
        assert!(!pe.supports(OpKind::Load));
        assert!(pe.supports_class(OpClass::Move));
        assert!(!pe.supports_class(OpClass::Memory));
    }
}
