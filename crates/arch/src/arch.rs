//! The CGRA architecture description.

use crate::pe::{Pe, PeId};
use crate::topology::Topology;
use ptmap_ir::{OpClass, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while constructing an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// The array has zero rows or columns.
    EmptyArray,
    /// The per-PE list has the wrong length.
    PeCountMismatch {
        /// PEs provided.
        got: usize,
        /// `rows * cols`.
        expected: usize,
    },
    /// No PE supports the given class, making most programs unmappable.
    MissingClass(OpClass),
    /// The context buffer cannot hold even a single context.
    ZeroContextCapacity,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::EmptyArray => write!(f, "array must have at least one row and column"),
            ArchError::PeCountMismatch { got, expected } => {
                write!(f, "provided {got} PEs for an array of {expected}")
            }
            ArchError::MissingClass(c) => write!(f, "no PE supports the {c} class"),
            ArchError::ZeroContextCapacity => write!(f, "context buffer capacity must be >= 1"),
        }
    }
}

impl std::error::Error for ArchError {}

/// A complete CGRA description: PE array, interconnect, register files,
/// and on-chip buffers.
///
/// Construct via [`CgraArchBuilder`] or use a preset from
/// [`crate::presets`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgraArch {
    name: String,
    rows: u32,
    cols: u32,
    pes: Vec<Pe>,
    topology: Topology,
    grf_size: u32,
    cb_capacity: u32,
    db_bytes: u64,
}

impl CgraArch {
    /// Human-readable architecture name (e.g. `"S4"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    /// A PE by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn pe(&self, id: PeId) -> &Pe {
        &self.pes[id.index()]
    }

    /// All PE ids in row-major order.
    pub fn pe_ids(&self) -> impl Iterator<Item = PeId> {
        (0..self.rows * self.cols).map(PeId)
    }

    /// The interconnect topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// PEs reachable from `from` in one cycle.
    pub fn neighbors(&self, from: PeId) -> Vec<PeId> {
        self.topology.neighbors(from, self.rows, self.cols)
    }

    /// Global register file entries (0 disables the GRF).
    pub fn grf_size(&self) -> u32 {
        self.grf_size
    }

    /// Context buffer capacity: the maximum initiation interval whose
    /// contexts fit on chip without reloading.
    pub fn cb_capacity(&self) -> u32 {
        self.cb_capacity
    }

    /// Data buffer capacity in bytes.
    pub fn db_bytes(&self) -> u64 {
        self.db_bytes
    }

    /// A copy of this architecture with a different DB capacity (used by
    /// the doubled-DB energy experiment, Fig. 8).
    pub fn with_db_bytes(&self, db_bytes: u64) -> CgraArch {
        let mut out = self.clone();
        out.db_bytes = db_bytes;
        out.name = format!("{}-db{}", self.name, db_bytes / 1024);
        out
    }

    /// Number of PEs supporting `op`.
    pub fn pes_supporting(&self, op: OpKind) -> usize {
        self.pes.iter().filter(|pe| pe.supports(op)).count()
    }

    /// Whether every operation in `ops` is supported by at least one PE.
    pub fn supports_all<'a>(&self, ops: impl IntoIterator<Item = &'a OpKind>) -> bool {
        ops.into_iter().all(|&op| self.pes_supporting(op) > 0)
    }

    /// Mean LRF size across PEs.
    pub fn mean_lrf(&self) -> f64 {
        self.pes.iter().map(|pe| pe.lrf_size as f64).sum::<f64>() / self.pe_count() as f64
    }
}

impl fmt::Display for CgraArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{}, {:?})",
            self.name, self.rows, self.cols, self.topology
        )
    }
}

/// Builder for [`CgraArch`] (C-BUILDER).
///
/// # Example
///
/// ```
/// use ptmap_arch::{CgraArchBuilder, Topology, Pe};
///
/// let arch = CgraArchBuilder::new("tiny", 2, 2)
///     .topology(Topology::Mesh { diagonal: false, torus: false })
///     .uniform_pe(Pe::full(1))
///     .grf_size(2)
///     .cb_capacity(8)
///     .db_bytes(2048)
///     .build()?;
/// assert_eq!(arch.pe_count(), 4);
/// # Ok::<(), ptmap_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CgraArchBuilder {
    name: String,
    rows: u32,
    cols: u32,
    pes: Option<Vec<Pe>>,
    topology: Topology,
    grf_size: u32,
    cb_capacity: u32,
    db_bytes: u64,
}

impl CgraArchBuilder {
    /// Starts a builder for a `rows x cols` array.
    pub fn new(name: impl Into<String>, rows: u32, cols: u32) -> Self {
        CgraArchBuilder {
            name: name.into(),
            rows,
            cols,
            pes: None,
            topology: Topology::Mesh {
                diagonal: false,
                torus: false,
            },
            grf_size: 0,
            cb_capacity: 8,
            db_bytes: 4096,
        }
    }

    /// Sets the interconnect topology (default: plain mesh).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Uses the same PE for every grid position.
    pub fn uniform_pe(mut self, pe: Pe) -> Self {
        self.pes = Some(vec![pe; (self.rows * self.cols) as usize]);
        self
    }

    /// Supplies an explicit per-position PE list (row-major).
    pub fn pes(mut self, pes: Vec<Pe>) -> Self {
        self.pes = Some(pes);
        self
    }

    /// Replaces the PE at a position (after `uniform_pe`).
    ///
    /// # Panics
    ///
    /// Panics if called before any PE list was set or out of range.
    pub fn pe_at(mut self, x: u32, y: u32, pe: Pe) -> Self {
        let cols = self.cols;
        let pes = self.pes.as_mut().expect("set uniform_pe or pes first");
        pes[PeId::from_xy(x, y, cols).index()] = pe;
        self
    }

    /// Sets the GRF size (default 0: no GRF).
    pub fn grf_size(mut self, n: u32) -> Self {
        self.grf_size = n;
        self
    }

    /// Sets the context buffer capacity in contexts (default 8, per the
    /// paper's evaluation setup).
    pub fn cb_capacity(mut self, n: u32) -> Self {
        self.cb_capacity = n;
        self
    }

    /// Sets the data buffer size in bytes (default 4 KiB).
    pub fn db_bytes(mut self, n: u64) -> Self {
        self.db_bytes = n;
        self
    }

    /// Builds the architecture.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] when the geometry is empty, the PE list
    /// length mismatches, a required class is entirely missing, or the
    /// context buffer is zero-sized.
    pub fn build(self) -> Result<CgraArch, ArchError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ArchError::EmptyArray);
        }
        let expected = (self.rows * self.cols) as usize;
        let pes = self.pes.unwrap_or_else(|| vec![Pe::default(); expected]);
        if pes.len() != expected {
            return Err(ArchError::PeCountMismatch {
                got: pes.len(),
                expected,
            });
        }
        if self.cb_capacity == 0 {
            return Err(ArchError::ZeroContextCapacity);
        }
        for class in [OpClass::Arithmetic, OpClass::Memory, OpClass::Move] {
            if !pes.iter().any(|pe| pe.supports_class(class)) {
                return Err(ArchError::MissingClass(class));
            }
        }
        Ok(CgraArch {
            name: self.name,
            rows: self.rows,
            cols: self.cols,
            pes,
            topology: self.topology,
            grf_size: self.grf_size,
            cb_capacity: self.cb_capacity,
            db_bytes: self.db_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let a = CgraArchBuilder::new("t", 3, 3).build().unwrap();
        assert_eq!(a.pe_count(), 9);
        assert_eq!(a.cb_capacity(), 8);
        assert!(a.supports_all(&[OpKind::Add, OpKind::Load]));
    }

    #[test]
    fn empty_array_rejected() {
        assert_eq!(
            CgraArchBuilder::new("t", 0, 4).build(),
            Err(ArchError::EmptyArray)
        );
    }

    #[test]
    fn pe_count_mismatch_rejected() {
        let err = CgraArchBuilder::new("t", 2, 2)
            .pes(vec![Pe::default(); 3])
            .build();
        assert_eq!(
            err,
            Err(ArchError::PeCountMismatch {
                got: 3,
                expected: 4
            })
        );
    }

    #[test]
    fn missing_memory_class_rejected() {
        let pe = Pe::with_classes(&[OpClass::Arithmetic], 1);
        let err = CgraArchBuilder::new("t", 2, 2).uniform_pe(pe).build();
        assert_eq!(err, Err(ArchError::MissingClass(OpClass::Memory)));
    }

    #[test]
    fn heterogeneous_pe_at() {
        let a = CgraArchBuilder::new("het", 2, 2)
            .uniform_pe(Pe::full(1))
            .pe_at(
                1,
                1,
                Pe::with_classes(&[OpClass::Logic, OpClass::Memory], 1),
            )
            .build()
            .unwrap();
        assert_eq!(a.pes_supporting(OpKind::Mul), 3);
        assert_eq!(a.pes_supporting(OpKind::Load), 4);
    }

    #[test]
    fn with_db_bytes_doubles() {
        let a = CgraArchBuilder::new("t", 2, 2)
            .db_bytes(4096)
            .build()
            .unwrap();
        let b = a.with_db_bytes(8192);
        assert_eq!(b.db_bytes(), 8192);
        assert_ne!(a.name(), b.name());
    }
}
