//! Interconnect topologies.

use crate::pe::PeId;
use serde::{Deserialize, Serialize};

/// Single-cycle interconnect pattern between PEs.
///
/// A topology answers one question: from a PE, which PEs can receive its
/// output register in the next cycle? All modeled interconnects are
/// registered (one cycle per hop group), matching the architectures of
/// the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Topology {
    /// ADRES-like 2D mesh: 4-neighborhood, optionally plus diagonals.
    Mesh {
        /// Include the 4 diagonal neighbors (8-neighborhood).
        diagonal: bool,
        /// Wrap around edges (torus links).
        torus: bool,
    },
    /// HyCube-like mesh with single-cycle multi-hop straight-line hops:
    /// a value can travel up to `max_hops` PEs along a row or a column in
    /// one cycle.
    HyCube {
        /// Maximum straight-line hop distance reachable in one cycle.
        max_hops: u32,
    },
    /// HReA-like rich interconnect: mesh neighbors plus full same-row and
    /// same-column broadcast links.
    RowColumn,
}

impl Topology {
    /// PEs reachable from `from` in a single cycle (excluding `from`
    /// itself — staying put uses the PE's own output register/LRF, which
    /// the MRRG models separately).
    pub fn neighbors(self, from: PeId, rows: u32, cols: u32) -> Vec<PeId> {
        let (x, y) = from.to_xy(cols);
        let mut out = Vec::new();
        let mut push = |nx: i64, ny: i64| {
            if nx >= 0 && ny >= 0 && (nx as u32) < cols && (ny as u32) < rows {
                let id = PeId::from_xy(nx as u32, ny as u32, cols);
                if id != from && !out.contains(&id) {
                    out.push(id);
                }
            }
        };
        match self {
            Topology::Mesh { diagonal, torus } => {
                let deltas: &[(i64, i64)] = if diagonal {
                    &[
                        (1, 0),
                        (-1, 0),
                        (0, 1),
                        (0, -1),
                        (1, 1),
                        (1, -1),
                        (-1, 1),
                        (-1, -1),
                    ]
                } else {
                    &[(1, 0), (-1, 0), (0, 1), (0, -1)]
                };
                for &(dx, dy) in deltas {
                    if torus {
                        let nx = (x as i64 + dx).rem_euclid(cols as i64);
                        let ny = (y as i64 + dy).rem_euclid(rows as i64);
                        push(nx, ny);
                    } else {
                        push(x as i64 + dx, y as i64 + dy);
                    }
                }
            }
            Topology::HyCube { max_hops } => {
                let h = max_hops.max(1) as i64;
                for d in 1..=h {
                    push(x as i64 + d, y as i64);
                    push(x as i64 - d, y as i64);
                    push(x as i64, y as i64 + d);
                    push(x as i64, y as i64 - d);
                }
            }
            Topology::RowColumn => {
                for nx in 0..cols as i64 {
                    push(nx, y as i64);
                }
                for ny in 0..rows as i64 {
                    push(x as i64, ny);
                }
            }
        }
        out
    }

    /// Average out-degree over the array — a routing-richness indicator
    /// used as a hardware feature by the predictive model.
    pub fn mean_degree(self, rows: u32, cols: u32) -> f64 {
        let n = (rows * cols) as f64;
        let total: usize = (0..rows * cols)
            .map(|i| self.neighbors(PeId(i), rows, cols).len())
            .sum();
        total as f64 / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_corner_has_two_neighbors() {
        let t = Topology::Mesh {
            diagonal: false,
            torus: false,
        };
        assert_eq!(t.neighbors(PeId(0), 4, 4).len(), 2);
        // Center PE has 4.
        assert_eq!(t.neighbors(PeId::from_xy(1, 1, 4), 4, 4).len(), 4);
    }

    #[test]
    fn torus_gives_uniform_degree() {
        let t = Topology::Mesh {
            diagonal: false,
            torus: true,
        };
        for i in 0..16 {
            assert_eq!(t.neighbors(PeId(i), 4, 4).len(), 4);
        }
    }

    #[test]
    fn diagonal_mesh_center_has_eight() {
        let t = Topology::Mesh {
            diagonal: true,
            torus: false,
        };
        assert_eq!(t.neighbors(PeId::from_xy(1, 1, 4), 4, 4).len(), 8);
    }

    #[test]
    fn hycube_reaches_multi_hop() {
        let t = Topology::HyCube { max_hops: 3 };
        let n = t.neighbors(PeId::from_xy(0, 0, 6), 6, 6);
        // 3 east + 3 south from the corner.
        assert_eq!(n.len(), 6);
        assert!(n.contains(&PeId::from_xy(3, 0, 6)));
    }

    #[test]
    fn rowcolumn_reaches_whole_row_and_column() {
        let t = Topology::RowColumn;
        let n = t.neighbors(PeId::from_xy(2, 2, 4), 4, 4);
        assert_eq!(n.len(), 3 + 3);
    }

    #[test]
    fn neighbors_never_contain_self() {
        for t in [
            Topology::Mesh {
                diagonal: true,
                torus: true,
            },
            Topology::HyCube { max_hops: 2 },
            Topology::RowColumn,
        ] {
            for i in 0..16 {
                assert!(!t.neighbors(PeId(i), 4, 4).contains(&PeId(i)));
            }
        }
    }

    #[test]
    fn mean_degree_orders_richness() {
        let mesh = Topology::Mesh {
            diagonal: false,
            torus: false,
        };
        let hycube = Topology::HyCube { max_hops: 3 };
        assert!(hycube.mean_degree(6, 6) > mesh.mean_degree(6, 6));
    }
}
