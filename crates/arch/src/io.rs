//! Loading and saving architecture descriptions as JSON.
//!
//! Architectures are plain data (C-SERDE); shipping them as files lets
//! users target custom CGRAs without recompiling:
//!
//! ```
//! use ptmap_arch::{io, presets};
//! let text = io::to_json(&presets::s4())?;
//! let back = io::from_json(&text)?;
//! assert_eq!(back, presets::s4());
//! # Ok::<(), ptmap_arch::io::ArchIoError>(())
//! ```

use crate::arch::CgraArch;
use std::fmt;
use std::path::Path;

/// Errors from architecture (de)serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArchIoError {
    /// JSON syntax or schema error.
    Json(serde_json::Error),
    /// Filesystem error.
    Io(std::io::Error),
}

impl fmt::Display for ArchIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchIoError::Json(e) => write!(f, "architecture json: {e}"),
            ArchIoError::Io(e) => write!(f, "architecture file: {e}"),
        }
    }
}

impl std::error::Error for ArchIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchIoError::Json(e) => Some(e),
            ArchIoError::Io(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for ArchIoError {
    fn from(e: serde_json::Error) -> Self {
        ArchIoError::Json(e)
    }
}

impl From<std::io::Error> for ArchIoError {
    fn from(e: std::io::Error) -> Self {
        ArchIoError::Io(e)
    }
}

/// Serializes an architecture to pretty JSON.
///
/// # Errors
///
/// Returns [`ArchIoError::Json`] on serialization failure.
pub fn to_json(arch: &CgraArch) -> Result<String, ArchIoError> {
    Ok(serde_json::to_string_pretty(arch)?)
}

/// Parses an architecture from JSON text.
///
/// # Errors
///
/// Returns [`ArchIoError::Json`] when the text is not a valid
/// architecture description.
pub fn from_json(text: &str) -> Result<CgraArch, ArchIoError> {
    Ok(serde_json::from_str(text)?)
}

/// Loads an architecture from a JSON file.
///
/// # Errors
///
/// Returns [`ArchIoError::Io`] on read failure or
/// [`ArchIoError::Json`] on parse failure.
pub fn load(path: impl AsRef<Path>) -> Result<CgraArch, ArchIoError> {
    from_json(&std::fs::read_to_string(path)?)
}

/// Saves an architecture to a JSON file.
///
/// # Errors
///
/// Returns [`ArchIoError`] variants on serialization or write failure.
pub fn save(arch: &CgraArch, path: impl AsRef<Path>) -> Result<(), ArchIoError> {
    std::fs::write(path, to_json(arch)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn every_preset_round_trips() {
        for arch in presets::evaluation_suite()
            .iter()
            .chain([&presets::hrea4()])
        {
            let text = to_json(arch).unwrap();
            let back = from_json(&text).unwrap();
            assert_eq!(&back, arch);
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ptmap-arch-io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s4.json");
        save(&presets::s4(), &path).unwrap();
        assert_eq!(load(&path).unwrap(), presets::s4());
    }

    #[test]
    fn bad_json_reports_error() {
        assert!(matches!(from_json("{ nope"), Err(ArchIoError::Json(_))));
        assert!(matches!(
            load("/nonexistent/file.json"),
            Err(ArchIoError::Io(_))
        ));
    }
}
