//! Dumps the preset architectures as JSON files into `archs/`.
use ptmap_arch::{io, presets};

fn main() {
    std::fs::create_dir_all("archs").expect("create archs dir");
    for arch in presets::evaluation_suite()
        .iter()
        .chain([&presets::hrea4()])
    {
        let path = format!("archs/{}.json", arch.name().to_lowercase());
        io::save(arch, &path).expect("write arch file");
        println!("wrote {path}");
    }
}
