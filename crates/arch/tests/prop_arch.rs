//! Property tests for topologies and the MRRG.

use proptest::prelude::*;
use ptmap_arch::{CgraArchBuilder, Mrrg, Pe, PeId, RouteNode, Topology};

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (any::<bool>(), any::<bool>())
            .prop_map(|(diagonal, torus)| Topology::Mesh { diagonal, torus }),
        (1u32..4).prop_map(|max_hops| Topology::HyCube { max_hops }),
        Just(Topology::RowColumn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Neighborhoods are symmetric for every modeled topology (all our
    /// interconnects are bidirected).
    #[test]
    fn neighbors_symmetric(t in arb_topology(), rows in 2u32..6, cols in 2u32..6) {
        for a in 0..rows * cols {
            for b in t.neighbors(PeId(a), rows, cols) {
                prop_assert!(
                    t.neighbors(b, rows, cols).contains(&PeId(a)),
                    "{t:?}: {a} -> {b} not symmetric"
                );
            }
        }
    }

    /// Every MRRG edge advances time by exactly one slot, and edges stay
    /// in range.
    #[test]
    fn mrrg_edges_advance_time(t in arb_topology(), ii in 1u32..6, lrf in 0u32..3, grf in 0u32..3) {
        let arch = CgraArchBuilder::new("t", 3, 3)
            .topology(t)
            .uniform_pe(Pe::full(lrf))
            .grf_size(grf)
            .build()
            .unwrap();
        let m = Mrrg::new(&arch, ii);
        for idx in 0..m.node_count() {
            let t0 = match m.decode(idx) {
                RouteNode::Pe { t, .. } | RouteNode::Grf { t } => t,
            };
            for &s in m.succ(idx) {
                prop_assert!((s as usize) < m.node_count());
                let t1 = match m.decode(s as usize) {
                    RouteNode::Pe { t, .. } | RouteNode::Grf { t } => t,
                };
                prop_assert_eq!(t1, (t0 + 1) % ii);
            }
        }
    }

    /// Decode/encode round-trips for every node of every MRRG.
    #[test]
    fn mrrg_decode_round_trip(ii in 1u32..8, grf in 0u32..4) {
        let arch = CgraArchBuilder::new("t", 2, 4)
            .uniform_pe(Pe::full(1))
            .grf_size(grf)
            .build()
            .unwrap();
        let m = Mrrg::new(&arch, ii);
        for idx in 0..m.node_count() {
            match m.decode(idx) {
                RouteNode::Pe { pe, t } => prop_assert_eq!(m.pe_slot(pe, t), idx),
                RouteNode::Grf { t } => prop_assert_eq!(m.grf_slot_at(t), Some(idx)),
            }
        }
    }

    /// Mean degree is monotone in HyCube hop count.
    #[test]
    fn hycube_degree_monotone(h in 1u32..4) {
        let a = Topology::HyCube { max_hops: h }.mean_degree(6, 6);
        let b = Topology::HyCube { max_hops: h + 1 }.mean_degree(6, 6);
        prop_assert!(b >= a);
    }
}
