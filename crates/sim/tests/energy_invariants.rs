//! Energy-model invariants across workloads and architectures.

use ptmap_arch::presets;
use ptmap_ir::dfg::build_dfg;
use ptmap_mapper::{map_dfg, MapperConfig};
use ptmap_model::MemoryProfiler;
use ptmap_sim::{simulate_pnl, EnergyModel};

#[test]
fn energy_scales_with_iterations() {
    let mut b = ptmap_ir::ProgramBuilder::new("k");
    let x = b.array("X", &[2048]);
    let i = b.open_loop("i", 2048);
    let v = b.add(b.load(x, &[b.idx(i)]), b.constant(1));
    b.store(x, &[b.idx(i)], v);
    b.close_loop();
    let p = b.finish();
    let nest = p.perfect_nests().remove(0);
    let dfg = build_dfg(&p, &nest, &[]).unwrap();
    let arch = presets::s4();
    let m = map_dfg(&dfg, &arch, &MapperConfig::default()).unwrap();
    let prof = MemoryProfiler::new(&p).profile(&nest, &arch, m.ii);
    let model = EnergyModel::default();
    let e_small = model.pnl_energy_with_iterations(&m, &dfg, 100, &prof, m.cycles(100));
    let e_large = model.pnl_energy_with_iterations(&m, &dfg, 1000, &prof, m.cycles(1000));
    // The off-chip term is workload-constant; the dynamic part must
    // scale linearly with iterations.
    assert!(e_large > e_small, "energy must grow with iterations");
    let dynamic_small =
        e_small - (prof.volume_bytes + prof.context_bytes) as f64 * model.offchip_pj_per_byte;
    let dynamic_large =
        e_large - (prof.volume_bytes + prof.context_bytes) as f64 * model.offchip_pj_per_byte;
    assert!((dynamic_large / dynamic_small - 10.0).abs() < 1.5);
}

#[test]
fn every_app_energy_positive_and_finite() {
    let model = EnergyModel::default();
    for (name, p) in ptmap_workloads::apps::all() {
        for nest in p.perfect_nests() {
            let dfg = build_dfg(&p, &nest, &[]).unwrap();
            let arch = presets::s4();
            let m = map_dfg(&dfg, &arch, &MapperConfig::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let prof = MemoryProfiler::new(&p).profile(&nest, &arch, m.ii);
            let sim = simulate_pnl(&m, &dfg, &nest, &prof);
            let e = model.pnl_energy(&m, &dfg, &nest, &prof, sim.cycles);
            assert!(e.is_finite() && e > 0.0, "{name}: energy {e}");
            assert!(model.edp(e, sim.cycles) > 0.0);
        }
    }
}

#[test]
fn offchip_constant_dominates_compute_per_word() {
    // Moving a word off-chip must cost more than computing on it — the
    // premise of data-access-aware optimization (Fig. 8).
    let m = EnergyModel::default();
    assert!(m.offchip_pj_per_byte * 4.0 > m.mul_pj + m.mem_pj);
}
