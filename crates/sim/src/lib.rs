//! Cycle-level execution and energy models for mapped CGRA kernels.
//!
//! The paper evaluates performance on a cycle-accurate simulator and
//! energy on synthesized power numbers plus CACTI for off-chip accesses.
//! This crate is the reproduction's stand-in (see DESIGN.md): it executes
//! a [`ptmap_mapper::Mapping`] against the paper's cycle formulas plus a
//! DB-bandwidth stall model, and prices energy with per-component
//! constants calibrated to typical 45 nm CGRA publications. Absolute
//! joules are not meaningful; *ratios* between mappers are, because they
//! derive from relative cycle counts and traffic volumes.
//!
//! # Example
//!
//! ```
//! use ptmap_ir::{ProgramBuilder, dfg::build_dfg};
//! use ptmap_arch::presets;
//! use ptmap_mapper::{map_dfg, MapperConfig};
//! use ptmap_model::MemoryProfiler;
//! use ptmap_sim::{simulate_pnl, EnergyModel};
//!
//! let mut b = ProgramBuilder::new("scale");
//! let x = b.array("X", &[1024]);
//! let i = b.open_loop("i", 1024);
//! let v = b.mul(b.load(x, &[b.idx(i)]), b.constant(3));
//! b.store(x, &[b.idx(i)], v);
//! b.close_loop();
//! let p = b.finish();
//! let nest = p.perfect_nests().remove(0);
//! let dfg = build_dfg(&p, &nest, &[]).unwrap();
//! let arch = presets::s4();
//! let mapping = map_dfg(&dfg, &arch, &MapperConfig::default())?;
//! let profile = MemoryProfiler::new(&p).profile(&nest, &arch, mapping.ii);
//!
//! let sim = simulate_pnl(&mapping, &dfg, &nest, &profile);
//! let energy = EnergyModel::default().pnl_energy(&mapping, &dfg, &nest, &profile, sim.cycles);
//! assert!(sim.cycles >= 1024);
//! assert!(energy > 0.0);
//! # Ok::<(), ptmap_mapper::MapError>(())
//! ```

pub mod dataflow;
pub mod energy;
pub mod exec;

pub use dataflow::execute_mapped_nest;
pub use energy::EnergyModel;
pub use exec::{simulate_pnl, verify_mapping, PnlSim};
