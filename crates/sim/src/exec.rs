//! Cycle-level execution of a mapped PNL.

use ptmap_ir::{Dfg, PerfectNest};
use ptmap_mapper::Mapping;
use ptmap_model::MemoryProfile;
use serde::{Deserialize, Serialize};

/// Off-chip transfer bandwidth in bytes per cycle, used for the DB stall
/// model. Transfers are double-buffered: they only stall the pipeline
/// when the kernel is memory-bound (`transfer > compute`).
pub const OFFCHIP_BYTES_PER_CYCLE: u64 = 16;

/// Total cycles under the double-buffering model: compute and transfer
/// overlap fully, so the longer of the two dominates.
pub fn overlap_cycles(compute: u64, transfer: u64) -> u64 {
    compute.max(transfer)
}

/// Result of simulating one PNL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PnlSim {
    /// Total cycles including pipeline fill/drain and DB stalls.
    pub cycles: u64,
    /// Cycles lost to off-CGRA data transfers not hidden by compute.
    pub stall_cycles: u64,
    /// Fraction of PE compute slots busy in the steady state.
    pub utilization: f64,
    /// Off-CGRA data volume in bytes (from the memory profile).
    pub volume_bytes: u64,
    /// Context-loading volume in bytes.
    pub context_bytes: u64,
}

/// Simulates one PNL: the pipelined loop runs `TC_l` iterations per
/// launch, once per iteration of the folded and imperfect-outer loops
/// (Eqn. 1–2), plus a stall term for off-CGRA traffic exceeding what the
/// pipeline can hide.
pub fn simulate_pnl(
    mapping: &Mapping,
    dfg: &Dfg,
    nest: &PerfectNest,
    profile: &MemoryProfile,
) -> PnlSim {
    debug_assert!(
        verify_mapping(dfg, mapping).is_ok(),
        "mapping must be valid"
    );
    let launches = nest.folded_tripcount() * nest.outer_tripcount();
    let compute = mapping.cycles(nest.pipelined_tripcount()) * launches;
    let transfer = profile.total_volume().div_ceil(OFFCHIP_BYTES_PER_CYCLE);
    let stall_cycles = transfer.saturating_sub(compute);
    PnlSim {
        cycles: overlap_cycles(compute, transfer),
        stall_cycles,
        utilization: mapping.utilization(),
        volume_bytes: profile.volume_bytes,
        context_bytes: profile.context_bytes,
    }
}

/// Checks that a mapping is consistent with its DFG: every node placed
/// exactly once, compute slots unique modulo II, and every edge's timing
/// satisfied.
///
/// # Errors
///
/// Returns a list of human-readable violations.
pub fn verify_mapping(dfg: &Dfg, mapping: &Mapping) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    if mapping.placements.len() != dfg.len() {
        problems.push(format!(
            "{} placements for {} nodes",
            mapping.placements.len(),
            dfg.len()
        ));
    }
    let mut time = vec![None::<u32>; dfg.len()];
    let mut slots = std::collections::HashSet::new();
    for p in &mapping.placements {
        if p.node.index() >= dfg.len() {
            problems.push(format!("placement of unknown node {}", p.node));
            continue;
        }
        if time[p.node.index()].replace(p.time).is_some() {
            problems.push(format!("node {} placed twice", p.node));
        }
        if !slots.insert((p.pe, p.time % mapping.ii)) {
            problems.push(format!(
                "compute slot conflict at ({}, {})",
                p.pe,
                p.time % mapping.ii
            ));
        }
    }
    for e in dfg.edges() {
        let (Some(ts), Some(td)) = (time[e.src.index()], time[e.dst.index()]) else {
            problems.push(format!("edge {}->{} has unplaced endpoint", e.src, e.dst));
            continue;
        };
        let dep = ts as i64 + dfg.nodes()[e.src.index()].latency() as i64;
        let arrive = td as i64 + e.dist as i64 * mapping.ii as i64;
        if arrive < dep {
            problems.push(format!(
                "edge {}->{} (dist {}) violates timing: departs {dep}, arrives {arrive}",
                e.src, e.dst, e.dist
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::dfg::build_dfg;
    use ptmap_ir::ProgramBuilder;
    use ptmap_mapper::{map_dfg, MapperConfig};
    use ptmap_model::MemoryProfiler;

    fn setup() -> (ptmap_ir::Program, PerfectNest, Dfg, Mapping) {
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array("X", &[512]);
        let y = b.array("Y", &[512]);
        let i = b.open_loop("i", 512);
        let v = b.add(
            b.mul(b.load(x, &[b.idx(i)]), b.constant(3)),
            b.load(y, &[b.idx(i)]),
        );
        b.store(y, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let m = map_dfg(&dfg, &presets::s4(), &MapperConfig::default()).unwrap();
        (p, nest, dfg, m)
    }

    #[test]
    fn cycles_dominated_by_formula() {
        let (p, nest, dfg, m) = setup();
        let prof = MemoryProfiler::new(&p).profile(&nest, &presets::s4(), m.ii);
        let sim = simulate_pnl(&m, &dfg, &nest, &prof);
        assert!(sim.cycles >= m.cycles(512));
        assert!(sim.cycles <= m.cycles(512) + sim.stall_cycles);
    }

    #[test]
    fn verify_accepts_mapper_output() {
        let (_, _, dfg, m) = setup();
        verify_mapping(&dfg, &m).unwrap();
    }

    #[test]
    fn verify_rejects_tampered_mapping() {
        let (_, _, dfg, mut m) = setup();
        // Force a slot conflict.
        let first = m.placements[0];
        m.placements[1].pe = first.pe;
        m.placements[1].time = first.time;
        assert!(verify_mapping(&dfg, &m).is_err());
    }

    #[test]
    fn verify_rejects_timing_violation() {
        let (_, _, dfg, mut m) = setup();
        // Move a consumer before its producer.
        let consumer = dfg.edges()[0].dst;
        for p in &mut m.placements {
            if p.node == consumer {
                p.time = 0;
            }
        }
        // (May also create a slot conflict; either way it must fail.)
        assert!(verify_mapping(&dfg, &m).is_err());
    }

    #[test]
    fn utilization_in_unit_range() {
        let (p, nest, dfg, m) = setup();
        let prof = MemoryProfiler::new(&p).profile(&nest, &presets::s4(), m.ii);
        let sim = simulate_pnl(&m, &dfg, &nest, &prof);
        assert!(sim.utilization > 0.0 && sim.utilization <= 1.0);
    }
}
