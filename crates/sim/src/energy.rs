//! Energy and EDP estimation.
//!
//! Per-component energy constants in picojoules, in the range of
//! published 45 nm CGRA numbers. Only *ratios* between mappings matter
//! for the reproduction (EDP reductions), so the constants are chosen for
//! plausible relative weight: off-chip traffic is ~an order of magnitude
//! costlier per word than a PE operation, which is what makes the
//! data-access-aware Pareto mode of PT-Map pay off.

use ptmap_ir::{Dfg, OpClass, OpKind, PerfectNest};
use ptmap_mapper::Mapping;
use ptmap_model::MemoryProfile;
use serde::{Deserialize, Serialize};

/// Energy model with per-component constants (pJ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one arithmetic ALU operation.
    pub alu_pj: f64,
    /// Energy of one multiply (wider datapath activity).
    pub mul_pj: f64,
    /// Energy of one divide.
    pub div_pj: f64,
    /// Energy of one logic/compare operation.
    pub logic_pj: f64,
    /// Energy of one DB load or store.
    pub mem_pj: f64,
    /// Energy of one constant materialization or routed move.
    pub move_pj: f64,
    /// Energy of holding/moving one value through one routing residency.
    pub route_pj: f64,
    /// Context fetch energy per PE per cycle.
    pub context_pj: f64,
    /// Static/leakage energy per PE per cycle.
    pub static_pj: f64,
    /// Off-CGRA access energy per byte (CACTI-style DRAM/L2 figure).
    pub offchip_pj_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            alu_pj: 2.0,
            mul_pj: 6.0,
            div_pj: 12.0,
            logic_pj: 1.5,
            mem_pj: 8.0,
            move_pj: 0.5,
            route_pj: 0.6,
            context_pj: 0.3,
            static_pj: 0.15,
            offchip_pj_per_byte: 30.0,
        }
    }
}

impl EnergyModel {
    /// Energy of one operation instance.
    pub fn op_energy(&self, op: OpKind) -> f64 {
        match op {
            OpKind::Mul => self.mul_pj,
            OpKind::Div => self.div_pj,
            _ => match op.class() {
                OpClass::Arithmetic => self.alu_pj,
                OpClass::Logic => self.logic_pj,
                OpClass::Memory => self.mem_pj,
                OpClass::Move => self.move_pj,
            },
        }
    }

    /// Total energy (pJ) of executing a mapped PNL for its full
    /// iteration space, given the already-simulated cycle count.
    pub fn pnl_energy(
        &self,
        mapping: &Mapping,
        dfg: &Dfg,
        nest: &PerfectNest,
        profile: &MemoryProfile,
        cycles: u64,
    ) -> f64 {
        self.pnl_energy_with_iterations(mapping, dfg, nest.total_iterations(), profile, cycles)
    }

    /// Like [`pnl_energy`](Self::pnl_energy) with an explicit iteration
    /// count of the (possibly unrolled) pipelined body — unrolled bodies
    /// execute fewer, larger iterations.
    pub fn pnl_energy_with_iterations(
        &self,
        mapping: &Mapping,
        dfg: &Dfg,
        iterations: u64,
        profile: &MemoryProfile,
        cycles: u64,
    ) -> f64 {
        let iterations = iterations as f64;
        let per_iter_ops: f64 = dfg.nodes().iter().map(|n| self.op_energy(n.op)).sum();
        let per_iter_routes = mapping.route_slots as f64 * self.route_pj;
        let per_cycle = mapping.pe_count as f64 * (self.context_pj + self.static_pj);
        let offchip =
            (profile.volume_bytes + profile.context_bytes) as f64 * self.offchip_pj_per_byte;
        (per_iter_ops + per_iter_routes) * iterations + per_cycle * cycles as f64 + offchip
    }

    /// Energy-delay product in pJ·cycles.
    pub fn edp(&self, energy_pj: f64, cycles: u64) -> f64 {
        energy_pj * cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::dfg::build_dfg;
    use ptmap_ir::ProgramBuilder;
    use ptmap_mapper::{map_dfg, MapperConfig};
    use ptmap_model::MemoryProfiler;

    #[test]
    fn op_energy_ordering() {
        let m = EnergyModel::default();
        assert!(m.op_energy(OpKind::Load) > m.op_energy(OpKind::Add));
        assert!(m.op_energy(OpKind::Mul) > m.op_energy(OpKind::Add));
        assert!(m.op_energy(OpKind::Route) < m.op_energy(OpKind::Add));
    }

    #[test]
    fn offchip_traffic_dominates_when_thrashing() {
        // Two profiles differing only in volume: higher volume -> higher
        // energy, disproportionately.
        let mut b = ProgramBuilder::new("k");
        let x = b.array("X", &[256]);
        let i = b.open_loop("i", 256);
        let v = b.add(b.load(x, &[b.idx(i)]), b.constant(1));
        b.store(x, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let arch = presets::s4();
        let mapping = map_dfg(&dfg, &arch, &MapperConfig::default()).unwrap();
        let prof = MemoryProfiler::new(&p).profile(&nest, &arch, mapping.ii);
        let model = EnergyModel::default();
        let cycles = mapping.cycles(256);
        let e1 = model.pnl_energy(&mapping, &dfg, &nest, &prof, cycles);
        let mut thrash = prof;
        thrash.volume_bytes *= 10;
        let e2 = model.pnl_energy(&mapping, &dfg, &nest, &thrash, cycles);
        assert!(e2 > e1 * 1.5, "e2 {e2} vs e1 {e1}");
    }

    #[test]
    fn edp_is_product() {
        let m = EnergyModel::default();
        assert_eq!(m.edp(10.0, 5), 50.0);
    }
}
