//! Functional execution of a mapped PNL's DFG over real data.
//!
//! The strongest correctness check in the repository: execute the
//! (transformed, unrolled) DFG iteration by iteration against a memory
//! image and compare with the reference interpreter's run of the
//! *original* program. Equality of final array states proves the whole
//! stack — dependence-checked transformation, unrolled DFG construction
//! (CSE, reduction reassociation, memory-carried edges), and the
//! execution model — preserved the program's semantics.
//!
//! Scope notes:
//!
//! * Scalar accumulators live in registers; their final values are
//!   architectural state, not memory, so validation compares arrays.
//! * Padded iteration domains (ceil tiling/unrolling of non-divisible
//!   tripcounts) over-execute by design; validate with divisible sizes.

use ptmap_ir::dfg::EdgeKind;
use ptmap_ir::interp::{apply_binary, apply_unary, Memory};
use ptmap_ir::{Dfg, LoopId, OpKind, PerfectNest, Program};
use std::collections::BTreeMap;

/// Executes the DFG for the whole iteration space of the nest, mutating
/// `mem`. `unroll` must be the vector the DFG was built with. Returns
/// the number of pipelined iterations executed.
///
/// # Panics
///
/// Panics if the DFG's distance-0 subgraph is cyclic or an access
/// references an undeclared array.
pub fn execute_mapped_nest(
    program: &Program,
    nest: &PerfectNest,
    unroll: &[(LoopId, u32)],
    dfg: &Dfg,
    mem: &mut Memory,
) -> u64 {
    let factor = |l: LoopId| -> u64 {
        unroll
            .iter()
            .find(|&&(ul, _)| ul == l)
            .map(|&(_, f)| f as u64)
            .unwrap_or(1)
    };
    // Effective (post-unroll) tripcounts per nest loop.
    let eff: Vec<u64> = nest
        .loops
        .iter()
        .zip(&nest.tripcounts)
        .map(|(&l, &tc)| tc.div_ceil(factor(l)))
        .collect();
    let pipelined = nest.pipelined_loop();
    let pip_tc = *eff.last().expect("nest non-empty");

    // Launch loops: imperfect outer loops then the folded nest loops.
    let launch_loops: Vec<(LoopId, u64)> = nest
        .outer
        .iter()
        .copied()
        .chain(
            nest.loops[..nest.loops.len() - 1]
                .iter()
                .copied()
                .zip(eff.iter().copied()),
        )
        .collect();

    let order = dfg.topo_order_dist0().expect("acyclic dist-0 subgraph");
    let max_dist = dfg.edges().iter().map(|e| e.dist).max().unwrap_or(0) as usize;

    // Pre-resolve per-node data inputs: (producer, dist), preserving
    // operand order; a single recorded edge for `x op x` is used twice
    // by the evaluator.
    let inputs: Vec<Vec<(usize, u32)>> = (0..dfg.len())
        .map(|n| {
            dfg.preds(ptmap_ir::NodeId(n as u32))
                .filter(|e| e.kind == EdgeKind::Data)
                .map(|e| (e.src.index(), e.dist))
                .collect()
        })
        .collect();

    let mut executed = 0u64;
    let mut env: BTreeMap<LoopId, i64> = BTreeMap::new();
    let mut launch_idx = vec![0u64; launch_loops.len()];
    loop {
        for (k, &(l, _)) in launch_loops.iter().enumerate() {
            env.insert(l, launch_idx[k] as i64);
        }
        // One pipeline launch: values carried across iterations live in
        // per-node histories (reset per launch, like the pipeline).
        let mut history: Vec<Vec<i64>> = vec![vec![0; max_dist + 1]; dfg.len()];
        let mut value = vec![0i64; dfg.len()];
        for t in 0..pip_tc {
            env.insert(pipelined, t as i64);
            for &n in &order {
                let node = &dfg.nodes()[n];
                let operand = |k: usize| -> i64 {
                    let ins = &inputs[n];
                    let (src, dist) = if ins.len() == 1 {
                        ins[0] // `x op x`: both operands from the one edge
                    } else {
                        ins[k]
                    };
                    if dist == 0 {
                        value[src]
                    } else if t >= dist as u64 {
                        history[src][((t - dist as u64) % (max_dist as u64 + 1)) as usize]
                    } else {
                        0
                    }
                };
                value[n] = match node.op {
                    OpKind::Const => match (node.imm, node.scalar) {
                        (Some(c), _) => c,
                        (None, Some(s)) => mem.scalar(s),
                        (None, None) => env.get(&loop_of(node)).copied().unwrap_or(0),
                    },
                    OpKind::Load => {
                        let acc = node.access.as_ref().expect("load has access");
                        mem.load(acc.array, linearize(program, acc, &env))
                    }
                    OpKind::Store => {
                        let acc = node.access.as_ref().expect("store has access");
                        let v = operand(0);
                        mem.store(acc.array, linearize(program, acc, &env), v);
                        v
                    }
                    OpKind::Route => operand(0),
                    op => {
                        let ins = inputs[n].len();
                        if ins == 0 {
                            0
                        } else if ins == 1 && !is_self_loop(dfg, n) {
                            // Unary, or binary with shared operand.
                            if is_binary(op) {
                                apply_binary(op, operand(0), operand(0))
                            } else {
                                apply_unary(op, operand(0))
                            }
                        } else {
                            apply_binary(op, operand(0), operand(1))
                        }
                    }
                };
                // Reduction accumulators: a self edge folds the previous
                // iteration's own value into this one.
                if is_self_loop(dfg, n) {
                    let prev = if t > 0 {
                        history[n][((t - 1) % (max_dist as u64 + 1)) as usize]
                    } else {
                        0
                    };
                    // value currently holds op(x, x) or op(x, 0); rebuild
                    // as op(prev, x) using the non-self operand.
                    let x = non_self_operand(dfg, n, &inputs, &value, &history, t, max_dist);
                    value[n] = apply_binary(node.op, prev, x);
                }
                history[n][(t % (max_dist as u64 + 1)) as usize] = value[n];
            }
            executed += 1;
        }
        // Advance the launch odometer.
        let mut k = launch_loops.len();
        loop {
            if k == 0 {
                return executed;
            }
            k -= 1;
            launch_idx[k] += 1;
            if launch_idx[k] < launch_loops[k].1 {
                break;
            }
            launch_idx[k] = 0;
        }
    }
}

fn is_binary(op: OpKind) -> bool {
    !matches!(
        op,
        OpKind::Abs | OpKind::Route | OpKind::Const | OpKind::Load | OpKind::Store
    )
}

fn loop_of(_node: &ptmap_ir::DfgNode) -> LoopId {
    // Index-leaf constants are not bound to a loop in the DFG; they are
    // rare (no evaluation workload uses them) and default to 0.
    LoopId(u32::MAX)
}

fn is_self_loop(dfg: &Dfg, n: usize) -> bool {
    dfg.edges()
        .iter()
        .any(|e| e.src.index() == n && e.dst.index() == n && e.dist > 0)
}

#[allow(clippy::too_many_arguments)]
fn non_self_operand(
    dfg: &Dfg,
    n: usize,
    inputs: &[Vec<(usize, u32)>],
    value: &[i64],
    history: &[Vec<i64>],
    t: u64,
    max_dist: usize,
) -> i64 {
    for &(src, dist) in &inputs[n] {
        if src == n {
            continue;
        }
        return if dist == 0 {
            value[src]
        } else if t >= dist as u64 {
            history[src][((t - dist as u64) % (max_dist as u64 + 1)) as usize]
        } else {
            0
        };
    }
    let _ = dfg;
    0
}

fn linearize(program: &Program, acc: &ptmap_ir::ArrayAccess, env: &BTreeMap<LoopId, i64>) -> i64 {
    let decl = program.array(acc.array).expect("declared array");
    if acc.indices.len() == 1 && decl.dims.len() != 1 {
        return acc.indices[0].eval(env);
    }
    acc.linearize(&decl.dims, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_ir::dfg::build_dfg;
    use ptmap_ir::interp;
    use ptmap_ir::ProgramBuilder;

    fn gemm(n: u64) -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[n, n]);
        let bb = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        let i = b.open_loop("i", n);
        let j = b.open_loop("j", n);
        let k = b.open_loop("k", n);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn gemm_dfg_matches_interpreter() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let reference = interp::run_patterned(&p, 42);
        let mut mem = Memory::patterned(&p, 42);
        execute_mapped_nest(&p, &nest, &[], &dfg, &mut mem);
        assert_eq!(
            mem.array(ptmap_ir::ArrayId(2)),
            reference.array(ptmap_ir::ArrayId(2))
        );
    }

    #[test]
    fn unrolled_gemm_matches_interpreter() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        for unroll in [vec![(i, 2u32)], vec![(i, 2), (j, 4)], vec![(j, 8)]] {
            let dfg = build_dfg(&p, &nest, &unroll).unwrap();
            let reference = interp::run_patterned(&p, 9);
            let mut mem = Memory::patterned(&p, 9);
            execute_mapped_nest(&p, &nest, &unroll, &dfg, &mut mem);
            assert_eq!(
                mem.array(ptmap_ir::ArrayId(2)),
                reference.array(ptmap_ir::ArrayId(2)),
                "unroll {unroll:?}"
            );
        }
    }

    #[test]
    fn unrolled_pipelined_loop_matches() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let k = nest.loops[2];
        let unroll = vec![(k, 4u32)];
        let dfg = build_dfg(&p, &nest, &unroll).unwrap();
        let reference = interp::run_patterned(&p, 5);
        let mut mem = Memory::patterned(&p, 5);
        execute_mapped_nest(&p, &nest, &unroll, &dfg, &mut mem);
        assert_eq!(
            mem.array(ptmap_ir::ArrayId(2)),
            reference.array(ptmap_ir::ArrayId(2))
        );
    }

    #[test]
    fn stencil_with_memory_recurrence_matches() {
        // A[i] = A[i-1] + A[i]: cross-iteration store->load through the DB.
        let mut b = ProgramBuilder::new("scan");
        let a = b.array("A", &[64]);
        let i = b.open_loop("i", 63);
        let v = b.add(
            b.load(a, &[b.idx(i)]),
            b.load(a, &[b.idx(i) + ptmap_ir::AffineExpr::constant(1)]),
        );
        b.store(a, &[b.idx(i) + ptmap_ir::AffineExpr::constant(1)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let reference = interp::run_patterned(&p, 3);
        let mut mem = Memory::patterned(&p, 3);
        execute_mapped_nest(&p, &nest, &[], &dfg, &mut mem);
        assert_eq!(
            mem.array(ptmap_ir::ArrayId(0)),
            reference.array(ptmap_ir::ArrayId(0))
        );
    }

    #[test]
    fn shared_operand_square_matches() {
        // B[i] = A[i] * A[i] exercises the single-edge binary case.
        let mut b = ProgramBuilder::new("sq");
        let a = b.array("A", &[32]);
        let out = b.array("B", &[32]);
        let i = b.open_loop("i", 32);
        let x = b.load(a, &[b.idx(i)]);
        b.store(out, &[b.idx(i)], b.mul(x.clone(), x));
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let reference = interp::run_patterned(&p, 8);
        let mut mem = Memory::patterned(&p, 8);
        execute_mapped_nest(&p, &nest, &[], &dfg, &mut mem);
        assert_eq!(
            mem.array(ptmap_ir::ArrayId(1)),
            reference.array(ptmap_ir::ArrayId(1))
        );
    }

    #[test]
    fn live_in_scalar_matches() {
        // B[i] = alpha * A[i].
        let mut b = ProgramBuilder::new("scale");
        let a = b.array("A", &[16]);
        let out = b.array("B", &[16]);
        let alpha = b.scalar("alpha");
        let i = b.open_loop("i", 16);
        let v = b.mul(b.read_scalar(alpha), b.load(a, &[b.idx(i)]));
        b.store(out, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let reference = interp::run_patterned(&p, 12);
        let mut mem = Memory::patterned(&p, 12);
        execute_mapped_nest(&p, &nest, &[], &dfg, &mut mem);
        assert_eq!(
            mem.array(ptmap_ir::ArrayId(1)),
            reference.array(ptmap_ir::ArrayId(1))
        );
    }
}
