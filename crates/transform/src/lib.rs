//! PT-Map's program transformation engine.
//!
//! The crate implements the paper's Table-1 primitive space and the
//! top-down exploration of Section 3.2:
//!
//! * [`lit`] — the *loop index tree* (LIT) representation used to steer
//!   exploration, with a virtual root and PNL detection;
//! * [`primitives`] — program rewrites with dependence-checked legality:
//!   loop fusion/fission (program level), reordering, strip-mining/
//!   tiling, flattening (inter-loop), and the descriptor side of
//!   unrolling (intra-loop; the DFG builder applies it);
//! * [`mod@explore`] — the three-level exploration (program-level fusion
//!   heuristics → out-PNL BFS → in-PNL order/tile-or-flatten/unroll
//!   enumeration) producing a [`result::ResultForest`] with one result
//!   array per PNL.
//!
//! # Example
//!
//! ```
//! use ptmap_ir::ProgramBuilder;
//! use ptmap_transform::{explore, ExploreConfig};
//!
//! let mut b = ProgramBuilder::new("scale");
//! let x = b.array("X", &[4096]);
//! let i = b.open_loop("i", 4096);
//! let v = b.mul(b.load(x, &[b.idx(i)]), b.constant(3));
//! b.store(x, &[b.idx(i)], v);
//! b.close_loop();
//! let p = b.finish();
//!
//! let forest = explore(&p, &ExploreConfig::default());
//! assert!(!forest.variants.is_empty());
//! // Every variant has one result array for the single PNL.
//! assert!(forest.variants.iter().all(|v| v.pnl_candidates.len() == 1));
//! ```

pub mod config;
pub mod error;
pub mod explore;
pub mod lit;
pub mod primitives;
pub mod result;

pub use config::{ExploreConfig, FusionMode};
pub use error::TransformError;
pub use explore::{explore, explore_budgeted};
pub use lit::{Lit, LitNode};
pub use result::{ExploreStats, PnlCandidate, ProgramVariant, ResultForest};
