//! Transformation error type.

use ptmap_ir::LoopId;
use std::fmt;

/// Errors raised by transformation primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransformError {
    /// The referenced loop does not exist.
    UnknownLoop(LoopId),
    /// Fusion requires adjacent sibling loops.
    NotAdjacent(LoopId, LoopId),
    /// Fusion requires equal tripcounts.
    TripcountMismatch {
        /// First loop's tripcount.
        a: u64,
        /// Second loop's tripcount.
        b: u64,
    },
    /// A dependence forbids the requested reordering.
    IllegalReorder,
    /// A dependence forbids the requested fusion.
    IllegalFusion,
    /// A dependence forbids the requested fission.
    IllegalFission,
    /// The access patterns do not admit flattening the loop pair.
    NotFlattenable,
    /// Flattening/reordering requires a perfectly nested pair/band.
    NotPerfectlyNested,
    /// A tile size of 0 or 1 is meaningless.
    BadTileSize(u64),
    /// The reorder permutation does not cover the nest's loops.
    BadPermutation,
    /// The compilation budget's deadline (or work limit) ran out while
    /// exploring; checked per variant branch, so exploration exits
    /// promptly instead of finishing the whole space.
    Timeout,
    /// The compilation budget was cancelled from outside.
    Cancelled,
}

impl From<ptmap_governor::BudgetExceeded> for TransformError {
    fn from(e: ptmap_governor::BudgetExceeded) -> Self {
        match e {
            ptmap_governor::BudgetExceeded::Cancelled => TransformError::Cancelled,
            ptmap_governor::BudgetExceeded::Timeout
            | ptmap_governor::BudgetExceeded::WorkExhausted => TransformError::Timeout,
        }
    }
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::UnknownLoop(l) => write!(f, "unknown loop {l}"),
            TransformError::NotAdjacent(a, b) => {
                write!(f, "loops {a} and {b} are not adjacent siblings")
            }
            TransformError::TripcountMismatch { a, b } => {
                write!(f, "tripcounts {a} and {b} differ")
            }
            TransformError::IllegalReorder => write!(f, "a dependence forbids this loop order"),
            TransformError::IllegalFusion => write!(f, "a dependence forbids fusing these loops"),
            TransformError::IllegalFission => {
                write!(f, "a dependence forbids distributing this loop")
            }
            TransformError::NotFlattenable => {
                write!(f, "access patterns do not admit flattening this loop pair")
            }
            TransformError::NotPerfectlyNested => {
                write!(f, "transformation requires a perfectly nested band")
            }
            TransformError::BadTileSize(t) => write!(f, "tile size {t} is not meaningful"),
            TransformError::BadPermutation => {
                write!(f, "permutation does not match the nest's loops")
            }
            TransformError::Timeout => {
                write!(f, "exploration timed out: compilation budget exceeded")
            }
            TransformError::Cancelled => write!(f, "exploration cancelled"),
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase() {
        for e in [
            TransformError::IllegalReorder,
            TransformError::NotFlattenable,
            TransformError::BadTileSize(1),
        ] {
            let m = e.to_string();
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn governor_variant_displays() {
        assert_eq!(
            TransformError::Timeout.to_string(),
            "exploration timed out: compilation budget exceeded"
        );
        assert_eq!(
            TransformError::Cancelled.to_string(),
            "exploration cancelled"
        );
        use ptmap_governor::BudgetExceeded;
        assert_eq!(
            TransformError::from(BudgetExceeded::Timeout),
            TransformError::Timeout
        );
        assert_eq!(
            TransformError::from(BudgetExceeded::Cancelled),
            TransformError::Cancelled
        );
    }
}
