//! PT-Map's top-down exploration (Section 3.2).
//!
//! Three levels:
//!
//! 1. **Program-level** — fusion/fission heuristics restructure the whole
//!    program; each surviving (deduplicated) restructuring becomes a
//!    [`ProgramVariant`] with its own LIT.
//! 2. **Out-PNL** — a BFS over non-PNL LIT nodes attempts to tile them
//!    and lower the tiled index toward the PNLs (tile + distribute);
//!    successful compositions branch additional variants.
//! 3. **In-PNL** — per PNL: legal reorderings of the innermost band,
//!    then innermost tiling *or* flattening for temporal granularity,
//!    then multi-dimensional unrolling for spatial granularity.
//!
//! Every candidate carries the *recipe* of primitives that produced it so
//! the final context-generation stage can replay the chosen candidates
//! onto one combined program.

use crate::config::{ExploreConfig, FusionMode};
use crate::primitives;
use crate::result::{PnlCandidate, ProgramVariant, ResultForest};
use ptmap_governor::Budget;
use ptmap_ir::{LoopId, PerfectNest, Program};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One replayable transformation step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recipe {
    /// Reorder the PNL rooted at `root` to `order`.
    Reorder {
        /// PNL root loop.
        root: LoopId,
        /// New chain order, outermost first.
        order: Vec<LoopId>,
    },
    /// Strip-mine `target` with `tile`.
    StripMine {
        /// Loop to split.
        target: LoopId,
        /// Tile size.
        tile: u64,
    },
    /// Flatten the perfect pair rooted at `outer`.
    Flatten {
        /// Outer loop of the pair.
        outer: LoopId,
    },
}

/// Replays a recipe onto a program.
///
/// # Errors
///
/// Propagates the underlying primitive's [`crate::TransformError`].
pub fn apply_recipe(
    program: &Program,
    recipe: &[Recipe],
) -> Result<Program, crate::TransformError> {
    let mut p = program.clone();
    for step in recipe {
        p = match step {
            Recipe::Reorder { root, order } => primitives::reorder(&p, *root, order)?,
            Recipe::StripMine { target, tile } => primitives::strip_mine(&p, *target, *tile)?.0,
            Recipe::Flatten { outer } => primitives::flatten(&p, *outer)?.0,
        };
    }
    Ok(p)
}

/// Runs the full top-down exploration with an unlimited budget.
pub fn explore(program: &Program, config: &ExploreConfig) -> ResultForest {
    explore_budgeted(program, config, &Budget::unlimited())
        .expect("unlimited budget cannot run out")
}

/// [`explore`] under a cooperative [`Budget`]: the budget is checked per
/// fusion-mode variant, per out-PNL branch, and per in-PNL loop order —
/// never inside a single primitive — so exploration exits promptly when
/// it runs out without adding measurable cost when it does not.
///
/// # Errors
///
/// [`crate::TransformError::Timeout`] / [`crate::TransformError::Cancelled`]
/// when the budget runs out mid-exploration.
pub fn explore_budgeted(
    program: &Program,
    config: &ExploreConfig,
    budget: &Budget,
) -> Result<ResultForest, crate::TransformError> {
    let mut variants: Vec<(Program, FusionMode)> = Vec::new();
    for &mode in &config.fusion_modes {
        budget.check()?;
        let p = apply_fusion_mode(program, mode);
        if !variants.iter().any(|(q, _)| q == &p) {
            variants.push((p, mode));
        }
    }
    // Out-PNL: branch tiled-and-distributed variants.
    let mut branched: Vec<(Program, FusionMode)> = Vec::new();
    for (p, mode) in &variants {
        budget.check()?;
        for q in out_pnl_variants(p, config) {
            if !variants.iter().any(|(v, _)| v == &q) && !branched.iter().any(|(v, _)| v == &q) {
                branched.push((q, *mode));
            }
        }
    }
    variants.extend(branched);

    let mut forest = ResultForest::default();
    for (p, fusion) in variants {
        let arc = Arc::new(p);
        let nests = arc.perfect_nests();
        let mut pnl_candidates: Vec<Vec<PnlCandidate>> = Vec::with_capacity(nests.len());
        for nest in &nests {
            pnl_candidates.push(in_pnl_explore(
                &arc,
                nest,
                config,
                &mut forest.stats,
                budget,
            )?);
        }
        forest.variants.push(ProgramVariant {
            program: arc,
            fusion,
            pnl_candidates,
        });
    }
    Ok(forest)
}

// ---------------------------------------------------------------------
// Program level.

/// Applies one program-level fusion/fission heuristic (used by the
/// exploration and by external tuners searching the same space).
pub fn apply_fusion_mode(program: &Program, mode: FusionMode) -> Program {
    match mode {
        FusionMode::AsIs => program.clone(),
        FusionMode::NoFuse => fixpoint_fission(program),
        FusionMode::MaxFuse => fixpoint_fusion(program, false),
        FusionMode::SmartFuse => fixpoint_fusion(program, true),
    }
}

fn fixpoint_fission(program: &Program) -> Program {
    let mut p = program.clone();
    loop {
        let mut changed = false;
        let targets: Vec<LoopId> = multi_part_loops(&p);
        for l in targets {
            if let Ok(q) = primitives::fission(&p, l) {
                if q != p {
                    p = q;
                    changed = true;
                    break; // re-scan: ids shifted
                }
            }
        }
        if !changed {
            return p;
        }
    }
}

fn multi_part_loops(p: &Program) -> Vec<LoopId> {
    fn rec(nodes: &[ptmap_ir::Node], out: &mut Vec<LoopId>) {
        for n in nodes {
            if let ptmap_ir::Node::Loop(l) = n {
                if l.body.len() > 1 {
                    out.push(l.id);
                }
                rec(&l.body, out);
            }
        }
    }
    let mut out = Vec::new();
    rec(&p.roots, &mut out);
    out
}

fn fixpoint_fusion(program: &Program, smart: bool) -> Program {
    let mut p = program.clone();
    loop {
        let mut changed = false;
        for (a, b) in adjacent_sibling_loops(&p) {
            if smart && !shares_arrays(&p, a, b) {
                continue;
            }
            if let Ok(q) = primitives::fuse(&p, a, b) {
                p = q;
                changed = true;
                break;
            }
        }
        if !changed {
            return p;
        }
    }
}

fn adjacent_sibling_loops(p: &Program) -> Vec<(LoopId, LoopId)> {
    fn rec(nodes: &[ptmap_ir::Node], out: &mut Vec<(LoopId, LoopId)>) {
        let loops: Vec<&ptmap_ir::Loop> =
            nodes.iter().filter_map(ptmap_ir::Node::as_loop).collect();
        // Adjacent means consecutive in the body node list.
        for w in nodes.windows(2) {
            if let (ptmap_ir::Node::Loop(a), ptmap_ir::Node::Loop(b)) = (&w[0], &w[1]) {
                if a.tripcount == b.tripcount {
                    out.push((a.id, b.id));
                }
            }
        }
        for l in loops {
            rec(&l.body, out);
        }
    }
    let mut out = Vec::new();
    rec(&p.roots, &mut out);
    out
}

fn shares_arrays(p: &Program, a: LoopId, b: LoopId) -> bool {
    let arrays_of = |l: LoopId| -> std::collections::BTreeSet<ptmap_ir::ArrayId> {
        p.find_loop(l)
            .map(|lp| {
                lp.all_stmts()
                    .iter()
                    .flat_map(|s| {
                        let (reads, w) = s.accesses();
                        reads
                            .into_iter()
                            .map(|r| r.array)
                            .chain(w.map(|w| w.array))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    !arrays_of(a).is_disjoint(&arrays_of(b))
}

// ---------------------------------------------------------------------
// Out-PNL level.

/// Non-PNL nodes with only loop children can be tiled and distributed:
/// strip-mine the node, then fission the inner replica over its children
/// so each child PNL deepens under the tile loop.
fn out_pnl_variants(p: &Program, config: &ExploreConfig) -> Vec<Program> {
    let mut out = Vec::new();
    let lit = crate::lit::Lit::build(p);
    let tiles: Vec<u64> = config.tile_sizes.iter().copied().take(2).collect();
    for (idx, node) in lit.nodes().iter().enumerate() {
        let crate::lit::LitNode::Loop { id, tripcount } = node else {
            continue;
        };
        if lit.is_pnl(idx) {
            continue;
        }
        // Only loop children (statements would be re-executed per tile).
        let only_loops = lit
            .children(idx)
            .iter()
            .all(|&k| matches!(lit.nodes()[k], crate::lit::LitNode::Loop { .. }));
        if !only_loops || lit.children(idx).len() < 2 {
            continue;
        }
        for &t in &tiles {
            if t >= *tripcount {
                continue;
            }
            let Ok((q, _outer)) = primitives::strip_mine(p, *id, t) else {
                continue;
            };
            let Ok(q) = primitives::fission(&q, *id) else {
                continue;
            };
            out.push(q);
            break; // one tile size per node keeps the branch count low
        }
    }
    out
}

// ---------------------------------------------------------------------
// In-PNL level.

fn in_pnl_explore(
    program: &Arc<Program>,
    nest: &PerfectNest,
    config: &ExploreConfig,
    stats: &mut crate::result::ExploreStats,
    budget: &Budget,
) -> Result<Vec<PnlCandidate>, crate::TransformError> {
    let mut out: Vec<PnlCandidate> = Vec::new();
    let root = nest.loops[0];

    // Stage 1: loop order enumeration over the innermost band.
    let orders = band_orders(nest, config.reorder_depth);
    for order in orders {
        budget.check()?;
        stats.orders_enumerated += 1;
        let order_recipe: Vec<Recipe> = if order == nest.loops {
            Vec::new()
        } else {
            vec![Recipe::Reorder {
                root,
                order: order.clone(),
            }]
        };
        let base = match apply_recipe(program, &order_recipe) {
            Ok(p) => p,
            Err(_) => {
                stats.orders_illegal += 1;
                continue; // illegal order
            }
        };
        let pipelined = *order.last().expect("non-empty nest");

        // Stage 2: innermost tiling or flattening.
        let mut structures: Vec<(Program, Vec<Recipe>, String)> = vec![(
            base.clone(),
            order_recipe.clone(),
            format!("order{order:?}"),
        )];
        let pip_tc = base.tripcount(pipelined).unwrap_or(0);
        for &t in &config.tile_sizes {
            if t >= pip_tc || t < 2 {
                continue;
            }
            if let Ok((q, _)) = primitives::strip_mine(&base, pipelined, t) {
                stats.tiled += 1;
                let mut r = order_recipe.clone();
                r.push(Recipe::StripMine {
                    target: pipelined,
                    tile: t,
                });
                structures.push((q, r, format!("order{order:?}+tile{t}")));
            }
        }
        if order.len() >= 2 {
            let outer_pair = order[order.len() - 2];
            if let Ok((q, _flat)) = primitives::flatten(&base, outer_pair) {
                stats.flattened += 1;
                let mut r = order_recipe.clone();
                r.push(Recipe::Flatten { outer: outer_pair });
                structures.push((q, r, format!("order{order:?}+flatten")));
            }
        }

        // Stage 3: multi-dimensional unrolling.
        for (q, recipe, desc) in structures {
            let arc = Arc::new(q);
            let Some(qnest) = find_nest(&arc, pipelined) else {
                continue;
            };
            for unroll in unroll_vectors(&qnest, config) {
                if !unroll.is_empty() {
                    stats.unrolled += 1;
                }
                let udesc = if unroll.is_empty() {
                    desc.clone()
                } else {
                    format!("{desc}+unroll{unroll:?}")
                };
                out.push(PnlCandidate {
                    program: Arc::clone(&arc),
                    nest: qnest.clone(),
                    unroll,
                    desc: udesc,
                });
            }
            let _ = &recipe; // recipes are carried in `desc` consumers via re-application
        }
    }

    Ok(subsample(out, config.max_candidates_per_pnl))
}

/// Permutations of the innermost `depth` loops (outer prefix fixed).
fn band_orders(nest: &PerfectNest, depth: usize) -> Vec<Vec<LoopId>> {
    let d = depth.min(nest.loops.len());
    let prefix = &nest.loops[..nest.loops.len() - d];
    let band: Vec<LoopId> = nest.loops[nest.loops.len() - d..].to_vec();
    permutations(&band)
        .into_iter()
        .map(|p| {
            let mut order = prefix.to_vec();
            order.extend(p);
            order
        })
        .collect()
}

fn permutations(items: &[LoopId]) -> Vec<Vec<LoopId>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// The nest of the transformed program containing `pipelined` (as the
/// pipelined loop or, after tiling, anywhere in the chain).
fn find_nest(p: &Arc<Program>, pipelined: LoopId) -> Option<PerfectNest> {
    let nests = p.perfect_nests();
    nests
        .iter()
        .find(|n| n.pipelined_loop() == pipelined)
        .or_else(|| nests.iter().find(|n| n.loops.contains(&pipelined)))
        .cloned()
}

/// Enumerate unroll vectors over the innermost loops (factors from the
/// config grid, bounded count of dimensions and total product).
fn unroll_vectors(nest: &PerfectNest, config: &ExploreConfig) -> Vec<Vec<(LoopId, u32)>> {
    let dims: Vec<(LoopId, u64)> = nest
        .loops
        .iter()
        .copied()
        .zip(nest.tripcounts.iter().copied())
        .rev()
        .take(config.max_unroll_dims.max(1) + 1)
        .collect();
    let mut out: Vec<Vec<(LoopId, u32)>> = vec![Vec::new()];
    // Single-dimension unrolls.
    for &(l, tc) in &dims {
        for &f in &config.unroll_factors {
            if f >= 2 && (f as u64) <= tc && f <= config.max_unroll_product {
                out.push(vec![(l, f)]);
            }
        }
    }
    // Two-dimension combinations.
    if config.max_unroll_dims >= 2 {
        for (i, &(la, ta)) in dims.iter().enumerate() {
            for &(lb, tb) in dims.iter().skip(i + 1) {
                for &fa in &config.unroll_factors {
                    for &fb in &config.unroll_factors {
                        if fa < 2 || fb < 2 {
                            continue;
                        }
                        if fa as u64 > ta || fb as u64 > tb {
                            continue;
                        }
                        if fa * fb > config.max_unroll_product {
                            continue;
                        }
                        out.push(vec![(la, fa), (lb, fb)]);
                    }
                }
            }
        }
    }
    out
}

/// Evenly subsample when the candidate list exceeds the cap, always
/// keeping the first (identity) candidate.
fn subsample(mut v: Vec<PnlCandidate>, cap: usize) -> Vec<PnlCandidate> {
    if v.len() <= cap || cap == 0 {
        return v;
    }
    let stride = v.len() as f64 / cap as f64;
    let mut out = Vec::with_capacity(cap);
    let mut pos = 0.0;
    while out.len() < cap {
        let i = (pos as usize).min(v.len() - 1);
        out.push(v[i].clone());
        pos += stride;
    }
    v.clear();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExploreConfig;
    use ptmap_ir::ProgramBuilder;

    fn gemm(n: u64) -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[n, n]);
        let bb = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        let i = b.open_loop("i", n);
        let j = b.open_loop("j", n);
        let k = b.open_loop("k", n);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn gemm_exploration_produces_rich_space() {
        let p = gemm(64);
        let forest = explore(&p, &ExploreConfig::default());
        assert!(!forest.variants.is_empty());
        let total = forest.candidate_count();
        assert!(total >= 20, "only {total} candidates");
        // The identity candidate is present.
        let v = &forest.variants[0];
        assert!(v.pnl_candidates[0].iter().any(|c| c.unroll.is_empty()));
        // Unrolled candidates exist.
        assert!(v.pnl_candidates[0].iter().any(|c| c.unroll_product() >= 4));
        // Tiled candidates exist (deeper nests).
        assert!(v.pnl_candidates[0].iter().any(|c| c.nest.depth() > 3));
    }

    #[test]
    fn respects_candidate_cap() {
        let p = gemm(64);
        let cfg = ExploreConfig {
            max_candidates_per_pnl: 10,
            ..ExploreConfig::default()
        };
        let forest = explore(&p, &cfg);
        for v in &forest.variants {
            for ra in &v.pnl_candidates {
                assert!(ra.len() <= 10);
            }
        }
    }

    #[test]
    fn fusion_modes_dedup_when_no_opportunity() {
        // Single PNL: every fusion mode yields the same program.
        let p = gemm(16);
        let forest = explore(&p, &ExploreConfig::default());
        // AsIs only (others dedup into it); out-PNL may add none.
        assert_eq!(forest.variants.len(), 1);
    }

    #[test]
    fn two_kernel_program_gets_fused_variant() {
        // Producer/consumer pair: maxfuse should produce a fused variant.
        let mut b = ProgramBuilder::new("pc");
        let a = b.array("A", &[128]);
        let x = b.array("X", &[128]);
        let y = b.array("Y", &[128]);
        let i = b.open_loop("i", 128);
        let v = b.mul(b.load(a, &[b.idx(i)]), b.constant(2));
        b.store(x, &[b.idx(i)], v);
        b.close_loop();
        let j = b.open_loop("j", 128);
        let w = b.add(b.load(x, &[b.idx(j)]), b.constant(1));
        b.store(y, &[b.idx(j)], w);
        b.close_loop();
        let p = b.finish();
        let forest = explore(&p, &ExploreConfig::default());
        let pnl_counts: Vec<usize> = forest
            .variants
            .iter()
            .map(|v| v.pnl_candidates.len())
            .collect();
        assert!(
            pnl_counts.contains(&1),
            "a fused (1-PNL) variant exists: {pnl_counts:?}"
        );
        assert!(
            pnl_counts.contains(&2),
            "the unfused (2-PNL) variant exists: {pnl_counts:?}"
        );
    }

    #[test]
    fn quick_config_stays_small() {
        let p = gemm(64);
        let forest = explore(&p, &ExploreConfig::quick());
        assert!(forest.candidate_count() <= 24);
    }

    #[test]
    fn candidates_describe_themselves() {
        let p = gemm(64);
        let forest = explore(&p, &ExploreConfig::quick());
        for v in &forest.variants {
            for c in v.pnl_candidates.iter().flatten() {
                assert!(!c.desc.is_empty());
            }
        }
    }

    #[test]
    fn cancelled_budget_stops_exploration() {
        let budget = Budget::cancellable();
        budget.cancel();
        assert_eq!(
            explore_budgeted(&gemm(64), &ExploreConfig::default(), &budget).err(),
            Some(crate::TransformError::Cancelled)
        );
    }

    #[test]
    fn expired_deadline_times_out_exploration() {
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            explore_budgeted(&gemm(64), &ExploreConfig::default(), &budget).err(),
            Some(crate::TransformError::Timeout)
        );
    }

    #[test]
    fn generous_budget_matches_unbudgeted_forest() {
        let p = gemm(64);
        let free = explore(&p, &ExploreConfig::default());
        let budget = Budget::with_deadline(std::time::Duration::from_secs(3600));
        let timed = explore_budgeted(&p, &ExploreConfig::default(), &budget).unwrap();
        assert_eq!(free.variants.len(), timed.variants.len());
        assert_eq!(free.candidate_count(), timed.candidate_count());
        for (a, b) in free.variants.iter().zip(&timed.variants) {
            assert_eq!(a.program, b.program);
            assert_eq!(a.pnl_candidates.len(), b.pnl_candidates.len());
        }
    }
}
