//! Transformation primitives with dependence-checked legality (Tab. 1).
//!
//! Every primitive takes a program by reference and returns a rewritten
//! clone, leaving the input untouched — exploration freely branches on
//! intermediate programs. Unrolling is *not* a program rewrite: it is a
//! per-candidate vector applied by `ptmap_ir::dfg::build_dfg`.

use crate::error::TransformError;
use ptmap_ir::{AffineExpr, DependenceSet, Loop, LoopId, Node, Program};

/// Permutes the loops of a perfectly nested band.
///
/// `new_order` must be a permutation of the full PNL chain rooted at
/// `pnl_root`, outermost-first.
///
/// # Errors
///
/// [`TransformError::UnknownLoop`], [`TransformError::NotPerfectlyNested`],
/// [`TransformError::BadPermutation`], or [`TransformError::IllegalReorder`].
pub fn reorder(
    program: &Program,
    pnl_root: LoopId,
    new_order: &[LoopId],
) -> Result<Program, TransformError> {
    let root = program
        .find_loop(pnl_root)
        .ok_or(TransformError::UnknownLoop(pnl_root))?;
    if !root.is_perfect_nest() {
        return Err(TransformError::NotPerfectlyNested);
    }
    // Collect the chain.
    let mut chain: Vec<(LoopId, u64, String)> = Vec::new();
    let mut cur = root;
    loop {
        chain.push((cur.id, cur.tripcount, cur.name.clone()));
        match cur.direct_loops().next() {
            Some(inner) => cur = inner,
            None => break,
        }
    }
    let innermost_body: Vec<Node> = cur
        .body
        .iter()
        .filter(|n| n.as_stmt().is_some())
        .cloned()
        .collect();
    // Validate the permutation.
    let mut have: Vec<LoopId> = chain.iter().map(|c| c.0).collect();
    let mut want = new_order.to_vec();
    have.sort_unstable();
    want.sort_unstable();
    if have != want {
        return Err(TransformError::BadPermutation);
    }
    // Legality.
    let deps = DependenceSet::analyze(program);
    if !deps.permutation_legal(new_order) {
        return Err(TransformError::IllegalReorder);
    }
    // Rebuild the chain in the new order.
    let mut body = innermost_body;
    for &l in new_order.iter().rev() {
        let (_, tc, name) = chain.iter().find(|c| c.0 == l).expect("validated").clone();
        body = vec![Node::Loop(Loop {
            id: l,
            name,
            tripcount: tc,
            body,
        })];
    }
    let replacement = match body.pop() {
        Some(n) => n,
        None => return Err(TransformError::BadPermutation),
    };
    replace_loop(program, pnl_root, vec![replacement])
}

/// Strip-mines `target` with the given tile size: the loop becomes an
/// outer tile loop of `ceil(N / tile)` iterations over an inner loop of
/// `tile` iterations (the iteration domain is padded up when `tile` does
/// not divide `N`, matching the paper's power-of-two tiling grid).
///
/// Returns the rewritten program and the id of the new outer tile loop
/// (the inner loop keeps `target`'s id).
///
/// # Errors
///
/// [`TransformError::UnknownLoop`] or [`TransformError::BadTileSize`].
pub fn strip_mine(
    program: &Program,
    target: LoopId,
    tile: u64,
) -> Result<(Program, LoopId), TransformError> {
    if tile < 2 {
        return Err(TransformError::BadTileSize(tile));
    }
    let l = program
        .find_loop(target)
        .ok_or(TransformError::UnknownLoop(target))?;
    if tile >= l.tripcount {
        return Err(TransformError::BadTileSize(tile));
    }
    let mut out = program.clone();
    let (outer_id, outer_name) = out.fresh_loop_id(format!("{}_t", l.name));
    let inner_tc = tile;
    let outer_tc = l.tripcount.div_ceil(tile);
    // i := tile * i_t + i
    let repl = AffineExpr::var(outer_id) * tile as i64 + AffineExpr::var(target);
    let inner_body = substitute_nodes(&l.body, target, &repl);
    let inner = Loop {
        id: target,
        name: l.name.clone(),
        tripcount: inner_tc,
        body: inner_body,
    };
    let outer = Loop {
        id: outer_id,
        name: outer_name,
        tripcount: outer_tc,
        body: vec![Node::Loop(inner)],
    };
    let out = replace_loop_in(&out, target, vec![Node::Loop(outer)])?;
    Ok((out, outer_id))
}

/// Fuses two adjacent sibling loops with equal tripcounts; the fused
/// loop keeps `first`'s index.
///
/// Legality is decided on the *original* program: in the source, all of
/// `first` executes before `second`, so every dependence between them
/// points from `first`-statements to `second`-statements. Fusion is
/// legal only if each such dependence's distance on the fused index is a
/// known non-negative integer (or the dependence is killed by a positive
/// distance on a common outer loop).
///
/// # Errors
///
/// [`TransformError::UnknownLoop`], [`TransformError::NotAdjacent`],
/// [`TransformError::TripcountMismatch`], or
/// [`TransformError::IllegalFusion`].
pub fn fuse(program: &Program, first: LoopId, second: LoopId) -> Result<Program, TransformError> {
    if fusion_preventing_dep(program, first, second)? {
        return Err(TransformError::IllegalFusion);
    }
    speculative_fuse(program, first, second)
}

fn fusion_preventing_dep(
    program: &Program,
    first: LoopId,
    second: LoopId,
) -> Result<bool, TransformError> {
    use ptmap_ir::{access_distance, ArrayAccess, Distance, LValue};
    let l1 = program
        .find_loop(first)
        .ok_or(TransformError::UnknownLoop(first))?;
    let l2 = program
        .find_loop(second)
        .ok_or(TransformError::UnknownLoop(second))?;
    let mut common = program.enclosing_loops(first);
    common.push(first);
    let rename: std::collections::BTreeMap<LoopId, LoopId> =
        [(second, first)].into_iter().collect();

    // Any scalar written under `first` and read under `second` would see
    // its *final* value in the source but a running value after fusion.
    let written1: Vec<ptmap_ir::ScalarId> = l1
        .all_stmts()
        .iter()
        .filter_map(|s| match &s.target {
            LValue::Scalar(x) => Some(*x),
            _ => None,
        })
        .collect();
    if l2
        .all_stmts()
        .iter()
        .any(|s| s.value.scalar_reads().iter().any(|r| written1.contains(r)))
    {
        return Ok(true);
    }

    let accesses = |l: &ptmap_ir::Loop, renamed: bool| -> Vec<(ArrayAccess, bool)> {
        l.all_stmts()
            .iter()
            .flat_map(|s| {
                let (reads, write) = s.accesses();
                reads
                    .into_iter()
                    .map(|a| (a.clone(), false))
                    .chain(write.map(|a| (a.clone(), true)))
                    .collect::<Vec<_>>()
            })
            .map(|(a, w)| {
                if renamed {
                    (a.rename_loops(&rename), w)
                } else {
                    (a, w)
                }
            })
            .collect()
    };
    let acc1 = accesses(l1, false);
    let acc2 = accesses(l2, true);

    for (a1, w1) in &acc1 {
        for (a2, w2) in &acc2 {
            if a1.array != a2.array || (!w1 && !w2) {
                continue;
            }
            let Some(dist) = access_distance(a1, a2, &common) else {
                continue;
            };
            // Killed by a positive outer component?
            let mut verdict_pending = true;
            for (idx, d) in dist.iter().enumerate() {
                let is_fused = idx == dist.len() - 1;
                if is_fused {
                    match d {
                        Distance::Exact(x) if *x >= 0 => verdict_pending = false,
                        _ => return Ok(true),
                    }
                } else {
                    match d {
                        Distance::Exact(0) => continue,
                        Distance::Exact(x) if *x > 0 => {
                            verdict_pending = false;
                            break;
                        }
                        Distance::Plus => {
                            verdict_pending = false;
                            break;
                        }
                        _ => return Ok(true), // unknown outer context
                    }
                }
            }
            let _ = verdict_pending;
        }
    }
    Ok(false)
}

fn speculative_fuse(
    program: &Program,
    first: LoopId,
    second: LoopId,
) -> Result<Program, TransformError> {
    let mut out = program.clone();
    let slot = find_sibling_slot(&mut out.roots, first, second)
        .ok_or(TransformError::NotAdjacent(first, second))?;
    let (l1, l2) = slot?;
    if l1.tripcount != l2.tripcount {
        return Err(TransformError::TripcountMismatch {
            a: l1.tripcount,
            b: l2.tripcount,
        });
    }
    // Rename second's index to first's throughout its body.
    let map: std::collections::BTreeMap<LoopId, LoopId> = [(second, first)].into_iter().collect();
    let renamed: Vec<Node> = l2.body.iter().map(|n| rename_nodes(n, &map)).collect();
    l1.body.extend(renamed);
    // Remove the second loop.
    remove_loop(&mut out.roots, second);
    Ok(out)
}

/// Distributes a loop over its body parts (loop fission). Each part
/// becomes its own loop; later parts get fresh loop ids.
///
/// # Errors
///
/// [`TransformError::UnknownLoop`] or [`TransformError::IllegalFission`]
/// when a dependence flows from a later part to an earlier one.
pub fn fission(program: &Program, target: LoopId) -> Result<Program, TransformError> {
    let l = program
        .find_loop(target)
        .ok_or(TransformError::UnknownLoop(target))?;
    if l.body.len() < 2 {
        return Ok(program.clone());
    }
    // Legality: every dependence between different parts must point
    // forward in part order.
    let deps = DependenceSet::analyze(program);
    let part_of: std::collections::HashMap<ptmap_ir::StmtId, usize> = l
        .body
        .iter()
        .enumerate()
        .flat_map(|(i, n)| {
            let stmts: Vec<ptmap_ir::StmtId> = match n {
                Node::Stmt(s) => vec![s.id],
                Node::Loop(inner) => inner.all_stmts().iter().map(|s| s.id).collect(),
            };
            stmts.into_iter().map(move |s| (s, i))
        })
        .collect();
    for dep in deps.iter() {
        if let (Some(&ps), Some(&pd)) = (part_of.get(&dep.src), part_of.get(&dep.dst)) {
            if ps > pd && !dep.is_reduction {
                return Err(TransformError::IllegalFission);
            }
        }
    }
    let mut out = program.clone();
    let mut parts: Vec<Node> = Vec::new();
    for (i, part) in l.body.iter().enumerate() {
        let (id, name) = if i == 0 {
            (l.id, l.name.clone())
        } else {
            let (fresh, name) = out.fresh_loop_id(format!("{}_{}", l.name, i));
            (fresh, name)
        };
        let body = if i == 0 {
            vec![part.clone()]
        } else {
            let map: std::collections::BTreeMap<LoopId, LoopId> =
                [(l.id, id)].into_iter().collect();
            vec![rename_nodes(part, &map)]
        };
        parts.push(Node::Loop(Loop {
            id,
            name,
            tripcount: l.tripcount,
            body,
        }));
    }
    replace_loop_in(&out, target, parts)
}

/// Flattens a perfectly nested loop pair `(outer, its only child)` into
/// a single loop, linearizing every affected array access.
///
/// Returns the rewritten program and the id of the new flattened loop.
///
/// # Errors
///
/// [`TransformError::UnknownLoop`], [`TransformError::NotPerfectlyNested`],
/// or [`TransformError::NotFlattenable`] when some access's strides do
/// not match the inner tripcount.
pub fn flatten(program: &Program, outer: LoopId) -> Result<(Program, LoopId), TransformError> {
    let l_out = program
        .find_loop(outer)
        .ok_or(TransformError::UnknownLoop(outer))?;
    let inner_loops: Vec<&Loop> = l_out.direct_loops().collect();
    if inner_loops.len() != 1 || l_out.direct_stmts().next().is_some() {
        return Err(TransformError::NotPerfectlyNested);
    }
    let l_in = inner_loops[0];
    let (inner, inner_tc) = (l_in.id, l_in.tripcount);

    // Check flattenability: for every access (linearized, row-major),
    // coeff(outer) == inner_tc * coeff(inner).
    for stmt in l_out.all_stmts() {
        let (reads, write) = stmt.accesses();
        for acc in reads.into_iter().chain(write) {
            let decl = program
                .array(acc.array)
                .map_err(|_| TransformError::NotFlattenable)?;
            let lin = linearize_access(acc, &decl.dims);
            if lin.coeff(outer) != inner_tc as i64 * lin.coeff(inner) {
                return Err(TransformError::NotFlattenable);
            }
        }
        if uses_index_leaf(&stmt.value, outer) || uses_index_leaf(&stmt.value, inner) {
            return Err(TransformError::NotFlattenable);
        }
    }

    let mut out = program.clone();
    let (flat_id, flat_name) = out.fresh_loop_id(format!("{}{}", l_out.name, l_in.name));
    let flat_tc = l_out.tripcount * inner_tc;
    // Rewrite every statement: accesses become 1-D linearized with
    // outer/inner replaced by the flat index.
    let new_body: Vec<Node> = l_in
        .body
        .iter()
        .map(|n| match n {
            Node::Stmt(s) => {
                let mut s = s.clone();
                s = rewrite_stmt_linear(&s, program, outer, inner, inner_tc, flat_id);
                Node::Stmt(s)
            }
            Node::Loop(_) => unreachable!("perfect pair has statement body"),
        })
        .collect();
    let flat = Loop {
        id: flat_id,
        name: flat_name,
        tripcount: flat_tc,
        body: new_body,
    };
    let out = replace_loop_in(&out, outer, vec![Node::Loop(flat)])?;
    Ok((out, flat_id))
}

fn rewrite_stmt_linear(
    stmt: &ptmap_ir::Stmt,
    program: &Program,
    outer: LoopId,
    inner: LoopId,
    inner_tc: u64,
    flat: LoopId,
) -> ptmap_ir::Stmt {
    use ptmap_ir::{ArrayAccess, Expr, LValue};
    fn rewrite_access(
        acc: &ArrayAccess,
        program: &Program,
        outer: LoopId,
        inner: LoopId,
        _inner_tc: u64,
        flat: LoopId,
    ) -> ArrayAccess {
        let decl = program.array(acc.array).expect("declared");
        let mut lin = linearize_access(acc, &decl.dims);
        // coeff(outer) == inner_tc * coeff(inner) was checked; replace
        // both with coeff(inner) * flat.
        let c_in = lin.coeff(inner);
        lin = lin.substitute(outer, &AffineExpr::zero());
        lin = lin.substitute(inner, &AffineExpr::zero());
        lin = lin + AffineExpr::var(flat) * c_in;
        ArrayAccess::new(acc.array, vec![lin])
    }
    fn rewrite_expr(
        e: &Expr,
        program: &Program,
        outer: LoopId,
        inner: LoopId,
        inner_tc: u64,
        flat: LoopId,
    ) -> Expr {
        match e {
            Expr::Load(a) => Expr::Load(rewrite_access(a, program, outer, inner, inner_tc, flat)),
            Expr::Unary(op, a) => Expr::Unary(
                *op,
                Box::new(rewrite_expr(a, program, outer, inner, inner_tc, flat)),
            ),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(rewrite_expr(a, program, outer, inner, inner_tc, flat)),
                Box::new(rewrite_expr(b, program, outer, inner, inner_tc, flat)),
            ),
            other => other.clone(),
        }
    }
    let target = match &stmt.target {
        LValue::Array(a) => LValue::Array(rewrite_access(a, program, outer, inner, inner_tc, flat)),
        LValue::Scalar(s) => LValue::Scalar(*s),
    };
    ptmap_ir::Stmt {
        id: stmt.id,
        target,
        value: rewrite_expr(&stmt.value, program, outer, inner, inner_tc, flat),
    }
}

/// Row-major linearization of an access's subscripts.
fn linearize_access(acc: &ptmap_ir::ArrayAccess, dims: &[u64]) -> AffineExpr {
    if acc.indices.len() == 1 {
        return acc.indices[0].clone();
    }
    let mut lin = AffineExpr::zero();
    for (e, &d) in acc.indices.iter().zip(dims) {
        lin = lin * d as i64 + e.clone();
    }
    lin
}

fn uses_index_leaf(e: &ptmap_ir::Expr, l: LoopId) -> bool {
    use ptmap_ir::Expr;
    match e {
        Expr::Index(x) => *x == l,
        Expr::Unary(_, a) => uses_index_leaf(a, l),
        Expr::Binary(_, a, b) => uses_index_leaf(a, l) || uses_index_leaf(b, l),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Tree surgery helpers.

/// Replaces the loop `target` (wherever it nests) with `replacement`
/// nodes, returning the rewritten program.
fn replace_loop(
    program: &Program,
    target: LoopId,
    replacement: Vec<Node>,
) -> Result<Program, TransformError> {
    replace_loop_in(program, target, replacement)
}

fn replace_loop_in(
    program: &Program,
    target: LoopId,
    replacement: Vec<Node>,
) -> Result<Program, TransformError> {
    fn rec(nodes: &[Node], target: LoopId, replacement: &mut Option<Vec<Node>>) -> Vec<Node> {
        let mut out = Vec::with_capacity(nodes.len());
        for n in nodes {
            match n {
                Node::Loop(l) if l.id == target => {
                    if let Some(r) = replacement.take() {
                        out.extend(r);
                    }
                }
                Node::Loop(l) => {
                    let body = rec(&l.body, target, replacement);
                    out.push(Node::Loop(Loop {
                        id: l.id,
                        name: l.name.clone(),
                        tripcount: l.tripcount,
                        body,
                    }));
                }
                Node::Stmt(s) => out.push(Node::Stmt(s.clone())),
            }
        }
        out
    }
    let mut repl = Some(replacement);
    let mut out = program.clone();
    out.roots = rec(&program.roots, target, &mut repl);
    if repl.is_some() {
        return Err(TransformError::UnknownLoop(target));
    }
    Ok(out)
}

fn substitute_nodes(nodes: &[Node], l: LoopId, repl: &AffineExpr) -> Vec<Node> {
    nodes
        .iter()
        .map(|n| match n {
            Node::Stmt(s) => Node::Stmt(s.substitute(l, repl)),
            Node::Loop(inner) => Node::Loop(Loop {
                id: inner.id,
                name: inner.name.clone(),
                tripcount: inner.tripcount,
                body: substitute_nodes(&inner.body, l, repl),
            }),
        })
        .collect()
}

fn rename_nodes(n: &Node, map: &std::collections::BTreeMap<LoopId, LoopId>) -> Node {
    match n {
        Node::Stmt(s) => Node::Stmt(s.rename_loops(map)),
        Node::Loop(l) => Node::Loop(Loop {
            id: map.get(&l.id).copied().unwrap_or(l.id),
            name: l.name.clone(),
            tripcount: l.tripcount,
            body: l.body.iter().map(|x| rename_nodes(x, map)).collect(),
        }),
    }
}

/// Finds two adjacent sibling loops; returns mutable access to the first
/// and a clone of the second.
type SiblingSlot<'a> = Option<Result<(&'a mut Loop, Loop), TransformError>>;

fn find_sibling_slot(nodes: &mut [Node], first: LoopId, second: LoopId) -> SiblingSlot<'_> {
    // Check this level: positions of first and second among loop nodes.
    let mut idx_first = None;
    let mut idx_second = None;
    for (i, n) in nodes.iter().enumerate() {
        if let Node::Loop(l) = n {
            if l.id == first {
                idx_first = Some(i);
            }
            if l.id == second {
                idx_second = Some(i);
            }
        }
    }
    if let (Some(a), Some(b)) = (idx_first, idx_second) {
        if b != a + 1 {
            return Some(Err(TransformError::NotAdjacent(first, second)));
        }
        let l2 = match &nodes[b] {
            Node::Loop(l) => l.clone(),
            _ => unreachable!(),
        };
        let l1 = match &mut nodes[a] {
            Node::Loop(l) => l,
            _ => unreachable!(),
        };
        return Some(Ok((l1, l2)));
    }
    for n in nodes.iter_mut() {
        if let Node::Loop(l) = n {
            let found = find_sibling_slot(&mut l.body, first, second);
            if found.is_some() {
                return found;
            }
        }
    }
    None
}

fn remove_loop(nodes: &mut Vec<Node>, target: LoopId) {
    nodes.retain(|n| !matches!(n, Node::Loop(l) if l.id == target));
    for n in nodes.iter_mut() {
        if let Node::Loop(l) = n {
            remove_loop(&mut l.body, target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_ir::ProgramBuilder;

    fn gemm(n: u64) -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[n, n]);
        let bb = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        let i = b.open_loop("i", n);
        let j = b.open_loop("j", n);
        let k = b.open_loop("k", n);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn reorder_gemm_ikj() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let [i, j, k] = [nest.loops[0], nest.loops[1], nest.loops[2]];
        let q = reorder(&p, i, &[i, k, j]).unwrap();
        let qnest = q.perfect_nests().remove(0);
        assert_eq!(qnest.loops, vec![i, k, j]);
        // Semantics-preserving: same statement count and accesses.
        assert_eq!(q.all_stmts().len(), p.all_stmts().len());
    }

    #[test]
    fn reorder_rejects_bad_permutation() {
        let p = gemm(8);
        let nest = p.perfect_nests().remove(0);
        let [i, j, _k] = [nest.loops[0], nest.loops[1], nest.loops[2]];
        assert_eq!(reorder(&p, i, &[i, j]), Err(TransformError::BadPermutation));
    }

    #[test]
    fn reorder_rejects_illegal_dependence() {
        // A[i][j] = A[i-1][j+1]: interchange illegal.
        let mut b = ProgramBuilder::new("skew");
        let a = b.array("A", &[16, 16]);
        let i = b.open_loop("i", 16);
        let j = b.open_loop("j", 16);
        let v = b.load(
            a,
            &[
                b.idx(i) - AffineExpr::constant(1),
                b.idx(j) + AffineExpr::constant(1),
            ],
        );
        b.store(a, &[b.idx(i), b.idx(j)], v);
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        assert_eq!(reorder(&p, i, &[j, i]), Err(TransformError::IllegalReorder));
    }

    #[test]
    fn strip_mine_divisible() {
        let p = gemm(16);
        let nest = p.perfect_nests().remove(0);
        let k = nest.loops[2];
        let (q, kt) = strip_mine(&p, k, 4).unwrap();
        let qnest = q.perfect_nests().remove(0);
        assert_eq!(qnest.depth(), 4);
        assert_eq!(qnest.loops[2], kt);
        assert_eq!(qnest.loops[3], k);
        assert_eq!(qnest.tripcounts[2], 4);
        assert_eq!(qnest.tripcounts[3], 4);
        // Access coefficients updated: A[i][4*kt + k].
        let stmt = &qnest.stmts[0];
        let loads = stmt.value.loads();
        let a_load = loads.iter().find(|l| l.indices[1].coeff(kt) != 0).unwrap();
        assert_eq!(a_load.indices[1].coeff(kt), 4);
        assert_eq!(a_load.indices[1].coeff(k), 1);
    }

    #[test]
    fn strip_mine_rejects_trivial_tiles() {
        let p = gemm(16);
        let nest = p.perfect_nests().remove(0);
        let k = nest.loops[2];
        assert!(strip_mine(&p, k, 1).is_err());
        assert!(strip_mine(&p, k, 16).is_err());
        assert!(strip_mine(&p, k, 99).is_err());
    }

    #[test]
    fn fuse_independent_siblings() {
        // for i { X[i] = 1 }  for j { Y[j] = 2 }  -> fusable.
        let mut b = ProgramBuilder::new("two");
        let x = b.array("X", &[32]);
        let y = b.array("Y", &[32]);
        let i = b.open_loop("i", 32);
        b.store(x, &[b.idx(i)], b.constant(1));
        b.close_loop();
        let j = b.open_loop("j", 32);
        b.store(y, &[b.idx(j)], b.constant(2));
        b.close_loop();
        let p = b.finish();
        let q = fuse(&p, i, j).unwrap();
        assert_eq!(q.perfect_nests().len(), 1);
        assert_eq!(q.all_stmts().len(), 2);
    }

    #[test]
    fn fuse_producer_consumer_same_index_is_legal() {
        // for i { X[i] = A[i] }  for j { B[j] = X[j] }  -> distance 0.
        let mut b = ProgramBuilder::new("pc");
        let a = b.array("A", &[32]);
        let x = b.array("X", &[32]);
        let bb = b.array("B", &[32]);
        let i = b.open_loop("i", 32);
        b.store(x, &[b.idx(i)], b.load(a, &[b.idx(i)]));
        b.close_loop();
        let j = b.open_loop("j", 32);
        b.store(bb, &[b.idx(j)], b.load(x, &[b.idx(j)]));
        b.close_loop();
        let p = b.finish();
        assert!(fuse(&p, i, j).is_ok());
    }

    #[test]
    fn fuse_forward_peek_is_illegal() {
        // for i { X[i] = A[i] }  for j { B[j] = X[j+1] }  -> fusing makes
        // the consumer read an element produced one iteration later.
        let mut b = ProgramBuilder::new("peek");
        let a = b.array("A", &[33]);
        let x = b.array("X", &[33]);
        let bb = b.array("B", &[33]);
        let i = b.open_loop("i", 32);
        b.store(x, &[b.idx(i)], b.load(a, &[b.idx(i)]));
        b.close_loop();
        let j = b.open_loop("j", 32);
        b.store(
            bb,
            &[b.idx(j)],
            b.load(x, &[b.idx(j) + AffineExpr::constant(1)]),
        );
        b.close_loop();
        let p = b.finish();
        assert_eq!(fuse(&p, i, j), Err(TransformError::IllegalFusion));
    }

    #[test]
    fn fuse_rejects_mismatched_tripcounts() {
        let mut b = ProgramBuilder::new("mm");
        let x = b.array("X", &[64]);
        let i = b.open_loop("i", 32);
        b.store(x, &[b.idx(i)], b.constant(1));
        b.close_loop();
        let j = b.open_loop("j", 64);
        b.store(x, &[b.idx(j)], b.constant(2));
        b.close_loop();
        let p = b.finish();
        assert!(matches!(
            fuse(&p, i, j),
            Err(TransformError::TripcountMismatch { .. })
        ));
    }

    #[test]
    fn fission_independent_parts() {
        // for i { X[i] = 1; Y[i] = 2 } -> two loops.
        let mut b = ProgramBuilder::new("f");
        let x = b.array("X", &[32]);
        let y = b.array("Y", &[32]);
        let i = b.open_loop("i", 32);
        b.store(x, &[b.idx(i)], b.constant(1));
        b.store(y, &[b.idx(i)], b.constant(2));
        b.close_loop();
        let p = b.finish();
        let q = fission(&p, i).unwrap();
        assert_eq!(q.perfect_nests().len(), 2);
    }

    #[test]
    fn fission_rejects_backward_dependence() {
        // for i { X[i] = Y[i-1]; Y[i] = A[i] }: Y flows from part 2 to
        // part 1 at distance 1; after fission part 1 would read values
        // never written yet.
        let mut b = ProgramBuilder::new("fb");
        let x = b.array("X", &[33]);
        let y = b.array("Y", &[33]);
        let a = b.array("A", &[33]);
        let i = b.open_loop("i", 32);
        let v = b.load(y, &[b.idx(i) - AffineExpr::constant(1)]);
        b.store(x, &[b.idx(i)], v);
        b.store(y, &[b.idx(i)], b.load(a, &[b.idx(i)]));
        b.close_loop();
        let p = b.finish();
        assert_eq!(fission(&p, i), Err(TransformError::IllegalFission));
    }

    #[test]
    fn flatten_contiguous_2d() {
        // X[i][j] over full rows flattens to X[f].
        let mut b = ProgramBuilder::new("flat");
        let x = b.array("X", &[16, 32]);
        let i = b.open_loop("i", 16);
        let j = b.open_loop("j", 32);
        let v = b.add(b.load(x, &[b.idx(i), b.idx(j)]), b.constant(1));
        b.store(x, &[b.idx(i), b.idx(j)], v);
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let (q, f) = flatten(&p, nest.loops[0]).unwrap();
        let qnest = q.perfect_nests().remove(0);
        assert_eq!(qnest.depth(), 1);
        assert_eq!(qnest.loops[0], f);
        assert_eq!(qnest.tripcounts[0], 512);
        // Accesses are now 1-D with coefficient 1 on the flat index.
        let loads = qnest.stmts[0].value.loads();
        assert_eq!(loads[0].indices.len(), 1);
        assert_eq!(loads[0].indices[0].coeff(f), 1);
    }

    #[test]
    fn flatten_rejects_partial_rows() {
        // Inner loop covers only half a row: strides don't match.
        let mut b = ProgramBuilder::new("half");
        let x = b.array("X", &[16, 32]);
        let i = b.open_loop("i", 16);
        let j = b.open_loop("j", 16); // only 16 of 32 columns
        b.store(x, &[b.idx(i), b.idx(j)], b.constant(1));
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        assert_eq!(
            flatten(&p, nest.loops[0]),
            Err(TransformError::NotFlattenable)
        );
    }

    #[test]
    fn gemm_tile_then_reorder_roundtrip() {
        // Full tiling flow: strip-mine j, then sink the tile loop.
        let p = gemm(16);
        let nest = p.perfect_nests().remove(0);
        let [i, j, k] = [nest.loops[0], nest.loops[1], nest.loops[2]];
        let (q, jt) = strip_mine(&p, j, 4).unwrap();
        // New chain: i, jt, j, k. Move jt outermost-after-i is already
        // true; reorder to put k before j: i, jt, k, j.
        let r = reorder(&q, i, &[i, jt, k, j]).unwrap();
        let rnest = r.perfect_nests().remove(0);
        assert_eq!(rnest.loops, vec![i, jt, k, j]);
        assert_eq!(rnest.tripcounts, vec![16, 4, 16, 4]);
    }

    use ptmap_ir::AffineExpr;
}
