//! The loop index tree (LIT).
//!
//! Each node denotes a loop index; edges follow loop nesting; a virtual
//! root unifies the whole program (Fig. 4b of the paper). The LIT makes
//! two queries cheap: *is the subtree rooted at node `i` a PNL?* and
//! *which nodes are the maximal PNL roots?* — the pivots of the
//! exploration.

use ptmap_ir::{LoopId, Node, Program, StmtId};
use serde::{Deserialize, Serialize};

/// A node of the LIT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LitNode {
    /// The virtual root (unified entry point of the program).
    Root,
    /// A loop index.
    Loop {
        /// The loop.
        id: LoopId,
        /// Its tripcount.
        tripcount: u64,
    },
    /// A statement leaf.
    Stmt(StmtId),
}

/// The loop index tree of a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lit {
    nodes: Vec<LitNode>,
    children: Vec<Vec<usize>>,
    parent: Vec<Option<usize>>,
}

impl Lit {
    /// Builds the LIT of a program.
    pub fn build(program: &Program) -> Self {
        let mut lit = Lit {
            nodes: vec![LitNode::Root],
            children: vec![Vec::new()],
            parent: vec![None],
        };
        fn add(lit: &mut Lit, parent: usize, nodes: &[Node]) {
            for n in nodes {
                match n {
                    Node::Stmt(s) => {
                        let idx = lit.push(LitNode::Stmt(s.id), parent);
                        let _ = idx;
                    }
                    Node::Loop(l) => {
                        let idx = lit.push(
                            LitNode::Loop {
                                id: l.id,
                                tripcount: l.tripcount,
                            },
                            parent,
                        );
                        add(lit, idx, &l.body);
                    }
                }
            }
        }
        add(&mut lit, 0, &program.roots);
        lit
    }

    fn push(&mut self, node: LitNode, parent: usize) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(node);
        self.children.push(Vec::new());
        self.parent.push(Some(parent));
        self.children[parent].push(idx);
        idx
    }

    /// The node table (index 0 is the virtual root).
    pub fn nodes(&self) -> &[LitNode] {
        &self.nodes
    }

    /// Children indices of a node.
    pub fn children(&self, idx: usize) -> &[usize] {
        &self.children[idx]
    }

    /// Parent index of a node (`None` for the root).
    pub fn parent(&self, idx: usize) -> Option<usize> {
        self.parent[idx]
    }

    /// Whether the subtree rooted at `idx` is a PNL: a chain of
    /// single-loop children ending in statement leaves only.
    pub fn is_pnl(&self, idx: usize) -> bool {
        match self.nodes[idx] {
            LitNode::Loop { .. } => {}
            _ => return false,
        }
        let mut cur = idx;
        loop {
            let kids = &self.children[cur];
            let loops: Vec<usize> = kids
                .iter()
                .copied()
                .filter(|&k| matches!(self.nodes[k], LitNode::Loop { .. }))
                .collect();
            let stmts = kids.len() - loops.len();
            match (loops.len(), stmts) {
                (0, _) => return true,
                (1, 0) => cur = loops[0],
                _ => return false,
            }
        }
    }

    /// Indices of the maximal PNL roots, in program order (BFS over
    /// non-PNL nodes, as the out-PNL exploration walks them).
    pub fn pnl_roots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(idx) = queue.pop_front() {
            for &k in &self.children[idx] {
                if matches!(self.nodes[k], LitNode::Loop { .. }) {
                    if self.is_pnl(k) {
                        out.push(k);
                    } else {
                        queue.push_back(k);
                    }
                }
            }
        }
        out
    }

    /// The loop ids along the chain of a PNL rooted at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a PNL root (check with [`is_pnl`](Self::is_pnl)).
    pub fn pnl_chain(&self, idx: usize) -> Vec<LoopId> {
        assert!(self.is_pnl(idx), "node {idx} is not a PNL root");
        let mut out = Vec::new();
        let mut cur = idx;
        loop {
            match self.nodes[cur] {
                LitNode::Loop { id, .. } => out.push(id),
                _ => unreachable!(),
            }
            let loops: Vec<usize> = self.children[cur]
                .iter()
                .copied()
                .filter(|&k| matches!(self.nodes[k], LitNode::Loop { .. }))
                .collect();
            match loops.len() {
                0 => break,
                _ => cur = loops[0],
            }
        }
        out
    }

    /// Number of maximal PNLs (the paper's Tab. 5 statistic).
    pub fn pnl_count(&self) -> usize {
        self.pnl_roots().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_ir::ProgramBuilder;

    fn fused_gemm_like() -> Program {
        // for i { for j { S1; for k { S2 } } }  (Fig. 4b shape)
        let mut b = ProgramBuilder::new("fused");
        let c = b.array("C", &[8, 8]);
        let a = b.array("A", &[8, 8]);
        let i = b.open_loop("i", 8);
        let j = b.open_loop("j", 8);
        b.store(c, &[b.idx(i), b.idx(j)], b.constant(0));
        let k = b.open_loop("k", 8);
        let v = b.add(
            b.load(c, &[b.idx(i), b.idx(j)]),
            b.load(a, &[b.idx(k), b.idx(j)]),
        );
        b.store(c, &[b.idx(i), b.idx(j)], v);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn root_is_virtual() {
        let p = fused_gemm_like();
        let lit = Lit::build(&p);
        assert_eq!(lit.nodes()[0], LitNode::Root);
        assert!(lit.parent(0).is_none());
    }

    #[test]
    fn pnl_detection_matches_program() {
        let p = fused_gemm_like();
        let lit = Lit::build(&p);
        // Only the k loop is a PNL; i and j are imperfect.
        assert_eq!(lit.pnl_count(), 1);
        let roots = lit.pnl_roots();
        let chain = lit.pnl_chain(roots[0]);
        assert_eq!(chain.len(), 1);
        assert_eq!(p.perfect_nests().len(), 1);
    }

    #[test]
    fn deep_pnl_chain() {
        let mut b = ProgramBuilder::new("deep");
        let x = b.array("X", &[4, 4, 4]);
        let i = b.open_loop("i", 4);
        let j = b.open_loop("j", 4);
        let k = b.open_loop("k", 4);
        b.store(x, &[b.idx(i), b.idx(j), b.idx(k)], b.constant(1));
        b.close_loop();
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let lit = Lit::build(&p);
        let roots = lit.pnl_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(lit.pnl_chain(roots[0]).len(), 3);
    }

    #[test]
    fn sibling_pnls_in_program_order() {
        let mut b = ProgramBuilder::new("two");
        let x = b.array("X", &[8]);
        let i = b.open_loop("i", 8);
        b.store(x, &[b.idx(i)], b.constant(0));
        b.close_loop();
        let j = b.open_loop("j", 8);
        b.store(x, &[b.idx(j)], b.constant(1));
        b.close_loop();
        let p = b.finish();
        let lit = Lit::build(&p);
        assert_eq!(lit.pnl_count(), 2);
    }
}
