//! Exploration configuration (the Tab. 1 design-choice grids).

use serde::{Deserialize, Serialize};

/// Program-level fusion/fission heuristics (PLuTo's modes, re-implemented
/// on the LIT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionMode {
    /// Keep the program as written.
    AsIs,
    /// Distribute every loop whose body parts may legally split.
    NoFuse,
    /// Greedily fuse every legal adjacent pair (recursively inward).
    MaxFuse,
    /// Fuse adjacent pairs only when they share array data (reuse-driven).
    SmartFuse,
}

impl FusionMode {
    /// All modes, in exploration order.
    pub const ALL: [FusionMode; 4] = [
        FusionMode::AsIs,
        FusionMode::NoFuse,
        FusionMode::MaxFuse,
        FusionMode::SmartFuse,
    ];
}

/// Knobs bounding PT-Map's transformation space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreConfig {
    /// Fusion heuristics explored at the program level.
    pub fusion_modes: Vec<FusionMode>,
    /// Tile sizes for inter-loop/innermost tiling (`2^x, x in [4, 10]`
    /// per Tab. 1).
    pub tile_sizes: Vec<u64>,
    /// Unroll factors per dimension (Tab. 1: 1–8).
    pub unroll_factors: Vec<u32>,
    /// Maximum number of unrolled dimensions per candidate.
    pub max_unroll_dims: usize,
    /// Upper bound on the product of unroll factors (keeps DFGs within
    /// what the CB can hold).
    pub max_unroll_product: u32,
    /// How many innermost levels loop reordering permutes (the paper
    /// focuses on the innermost three).
    pub reorder_depth: usize,
    /// Hard cap on candidates recorded per PNL (result-array width).
    pub max_candidates_per_pnl: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            fusion_modes: FusionMode::ALL.to_vec(),
            tile_sizes: (4..=10).map(|x| 1u64 << x).collect(),
            unroll_factors: vec![1, 2, 4, 8],
            max_unroll_dims: 2,
            max_unroll_product: 16,
            reorder_depth: 3,
            max_candidates_per_pnl: 96,
        }
    }
}

impl ExploreConfig {
    /// A reduced configuration for quick tests and doc examples.
    pub fn quick() -> Self {
        ExploreConfig {
            fusion_modes: vec![FusionMode::AsIs],
            tile_sizes: vec![16, 64],
            unroll_factors: vec![1, 2, 4],
            max_unroll_dims: 2,
            max_unroll_product: 8,
            reorder_depth: 2,
            max_candidates_per_pnl: 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_grids() {
        let c = ExploreConfig::default();
        assert_eq!(c.tile_sizes, vec![16, 32, 64, 128, 256, 512, 1024]);
        assert!(c.unroll_factors.contains(&8));
        assert_eq!(c.reorder_depth, 3);
        assert_eq!(c.fusion_modes.len(), 4);
    }
}
