//! The result forest produced by exploration.
//!
//! A leaf of the forest is a *result array* holding all valid
//! transformation candidates of one PNL (Fig. 5a); non-leaf structure is
//! implicit in the per-variant programs.

use crate::config::FusionMode;
use ptmap_ir::{LoopId, PerfectNest, Program};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One transformation candidate of a PNL: the (already rewritten)
/// program, the nest within it, and the unroll vector the DFG builder
/// will apply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PnlCandidate {
    /// The transformed program this candidate's nest lives in.
    #[serde(skip, default = "empty_program")]
    pub program: Arc<Program>,
    /// The PNL after inter-loop transformations.
    pub nest: PerfectNest,
    /// Multi-dimensional unroll factors (loop, factor), factor ≥ 2.
    pub unroll: Vec<(LoopId, u32)>,
    /// Human-readable description of the applied primitives.
    pub desc: String,
}

fn empty_program() -> Arc<Program> {
    Arc::new(ptmap_ir::ProgramBuilder::new("deserialized").finish())
}

impl PnlCandidate {
    /// Unroll factor applied to a given loop (1 when not unrolled).
    pub fn unroll_factor(&self, l: LoopId) -> u32 {
        self.unroll
            .iter()
            .find(|&&(ul, _)| ul == l)
            .map(|&(_, f)| f)
            .unwrap_or(1)
    }

    /// Effective tripcounts of the nest loops after unrolling
    /// (`ceil(tc / factor)` per loop).
    pub fn effective_tripcounts(&self) -> Vec<u64> {
        self.nest
            .loops
            .iter()
            .zip(&self.nest.tripcounts)
            .map(|(&l, &tc)| tc.div_ceil(self.unroll_factor(l) as u64))
            .collect()
    }

    /// Effective tripcount of the pipelined loop after unrolling.
    pub fn effective_pipelined_tc(&self) -> u64 {
        *self.effective_tripcounts().last().expect("nest non-empty")
    }

    /// Effective product of the folded (non-pipelined) tripcounts after
    /// unrolling, including imperfect outer loops.
    pub fn effective_folded_tc(&self) -> u64 {
        let eff = self.effective_tripcounts();
        eff[..eff.len() - 1].iter().product::<u64>() * self.nest.outer_tripcount()
    }

    /// Total unroll replication (product of factors).
    pub fn unroll_product(&self) -> u32 {
        self.unroll.iter().map(|&(_, f)| f).product()
    }
}

/// One program-level variant (a fusion/fission restructuring) and its
/// per-PNL result arrays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramVariant {
    /// The restructured program.
    #[serde(skip, default = "empty_program")]
    pub program: Arc<Program>,
    /// Which fusion heuristic produced it.
    pub fusion: FusionMode,
    /// Result array per PNL, in program order.
    pub pnl_candidates: Vec<Vec<PnlCandidate>>,
}

impl ProgramVariant {
    /// Total candidates across all PNLs.
    pub fn candidate_count(&self) -> usize {
        self.pnl_candidates.iter().map(Vec::len).sum()
    }
}

/// Counters describing how the exploration spent its effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Loop orders enumerated across all PNLs.
    pub orders_enumerated: usize,
    /// Orders rejected by the dependence legality check.
    pub orders_illegal: usize,
    /// Tiled structures generated.
    pub tiled: usize,
    /// Flattened structures generated.
    pub flattened: usize,
    /// Unroll vectors attached (excluding the identity).
    pub unrolled: usize,
}

/// The exploration output: one variant per surviving fusion mode.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ResultForest {
    /// Program variants with their result arrays.
    pub variants: Vec<ProgramVariant>,
    /// Effort counters (Fig. 9's compile-time narrative).
    #[serde(default)]
    pub stats: ExploreStats,
}

impl ResultForest {
    /// Total candidates across the forest.
    pub fn candidate_count(&self) -> usize {
        self.variants
            .iter()
            .map(ProgramVariant::candidate_count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_ir::ProgramBuilder;

    fn candidate(unroll: Vec<(LoopId, u32)>) -> PnlCandidate {
        let mut b = ProgramBuilder::new("t");
        let x = b.array("X", &[8, 8]);
        let i = b.open_loop("i", 8);
        let j = b.open_loop("j", 8);
        b.store(x, &[b.idx(i), b.idx(j)], b.constant(0));
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        PnlCandidate {
            program: Arc::new(p),
            nest,
            unroll,
            desc: "test".into(),
        }
    }

    #[test]
    fn effective_tripcounts_divide_by_factors() {
        let c0 = candidate(vec![]);
        let (i, j) = (c0.nest.loops[0], c0.nest.loops[1]);
        let c = candidate(vec![(i, 2), (j, 4)]);
        assert_eq!(c.effective_tripcounts(), vec![4, 2]);
        assert_eq!(c.effective_pipelined_tc(), 2);
        assert_eq!(c.effective_folded_tc(), 4);
        assert_eq!(c.unroll_product(), 8);
    }

    #[test]
    fn unroll_factor_defaults_to_one() {
        let c = candidate(vec![]);
        assert_eq!(c.unroll_factor(LoopId(99)), 1);
        assert_eq!(c.effective_tripcounts(), vec![8, 8]);
    }
}
