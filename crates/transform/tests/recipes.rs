//! Integration tests for recipe replay and exploration invariants.

use ptmap_ir::ProgramBuilder;
use ptmap_transform::explore::{apply_recipe, Recipe};
use ptmap_transform::{explore, ExploreConfig, TransformError};

fn gemm(n: u64) -> ptmap_ir::Program {
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[n, n]);
    let bb = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let i = b.open_loop("i", n);
    let j = b.open_loop("j", n);
    let k = b.open_loop("k", n);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bb, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.finish()
}

#[test]
fn recipe_replay_reorder_then_tile() {
    let p = gemm(16);
    let nest = p.perfect_nests().remove(0);
    let [i, j, k] = [nest.loops[0], nest.loops[1], nest.loops[2]];
    let recipe = vec![
        Recipe::Reorder {
            root: i,
            order: vec![i, k, j],
        },
        Recipe::StripMine { target: j, tile: 4 },
    ];
    let q = apply_recipe(&p, &recipe).unwrap();
    let qnest = q.perfect_nests().remove(0);
    assert_eq!(qnest.depth(), 4);
    assert_eq!(qnest.pipelined_loop(), j);
    assert_eq!(qnest.tripcounts, vec![16, 16, 4, 4]);
}

#[test]
fn recipe_replay_is_deterministic() {
    let p = gemm(16);
    let nest = p.perfect_nests().remove(0);
    let recipe = vec![Recipe::StripMine {
        target: nest.loops[2],
        tile: 4,
    }];
    let a = apply_recipe(&p, &recipe).unwrap();
    let b = apply_recipe(&p, &recipe).unwrap();
    assert_eq!(a, b);
}

#[test]
fn recipe_replay_propagates_errors() {
    let p = gemm(16);
    let recipe = vec![Recipe::StripMine {
        target: ptmap_ir::LoopId(77),
        tile: 4,
    }];
    assert_eq!(
        apply_recipe(&p, &recipe),
        Err(TransformError::UnknownLoop(ptmap_ir::LoopId(77)))
    );
}

#[test]
fn exploration_candidates_all_have_valid_nests() {
    let p = gemm(64);
    let forest = explore(&p, &ExploreConfig::default());
    for variant in &forest.variants {
        for ra in &variant.pnl_candidates {
            for c in ra {
                // The recorded nest must exist in the recorded program.
                let nests = c.program.perfect_nests();
                assert!(
                    nests.iter().any(|n| n.loops == c.nest.loops),
                    "stale nest in candidate {}",
                    c.desc
                );
                // Unroll factors address nest loops only.
                for &(l, f) in &c.unroll {
                    assert!(
                        c.nest.position(l).is_some(),
                        "foreign unroll loop in {}",
                        c.desc
                    );
                    assert!(f >= 2);
                }
                // Effective tripcounts never exceed the raw ones.
                for (eff, raw) in c.effective_tripcounts().iter().zip(&c.nest.tripcounts) {
                    assert!(eff <= raw);
                }
            }
        }
    }
}

#[test]
fn exploration_preserves_statement_multiset() {
    // Inter-loop transformations never duplicate or drop statements.
    let p = ptmap_workloads::apps::atax();
    let base_ids: std::collections::BTreeSet<_> = p.all_stmts().iter().map(|s| s.id).collect();
    let forest = explore(&p, &ExploreConfig::quick());
    for variant in &forest.variants {
        let ids: std::collections::BTreeSet<_> =
            variant.program.all_stmts().iter().map(|s| s.id).collect();
        assert_eq!(
            ids, base_ids,
            "variant {:?} changed statements",
            variant.fusion
        );
    }
}
