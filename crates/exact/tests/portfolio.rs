//! Portfolio racing, cancellation promptness, and the heuristic
//! bit-identity guarantee.
//!
//! Fault-injection guards are process-global, so the tests that
//! install one serialize on a shared mutex.

use ptmap_arch::presets;
use ptmap_exact::{ExactBackend, PortfolioBackend};
use ptmap_governor::{faultpoint, Budget};
use ptmap_ir::{Dfg, OpKind};
use ptmap_mapper::{map_dfg, HeuristicBackend, MapError, MapperBackend, MapperConfig};
use ptmap_trace::Tracer;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// An 8-node kernel with a recurrence: small enough to prove optimal,
/// big enough that the mapper does real placement work.
fn kernel() -> Dfg {
    let mut dfg = Dfg::new();
    let n: Vec<_> = (0..8)
        .map(|i| {
            let kind = match i % 3 {
                0 => OpKind::Add,
                1 => OpKind::Mul,
                _ => OpKind::Sub,
            };
            dfg.add_node(kind, None, None)
        })
        .collect();
    for w in n.windows(2) {
        dfg.add_edge(w[0], w[1], 0);
    }
    dfg.add_edge(n[7], n[2], 1);
    dfg.add_edge(n[0], n[4], 0);
    dfg
}

#[test]
fn heuristic_dispatch_is_bit_identical_to_direct_mapping() {
    let dfg = kernel();
    let arch = presets::s4();
    let cfg = MapperConfig::default();
    let direct = map_dfg(&dfg, &arch, &cfg).expect("direct mapping");
    let dispatched = HeuristicBackend
        .map(&dfg, &arch, &cfg, &Budget::unlimited(), &Tracer::disabled())
        .expect("backend mapping");
    // The backend refactor must not perturb the fixed-seed heuristic
    // search: same mapping, placement for placement, route for route.
    assert_eq!(direct, dispatched.mapping);
    assert_eq!(dispatched.backend, "heuristic");
}

#[test]
fn exact_observes_cancellation_promptly() {
    let _serial = FAULT_LOCK.lock().unwrap();
    // Wedge every heuristic placement attempt so the warm start is
    // still running when the cancel lands.
    let _fault = faultpoint::install("mapper_place:delay:100").unwrap();
    let dfg = kernel();
    let arch = presets::s4();
    let cfg = MapperConfig::default();
    let budget = Budget::cancellable();
    let canceller = budget.clone();
    let worker = std::thread::spawn(move || {
        ExactBackend.map(&dfg, &arch, &cfg, &budget, &Tracer::disabled())
    });
    std::thread::sleep(Duration::from_millis(50));
    let t0 = Instant::now();
    canceller.cancel();
    let result = worker.join().expect("no panic");
    // Bounded work after the cancel: the search must unwind within a
    // couple of placement delays, not run the sweep to completion.
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "cancel took {:?} to observe",
        t0.elapsed()
    );
    assert!(
        matches!(result, Err(MapError::Cancelled)),
        "expected Cancelled, got {result:?}"
    );
}

#[test]
fn deadline_expiry_mid_search_returns_structured_timeout() {
    let _serial = FAULT_LOCK.lock().unwrap();
    let _fault = faultpoint::install("mapper_place:delay:100").unwrap();
    let dfg = kernel();
    let arch = presets::s4();
    let cfg = MapperConfig::default();
    // Long enough to pass the admission check, far too short for the
    // wedged placement loop.
    let budget = Budget::with_deadline(Duration::from_millis(30));
    let result = ExactBackend.map(&dfg, &arch, &cfg, &budget, &Tracer::disabled());
    assert!(
        matches!(result, Err(MapError::Timeout)),
        "expected Timeout, got {result:?}"
    );
}

/// A 4-node kernel whose exact search is near-instant (tiny window,
/// tiny domain) — used to make the portfolio race deterministic.
fn small_kernel() -> Dfg {
    let mut dfg = Dfg::new();
    let a = dfg.add_node(OpKind::Add, None, None);
    let b = dfg.add_node(OpKind::Mul, None, None);
    let c = dfg.add_node(OpKind::Sub, None, None);
    let d = dfg.add_node(OpKind::Add, None, None);
    dfg.add_edge(a, b, 0);
    dfg.add_edge(b, c, 0);
    dfg.add_edge(c, d, 0);
    dfg.add_edge(d, b, 1);
    dfg
}

#[test]
fn portfolio_exact_win_cancels_the_heuristic_arm() {
    let _serial = FAULT_LOCK.lock().unwrap();
    // Wedge only the heuristic arm for longer than the whole exact
    // sweep (the exact search has no placement fault point), so the
    // exact arm reliably lands first and cancels the heuristic.
    let _fault = faultpoint::install("mapper_place:delay:500").unwrap();
    let dfg = small_kernel();
    let arch = presets::s4();
    let cfg = MapperConfig::default();
    let out = PortfolioBackend
        .map(&dfg, &arch, &cfg, &Budget::unlimited(), &Tracer::disabled())
        .expect("portfolio mapping");
    assert_eq!(out.backend, "exact");
    assert!(out.proven_optimal, "bottom-up exact find is optimal");
    assert_eq!(out.ii_opt, Some(out.mapping.ii));
    assert_eq!(out.losers_cancelled, 1, "the heuristic arm was cancelled");
}

#[test]
fn portfolio_without_faults_matches_heuristic_ii_or_better() {
    let dfg = kernel();
    let arch = presets::s4();
    let cfg = MapperConfig::default();
    let h = map_dfg(&dfg, &arch, &cfg).expect("heuristic mapping");
    let out = PortfolioBackend
        .map(&dfg, &arch, &cfg, &Budget::unlimited(), &Tracer::disabled())
        .expect("portfolio mapping");
    assert!(
        out.mapping.ii <= h.ii,
        "portfolio ii {} > heuristic ii {}",
        out.mapping.ii,
        h.ii
    );
    ptmap_mapper::validate(&dfg, &arch, &out.mapping).expect("portfolio mapping validates");
}

#[test]
fn racy_exact_find_never_yields_a_contradictory_proof() {
    let _serial = FAULT_LOCK.lock().unwrap();
    // Wedge the heuristic arm's restarts so the exact sweep's find
    // races the heuristic's landing instead of the usual
    // heuristic-first order; the exact find then arrives while the
    // heuristic arm is still mid-flight.
    let _fault = faultpoint::install("mapper_place:delay:40").unwrap();
    let dfg = small_kernel();
    let arch = presets::s4();
    let cfg = MapperConfig::default();
    match PortfolioBackend.map(&dfg, &arch, &cfg, &Budget::unlimited(), &Tracer::disabled()) {
        Ok(out) => {
            // Whichever arm won the race, the optimality claim must be
            // self-consistent: a proven outcome pins `ii_opt` to the
            // returned mapping's II, the winner never exceeds the
            // heuristic's II, and the mapping validates.
            if out.proven_optimal {
                assert_eq!(out.ii_opt, Some(out.mapping.ii));
            }
            if let Some(h_ii) = out.heuristic_ii {
                assert!(out.mapping.ii <= h_ii, "winner above heuristic II");
            }
            ptmap_mapper::validate(&dfg, &arch, &out.mapping).unwrap();
        }
        // The heuristic arm losing to the exact win's cancellation is
        // the race working as intended.
        Err(MapError::Cancelled | MapError::Timeout) => {}
        // A contradictory bottom-up proof must surface as the
        // structured invariant error — but for this kernel both search
        // spaces agree, so reaching it means the resolution logic (not
        // the search) regressed.
        Err(e) => panic!("unexpected portfolio error {e:?}"),
    }
}
