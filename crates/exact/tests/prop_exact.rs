//! Cross-backend property tests over random small DFGs:
//!
//! * the exact backend never returns a higher II than the heuristic
//!   (it warm-starts from the heuristic's answer and only improves it);
//! * when the exact sweep reports the whole II range infeasible, the
//!   heuristic cannot have mapped the kernel either;
//! * every mapping the exact backend returns passes the full invariant
//!   validator, and claimed optimality proofs are internally coherent.

use proptest::prelude::*;
use ptmap_arch::presets;
use ptmap_exact::ExactBackend;
use ptmap_governor::Budget;
use ptmap_ir::{Dfg, OpKind};
use ptmap_mapper::{validate, HeuristicBackend, MapError, MapperBackend, MapperConfig};
use ptmap_trace::Tracer;

const OPS: [OpKind; 5] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Xor,
    OpKind::Min,
];

/// Builds a DFG from drawn raw material: forward edges keep the
/// distance-0 subgraph acyclic (src < dst), while backward and self
/// edges carry a positive iteration distance, so the graph is always
/// well-formed (no zero-distance cycles).
fn build(n_nodes: usize, ops: &[u64], edges: &[(u64, u64, u32)]) -> Dfg {
    let mut dfg = Dfg::new();
    let ids: Vec<_> = (0..n_nodes)
        .map(|i| dfg.add_node(OPS[(ops[i % ops.len()] as usize) % OPS.len()], None, None))
        .collect();
    for &(a, b, d) in edges {
        let src = (a as usize) % n_nodes;
        let dst = (b as usize) % n_nodes;
        if src < dst {
            dfg.add_edge(ids[src], ids[dst], d);
        } else {
            dfg.add_edge(ids[src], ids[dst], d.max(1));
        }
    }
    dfg
}

/// A config that keeps the exact sweep cheap enough for property
/// testing: a short II escalation and a small per-II step cap. The
/// soundness properties hold at any cap (a capped sweep degrades to
/// "not proven", never to a wrong answer).
fn small_config() -> MapperConfig {
    MapperConfig {
        max_ii: 8,
        exact_steps_per_ii: 50_000,
        ..MapperConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn exact_never_worse_than_heuristic_and_validates(
        n_nodes in 2usize..8,
        ops in proptest::collection::vec(0u64..OPS.len() as u64, 8..9),
        edges in proptest::collection::vec((0u64..64, 0u64..64, 0u32..3), 0..10),
    ) {
        let dfg = build(n_nodes, &ops, &edges);
        let arch = presets::s4();
        let cfg = small_config();
        let budget = Budget::unlimited();
        let tracer = Tracer::disabled();
        let h = HeuristicBackend.map(&dfg, &arch, &cfg, &budget, &tracer);
        let e = ExactBackend.map(&dfg, &arch, &cfg, &budget, &tracer);
        match (&h, &e) {
            (Ok(h), Ok(e)) => {
                prop_assert!(
                    e.mapping.ii <= h.mapping.ii,
                    "exact ii {} > heuristic ii {}",
                    e.mapping.ii,
                    h.mapping.ii
                );
                if e.proven_optimal {
                    prop_assert_eq!(e.ii_opt, Some(e.mapping.ii));
                    prop_assert!(e.mapping.ii >= e.mapping.mii);
                }
            }
            // The exact backend reports Infeasible only after proving
            // every II in range admits no placement under the shared
            // routing oracle — so the heuristic cannot have mapped it.
            (Ok(h), Err(MapError::Infeasible { .. })) => prop_assert!(
                false,
                "exact proved the range infeasible but the heuristic mapped ii={}",
                h.mapping.ii
            ),
            // No budget, no faults: nothing else can fail once the
            // heuristic succeeded (structural errors hit both equally).
            (Ok(_), Err(e)) => prop_assert!(false, "unexpected exact error: {e}"),
            // The converse is fine: the complete search may succeed
            // where the heuristic's restart budget gave up.
            (Err(_), Ok(e)) => prop_assert!(e.proven_optimal || e.ii_opt.is_none()),
            (Err(_), Err(_)) => {}
        }
        // Every exact-backend mapping must pass the full invariant
        // validator, whatever the heuristic did.
        if let Ok(e) = &e {
            if let Err(v) = validate(&dfg, &arch, &e.mapping) {
                prop_assert!(false, "validator rejected exact mapping: {v}");
            }
        }
    }
}
