//! The heuristic/exact portfolio: both searches raced on separate
//! threads under governor-cancellable child budgets.
//!
//! Cancellation protocol (see DESIGN.md, "Mapper backends &
//! portfolio"):
//!
//! * Each arm runs under its own [`Budget::scoped_child`], so the
//!   parent budget's deadline and cancellation propagate to both, and
//!   each arm can be cancelled individually without touching the
//!   parent.
//! * The heuristic arm publishes its achieved II into a shared upper
//!   bound the moment it lands, shrinking the exact arm's remaining
//!   sweep; if it lands *at the MII* the exact arm can neither improve
//!   nor prove anything new, so it is cancelled outright.
//! * The exact arm only ever finds a mapping after proving every
//!   smaller II infeasible (the sweep is bottom-up), so a find is
//!   always provably optimal — it cancels the heuristic arm.
//! * Ties go to the heuristic's mapping (deterministic output: the
//!   exact arm's find is only preferred at a strictly lower II).

use ptmap_arch::CgraArch;
use ptmap_governor::Budget;
use ptmap_ir::Dfg;
use ptmap_mapper::backend::{BackendOutcome, HeuristicBackend, MapperBackend};
use ptmap_mapper::error::MapError;
use ptmap_mapper::MapperConfig;
use ptmap_trace::Tracer;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::bnb::{sweep, Problem, SweepEnd};

/// The portfolio backend: [`HeuristicBackend`] and the exact sweep
/// raced per compile; the heuristic answers fast, the exact arm
/// upgrades the answer to "proven optimal" (or a lower II) when it
/// finishes within budget.
#[derive(Debug, Default, Clone, Copy)]
pub struct PortfolioBackend;

impl MapperBackend for PortfolioBackend {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn map(
        &self,
        dfg: &Dfg,
        arch: &CgraArch,
        config: &MapperConfig,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Result<BackendOutcome, MapError> {
        // Structural validation once, before spawning anything, so both
        // arms see a well-formed problem and errors are deterministic.
        let p = Problem::new(dfg, arch, config)?;
        let start = p.mii.max(1);
        let max_ii = config.max_ii.max(start);
        let h_budget = budget.scoped_child(None);
        let e_budget = budget.scoped_child(None);
        let upper = AtomicU32::new(max_ii + 1);
        let cancels = AtomicU32::new(0);

        let (h_res, e_res) = std::thread::scope(|s| {
            let h_arm = s.spawn(|| {
                let r = HeuristicBackend.map(dfg, arch, config, &h_budget, tracer);
                if let Ok(out) = &r {
                    upper.fetch_min(out.mapping.ii, Ordering::AcqRel);
                    if out.mapping.ii == start && !e_budget.is_cancelled() {
                        // Landed at the MII: the exact arm can neither
                        // improve nor add a proof. Cancel it.
                        cancels.fetch_add(1, Ordering::Relaxed);
                        e_budget.cancel();
                    }
                }
                r
            });
            let e_arm = s.spawn(|| {
                let r = sweep(&p, &upper, &e_budget, tracer);
                if matches!(r, Ok(SweepEnd::Found { .. })) && !h_budget.is_cancelled() {
                    // A bottom-up find is provably optimal; the
                    // heuristic can only tie or lose. Cancel it.
                    cancels.fetch_add(1, Ordering::Relaxed);
                    h_budget.cancel();
                }
                r
            });
            (
                h_arm.join().expect("heuristic portfolio arm panicked"),
                e_arm.join().expect("exact portfolio arm panicked"),
            )
        });
        let losers_cancelled = cancels.load(Ordering::Relaxed);
        resolve(h_res, e_res, losers_cancelled, start, max_ii)
    }
}

/// Combines the two arms' results into one outcome. Pure so the
/// race-dependent combinations — several of which no deterministic
/// test can force through the real thread race — are directly
/// testable.
fn resolve(
    h_res: Result<BackendOutcome, MapError>,
    e_res: Result<SweepEnd, MapError>,
    losers_cancelled: u32,
    start: u32,
    max_ii: u32,
) -> Result<BackendOutcome, MapError> {
    match (h_res, e_res) {
        (Ok(h), Ok(SweepEnd::Found { mapping, steps })) => {
            if mapping.ii < h.mapping.ii {
                Ok(BackendOutcome {
                    ii_opt: Some(mapping.ii),
                    heuristic_ii: Some(h.mapping.ii),
                    backend: "exact",
                    proven_optimal: true,
                    exact_steps: steps,
                    losers_cancelled,
                    speculative_cancelled: h.speculative_cancelled,
                    mapping: *mapping,
                })
            } else if mapping.ii == h.mapping.ii {
                // Tie: the exact arm proved everything below its find
                // infeasible, which covers the heuristic's II. Ties go
                // to the heuristic's mapping (deterministic output).
                Ok(BackendOutcome {
                    ii_opt: Some(h.mapping.ii),
                    heuristic_ii: Some(h.mapping.ii),
                    backend: "heuristic",
                    proven_optimal: true,
                    exact_steps: steps,
                    losers_cancelled,
                    speculative_cancelled: h.speculative_cancelled,
                    mapping: h.mapping,
                })
            } else {
                // An exact find strictly *above* the heuristic's II
                // means the bottom-up sweep "proved" the heuristic's
                // II infeasible while the heuristic holds a validated
                // mapping at that very II — the canonical search space
                // missed a mapping it claims cannot exist. Surface the
                // contradiction instead of stamping `proven_optimal`
                // on it.
                Err(MapError::BrokenInvariant(format!(
                    "portfolio: exact bottom-up find at II {} contradicts the \
                     heuristic's validated mapping at II {} (the infeasibility \
                     proof for [{}, {}) cannot be sound)",
                    mapping.ii, h.mapping.ii, start, mapping.ii
                )))
            }
        }
        (Ok(h), Ok(SweepEnd::ProvenUpTo { next_ii, steps })) => {
            let proven = h.proven_optimal || next_ii >= h.mapping.ii;
            Ok(BackendOutcome {
                ii_opt: proven.then_some(h.mapping.ii),
                heuristic_ii: Some(h.mapping.ii),
                backend: "heuristic",
                proven_optimal: proven,
                exact_steps: steps,
                losers_cancelled,
                speculative_cancelled: h.speculative_cancelled,
                mapping: h.mapping,
            })
        }
        (Ok(h), Ok(SweepEnd::Exhausted { steps })) => Ok(BackendOutcome {
            ii_opt: h.ii_opt,
            heuristic_ii: Some(h.mapping.ii),
            backend: "heuristic",
            proven_optimal: h.proven_optimal,
            exact_steps: steps,
            losers_cancelled,
            speculative_cancelled: h.speculative_cancelled,
            mapping: h.mapping,
        }),
        (Ok(h), Err(e)) => match e {
            // The exact arm losing to cancellation or the deadline
            // is the portfolio working as intended.
            MapError::Cancelled | MapError::Timeout => Ok(BackendOutcome {
                ii_opt: h.ii_opt,
                heuristic_ii: Some(h.mapping.ii),
                backend: "heuristic",
                proven_optimal: h.proven_optimal,
                exact_steps: 0,
                losers_cancelled,
                speculative_cancelled: h.speculative_cancelled,
                mapping: h.mapping,
            }),
            // Anything else (a broken invariant) is a real bug.
            other => Err(other),
        },
        (Err(_), Ok(SweepEnd::Found { mapping, steps })) => Ok(BackendOutcome {
            ii_opt: Some(mapping.ii),
            heuristic_ii: None,
            backend: "exact",
            proven_optimal: true,
            exact_steps: steps,
            losers_cancelled,
            speculative_cancelled: 0,
            mapping: *mapping,
        }),
        (Err(h_err), Ok(SweepEnd::ProvenUpTo { next_ii, .. })) => {
            if next_ii > max_ii {
                // The exact arm proved the entire II range
                // infeasible — a definitive answer even when the
                // heuristic timed out.
                Err(MapError::Infeasible { mii: start, max_ii })
            } else {
                Err(h_err)
            }
        }
        (Err(h_err), _) => Err(h_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::{Dfg, OpKind};
    use ptmap_mapper::map_dfg;

    /// A real heuristic outcome plus a mapping to mutate: `resolve` is
    /// pure, so the race-ordering-dependent combinations are staged
    /// directly instead of through the (unforceable) thread race.
    fn fixtures() -> (BackendOutcome, ptmap_mapper::Mapping) {
        let mut dfg = Dfg::new();
        let a = dfg.add_node(OpKind::Add, None, None);
        let b = dfg.add_node(OpKind::Mul, None, None);
        let c = dfg.add_node(OpKind::Sub, None, None);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        dfg.add_edge(c, a, 1);
        let mapping = map_dfg(&dfg, &presets::s4(), &MapperConfig::default()).unwrap();
        let h = BackendOutcome {
            ii_opt: None,
            heuristic_ii: Some(mapping.ii),
            backend: "heuristic",
            proven_optimal: false,
            exact_steps: 0,
            losers_cancelled: 0,
            speculative_cancelled: 0,
            mapping: mapping.clone(),
        };
        (h, mapping)
    }

    #[test]
    fn exact_find_below_heuristic_wins_with_proof() {
        let (mut h, mut found) = fixtures();
        h.mapping.ii += 2;
        h.heuristic_ii = Some(h.mapping.ii);
        found.ii = h.mapping.ii - 1;
        let e = SweepEnd::Found {
            mapping: Box::new(found.clone()),
            steps: 9,
        };
        let out = resolve(Ok(h), Ok(e), 1, 1, 20).unwrap();
        assert_eq!(out.backend, "exact");
        assert!(out.proven_optimal);
        assert_eq!(out.ii_opt, Some(found.ii));
        assert_eq!(out.exact_steps, 9);
    }

    #[test]
    fn exact_find_tying_heuristic_keeps_heuristic_mapping() {
        let (h, found) = fixtures();
        let h_mapping = h.mapping.clone();
        let e = SweepEnd::Found {
            mapping: Box::new(found),
            steps: 4,
        };
        let out = resolve(Ok(h), Ok(e), 0, 1, 20).unwrap();
        assert_eq!(out.backend, "heuristic");
        assert!(out.proven_optimal);
        assert_eq!(out.ii_opt, Some(h_mapping.ii));
        assert_eq!(out.mapping, h_mapping);
    }

    #[test]
    fn exact_find_above_heuristic_is_a_broken_invariant_not_a_proof() {
        // Regression: this race outcome used to be folded into the tie
        // branch and labeled `proven_optimal: true` — but an exact find
        // strictly above the heuristic's II means the bottom-up sweep
        // "proved" infeasible an II the heuristic validly mapped.
        let (h, mut found) = fixtures();
        let h_ii = h.mapping.ii;
        found.ii += 1;
        let e = SweepEnd::Found {
            mapping: Box::new(found.clone()),
            steps: 4,
        };
        let err = resolve(Ok(h), Ok(e), 0, 1, 20).unwrap_err();
        let MapError::BrokenInvariant(msg) = err else {
            panic!("expected BrokenInvariant, got {err:?}");
        };
        assert!(msg.contains(&format!("II {}", found.ii)), "{msg}");
        assert!(msg.contains(&format!("II {h_ii}")), "{msg}");
    }
}
