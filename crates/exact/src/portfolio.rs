//! The heuristic/exact portfolio: both searches raced on separate
//! threads under governor-cancellable child budgets.
//!
//! Cancellation protocol (see DESIGN.md, "Mapper backends &
//! portfolio"):
//!
//! * Each arm runs under its own [`Budget::scoped_child`], so the
//!   parent budget's deadline and cancellation propagate to both, and
//!   each arm can be cancelled individually without touching the
//!   parent.
//! * The heuristic arm publishes its achieved II into a shared upper
//!   bound the moment it lands, shrinking the exact arm's remaining
//!   sweep; if it lands *at the MII* the exact arm can neither improve
//!   nor prove anything new, so it is cancelled outright.
//! * The exact arm only ever finds a mapping after proving every
//!   smaller II infeasible (the sweep is bottom-up), so a find is
//!   always provably optimal — it cancels the heuristic arm.
//! * Ties go to the heuristic's mapping (deterministic output: the
//!   exact arm's find is only preferred at a strictly lower II).

use ptmap_arch::CgraArch;
use ptmap_governor::Budget;
use ptmap_ir::Dfg;
use ptmap_mapper::backend::{BackendOutcome, HeuristicBackend, MapperBackend};
use ptmap_mapper::error::MapError;
use ptmap_mapper::MapperConfig;
use ptmap_trace::Tracer;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::bnb::{sweep, Problem, SweepEnd};

/// The portfolio backend: [`HeuristicBackend`] and the exact sweep
/// raced per compile; the heuristic answers fast, the exact arm
/// upgrades the answer to "proven optimal" (or a lower II) when it
/// finishes within budget.
#[derive(Debug, Default, Clone, Copy)]
pub struct PortfolioBackend;

impl MapperBackend for PortfolioBackend {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn map(
        &self,
        dfg: &Dfg,
        arch: &CgraArch,
        config: &MapperConfig,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Result<BackendOutcome, MapError> {
        // Structural validation once, before spawning anything, so both
        // arms see a well-formed problem and errors are deterministic.
        let p = Problem::new(dfg, arch, config)?;
        let start = p.mii.max(1);
        let max_ii = config.max_ii.max(start);
        let h_budget = budget.scoped_child(None);
        let e_budget = budget.scoped_child(None);
        let upper = AtomicU32::new(max_ii + 1);
        let cancels = AtomicU32::new(0);

        let (h_res, e_res) = std::thread::scope(|s| {
            let h_arm = s.spawn(|| {
                let r = HeuristicBackend.map(dfg, arch, config, &h_budget, tracer);
                if let Ok(out) = &r {
                    upper.fetch_min(out.mapping.ii, Ordering::AcqRel);
                    if out.mapping.ii == start && !e_budget.is_cancelled() {
                        // Landed at the MII: the exact arm can neither
                        // improve nor add a proof. Cancel it.
                        cancels.fetch_add(1, Ordering::Relaxed);
                        e_budget.cancel();
                    }
                }
                r
            });
            let e_arm = s.spawn(|| {
                let r = sweep(&p, &upper, &e_budget, tracer);
                if matches!(r, Ok(SweepEnd::Found { .. })) && !h_budget.is_cancelled() {
                    // A bottom-up find is provably optimal; the
                    // heuristic can only tie or lose. Cancel it.
                    cancels.fetch_add(1, Ordering::Relaxed);
                    h_budget.cancel();
                }
                r
            });
            (
                h_arm.join().expect("heuristic portfolio arm panicked"),
                e_arm.join().expect("exact portfolio arm panicked"),
            )
        });
        let losers_cancelled = cancels.load(Ordering::Relaxed);

        match (h_res, e_res) {
            (Ok(h), Ok(SweepEnd::Found { mapping, steps })) => {
                if mapping.ii < h.mapping.ii {
                    Ok(BackendOutcome {
                        ii_opt: Some(mapping.ii),
                        heuristic_ii: Some(h.mapping.ii),
                        backend: "exact",
                        proven_optimal: true,
                        exact_steps: steps,
                        losers_cancelled,
                        mapping: *mapping,
                    })
                } else {
                    // Tie (or a racy find at/above the heuristic's II):
                    // the exact arm still proved everything below its
                    // find infeasible, which covers the heuristic's II.
                    Ok(BackendOutcome {
                        ii_opt: Some(h.mapping.ii),
                        heuristic_ii: Some(h.mapping.ii),
                        backend: "heuristic",
                        proven_optimal: true,
                        exact_steps: steps,
                        losers_cancelled,
                        mapping: h.mapping,
                    })
                }
            }
            (Ok(h), Ok(SweepEnd::ProvenUpTo { next_ii, steps })) => {
                let proven = h.proven_optimal || next_ii >= h.mapping.ii;
                Ok(BackendOutcome {
                    ii_opt: proven.then_some(h.mapping.ii),
                    heuristic_ii: Some(h.mapping.ii),
                    backend: "heuristic",
                    proven_optimal: proven,
                    exact_steps: steps,
                    losers_cancelled,
                    mapping: h.mapping,
                })
            }
            (Ok(h), Ok(SweepEnd::Exhausted { steps })) => Ok(BackendOutcome {
                ii_opt: h.ii_opt,
                heuristic_ii: Some(h.mapping.ii),
                backend: "heuristic",
                proven_optimal: h.proven_optimal,
                exact_steps: steps,
                losers_cancelled,
                mapping: h.mapping,
            }),
            (Ok(h), Err(e)) => match e {
                // The exact arm losing to cancellation or the deadline
                // is the portfolio working as intended.
                MapError::Cancelled | MapError::Timeout => Ok(BackendOutcome {
                    ii_opt: h.ii_opt,
                    heuristic_ii: Some(h.mapping.ii),
                    backend: "heuristic",
                    proven_optimal: h.proven_optimal,
                    exact_steps: 0,
                    losers_cancelled,
                    mapping: h.mapping,
                }),
                // Anything else (a broken invariant) is a real bug.
                other => Err(other),
            },
            (Err(_), Ok(SweepEnd::Found { mapping, steps })) => Ok(BackendOutcome {
                ii_opt: Some(mapping.ii),
                heuristic_ii: None,
                backend: "exact",
                proven_optimal: true,
                exact_steps: steps,
                losers_cancelled,
                mapping: *mapping,
            }),
            (Err(h_err), Ok(SweepEnd::ProvenUpTo { next_ii, .. })) => {
                if next_ii > max_ii {
                    // The exact arm proved the entire II range
                    // infeasible — a definitive answer even when the
                    // heuristic timed out.
                    Err(MapError::Infeasible { mii: start, max_ii })
                } else {
                    Err(h_err)
                }
            }
            (Err(h_err), _) => Err(h_err),
        }
    }
}
