//! Exact branch-and-bound search over the mapper's placement/routing
//! state space.
//!
//! For one candidate II the search enumerates, in a canonical
//! deterministic node order, every `(PE, start cycle)` assignment the
//! heuristic scheduler's own time-window formula admits, committing
//! placements and routes into the shared [`State`] through the shared
//! [`route_value`] oracle and undoing them with an exact trail on
//! backtrack. A completed assignment is a feasible mapping; an
//! exhausted tree is an infeasibility proof *for this search space*:
//! the window formula, the canonical placement order, and the greedy
//! deterministic router are all part of the statement (see DESIGN.md,
//! "Mapper backends & portfolio"). Because [`ExactBackend`] warm-starts
//! from the heuristic and only sweeps IIs *below* the heuristic's
//! answer, it never returns a worse mapping than the heuristic, and
//! its "proven optimal" claim means: no II the heuristic could ever
//! reach was missed by the proof.
//!
//! Pruning:
//!
//! * **Time windows** — producer/consumer-derived bounds cap each
//!   node's start-cycle domain (identical formula to the heuristic).
//! * **Resource capacity** — per-OpKind counters of unplaced ops vs.
//!   still-free capable compute slots; a placement that leaves some
//!   kind with more ops than slots is cut before routing.
//! * **Step cap** — a deterministic limit
//!   ([`MapperConfig::exact_steps_per_ii`]) downgrades a would-be
//!   proof to [`IiSearch::Exhausted`] instead of running unbounded.
//!
//! Cancellation: the governor [`Budget`] is charged once per node
//! expansion and checked every 64 candidate evaluations, so a
//! `cancel()` or deadline expiry is observed after a small bounded
//! amount of work.

use ptmap_arch::{CgraArch, Mrrg, PeId};
use ptmap_governor::Budget;
use ptmap_ir::{Dfg, OpKind};
use ptmap_mapper::backend::{assemble_mapping, BackendOutcome, HeuristicBackend, MapperBackend};
use ptmap_mapper::error::MapError;
use ptmap_mapper::mapping::Mapping;
use ptmap_mapper::router::route_value;
use ptmap_mapper::state::{Overlay, RouterBuffers, State};
use ptmap_mapper::{mii, validate, MapperConfig};
use ptmap_trace::Tracer;
use std::sync::atomic::{AtomicU32, Ordering};

/// The immutable part of one exact-search problem: the DFG/arch pair
/// plus everything the search derives once (canonical order, adjacency,
/// per-kind capable PE lists).
pub(crate) struct Problem<'a> {
    dfg: &'a Dfg,
    arch: &'a CgraArch,
    config: &'a MapperConfig,
    pub(crate) mii: u32,
    asap: Vec<u32>,
    /// Canonical placement order: deterministic topological order of
    /// the distance-0 subgraph with criticality tie-breaks. Infeasibility
    /// proofs are stated relative to this order.
    order: Vec<usize>,
    /// Incoming edges per node: (src, dist, routed?).
    in_edges: Vec<Vec<(usize, u32, bool)>>,
    /// Outgoing edges per node: (dst, dist, routed?).
    out_edges: Vec<Vec<(usize, u32, bool)>>,
    /// Node -> index into the distinct-kind tables below.
    kind_of: Vec<usize>,
    /// Per kind: PEs able to execute it, ascending id.
    capable_pes: Vec<Vec<PeId>>,
    /// Per PE index: which kind indices it supports.
    pe_kinds: Vec<Vec<usize>>,
    /// Per kind: total ops of that kind.
    demand: Vec<u32>,
}

impl<'a> Problem<'a> {
    /// Mirrors `Scheduler::new`'s structural validation so every
    /// backend rejects the same DFGs with the same errors.
    pub(crate) fn new(
        dfg: &'a Dfg,
        arch: &'a CgraArch,
        config: &'a MapperConfig,
    ) -> Result<Self, MapError> {
        if dfg.is_empty() {
            return Err(MapError::EmptyDfg);
        }
        let counts = dfg.op_counts();
        for &op in counts.keys() {
            if arch.pes_supporting(op) == 0 {
                return Err(MapError::UnsupportedOp(op));
            }
        }
        let rec = mii::try_rec_mii(dfg).ok_or(MapError::ZeroDistanceCycle)?;
        let n = dfg.len();
        let mut in_edges = vec![Vec::new(); n];
        let mut out_edges = vec![Vec::new(); n];
        for e in dfg.edges() {
            let routed = e.kind == ptmap_ir::dfg::EdgeKind::Data;
            in_edges[e.dst.index()].push((e.src.index(), e.dist, routed));
            out_edges[e.src.index()].push((e.dst.index(), e.dist, routed));
        }
        let kinds: Vec<OpKind> = counts.keys().copied().collect();
        let demand: Vec<u32> = counts.values().map(|&c| c as u32).collect();
        let kind_of: Vec<usize> = dfg
            .nodes()
            .iter()
            .map(|node| {
                kinds
                    .iter()
                    .position(|&k| k == node.op)
                    .expect("kind known")
            })
            .collect();
        let capable_pes: Vec<Vec<PeId>> = kinds
            .iter()
            .map(|&k| {
                arch.pe_ids()
                    .filter(|&pe| arch.pe(pe).supports(k))
                    .collect()
            })
            .collect();
        let pe_kinds: Vec<Vec<usize>> = arch
            .pe_ids()
            .map(|pe| {
                (0..kinds.len())
                    .filter(|&ki| arch.pe(pe).supports(kinds[ki]))
                    .collect()
            })
            .collect();
        let asap = dfg.asap();
        let alap = dfg.alap();
        let order = canonical_order(dfg, &asap, &alap, &out_edges);
        Ok(Problem {
            dfg,
            arch,
            config,
            mii: mii::res_mii(dfg, arch).max(rec),
            asap,
            order,
            in_edges,
            out_edges,
            kind_of,
            capable_pes,
            pe_kinds,
            demand,
        })
    }
}

/// Deterministic topological order of the distance-0 subgraph; among
/// ready nodes, smallest slack first, then higher fanout, then node id.
/// No RNG: the same DFG always yields the same order (and therefore
/// the same proof).
fn canonical_order(
    dfg: &Dfg,
    asap: &[u32],
    alap: &[u32],
    out_edges: &[Vec<(usize, u32, bool)>],
) -> Vec<usize> {
    let n = dfg.len();
    let mut indeg = vec![0usize; n];
    for e in dfg.edges().iter().filter(|e| e.dist == 0) {
        indeg[e.dst.index()] += 1;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let slack = alap[i].saturating_sub(asap[i]);
                (slack, usize::MAX - out_edges[i].len(), asap[i], i)
            })
            .map(|(k, _)| k)
            .expect("ready non-empty");
        let node = ready.swap_remove(pick);
        order.push(node);
        for &(dst, dist, _) in &out_edges[node] {
            if dist == 0 {
                indeg[dst] -= 1;
                if indeg[dst] == 0 {
                    ready.push(dst);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), n, "dist-0 subgraph must be acyclic");
    order
}

/// Outcome of the exhaustive search at one candidate II.
pub(crate) enum IiSearch {
    /// A complete placement + routing was found.
    Feasible(Box<Mapping>),
    /// The whole tree was enumerated without a solution: this II is
    /// infeasible for the canonical search space.
    Infeasible,
    /// The step cap fired before the tree was exhausted — no claim.
    Exhausted,
    /// The shared upper bound dropped to (or below) this II mid-search:
    /// a concurrent arm already holds a mapping at least this good, so
    /// the remaining tree is pointless. No claim about this II.
    Bounded,
}

/// Why the depth-first search aborted early.
enum Stop {
    Budget(MapError),
    Steps,
    Bound,
}

/// One placement's trail entry, undone in reverse on backtrack.
struct Undo {
    node: usize,
    pe_index: usize,
    slot: usize,
    routes_len: usize,
    /// (producer, mrrg node, abs cycle, claims, created-by-this-insert).
    tree_adds: Vec<(usize, u32, u32, bool, bool)>,
}

struct Search<'p, 'a> {
    p: &'p Problem<'a>,
    ii: u32,
    mrrg: Mrrg,
    st: State,
    overlay: Overlay,
    bufs: RouterBuffers,
    /// Per kind: unplaced ops.
    remaining: Vec<u32>,
    /// Per kind: unoccupied compute slots on capable PEs.
    free: Vec<u32>,
    budget: &'p Budget,
    /// Shared exclusive upper bound on useful IIs, tightened
    /// concurrently by whichever arm lands a mapping first.
    upper: &'p AtomicU32,
    steps: u64,
    step_cap: u64,
    prunes: u64,
}

impl<'p, 'a> Search<'p, 'a> {
    fn new(p: &'p Problem<'a>, ii: u32, budget: &'p Budget, upper: &'p AtomicU32) -> Self {
        let mrrg = Mrrg::new(p.arch, ii);
        let st = State::new(&mrrg, p.dfg.len());
        let free = p
            .capable_pes
            .iter()
            .map(|pes| pes.len() as u32 * ii)
            .collect();
        Search {
            p,
            ii,
            mrrg,
            st,
            overlay: Overlay::default(),
            bufs: RouterBuffers::default(),
            remaining: p.demand.clone(),
            free,
            budget,
            upper,
            steps: 0,
            step_cap: p.config.exact_steps_per_ii.max(1),
            prunes: 0,
        }
    }

    fn run(&mut self) -> Result<IiSearch, Stop> {
        // Root capacity check: with fewer capable slots than ops of
        // some kind, the whole II is infeasible without search.
        if self
            .remaining
            .iter()
            .zip(&self.free)
            .any(|(&need, &have)| need > have)
        {
            return Ok(IiSearch::Infeasible);
        }
        if self.dfs(0)? {
            let mapping =
                assemble_mapping(self.p.dfg, self.p.arch, self.p.mii, self.ii, &mut self.st);
            Ok(IiSearch::Feasible(Box::new(mapping)))
        } else {
            Ok(IiSearch::Infeasible)
        }
    }

    fn dfs(&mut self, depth: usize) -> Result<bool, Stop> {
        if depth == self.p.order.len() {
            return Ok(true);
        }
        // One work unit per node expansion, matching the heuristic's
        // charge granularity so work-limited budgets behave alike.
        self.budget
            .charge(1)
            .map_err(|e| Stop::Budget(MapError::from(e)))?;
        let node = self.p.order[depth];
        let Some((lo, hi)) = self.window(node) else {
            return Ok(false);
        };
        let kind = self.p.kind_of[node];
        for t in lo..=hi {
            for i in 0..self.p.capable_pes[kind].len() {
                let pe = self.p.capable_pes[kind][i];
                self.steps += 1;
                if self.steps.is_multiple_of(64) {
                    self.budget
                        .check()
                        .map_err(|e| Stop::Budget(MapError::from(e)))?;
                    // A concurrent arm tightening the shared bound to
                    // (or below) this II makes the rest of this tree
                    // pointless — without this mid-rung check a
                    // heuristic win would leave the exact arm grinding
                    // a doomed search until its own rung boundary.
                    if self.upper.load(Ordering::Acquire) <= self.ii {
                        return Err(Stop::Bound);
                    }
                }
                if self.steps > self.step_cap {
                    return Err(Stop::Steps);
                }
                if let Some(undo) = self.commit(node, kind, pe, t) {
                    if self.dfs(depth + 1)? {
                        return Ok(true);
                    }
                    self.undo(undo);
                }
            }
        }
        Ok(false)
    }

    /// The heuristic scheduler's exact time-window formula: the proof
    /// covers precisely the start cycles the heuristic would consider.
    fn window(&self, node: usize) -> Option<(u32, u32)> {
        let ii = self.ii;
        let mut lo = self.p.asap[node] as i64;
        let mut hi = i64::MAX;
        for &(src, dist, _) in &self.p.in_edges[node] {
            if src == node {
                continue;
            }
            if let Some((_, ts)) = self.st.place[src] {
                let dep = ts as i64 + self.p.dfg.nodes()[src].latency() as i64;
                lo = lo.max(dep - (dist as i64) * ii as i64);
            }
        }
        for &(dst, dist, _) in &self.p.out_edges[node] {
            if dst == node {
                continue;
            }
            if let Some((_, td)) = self.st.place[dst] {
                let arrive = td as i64 + (dist as i64) * ii as i64;
                hi = hi.min(arrive - self.p.dfg.nodes()[node].latency() as i64);
            }
        }
        let margin = (self.p.arch.rows() + self.p.arch.cols()) as i64 + 2;
        if hi == i64::MAX {
            hi = lo + ii as i64 - 1 + margin;
        } else {
            hi = hi.min(lo + ii as i64 - 1 + margin);
        }
        if lo > hi || hi < 0 {
            return None;
        }
        let lo = lo.max(0) as u32;
        let hi = hi as u32;
        (lo <= hi).then_some((lo, hi))
    }

    /// Tries to place `node` at `(pe, t)` — the same occupancy, timing,
    /// and routing checks as the heuristic's `try_commit`, but
    /// recording an undo trail instead of being fire-and-forget.
    fn commit(&mut self, node: usize, kind: usize, pe: PeId, t: u32) -> Option<Undo> {
        let ii = self.ii;
        let slot = self.mrrg.pe_slot(pe, t % ii);
        if self.st.compute[slot].is_some() {
            return None;
        }
        // Capacity prune: occupying this slot takes one free slot from
        // every kind the PE supports; if any kind would be left with
        // more unplaced ops than free capable slots, cut before paying
        // for routing. (`kind` is in `pe_kinds[pe]` by construction.)
        for &ki in &self.p.pe_kinds[pe.index()] {
            let need = self.remaining[ki] - (ki == kind) as u32;
            if need > self.free[ki] - 1 {
                self.prunes += 1;
                return None;
            }
        }
        let lat = self.p.dfg.nodes()[node].latency();
        let mut routes: Vec<(usize, usize, PeId, u32, PeId, u32)> = Vec::new();
        for &(src, dist, routed) in &self.p.in_edges[node] {
            let (producer, spe, dep) = if src == node {
                (node, pe, t + lat)
            } else {
                match self.st.place[src] {
                    Some((spe, stime)) => (src, spe, stime + self.p.dfg.nodes()[src].latency()),
                    None => continue,
                }
            };
            let arrive = t as i64 + dist as i64 * ii as i64;
            if arrive < dep as i64 {
                return None;
            }
            if routed {
                routes.push((producer, node, spe, dep, pe, arrive as u32));
            }
        }
        for &(dst, dist, routed) in &self.p.out_edges[node] {
            if dst == node {
                continue;
            }
            if let Some((dpe, dt)) = self.st.place[dst] {
                let dep = t + lat;
                let arrive = dt as i64 + dist as i64 * ii as i64;
                if arrive < dep as i64 {
                    return None;
                }
                if routed {
                    routes.push((node, dst, pe, dep, dpe, arrive as u32));
                }
            }
        }
        self.overlay.reset(self.mrrg.node_count());
        let routes_len = self.st.routes.len();
        for (producer, consumer, spe, dep, dpe, arrive) in routes {
            match route_value(
                &self.mrrg,
                ii,
                producer,
                spe,
                dep,
                dpe,
                arrive,
                &self.st,
                &mut self.overlay,
                &mut self.bufs,
                self.p.config.share_routes,
            ) {
                Some(source) => self.st.routes.push(ptmap_mapper::RouteRecord {
                    src: ptmap_ir::NodeId(producer as u32),
                    dst: ptmap_ir::NodeId(consumer as u32),
                    source,
                }),
                None => {
                    self.st.routes.truncate(routes_len);
                    return None;
                }
            }
        }
        // Commit, recording the trail.
        self.st.compute[slot] = Some(node);
        self.st.place[node] = Some((pe, t));
        let mut tree_adds = Vec::with_capacity(self.overlay.adds().len());
        for &(producer, idx, at, claims) in self.overlay.adds() {
            let created = self.st.trees[producer].insert(idx, at, claims);
            if claims {
                self.st.route_used[idx as usize] += 1;
                self.st.route_slots += 1;
            }
            tree_adds.push((producer, idx, at, claims, created));
        }
        for &ki in &self.p.pe_kinds[pe.index()] {
            self.free[ki] -= 1;
        }
        self.remaining[kind] -= 1;
        Some(Undo {
            node,
            pe_index: pe.index(),
            slot,
            routes_len,
            tree_adds,
        })
    }

    fn undo(&mut self, u: Undo) {
        self.remaining[self.p.kind_of[u.node]] += 1;
        for &ki in &self.p.pe_kinds[u.pe_index] {
            self.free[ki] += 1;
        }
        for &(producer, idx, at, claims, created) in u.tree_adds.iter().rev() {
            self.st.trees[producer].remove(idx, at, claims, created);
            if claims {
                self.st.route_used[idx as usize] -= 1;
                self.st.route_slots -= 1;
            }
        }
        self.st.routes.truncate(u.routes_len);
        self.st.compute[u.slot] = None;
        self.st.place[u.node] = None;
    }
}

/// Runs the exhaustive search at one II under an `ii_attempt` trace
/// span tagged `backend="exact"`, accumulating step counts into
/// `steps_total`.
pub(crate) fn search_ii(
    p: &Problem<'_>,
    ii: u32,
    budget: &Budget,
    upper: &AtomicU32,
    tracer: &Tracer,
    steps_total: &mut u64,
) -> Result<IiSearch, MapError> {
    let span = tracer.span("ii_attempt");
    let mut s = Search::new(p, ii, budget, upper);
    let result = s.run();
    if span.enabled() {
        span.attr("backend", "exact");
        span.attr("ii", ii as u64);
        span.attr("steps", s.steps);
        span.attr("prunes", s.prunes);
        span.attr("success", matches!(result, Ok(IiSearch::Feasible(_))));
        span.attr(
            "outcome",
            match &result {
                Ok(IiSearch::Feasible(_)) => "feasible",
                Ok(IiSearch::Infeasible) => "infeasible",
                Ok(IiSearch::Exhausted) | Err(Stop::Steps) => "step_limit",
                Ok(IiSearch::Bounded) | Err(Stop::Bound) => "bounded",
                Err(Stop::Budget(_)) => "budget",
            },
        );
    }
    drop(span);
    *steps_total += s.steps;
    match result {
        Ok(r) => Ok(r),
        Err(Stop::Steps) => Ok(IiSearch::Exhausted),
        Err(Stop::Bound) => Ok(IiSearch::Bounded),
        Err(Stop::Budget(e)) => Err(e),
    }
}

/// How a bottom-up II sweep ended.
pub(crate) enum SweepEnd {
    /// A feasible mapping was found at `mapping.ii`; every smaller II
    /// (down to the MII) was proven infeasible, so it is optimal.
    Found { mapping: Box<Mapping>, steps: u64 },
    /// Every II in `[mii, next_ii)` was proven infeasible and the sweep
    /// stopped (it reached the shared upper bound or the max II).
    ProvenUpTo { next_ii: u32, steps: u64 },
    /// The step cap fired mid-proof: smaller IIs up to that point are
    /// proven infeasible, but nothing is known beyond it.
    Exhausted { steps: u64 },
}

/// Sweeps candidate IIs bottom-up from the MII, stopping at the shared
/// `upper` bound (exclusive — typically the heuristic's achieved II,
/// which the portfolio's heuristic arm tightens concurrently).
pub(crate) fn sweep(
    p: &Problem<'_>,
    upper: &AtomicU32,
    budget: &Budget,
    tracer: &Tracer,
) -> Result<SweepEnd, MapError> {
    let mut steps = 0u64;
    let start = p.mii.max(1);
    let mut ii = start;
    while ii < upper.load(Ordering::Acquire) && ii <= p.config.max_ii.max(start) {
        match search_ii(p, ii, budget, upper, tracer, &mut steps)? {
            IiSearch::Feasible(mapping) => {
                validate::validate(p.dfg, p.arch, &mapping)
                    .map_err(|v| MapError::BrokenInvariant(v.to_string()))?;
                return Ok(SweepEnd::Found { mapping, steps });
            }
            IiSearch::Infeasible => ii += 1,
            IiSearch::Exhausted => return Ok(SweepEnd::Exhausted { steps }),
            // The bound dropped mid-rung: IIs below `ii` stay proven
            // infeasible, `ii` itself gets no claim. The abort's steps
            // are already in `steps`.
            IiSearch::Bounded => break,
        }
    }
    Ok(SweepEnd::ProvenUpTo { next_ii: ii, steps })
}

/// The exact backend: heuristic warm start, then a bottom-up
/// branch-and-bound sweep over every II below the heuristic's answer.
/// Never returns a higher II than the heuristic; returns
/// `proven_optimal` unless the step cap fired or the budget ran out
/// mid-proof.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExactBackend;

impl MapperBackend for ExactBackend {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn map(
        &self,
        dfg: &Dfg,
        arch: &CgraArch,
        config: &MapperConfig,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Result<BackendOutcome, MapError> {
        let p = Problem::new(dfg, arch, config)?;
        // Warm start: the heuristic's answer is the incumbent and the
        // exclusive upper bound of the sweep.
        let incumbent = match HeuristicBackend.map(dfg, arch, config, budget, tracer) {
            Ok(out) => Some(out),
            Err(MapError::Infeasible { .. }) => None,
            Err(e) => return Err(e),
        };
        let start = p.mii.max(1);
        let max_ii = config.max_ii.max(start);
        let heuristic_ii = incumbent.as_ref().map(|o| o.mapping.ii);
        let upper = AtomicU32::new(heuristic_ii.map_or(max_ii + 1, |ii| ii));
        match sweep(&p, &upper, budget, tracer)? {
            SweepEnd::Found { mapping, steps } => Ok(BackendOutcome {
                ii_opt: Some(mapping.ii),
                heuristic_ii,
                backend: self.name(),
                proven_optimal: true,
                exact_steps: steps,
                losers_cancelled: 0,
                // The warm start's speculation events are real even
                // when the exact sweep wins.
                speculative_cancelled: incumbent.as_ref().map_or(0, |o| o.speculative_cancelled),
                mapping: *mapping,
            }),
            SweepEnd::ProvenUpTo { next_ii, steps } => match incumbent {
                Some(mut out) => {
                    // The sweep proved every II below the heuristic's
                    // infeasible, so the incumbent is optimal.
                    out.proven_optimal = next_ii >= out.mapping.ii;
                    out.ii_opt = out.proven_optimal.then_some(out.mapping.ii);
                    out.exact_steps = steps;
                    Ok(out)
                }
                // Heuristic infeasible and the sweep proved the whole
                // II range infeasible too.
                None => Err(MapError::Infeasible { mii: start, max_ii }),
            },
            SweepEnd::Exhausted { steps } => match incumbent {
                Some(mut out) => {
                    out.exact_steps = steps;
                    Ok(out)
                }
                None => Err(MapError::Infeasible { mii: start, max_ii }),
            },
        }
    }
}
