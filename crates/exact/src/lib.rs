//! Exact branch-and-bound CGRA mapping and the heuristic/exact
//! portfolio.
//!
//! `ptmap-mapper` defines the [`MapperBackend`] trait and the
//! heuristic backend; this crate adds the two searches that need more
//! machinery — [`ExactBackend`] (branch-and-bound over the shared
//! placement/routing state space, proving per-II infeasibility) and
//! [`PortfolioBackend`] (both searches raced under governor-cancelled
//! child budgets) — plus [`map_with_backend`], the dispatch entry
//! point the compile pipeline calls. Dispatch lives here rather than
//! in the mapper because the dependency arrow points this way:
//! `ptmap-exact` builds on the mapper's router, state, and validator.
//!
//! # Example
//!
//! ```
//! use ptmap_ir::{ProgramBuilder, dfg::build_dfg};
//! use ptmap_arch::presets;
//! use ptmap_mapper::{BackendKind, MapperConfig};
//!
//! let mut b = ProgramBuilder::new("vadd");
//! let x = b.array("X", &[64]);
//! let y = b.array("Y", &[64]);
//! let i = b.open_loop("i", 64);
//! let v = b.add(b.load(x, &[b.idx(i)]), b.load(y, &[b.idx(i)]));
//! b.store(y, &[b.idx(i)], v);
//! b.close_loop();
//! let p = b.finish();
//! let nest = p.perfect_nests().remove(0);
//! let dfg = build_dfg(&p, &nest, &[]).unwrap();
//!
//! let config = MapperConfig::default().with_backend(BackendKind::Exact);
//! let out = ptmap_exact::map_with_backend(
//!     &dfg,
//!     &presets::s4(),
//!     &config,
//!     &ptmap_governor::Budget::unlimited(),
//!     &ptmap_trace::Tracer::disabled(),
//! )?;
//! assert!(out.proven_optimal);
//! assert_eq!(out.ii_opt, Some(out.mapping.ii));
//! # Ok::<(), ptmap_mapper::MapError>(())
//! ```

mod bnb;
mod portfolio;

pub use bnb::ExactBackend;
pub use portfolio::PortfolioBackend;

use ptmap_arch::CgraArch;
use ptmap_governor::Budget;
use ptmap_ir::Dfg;
use ptmap_mapper::backend::{BackendKind, BackendOutcome, HeuristicBackend, MapperBackend};
use ptmap_mapper::error::MapError;
use ptmap_mapper::MapperConfig;
use ptmap_trace::Tracer;

/// Maps `dfg` with the backend selected by
/// [`MapperConfig::backend`] — the one dispatch point every consumer
/// (core pipeline, CLI, serve) goes through. With the default
/// heuristic backend this is a pure wrapper around
/// [`ptmap_mapper::map_dfg_traced`], so fixed-seed mappings are
/// bit-identical to direct mapper calls.
///
/// # Errors
///
/// As [`ptmap_mapper::map_dfg_budgeted`].
pub fn map_with_backend(
    dfg: &Dfg,
    arch: &CgraArch,
    config: &MapperConfig,
    budget: &Budget,
    tracer: &Tracer,
) -> Result<BackendOutcome, MapError> {
    backend_for(config.backend).map(dfg, arch, config, budget, tracer)
}

/// The backend implementation for a [`BackendKind`].
pub fn backend_for(kind: BackendKind) -> &'static dyn MapperBackend {
    match kind {
        BackendKind::Heuristic => &HeuristicBackend,
        BackendKind::Exact => &ExactBackend,
        BackendKind::Portfolio => &PortfolioBackend,
    }
}
