//! Property test: every mapping the scheduler accepts — over random
//! small DFGs, architectures, and sharing modes — passes the full
//! invariant validator, and its recorded route trees never exceed any
//! MRRG node's routing capacity.

use proptest::prelude::*;
use ptmap_arch::{presets, Mrrg};
use ptmap_ir::{Dfg, OpKind};
use ptmap_mapper::{map_dfg, validate, MapError, MapperConfig};

const OPS: [OpKind; 5] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Xor,
    OpKind::Min,
];

/// Builds a DFG from drawn raw material: forward edges keep the
/// distance-0 subgraph acyclic (src < dst), while backward and self
/// edges carry a positive iteration distance, so the graph is always
/// well-formed (no zero-distance cycles).
fn build(n_nodes: usize, ops: &[u64], edges: &[(u64, u64, u32)]) -> Dfg {
    let mut dfg = Dfg::new();
    let ids: Vec<_> = (0..n_nodes)
        .map(|i| dfg.add_node(OPS[(ops[i % ops.len()] as usize) % OPS.len()], None, None))
        .collect();
    for &(a, b, d) in edges {
        let src = (a as usize) % n_nodes;
        let dst = (b as usize) % n_nodes;
        if src < dst {
            dfg.add_edge(ids[src], ids[dst], d);
        } else {
            dfg.add_edge(ids[src], ids[dst], d.max(1));
        }
    }
    dfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn accepted_mappings_pass_the_validator(
        n_nodes in 2usize..10,
        ops in proptest::collection::vec(0u64..OPS.len() as u64, 10..11),
        edges in proptest::collection::vec((0u64..64, 0u64..64, 0u32..3), 0..14),
        arch_pick in 0u32..3,
        share in any::<bool>(),
    ) {
        let dfg = build(n_nodes, &ops, &edges);
        let arch = match arch_pick {
            0 => presets::s4(),
            1 => presets::r4(),
            _ => presets::sl8(),
        };
        let cfg = MapperConfig {
            share_routes: share,
            ..MapperConfig::default()
        };
        match map_dfg(&dfg, &arch, &cfg) {
            Ok(m) => {
                // End-to-end structural invariants.
                if let Err(v) = validate(&dfg, &arch, &m) {
                    prop_assert!(false, "validator rejected accepted mapping: {v}");
                }
                // Independent capacity recount straight from the
                // artifact: per-MRRG-node claimed residencies must fit.
                let mrrg = Mrrg::new(&arch, m.ii);
                let mut used = vec![0u32; mrrg.node_count()];
                for tree in &m.route_trees {
                    for pos in &tree.positions {
                        used[pos.slot as usize] += pos.claims;
                    }
                }
                for (slot, &u) in used.iter().enumerate() {
                    prop_assert!(
                        u <= mrrg.route_capacity(slot),
                        "slot {slot}: {u} claims > capacity {}",
                        mrrg.route_capacity(slot)
                    );
                }
                prop_assert_eq!(used.iter().sum::<u32>(), m.route_slots);
            }
            // Random graphs may legitimately be unmappable (unsupported
            // op on reduced architectures, or no feasible II); the
            // up-front structural errors must not appear since `build`
            // never produces them.
            Err(MapError::Infeasible { .. }) | Err(MapError::UnsupportedOp(_)) => {}
            Err(e) => prop_assert!(false, "unexpected mapper error: {e}"),
        }
    }
}
