//! Determinism suite for the speculative II ladder.
//!
//! The contract under test (DESIGN.md, "Speculative II ladder"): for a
//! fixed seed, the mapping produced with speculation on — at any wave
//! width, fixed or adaptive — is *bit-identical* to the sequential
//! ladder's, because each rung's RNG derives from `(seed, ii)` alone
//! and rungs never exchange search state. Speculation may only change
//! wall clock, never results.

use proptest::prelude::*;
use ptmap_arch::presets;
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::{Dfg, OpKind, Program, ProgramBuilder};
use ptmap_mapper::{map_dfg, validate, MapError, MapperConfig, Speculation};

const WIDTHS: [Speculation; 4] = [
    Speculation::Fixed(1),
    Speculation::Fixed(2),
    Speculation::Fixed(4),
    Speculation::Auto,
];

fn gemm(n: u64) -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[n, n]);
    let bb = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let i = b.open_loop("i", n);
    let j = b.open_loop("j", n);
    let k = b.open_loop("k", n);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bb, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.finish()
}

/// Kernels whose II escalates past the MII — the cases where rungs
/// actually race — plus an easy one that lands on the first rung.
fn suite() -> Vec<(&'static str, Dfg, ptmap_arch::CgraArch)> {
    let p = gemm(24);
    let nest = p.perfect_nests().remove(0);
    let plain = build_dfg(&p, &nest, &[]).unwrap();
    let (i, j) = (nest.loops[0], nest.loops[1]);
    let unrolled = build_dfg(&p, &nest, &[(i, 2), (j, 2)]).unwrap();
    vec![
        ("gemm24_s4", plain.clone(), presets::s4()),
        ("gemm24_r4", plain, presets::r4()),
        ("gemm24_u2x2_s4", unrolled.clone(), presets::s4()),
        ("gemm24_u2x2_sl8", unrolled, presets::sl8()),
    ]
}

#[test]
fn fixed_seed_mappings_bit_identical_across_widths() {
    for (name, dfg, arch) in suite() {
        let sequential = map_dfg(&dfg, &arch, &MapperConfig::default()).unwrap();
        assert!(
            sequential.ii > sequential.mii || name == "gemm24_u2x2_sl8",
            "{name}: want at least one escalating case in the suite (ii {} mii {})",
            sequential.ii,
            sequential.mii
        );
        for spec in WIDTHS {
            let cfg = MapperConfig::default().with_speculation(spec);
            let speculated = map_dfg(&dfg, &arch, &cfg).unwrap();
            assert_eq!(
                sequential, speculated,
                "{name}: mapping diverged at speculation {spec}"
            );
            validate(&dfg, &arch, &speculated).unwrap();
        }
    }
}

#[test]
fn speculation_is_deterministic_run_to_run() {
    let (_, dfg, arch) = suite().remove(2);
    let cfg = MapperConfig::default().with_speculation(Speculation::Fixed(4));
    let a = map_dfg(&dfg, &arch, &cfg).unwrap();
    let b = map_dfg(&dfg, &arch, &cfg).unwrap();
    assert_eq!(a, b, "two speculative runs of the same seed diverged");
}

#[test]
fn speculation_respects_seed_changes() {
    // Different seeds may map differently; the on/off equivalence must
    // hold per seed, not just for the default.
    let (_, dfg, arch) = suite().remove(2);
    for seed in [1u64, 0xDEAD_BEEF, u64::MAX] {
        let seq = map_dfg(&dfg, &arch, &MapperConfig::default().with_seed(seed)).unwrap();
        let spec = map_dfg(
            &dfg,
            &arch,
            &MapperConfig::default()
                .with_seed(seed)
                .with_speculation(Speculation::Fixed(3)),
        )
        .unwrap();
        assert_eq!(seq, spec, "seed {seed:#x} diverged under speculation");
    }
}

#[test]
fn cancelled_budget_stops_speculative_mapping() {
    let (_, dfg, arch) = suite().remove(0);
    let budget = ptmap_governor::Budget::cancellable();
    budget.cancel();
    let cfg = MapperConfig::default().with_speculation(Speculation::Fixed(4));
    assert_eq!(
        ptmap_mapper::map_dfg_budgeted(&dfg, &arch, &cfg, &budget),
        Err(MapError::Cancelled),
        "a pre-cancelled parent budget must cancel every speculative rung"
    );
}

#[test]
fn expired_deadline_times_out_speculative_mapping() {
    let (_, dfg, arch) = suite().remove(0);
    let budget = ptmap_governor::Budget::with_deadline(std::time::Duration::ZERO);
    let cfg = MapperConfig::default().with_speculation(Speculation::Auto);
    assert_eq!(
        ptmap_mapper::map_dfg_budgeted(&dfg, &arch, &cfg, &budget),
        Err(MapError::Timeout)
    );
}

#[test]
fn work_limited_budget_stays_on_the_metered_sequential_path() {
    // Scoped children never inherit the work counter, so the
    // speculative ladder falls back to the sequential walk for metered
    // budgets — the two-unit budget must exhaust exactly as it does
    // with speculation off (see `work_limit_exhausts_as_timeout`).
    let (_, dfg, arch) = suite().remove(0);
    let budget = ptmap_governor::Budget::with_work_limit(2);
    let cfg = MapperConfig::default().with_speculation(Speculation::Fixed(4));
    assert_eq!(
        ptmap_mapper::map_dfg_budgeted(&dfg, &arch, &cfg, &budget),
        Err(MapError::Timeout)
    );
}

#[test]
fn speculative_rung_spans_carry_speculated_and_cancelled_attrs() {
    let (_, dfg, arch) = suite().remove(2); // escalates: rungs race
    let cfg = MapperConfig::default().with_speculation(Speculation::Fixed(4));
    let tracer = ptmap_trace::Tracer::root("spec");
    let m = ptmap_mapper::map_dfg_traced(
        &dfg,
        &arch,
        &cfg,
        &ptmap_governor::Budget::unlimited(),
        &tracer,
    )
    .unwrap();
    let trace = tracer.finish().unwrap();
    let attempts: Vec<_> = trace.spans_named("ii_attempt").collect();
    assert!(!attempts.is_empty());
    let attr = |span: &ptmap_trace::SpanRecord, name: &str| {
        span.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    };
    // Spans are created in ascending II order, one per rung tried.
    let iis: Vec<u64> = attempts
        .iter()
        .map(|s| match attr(s, "ii") {
            Some(ptmap_trace::AttrValue::UInt(ii)) => ii,
            other => panic!("ii attr missing or mistyped: {other:?}"),
        })
        .collect();
    let mut sorted = iis.clone();
    sorted.sort_unstable();
    assert_eq!(iis, sorted, "rung spans out of ascending II order");
    for span in &attempts {
        assert_eq!(
            attr(span, "speculated"),
            Some(ptmap_trace::AttrValue::Bool(true))
        );
        assert!(
            matches!(
                attr(span, "cancelled"),
                Some(ptmap_trace::AttrValue::Bool(_))
            ),
            "cancelled attr missing"
        );
        for counter in ["restarts", "placements_tried", "backtracks"] {
            assert!(
                matches!(attr(span, counter), Some(ptmap_trace::AttrValue::UInt(_))),
                "missing counter {counter}"
            );
        }
    }
    // The lowest successful rung is the winner, at the accepted II.
    // (Higher rungs may also record success=true: an easier rung can
    // finish before the winner's cancellation reaches it. They must
    // all sit above the accepted II.)
    let winner_iis: Vec<u64> = attempts
        .iter()
        .filter(|s| attr(s, "success") == Some(ptmap_trace::AttrValue::Bool(true)))
        .map(|s| match attr(s, "ii") {
            Some(ptmap_trace::AttrValue::UInt(ii)) => ii,
            other => panic!("winner without ii: {other:?}"),
        })
        .collect();
    assert_eq!(
        winner_iis.iter().min().copied(),
        Some(m.ii as u64),
        "lowest successful rung must be the accepted II"
    );
    // A cancelled rung can only sit above the winning II.
    for span in &attempts {
        if attr(span, "cancelled") == Some(ptmap_trace::AttrValue::Bool(true)) {
            let Some(ptmap_trace::AttrValue::UInt(ii)) = attr(span, "ii") else {
                panic!("cancelled rung without ii");
            };
            assert!(
                ii > m.ii as u64,
                "rung at II {ii} below winner was cancelled"
            );
        }
    }
}

const OPS: [OpKind; 5] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Xor,
    OpKind::Min,
];

/// Random well-formed DFG (same recipe as `prop_mapping`): forward
/// edges keep the distance-0 subgraph acyclic, backward/self edges
/// carry positive distance.
fn build(n_nodes: usize, ops: &[u64], edges: &[(u64, u64, u32)]) -> Dfg {
    let mut dfg = Dfg::new();
    let ids: Vec<_> = (0..n_nodes)
        .map(|i| dfg.add_node(OPS[(ops[i % ops.len()] as usize) % OPS.len()], None, None))
        .collect();
    for &(a, b, d) in edges {
        let src = (a as usize) % n_nodes;
        let dst = (b as usize) % n_nodes;
        if src < dst {
            dfg.add_edge(ids[src], ids[dst], d);
        } else {
            dfg.add_edge(ids[src], ids[dst], d.max(1));
        }
    }
    dfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The speculative ladder accepts exactly the II the sequential
    /// one does (and the identical mapping), over random DFGs, arches,
    /// widths, and seeds; infeasible stays infeasible.
    #[test]
    fn speculative_ladder_matches_sequential(
        n_nodes in 2usize..10,
        ops in proptest::collection::vec(0u64..OPS.len() as u64, 10..11),
        edges in proptest::collection::vec((0u64..64, 0u64..64, 0u32..3), 0..14),
        arch_pick in 0u32..3,
        width in 2u32..=4,
        auto in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let dfg = build(n_nodes, &ops, &edges);
        let arch = match arch_pick {
            0 => presets::s4(),
            1 => presets::r4(),
            _ => presets::sl8(),
        };
        let base = MapperConfig::default().with_seed(seed);
        let spec = if auto { Speculation::Auto } else { Speculation::Fixed(width) };
        let seq = map_dfg(&dfg, &arch, &base);
        let par = map_dfg(&dfg, &arch, &base.clone().with_speculation(spec));
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a, &b, "mapping diverged at {}", spec);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "feasibility diverged: seq {:?} vs spec {:?}", a, b),
        }
    }
}
