//! Integration tests for the shared-route-tree design choice.

use ptmap_arch::presets;
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::ProgramBuilder;
use ptmap_mapper::{map_dfg, MapperConfig};

fn fanout_kernel() -> (ptmap_ir::Program, ptmap_ir::PerfectNest) {
    // One load fanning out to many consumers: the sharing stress case.
    let mut b = ProgramBuilder::new("fanout");
    let x = b.array("X", &[256]);
    let outs: Vec<_> = (0..4).map(|k| b.array(format!("O{k}"), &[256])).collect();
    let i = b.open_loop("i", 256);
    for (k, &o) in outs.iter().enumerate() {
        let v = b.add(b.load(x, &[b.idx(i)]), b.constant(k as i64 + 1));
        b.store(o, &[b.idx(i)], v);
    }
    b.close_loop();
    let p = b.finish();
    let nest = p.perfect_nests().remove(0);
    (p, nest)
}

#[test]
fn sharing_never_hurts_ii() {
    let (p, nest) = fanout_kernel();
    let dfg = build_dfg(&p, &nest, &[]).unwrap();
    let arch = presets::sl8();
    let shared = map_dfg(&dfg, &arch, &MapperConfig::default());
    let unshared = map_dfg(
        &dfg,
        &arch,
        &MapperConfig {
            share_routes: false,
            ..MapperConfig::default()
        },
    );
    let shared = shared.expect("shared routing maps");
    // Unshared routing may simply fail under congestion; when it maps,
    // sharing must not be worse.
    if let Ok(u) = unshared {
        assert!(
            shared.ii <= u.ii,
            "shared {} vs unshared {}",
            shared.ii,
            u.ii
        );
    }
}

#[test]
fn sharing_reduces_route_slots_on_fanout() {
    let (p, nest) = fanout_kernel();
    let (i,) = (nest.loops[0],);
    let dfg = build_dfg(&p, &nest, &[(i, 2)]).unwrap();
    let arch = presets::s4();
    let shared = map_dfg(&dfg, &arch, &MapperConfig::default()).expect("maps");
    let unshared = map_dfg(
        &dfg,
        &arch,
        &MapperConfig {
            share_routes: false,
            ..MapperConfig::default()
        },
    );
    if let Ok(u) = unshared {
        if u.ii == shared.ii {
            assert!(
                shared.route_slots <= u.route_slots,
                "shared {} slots vs unshared {}",
                shared.route_slots,
                u.route_slots
            );
        }
    }
}

#[test]
fn both_modes_produce_valid_mappings() {
    let (p, nest) = fanout_kernel();
    let dfg = build_dfg(&p, &nest, &[]).unwrap();
    for share in [true, false] {
        let cfg = MapperConfig {
            share_routes: share,
            ..MapperConfig::default()
        };
        if let Ok(m) = map_dfg(&dfg, &presets::s4(), &cfg) {
            ptmap_sim_verify(&dfg, &m);
        }
    }
}

// Local copy of the timing check to avoid a dev-dependency cycle with
// ptmap-sim (which depends on this crate).
fn ptmap_sim_verify(dfg: &ptmap_ir::Dfg, m: &ptmap_mapper::Mapping) {
    let mut time = vec![0u32; dfg.len()];
    for p in &m.placements {
        time[p.node.index()] = p.time;
    }
    for e in dfg.edges() {
        let dep = time[e.src.index()] as i64 + dfg.nodes()[e.src.index()].latency() as i64;
        let arrive = time[e.dst.index()] as i64 + e.dist as i64 * m.ii as i64;
        assert!(arrive >= dep, "edge {}->{} timing violated", e.src, e.dst);
    }
}
