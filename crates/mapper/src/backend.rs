//! Pluggable mapper backends.
//!
//! The mapper's search is factored behind the [`MapperBackend`] trait
//! so the iterative-modulo-scheduling heuristic
//! ([`crate::scheduler::Scheduler`], wrapped by [`HeuristicBackend`])
//! is one of several interchangeable searches over the same problem:
//! place every DFG node on an MRRG compute slot and route every data
//! edge through [`crate::router::route_value`]. The exact
//! branch-and-bound backend and the portfolio runner live in the
//! `ptmap-exact` crate (the trait lives here so `ptmap-exact` can
//! depend on `ptmap-mapper`, not the other way around); its
//! `map_with_backend` dispatches on [`MapperConfig::backend`].
//!
//! Contract for implementors:
//!
//! * **Same problem, same answers.** A backend must accept exactly the
//!   DFGs the heuristic accepts (reject empty graphs, unsupported ops,
//!   zero-distance cycles with the same [`MapError`] variants) and must
//!   only return mappings that pass [`crate::validate::validate`].
//! * **Cooperative cancellation.** Long searches must call
//!   [`ptmap_governor::Budget::check`] frequently enough that a
//!   `cancel()` or deadline expiry is observed within a bounded amount
//!   of work, returning [`MapError::Cancelled`] / [`MapError::Timeout`].
//! * **Determinism.** Given the same config (including seed), a backend
//!   must produce bit-identical mappings run to run. Optimality claims
//!   ([`BackendOutcome::proven_optimal`]) are stated relative to the
//!   shared deterministic routing oracle — see DESIGN.md's "Mapper
//!   backends & portfolio" section.

use crate::config::MapperConfig;
use crate::error::MapError;
use crate::mapping::{Mapping, Placement, ProducerRoutes, RoutePos};
use crate::state::State;
use ptmap_arch::CgraArch;
use ptmap_governor::Budget;
use ptmap_ir::Dfg;
use ptmap_trace::Tracer;
use std::fmt;
use std::str::FromStr;

/// Which search produces mappings; selected by
/// [`MapperConfig::backend`] and dispatched by `ptmap-exact`'s
/// `map_with_backend`. Serializes as its lowercase name (manual serde
/// impls below — the canonical wire form is the same string the CLI
/// flag and the `X-Ptmap-Quality` header use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The randomized iterative-modulo-scheduling heuristic (fast,
    /// no optimality information beyond `ii == mii`).
    #[default]
    Heuristic,
    /// Branch-and-bound exact search: warm-started by the heuristic,
    /// then proves each II below the achieved one infeasible (or finds
    /// a better mapping).
    Exact,
    /// Heuristic and exact raced on separate threads under
    /// `Budget::scoped_child`; losers are cancelled when a winner
    /// lands.
    Portfolio,
}

impl BackendKind {
    /// The canonical lowercase name, matching CLI flag values, trace
    /// span attributes, and the `X-Ptmap-Quality` header.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Heuristic => "heuristic",
            BackendKind::Exact => "exact",
            BackendKind::Portfolio => "portfolio",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heuristic" => Ok(BackendKind::Heuristic),
            "exact" => Ok(BackendKind::Exact),
            "portfolio" => Ok(BackendKind::Portfolio),
            other => Err(format!(
                "unknown backend '{other}' (expected heuristic, exact, or portfolio)"
            )),
        }
    }
}

impl serde::Serialize for BackendKind {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for BackendKind {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::DeError::new("backend: expected string"))?;
        s.parse().map_err(|e: String| serde::DeError::new(&e))
    }
}

/// A mapping plus the optimality evidence the producing search has.
#[derive(Debug, Clone)]
pub struct BackendOutcome {
    /// The winning mapping.
    pub mapping: Mapping,
    /// Canonical name of the search that produced `mapping` (in
    /// portfolio mode: the winner, not the configured backend).
    pub backend: &'static str,
    /// The proven-optimal II, when known: equals `mapping.ii` when the
    /// search proved every smaller II infeasible (or `ii == mii`).
    pub ii_opt: Option<u32>,
    /// The II the heuristic search achieved, when it ran and succeeded
    /// (always set for the plain heuristic; the warm start for exact;
    /// the heuristic arm for portfolio). `heuristic_ii - ii_opt` is the
    /// measured heuristic optimality gap when both are known.
    pub heuristic_ii: Option<u32>,
    /// Whether `mapping.ii` is proven optimal (relative to the shared
    /// routing oracle; see the module docs).
    pub proven_optimal: bool,
    /// Branch-and-bound steps spent by the exact search (0 for the
    /// plain heuristic).
    pub exact_steps: u64,
    /// How many losing portfolio arms were cancelled (0 outside
    /// portfolio mode).
    pub losers_cancelled: u32,
    /// How many speculative II-ladder rungs the heuristic search
    /// cancelled mid-flight after a lower II succeeded (0 with
    /// speculation off; see [`crate::config::Speculation`]).
    pub speculative_cancelled: u32,
}

/// A search strategy that maps DFGs onto CGRAs. See the module docs
/// for the contract.
pub trait MapperBackend {
    /// The canonical backend name ([`BackendKind::as_str`] of the kind
    /// it implements).
    fn name(&self) -> &'static str;

    /// Maps `dfg` onto `arch`, reporting optimality evidence alongside
    /// the mapping.
    ///
    /// # Errors
    ///
    /// As [`crate::map_dfg_budgeted`].
    fn map(
        &self,
        dfg: &Dfg,
        arch: &CgraArch,
        config: &MapperConfig,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Result<BackendOutcome, MapError>;
}

/// The existing iterative-modulo-scheduling stack as a backend. This
/// is a pure dispatch wrapper around [`crate::map_dfg_traced`], so
/// fixed-seed mappings are bit-identical to direct calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct HeuristicBackend;

impl MapperBackend for HeuristicBackend {
    fn name(&self) -> &'static str {
        BackendKind::Heuristic.as_str()
    }

    fn map(
        &self,
        dfg: &Dfg,
        arch: &CgraArch,
        config: &MapperConfig,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Result<BackendOutcome, MapError> {
        let (mapping, speculative_cancelled) =
            crate::map_dfg_traced_counted(dfg, arch, config, budget, tracer)?;
        // Landing on the MII is the one optimality certificate the
        // heuristic gets for free: the MII is a valid lower bound.
        let proven_optimal = mapping.ii == mapping.mii;
        Ok(BackendOutcome {
            ii_opt: proven_optimal.then_some(mapping.ii),
            heuristic_ii: Some(mapping.ii),
            backend: self.name(),
            proven_optimal,
            exact_steps: 0,
            losers_cancelled: 0,
            speculative_cancelled,
            mapping,
        })
    }
}

/// Assembles the final [`Mapping`] artifact from a complete search
/// [`State`] — the one assembly path shared by every backend, so
/// exact- and heuristic-produced mappings are structurally identical
/// for the same placement and routes. Takes `st.routes` out of the
/// state; callers must be done searching.
pub fn assemble_mapping(dfg: &Dfg, arch: &CgraArch, mii: u32, ii: u32, st: &mut State) -> Mapping {
    let mut placements = Vec::with_capacity(dfg.len());
    let mut t_min = u32::MAX;
    let mut t_max_end = 0u32;
    let mut pes = std::collections::BTreeSet::new();
    for (i, p) in st.place.iter().enumerate() {
        let (pe, t) = p.expect("all nodes placed");
        placements.push(Placement {
            node: ptmap_ir::NodeId(i as u32),
            pe,
            time: t,
        });
        t_min = t_min.min(t);
        t_max_end = t_max_end.max(t + dfg.nodes()[i].latency());
        pes.insert(pe);
    }
    let schedule_length = (t_max_end - t_min).max(ii);
    let route_trees = st
        .trees
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(i, t)| ProducerRoutes {
            producer: ptmap_ir::NodeId(i as u32),
            positions: t
                .positions()
                .iter()
                .map(|&(slot, cycle, claims)| RoutePos {
                    slot,
                    cycle,
                    claims,
                })
                .collect(),
        })
        .collect();
    Mapping {
        ii,
        mii,
        schedule_length,
        placements,
        route_slots: st.route_slots,
        routes: std::mem::take(&mut st.routes),
        route_trees,
        pes_used: pes.len() as u32,
        pe_count: arch.pe_count() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_round_trips_names() {
        for kind in [
            BackendKind::Heuristic,
            BackendKind::Exact,
            BackendKind::Portfolio,
        ] {
            assert_eq!(kind.as_str().parse::<BackendKind>(), Ok(kind));
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(json, format!("\"{kind}\""));
            assert_eq!(serde_json::from_str::<BackendKind>(&json).unwrap(), kind);
        }
        assert!("sat".parse::<BackendKind>().is_err());
    }

    #[test]
    fn config_without_backend_field_defaults_to_heuristic() {
        // Pre-refactor serialized configs must keep parsing (cache
        // entries, serve requests).
        let json = r#"{"max_ii":20,"effort":1,"seed":5,"share_routes":true}"#;
        let cfg: MapperConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.backend, BackendKind::Heuristic);
        assert!(cfg.exact_steps_per_ii > 0);
    }

    #[test]
    fn backend_choice_changes_serialized_config() {
        // The pipeline cache key hashes the serialized config, so two
        // backends must never serialize identically.
        let heur = serde_json::to_string(&MapperConfig::default()).unwrap();
        let exact =
            serde_json::to_string(&MapperConfig::default().with_backend(BackendKind::Exact))
                .unwrap();
        assert_ne!(heur, exact);
    }
}
