//! A RAMP-like modulo-scheduling mapper for CGRAs.
//!
//! Given a [`ptmap_ir::Dfg`] (one iteration of a pipelined loop) and a
//! [`ptmap_arch::CgraArch`], the mapper searches for the smallest
//! initiation interval at which every operation can be *placed* on a PE
//! time slot and every data edge *routed* through the time-extended
//! [`ptmap_arch::Mrrg`] — the resource-aware formulation of RAMP, the
//! loop-scheduling back-end the paper uses for every compared method.
//!
//! The search is iterative modulo scheduling: starting from the minimum
//! II (`max(ResMII, RecMII)`, see [`mod@mii`]), each candidate II gets a
//! bounded number of randomized placement attempts before escalating.
//! The [`MapperConfig::effort`] knob controls those budgets; the
//! baselines crate uses a higher effort to model the stronger GNN/RL
//! schedulers (LISA, MapZero) the paper compares against.
//!
//! # Example
//!
//! ```
//! use ptmap_ir::{ProgramBuilder, dfg::build_dfg};
//! use ptmap_arch::presets;
//! use ptmap_mapper::{map_dfg, MapperConfig};
//!
//! let mut b = ProgramBuilder::new("vadd");
//! let x = b.array("X", &[256]);
//! let y = b.array("Y", &[256]);
//! let i = b.open_loop("i", 256);
//! let v = b.add(b.load(x, &[b.idx(i)]), b.load(y, &[b.idx(i)]));
//! b.store(y, &[b.idx(i)], v);
//! b.close_loop();
//! let p = b.finish();
//! let nest = p.perfect_nests().remove(0);
//! let dfg = build_dfg(&p, &nest, &[]).unwrap();
//!
//! let mapping = map_dfg(&dfg, &presets::s4(), &MapperConfig::default())?;
//! assert!(mapping.ii >= 1);
//! # Ok::<(), ptmap_mapper::MapError>(())
//! ```

pub mod backend;
pub mod config;
pub mod context;
pub mod error;
pub mod mapping;
pub mod mii;
pub mod router;
pub mod scheduler;
pub mod state;
pub mod validate;

pub use backend::{BackendKind, BackendOutcome, HeuristicBackend, MapperBackend};
pub use config::{MapperConfig, Speculation};
pub use context::{generate_contexts, ContextImage, ContextWord};
pub use error::MapError;
pub use mapping::{Mapping, OperandSource, Placement, ProducerRoutes, RoutePos, RouteRecord};
pub use mii::{mii, rec_mii, res_mii, try_rec_mii};
pub use validate::{validate, Violation};

use ptmap_arch::CgraArch;
use ptmap_ir::Dfg;

/// Whether [`map_dfg`] should run the invariant validator: the config
/// flag, or the `PTMAP_VALIDATE` environment variable (any value except
/// `0`) to force it on process-wide — CI sets the variable so every
/// mapping produced by the test suite is checked.
pub fn validation_enabled(config: &MapperConfig) -> bool {
    config.validate
        || std::env::var_os("PTMAP_VALIDATE").is_some_and(|v| !v.is_empty() && v != *"0")
}

/// Maps a DFG onto an architecture, returning the mapping artifact.
///
/// When validation is enabled (see [`validation_enabled`]) the mapping
/// is checked against every structural invariant before being returned.
///
/// # Errors
///
/// Returns [`MapError::UnsupportedOp`] if some operation is supported by
/// no PE, [`MapError::EmptyDfg`] for an empty graph,
/// [`MapError::ZeroDistanceCycle`] for a dependence cycle no II can
/// satisfy, [`MapError::Infeasible`] when no II up to `config.max_ii`
/// admits a complete placement and routing, and
/// [`MapError::BrokenInvariant`] (a mapper bug) when the validator
/// rejects a produced mapping.
pub fn map_dfg(dfg: &Dfg, arch: &CgraArch, config: &MapperConfig) -> Result<Mapping, MapError> {
    map_dfg_budgeted(dfg, arch, config, &ptmap_governor::Budget::unlimited())
}

/// [`map_dfg`] under a cooperative [`ptmap_governor::Budget`]: the II
/// escalation loop checks the budget per restart and per node placement,
/// returning [`MapError::Timeout`] / [`MapError::Cancelled`] promptly
/// when it runs out. An unlimited budget is free; a deadline-free
/// cancellable budget costs one relaxed atomic load per check.
///
/// # Errors
///
/// Everything [`map_dfg`] returns, plus [`MapError::Timeout`] and
/// [`MapError::Cancelled`] from the budget.
pub fn map_dfg_budgeted(
    dfg: &Dfg,
    arch: &CgraArch,
    config: &MapperConfig,
    budget: &ptmap_governor::Budget,
) -> Result<Mapping, MapError> {
    map_dfg_traced(dfg, arch, config, budget, &ptmap_trace::Tracer::disabled())
}

/// [`map_dfg_budgeted`] with span-tree instrumentation: records one
/// `ii_attempt` span per candidate II under `tracer`, carrying restart,
/// placement-backtrack, BFS-expansion, and route-failure counters (see
/// [`scheduler::Scheduler::run_traced`]). A disabled tracer makes this
/// identical to [`map_dfg_budgeted`]; an enabled one never changes the
/// produced mapping.
///
/// # Errors
///
/// As [`map_dfg_budgeted`].
pub fn map_dfg_traced(
    dfg: &Dfg,
    arch: &CgraArch,
    config: &MapperConfig,
    budget: &ptmap_governor::Budget,
    tracer: &ptmap_trace::Tracer,
) -> Result<Mapping, MapError> {
    map_dfg_traced_counted(dfg, arch, config, budget, tracer).map(|(m, _)| m)
}

/// [`map_dfg_traced`], additionally reporting how many speculative
/// ladder rungs were cancelled mid-flight by a lower II's success
/// (always 0 with [`config::Speculation::Off`]; see
/// [`scheduler::Scheduler::run_traced_counted`]). This is the entry
/// point backends use to surface the count on
/// [`backend::BackendOutcome::speculative_cancelled`].
///
/// # Errors
///
/// As [`map_dfg_budgeted`].
pub fn map_dfg_traced_counted(
    dfg: &Dfg,
    arch: &CgraArch,
    config: &MapperConfig,
    budget: &ptmap_governor::Budget,
    tracer: &ptmap_trace::Tracer,
) -> Result<(Mapping, u32), MapError> {
    let (m, cancelled) =
        scheduler::Scheduler::new(dfg, arch, config)?.run_traced_counted(budget, tracer)?;
    if validation_enabled(config) {
        validate::validate(dfg, arch, &m).map_err(|v| MapError::BrokenInvariant(v.to_string()))?;
    }
    Ok((m, cancelled))
}
