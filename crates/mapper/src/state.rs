//! Mutable search state of one placement attempt.
//!
//! The scheduler's hot path is the routing BFS, so the state here is
//! deliberately flat: dense per-MRRG-node arrays for occupancy and
//! capacities, per-producer route trees as sorted vectors, and
//! epoch-stamped scratch buffers ([`RouterBuffers`]) that the BFS
//! reuses across every `route_value` call of an attempt instead of
//! allocating fresh maps per edge.
//!
//! The types here are public so alternative [`crate::backend`]
//! implementations (notably the exact branch-and-bound backend in
//! `ptmap-exact`) can search over the *same* committed-state and
//! routing semantics as the heuristic scheduler; [`RouteTree::insert`]
//! reports whether it created a new position, and
//! [`RouteTree::remove`] reverts one insert, which is what a
//! backtracking search needs to keep a trail-based undo exact.

use crate::mapping::RouteRecord;
use ptmap_arch::{Mrrg, PeId};

/// One recorded position of a produced value: `(mrrg slot, absolute
/// cycle)` plus how many routing-capacity units it claims there (0 for
/// consumer operand ports; can exceed 1 when route sharing is disabled
/// and several independent routes pass through the same position).
pub type TreePos = (u32, u32, u32);

/// The `(slot, absolute cycle)` positions where one producer's value
/// exists, sorted by `(slot, cycle)` for binary-search membership and
/// deterministic seed iteration.
#[derive(Debug, Default, Clone)]
pub struct RouteTree {
    positions: Vec<TreePos>,
}

impl RouteTree {
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    pub fn positions(&self) -> &[TreePos] {
        &self.positions
    }

    fn index_of(&self, slot: u32, at: u32) -> Result<usize, usize> {
        self.positions
            .binary_search_by_key(&(slot, at), |&(s, a, _)| (s, a))
    }

    pub fn contains(&self, slot: u32, at: u32) -> bool {
        self.index_of(slot, at).is_ok()
    }

    /// Records a position (or another capacity claim on an existing
    /// one, which happens only when route sharing is off). Returns
    /// `true` when a new position was created, `false` when an existing
    /// one absorbed the claim — callers that backtrack must hand that
    /// flag back to [`RouteTree::remove`] to undo exactly this insert.
    pub fn insert(&mut self, slot: u32, at: u32, claims: bool) -> bool {
        match self.index_of(slot, at) {
            Ok(i) => {
                self.positions[i].2 += claims as u32;
                false
            }
            Err(i) => {
                self.positions.insert(i, (slot, at, claims as u32));
                true
            }
        }
    }

    /// Reverts one [`RouteTree::insert`] of `(slot, at, claims)` where
    /// `created` is the value that insert returned. Inserts must be
    /// undone in reverse order for the tree to return to its prior
    /// state (trail discipline).
    pub fn remove(&mut self, slot: u32, at: u32, claims: bool, created: bool) {
        let i = match self.index_of(slot, at) {
            Ok(i) => i,
            Err(_) => {
                debug_assert!(false, "undo of a position that is not in the tree");
                return;
            }
        };
        if created {
            self.positions.remove(i);
        } else {
            self.positions[i].2 -= claims as u32;
        }
    }
}

/// Mutable state of one placement attempt.
pub struct State {
    /// Per-compute-slot occupancy: the DFG node placed there.
    pub compute: Vec<Option<usize>>,
    /// Per-MRRG-node committed routing-capacity claims.
    pub route_used: Vec<u32>,
    /// Cached `Mrrg::route_capacity` per node (hot in the BFS).
    pub route_cap: Vec<u32>,
    /// Per-DFG-node placement `(pe, absolute start cycle)`.
    pub place: Vec<Option<(PeId, u32)>>,
    /// Per-data-edge routing outcomes, in commit order.
    pub routes: Vec<RouteRecord>,
    /// Per-producer route trees, indexed by DFG node.
    pub trees: Vec<RouteTree>,
    /// Total committed capacity claims (the energy model's input).
    pub route_slots: u32,
}

impl State {
    pub fn new(mrrg: &Mrrg, dfg_len: usize) -> Self {
        let n = mrrg.node_count();
        State {
            compute: vec![None; mrrg.slots()],
            route_used: vec![0; n],
            route_cap: (0..n).map(|i| mrrg.route_capacity(i)).collect(),
            place: vec![None; dfg_len],
            routes: Vec::new(),
            trees: vec![RouteTree::default(); dfg_len],
            route_slots: 0,
        }
    }
}

/// Pending route-tree extensions for one placement candidate.
///
/// Cleared (not reallocated) between candidates. The per-slot claim
/// counters are maintained incrementally on insert, so the BFS capacity
/// check is O(1) instead of a scan over the overlay.
#[derive(Debug, Default)]
pub struct Overlay {
    /// `(producer, slot, abs cycle, claims)` in insertion order.
    adds: Vec<(usize, u32, u32, bool)>,
    /// Dense per-MRRG-node claim counters for the pending adds.
    claimed: Vec<u32>,
    /// Slots with a nonzero `claimed` entry, for O(touched) clearing.
    touched: Vec<u32>,
}

impl Overlay {
    /// Prepares for a new candidate against an MRRG with `nodes` nodes.
    pub fn reset(&mut self, nodes: usize) {
        for &i in &self.touched {
            self.claimed[i as usize] = 0;
        }
        self.touched.clear();
        self.adds.clear();
        if self.claimed.len() < nodes {
            self.claimed.resize(nodes, 0);
        }
    }

    /// Pending capacity claims on one MRRG node.
    pub fn claimed_at(&self, idx: u32) -> u32 {
        self.claimed[idx as usize]
    }

    pub fn contains(&self, producer: usize, idx: u32, at: u32) -> bool {
        self.adds
            .iter()
            .any(|&(p, i, a, _)| p == producer && i == idx && a == at)
    }

    /// Records a position unless already pending; an existing entry
    /// keeps its original `claims` flag (the first recording wins, as
    /// with `BTreeMap::entry(..).or_insert`).
    pub fn insert_if_absent(&mut self, producer: usize, idx: u32, at: u32, claims: bool) {
        if self.contains(producer, idx, at) {
            return;
        }
        self.adds.push((producer, idx, at, claims));
        if claims {
            if self.claimed[idx as usize] == 0 {
                self.touched.push(idx);
            }
            self.claimed[idx as usize] += 1;
        }
    }

    /// Appends this producer's pending positions within `[t0, arrive)`
    /// to `out`, sorted by `(slot, cycle)` — the iteration order the
    /// previous `BTreeMap` keyset gave, which seed order (and therefore
    /// mapping determinism) depends on.
    pub fn seeds_into(&self, producer: usize, t0: u32, arrive: u32, out: &mut Vec<(u32, u32)>) {
        let start = out.len();
        for &(p, idx, at, _) in &self.adds {
            if p == producer && at >= t0 && at < arrive {
                out.push((idx, at));
            }
        }
        out[start..].sort_unstable();
    }

    /// The pending adds, for committing into [`State`].
    pub fn adds(&self) -> &[(usize, u32, u32, bool)] {
        &self.adds
    }
}

/// Search-effort counters for one II attempt.
///
/// These ride inside [`RouterBuffers`] because the buffers are already
/// threaded through every hot call (`attempt` → `place_node` →
/// `try_commit` → `route_value`), so counting costs plain integer adds
/// and zero signature changes. The scheduler resets them per II rung
/// and copies them onto the `ii_attempt` trace span.
#[derive(Debug, Default, Clone, Copy)]
pub struct SearchStats {
    /// Placement restarts run at this II.
    pub restarts: u64,
    /// `(pe, cycle)` placement candidates evaluated via `try_commit`.
    pub placements_tried: u64,
    /// Attempts abandoned because a node had no feasible placement.
    pub backtracks: u64,
    /// Candidates rejected because an operand could not be routed.
    pub route_failures: u64,
    /// Nodes popped from the BFS frontier in `route_value`.
    pub bfs_expansions: u64,
}

/// Reusable scratch buffers for the routing BFS.
///
/// The BFS state space is `(mrrg node, cycle offset)` with offsets in
/// `0..=span`; both the visited stamps and the parent links live in
/// flat arrays indexed by `node * (span + 1) + offset`. Visited is an
/// epoch stamp, so starting a new search is O(1) — no clearing of the
/// dense arrays, and stale entries from earlier searches (even with a
/// different span layout) can never alias the current epoch.
#[derive(Debug, Default)]
pub struct RouterBuffers {
    epoch: Vec<u32>,
    parent: Vec<(u32, u32)>,
    cur: u32,
    /// `buckets[k]` holds MRRG nodes whose value-position is at cycle
    /// `t0 + k`, in discovery order.
    pub buckets: Vec<Vec<u32>>,
    /// Seed scratch for multi-source starts.
    pub seeds: Vec<(u32, u32)>,
    /// Walk-back scratch: `(slot, abs cycle, claims)` of the found path.
    pub path: Vec<(u32, u32, bool)>,
    /// Search-effort counters for the current II attempt.
    pub stats: SearchStats,
}

impl RouterBuffers {
    /// Starts a new search over `nodes * (span + 1)` states.
    pub fn begin(&mut self, nodes: usize, span: usize) {
        let cells = nodes * (span + 1);
        if self.epoch.len() < cells {
            self.epoch.resize(cells, 0);
            self.parent.resize(cells, (0, 0));
        }
        if self.buckets.len() <= span {
            self.buckets.resize_with(span + 1, Vec::new);
        }
        for b in &mut self.buckets[..=span] {
            b.clear();
        }
        if self.cur == u32::MAX {
            self.epoch.iter_mut().for_each(|e| *e = 0);
            self.cur = 0;
        }
        self.cur += 1;
        self.seeds.clear();
    }

    pub fn visited(&self, cell: usize) -> bool {
        self.epoch[cell] == self.cur
    }

    /// Marks a state visited and records the position it was reached
    /// from (a state that is its own parent is a search seed).
    pub fn visit(&mut self, cell: usize, from: (u32, u32)) {
        self.epoch[cell] = self.cur;
        self.parent[cell] = from;
    }

    pub fn parent_of(&self, cell: usize) -> (u32, u32) {
        debug_assert!(self.visited(cell));
        self.parent[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_tree_insert_and_lookup() {
        let mut t = RouteTree::default();
        assert!(t.is_empty());
        t.insert(5, 10, true);
        t.insert(3, 10, false);
        t.insert(5, 9, true);
        assert!(t.contains(5, 10));
        assert!(t.contains(3, 10));
        assert!(!t.contains(5, 11));
        // Sorted by (slot, cycle).
        let slots: Vec<(u32, u32)> = t.positions().iter().map(|&(s, a, _)| (s, a)).collect();
        assert_eq!(slots, vec![(3, 10), (5, 9), (5, 10)]);
        // Re-inserting an existing position accumulates claims.
        t.insert(5, 10, true);
        let claims = t
            .positions()
            .iter()
            .find(|p| p.0 == 5 && p.1 == 10)
            .unwrap();
        assert_eq!(claims.2, 2);
    }

    #[test]
    fn route_tree_remove_reverts_insert() {
        let mut t = RouteTree::default();
        let a = t.insert(5, 10, true);
        let before: Vec<TreePos> = t.positions().to_vec();
        // Second claim on the same position, then undo it.
        let b = t.insert(5, 10, true);
        assert!(a && !b);
        t.remove(5, 10, true, b);
        assert_eq!(t.positions(), &before[..]);
        // Undo the original insert too: back to empty.
        t.remove(5, 10, true, a);
        assert!(t.is_empty());
        // Claim-free (consumer port) entries round-trip as well.
        let c = t.insert(7, 3, false);
        t.remove(7, 3, false, c);
        assert!(t.is_empty());
    }

    #[test]
    fn overlay_counts_claims_incrementally() {
        let mut o = Overlay::default();
        o.reset(16);
        o.insert_if_absent(0, 3, 7, true);
        o.insert_if_absent(0, 3, 8, true);
        o.insert_if_absent(1, 3, 9, true);
        o.insert_if_absent(0, 4, 7, false);
        assert_eq!(o.claimed_at(3), 3);
        assert_eq!(o.claimed_at(4), 0);
        // Duplicate key keeps the first claims flag and counts once.
        o.insert_if_absent(0, 3, 7, true);
        assert_eq!(o.claimed_at(3), 3);
        o.reset(16);
        assert_eq!(o.claimed_at(3), 0);
        assert!(o.adds().is_empty());
    }

    #[test]
    fn overlay_seeds_sorted_per_producer() {
        let mut o = Overlay::default();
        o.reset(8);
        o.insert_if_absent(2, 7, 5, true);
        o.insert_if_absent(2, 1, 6, true);
        o.insert_if_absent(9, 0, 5, true);
        o.insert_if_absent(2, 1, 4, false);
        let mut seeds = Vec::new();
        o.seeds_into(2, 4, 7, &mut seeds);
        assert_eq!(seeds, vec![(1, 4), (1, 6), (7, 5)]);
    }

    #[test]
    fn router_buffers_epochs_do_not_leak() {
        let mut b = RouterBuffers::default();
        b.begin(4, 2);
        assert!(!b.visited(0));
        b.visit(0, (1, 2));
        assert!(b.visited(0));
        assert_eq!(b.parent_of(0), (1, 2));
        // A new search with a different span sees everything unvisited.
        b.begin(4, 5);
        for cell in 0..4 * 6 {
            assert!(!b.visited(cell));
        }
    }
}
