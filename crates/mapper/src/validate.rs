//! Post-hoc mapping invariant validator.
//!
//! The modulo-scheduling mapper is heuristic, so — unlike SAT-based
//! exact mappers whose output is correct by construction of the
//! constraint model — nothing forces its bookkeeping to stay honest.
//! [`validate`] re-checks a returned [`Mapping`] end-to-end against the
//! DFG and architecture, from scratch:
//!
//! 1. **Placement completeness** — every DFG node placed exactly once,
//!    on a PE supporting its operation.
//! 2. **Compute-slot exclusivity modulo II** — no two operations share
//!    a `(PE, cycle mod II)` slot.
//! 3. **Edge timing** — every dependence satisfies
//!    `arrive = t(dst) + dist * II >= t(src) + latency(src) = depart`.
//! 4. **Route capacity** — summing each route tree's capacity claims
//!    per MRRG node never exceeds `Mrrg::route_capacity`, and the total
//!    matches the mapping's `route_slots` (the energy model's input).
//! 5. **Route-tree connectivity** — every recorded value position is
//!    reachable from the producer's origin slot through one-cycle MRRG
//!    hops, and every data edge's consumer finds the value at its
//!    arrival position (or on the producing PE for zero-hop bypasses).
//!
//! Enable per-call with [`MapperConfig::validate`], or globally with
//! the `PTMAP_VALIDATE` environment variable (CI runs the whole test
//! suite this way, so route mis-accounting fails the workflow).

use crate::mapping::Mapping;
use ptmap_arch::{CgraArch, Mrrg, PeId, RouteNode};
use ptmap_ir::dfg::EdgeKind;
use ptmap_ir::Dfg;
use std::fmt;

#[cfg(doc)]
use crate::config::MapperConfig;

/// A violated mapping invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// The placement list does not cover the DFG exactly once.
    PlacementCount {
        /// DFG nodes.
        expected: usize,
        /// Placements recorded.
        got: usize,
    },
    /// A node appears in more than one placement.
    DuplicatePlacement {
        /// The node placed twice.
        node: u32,
    },
    /// A node sits on a PE that cannot execute its operation.
    IncapablePe {
        /// The misplaced node.
        node: u32,
        /// The PE it was placed on.
        pe: PeId,
    },
    /// Two operations occupy the same compute slot modulo II.
    ComputeSlotConflict {
        /// First occupant.
        a: u32,
        /// Second occupant.
        b: u32,
        /// The contested PE.
        pe: PeId,
        /// The contested time slot (`cycle mod II`).
        slot: u32,
    },
    /// A dependence edge arrives before its producer finishes.
    EdgeTiming {
        /// Producing node.
        src: u32,
        /// Consuming node.
        dst: u32,
        /// Cycle the value is ready.
        depart: i64,
        /// Cycle the consumer reads it.
        arrive: i64,
    },
    /// A route-tree position references a nonexistent MRRG node or a
    /// time slot inconsistent with its absolute cycle.
    MalformedRoutePos {
        /// The producing node.
        producer: u32,
        /// The offending MRRG node index.
        slot: u32,
        /// The recorded absolute cycle.
        cycle: u32,
    },
    /// Claimed residencies exceed an MRRG node's routing capacity.
    CapacityExceeded {
        /// The over-subscribed MRRG node index.
        slot: u32,
        /// Claims recorded there.
        used: u32,
        /// The node's capacity.
        capacity: u32,
    },
    /// The mapping's `route_slots` disagrees with the recorded claims.
    RouteSlotMismatch {
        /// `Mapping::route_slots`.
        recorded: u32,
        /// Sum of all route-tree claims.
        actual: u32,
    },
    /// A route-tree position has no one-cycle MRRG predecessor in the
    /// tree (or origin), so the value could never have reached it.
    DisconnectedRoute {
        /// The producing node.
        producer: u32,
        /// The unreachable MRRG node index.
        slot: u32,
        /// The absolute cycle of the unreachable position.
        cycle: u32,
    },
    /// A data edge's consumer has no copy of the value at its arrival
    /// position.
    MissingArrival {
        /// Producing node.
        src: u32,
        /// Consuming node.
        dst: u32,
        /// The MRRG node where the value should have been.
        slot: u32,
        /// The arrival cycle.
        cycle: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PlacementCount { expected, got } => {
                write!(f, "{got} placements for {expected} DFG nodes")
            }
            Violation::DuplicatePlacement { node } => {
                write!(f, "node {node} placed more than once")
            }
            Violation::IncapablePe { node, pe } => {
                write!(f, "node {node} placed on {pe}, which cannot execute it")
            }
            Violation::ComputeSlotConflict { a, b, pe, slot } => {
                write!(f, "nodes {a} and {b} both occupy ({pe}, t={slot} mod II)")
            }
            Violation::EdgeTiming {
                src,
                dst,
                depart,
                arrive,
            } => write!(
                f,
                "edge {src}->{dst} arrives at {arrive} before departure {depart}"
            ),
            Violation::MalformedRoutePos {
                producer,
                slot,
                cycle,
            } => write!(
                f,
                "producer {producer} records malformed position (slot {slot}, cycle {cycle})"
            ),
            Violation::CapacityExceeded {
                slot,
                used,
                capacity,
            } => write!(
                f,
                "MRRG node {slot} claims {used} residencies over capacity {capacity}"
            ),
            Violation::RouteSlotMismatch { recorded, actual } => write!(
                f,
                "route_slots records {recorded} claims but trees claim {actual}"
            ),
            Violation::DisconnectedRoute {
                producer,
                slot,
                cycle,
            } => write!(
                f,
                "producer {producer}'s value at (slot {slot}, cycle {cycle}) is unreachable"
            ),
            Violation::MissingArrival {
                src,
                dst,
                slot,
                cycle,
            } => write!(
                f,
                "edge {src}->{dst}: no copy of the value at (slot {slot}, cycle {cycle})"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// Checks every mapping invariant; returns the first violation found.
///
/// # Errors
///
/// The violated invariant, most fundamental first (placement before
/// timing before routing).
pub fn validate(dfg: &Dfg, arch: &CgraArch, m: &Mapping) -> Result<(), Violation> {
    let ii = m.ii.max(1);
    // 1. Placement completeness.
    if m.placements.len() != dfg.len() {
        return Err(Violation::PlacementCount {
            expected: dfg.len(),
            got: m.placements.len(),
        });
    }
    let mut place: Vec<Option<(PeId, u32)>> = vec![None; dfg.len()];
    for p in &m.placements {
        let i = p.node.index();
        if i >= dfg.len() || place[i].is_some() {
            return Err(Violation::DuplicatePlacement { node: p.node.0 });
        }
        if !arch.pe(p.pe).supports(dfg.nodes()[i].op) {
            return Err(Violation::IncapablePe {
                node: p.node.0,
                pe: p.pe,
            });
        }
        place[i] = Some((p.pe, p.time));
    }
    // 2. Compute-slot exclusivity modulo II.
    let mut slot_owner: Vec<Option<u32>> = vec![None; arch.pe_count() * ii as usize];
    for p in &m.placements {
        let idx = (p.time % ii) as usize * arch.pe_count() + p.pe.index();
        if let Some(prev) = slot_owner[idx] {
            return Err(Violation::ComputeSlotConflict {
                a: prev,
                b: p.node.0,
                pe: p.pe,
                slot: p.time % ii,
            });
        }
        slot_owner[idx] = Some(p.node.0);
    }
    // 3. Edge timing (data and ordering edges alike).
    for e in dfg.edges() {
        let (_, ts) = place[e.src.index()].expect("checked above");
        let (_, td) = place[e.dst.index()].expect("checked above");
        let depart = ts as i64 + dfg.nodes()[e.src.index()].latency() as i64;
        let arrive = td as i64 + e.dist as i64 * ii as i64;
        if arrive < depart {
            return Err(Violation::EdgeTiming {
                src: e.src.0,
                dst: e.dst.0,
                depart,
                arrive,
            });
        }
    }
    // 4. Route capacity, recomputed from scratch.
    let mrrg = Mrrg::new(arch, ii);
    let mut used = vec![0u32; mrrg.node_count()];
    let mut total = 0u32;
    for tree in &m.route_trees {
        for pos in &tree.positions {
            let slot_time = (pos.slot as usize) < mrrg.node_count()
                && match mrrg.decode(pos.slot as usize) {
                    RouteNode::Pe { t, .. } | RouteNode::Grf { t } => t == pos.cycle % ii,
                };
            if !slot_time {
                return Err(Violation::MalformedRoutePos {
                    producer: tree.producer.0,
                    slot: pos.slot,
                    cycle: pos.cycle,
                });
            }
            used[pos.slot as usize] += pos.claims;
            total += pos.claims;
        }
    }
    for (slot, &u) in used.iter().enumerate() {
        let cap = mrrg.route_capacity(slot);
        if u > cap {
            return Err(Violation::CapacityExceeded {
                slot: slot as u32,
                used: u,
                capacity: cap,
            });
        }
    }
    if total != m.route_slots {
        return Err(Violation::RouteSlotMismatch {
            recorded: m.route_slots,
            actual: total,
        });
    }
    // 5a. Route-tree connectivity from each producer's origin.
    for tree in &m.route_trees {
        let i = tree.producer.index();
        let (pe, t) = place[i].expect("checked above");
        let dep = t + dfg.nodes()[i].latency();
        let origin = mrrg.pe_slot(pe, dep % ii) as u32;
        // Positions grouped by absolute cycle; the origin is implicit.
        let at_cycle = |c: u32| {
            tree.positions
                .iter()
                .filter(move |p| p.cycle == c)
                .map(|p| p.slot)
        };
        for pos in &tree.positions {
            if pos.cycle <= dep {
                // Values move one node per cycle; nothing besides the
                // (unrecorded) origin can exist at or before departure.
                return Err(Violation::DisconnectedRoute {
                    producer: tree.producer.0,
                    slot: pos.slot,
                    cycle: pos.cycle,
                });
            }
            let prev = pos.cycle - 1;
            let reachable = at_cycle(prev)
                .chain((prev == dep).then_some(origin))
                .any(|p| mrrg.succ(p as usize).contains(&pos.slot));
            if !reachable {
                return Err(Violation::DisconnectedRoute {
                    producer: tree.producer.0,
                    slot: pos.slot,
                    cycle: pos.cycle,
                });
            }
        }
    }
    // 5b. Every data edge's consumer finds the value where it reads it.
    let tree_of = |producer: usize| {
        m.route_trees
            .iter()
            .find(|t| t.producer.index() == producer)
    };
    for e in dfg.edges().iter().filter(|e| e.kind == EdgeKind::Data) {
        let (spe, ts) = place[e.src.index()].expect("checked above");
        let (dpe, td) = place[e.dst.index()].expect("checked above");
        let dep = ts + dfg.nodes()[e.src.index()].latency();
        let arrive = td as u64 + e.dist as u64 * ii as u64;
        let arrive = u32::try_from(arrive).expect("timing already checked");
        let goal = mrrg.pe_slot(dpe, arrive % ii) as u32;
        let at_origin = arrive == dep && dpe == spe;
        let in_tree = tree_of(e.src.index()).is_some_and(|t| {
            t.positions
                .iter()
                .any(|p| p.slot == goal && p.cycle == arrive)
        });
        if !at_origin && !in_tree {
            return Err(Violation::MissingArrival {
                src: e.src.0,
                dst: e.dst.0,
                slot: goal,
                cycle: arrive,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapperConfig;
    use crate::map_dfg;
    use crate::mapping::{Mapping, Placement, ProducerRoutes, RoutePos};
    use ptmap_arch::presets;
    use ptmap_ir::dfg::build_dfg;
    use ptmap_ir::{NodeId, OpKind, ProgramBuilder};

    fn mapped_gemm() -> (Dfg, CgraArch, Mapping) {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[24, 24]);
        let bb = b.array("B", &[24, 24]);
        let c = b.array("C", &[24, 24]);
        let i = b.open_loop("i", 24);
        let j = b.open_loop("j", 24);
        let k = b.open_loop("k", 24);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let (li, lj) = (nest.loops[0], nest.loops[1]);
        let dfg = build_dfg(&p, &nest, &[(li, 2), (lj, 2)]).unwrap();
        let arch = presets::s4();
        let m = map_dfg(&dfg, &arch, &MapperConfig::default()).unwrap();
        (dfg, arch, m)
    }

    #[test]
    fn accepts_mapper_output() {
        let (dfg, arch, m) = mapped_gemm();
        validate(&dfg, &arch, &m).unwrap();
    }

    #[test]
    fn rejects_compute_slot_conflict() {
        let (dfg, arch, mut m) = mapped_gemm();
        // Collapse every placement onto node 0's slot.
        let (pe, time) = (m.placements[0].pe, m.placements[0].time);
        m.placements[1].pe = pe;
        m.placements[1].time = time;
        let err = validate(&dfg, &arch, &m).unwrap_err();
        assert!(
            matches!(
                err,
                Violation::ComputeSlotConflict { .. } | Violation::EdgeTiming { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn rejects_missing_placement() {
        let (dfg, arch, mut m) = mapped_gemm();
        m.placements.pop();
        assert!(matches!(
            validate(&dfg, &arch, &m),
            Err(Violation::PlacementCount { .. })
        ));
    }

    #[test]
    fn rejects_route_capacity_violation() {
        // Hand-built: one add feeding a store on a 2x2 array with LRF 1.
        // The value allegedly waits 5 cycles in PE 0's single-entry LRF
        // claiming capacity each cycle — 5 claims on capacity-1 nodes.
        let mut dfg = Dfg::new();
        let a = dfg.add_node(OpKind::Add, None, None);
        let s = dfg.add_node(OpKind::Store, None, None);
        dfg.add_edge(a, s, 0);
        let arch = presets::s4();
        let ii = 2u32;
        let mrrg = Mrrg::new(&arch, ii);
        let pe0 = PeId(0);
        let hold = mrrg.pe_slot(pe0, 0) as u32; // (pe0, t=0)
        let hold1 = mrrg.pe_slot(pe0, 1) as u32; // (pe0, t=1)
        let m = Mapping {
            ii,
            mii: 1,
            schedule_length: 8,
            placements: vec![
                Placement {
                    node: a,
                    pe: pe0,
                    time: 1,
                },
                Placement {
                    node: s,
                    pe: pe0,
                    time: 6,
                },
            ],
            route_slots: 4,
            routes: vec![],
            route_trees: vec![ProducerRoutes {
                producer: a,
                positions: vec![
                    // dep = 1 + 1 = 2; wait at PE0 through cycles 3..=6.
                    RoutePos {
                        slot: hold1,
                        cycle: 3,
                        claims: 1,
                    },
                    RoutePos {
                        slot: hold,
                        cycle: 4,
                        claims: 1,
                    },
                    RoutePos {
                        slot: hold1,
                        cycle: 5,
                        claims: 1,
                    },
                    RoutePos {
                        slot: hold,
                        cycle: 6,
                        claims: 1,
                    },
                ],
            }],
            pes_used: 1,
            pe_count: 4,
        };
        // Two claims land on each of (pe0,t0) and (pe0,t1); S4 PEs have
        // LRF capacity that admits only some — force the violation by
        // inflating claims beyond any preset capacity.
        let mut over = m.clone();
        for p in &mut over.route_trees[0].positions {
            p.claims = 100;
        }
        over.route_slots = 400;
        assert!(matches!(
            validate(&dfg, &arch, &over),
            Err(Violation::CapacityExceeded { .. })
        ));
        // And the honest version must be internally consistent or get
        // flagged: recompute what it should be.
        match validate(&dfg, &arch, &m) {
            Ok(()) | Err(Violation::CapacityExceeded { .. }) => {}
            Err(other) => panic!("unexpected violation: {other}"),
        }
    }

    #[test]
    fn rejects_route_slot_miscount() {
        let (dfg, arch, mut m) = mapped_gemm();
        m.route_slots += 1;
        assert!(matches!(
            validate(&dfg, &arch, &m),
            Err(Violation::RouteSlotMismatch { .. })
        ));
    }

    #[test]
    fn rejects_disconnected_route_position() {
        let (dfg, arch, mut m) = mapped_gemm();
        // Teleport: claim the value exists somewhere it never traveled.
        let producer = m
            .route_trees
            .first()
            .map(|t| t.producer)
            .unwrap_or(NodeId(0));
        let far_slot = 0u32;
        let pos = RoutePos {
            slot: far_slot,
            cycle: 400,
            claims: 0,
        };
        // Keep (slot, cycle) consistent with the modulo time layout.
        let t = 400 % m.ii;
        let slot = Mrrg::new(&arch, m.ii).pe_slot(PeId(far_slot), t) as u32;
        let pos = RoutePos { slot, ..pos };
        match m.route_trees.iter_mut().find(|t| t.producer == producer) {
            Some(t) => t.positions.push(pos),
            None => m.route_trees.push(ProducerRoutes {
                producer,
                positions: vec![pos],
            }),
        }
        assert!(matches!(
            validate(&dfg, &arch, &m),
            Err(Violation::DisconnectedRoute { .. })
        ));
    }

    #[test]
    fn rejects_edge_timing_violation() {
        let (dfg, arch, mut m) = mapped_gemm();
        // Find a node with an incoming data edge and yank it earlier.
        let dst = dfg.edges()[0].dst;
        for p in &mut m.placements {
            if p.node == dst {
                p.time = 0;
            }
        }
        // Re-breaking placement may trip several invariants; timing or
        // arrival must be among them.
        assert!(validate(&dfg, &arch, &m).is_err());
    }
}
