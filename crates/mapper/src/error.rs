//! Mapper error type.

use ptmap_ir::OpKind;
use std::fmt;

/// Errors produced by the modulo-scheduling mapper.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// The DFG has no nodes.
    EmptyDfg,
    /// Some operation is supported by no PE of the target architecture.
    UnsupportedOp(OpKind),
    /// The DFG contains a dependence cycle whose total iteration
    /// distance is zero, so no initiation interval (however large) can
    /// satisfy it. Well-formed DFG construction never produces this; it
    /// flags hand-built or corrupted graphs.
    ZeroDistanceCycle,
    /// A produced mapping failed the post-hoc invariant validator
    /// ([`crate::validate`]); the message names the violated invariant.
    /// Reaching this is a mapper bug, not a property of the input.
    BrokenInvariant(String),
    /// No initiation interval up to the configured maximum admitted a
    /// complete placement and routing.
    Infeasible {
        /// The smallest II that was attempted (the MII).
        mii: u32,
        /// The largest II that was attempted.
        max_ii: u32,
    },
    /// The compilation budget's deadline (or work limit) ran out before
    /// the search finished; checked per placement attempt, so the
    /// scheduler exits promptly instead of hanging.
    Timeout,
    /// The compilation budget was cancelled from outside.
    Cancelled,
    /// An `error`-mode fault point fired inside the mapper (fault
    /// injection only; see `ptmap_governor::faultpoint`).
    Fault(String),
}

impl From<ptmap_governor::BudgetExceeded> for MapError {
    fn from(e: ptmap_governor::BudgetExceeded) -> Self {
        match e {
            ptmap_governor::BudgetExceeded::Cancelled => MapError::Cancelled,
            ptmap_governor::BudgetExceeded::Timeout
            | ptmap_governor::BudgetExceeded::WorkExhausted => MapError::Timeout,
        }
    }
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptyDfg => write!(f, "cannot map an empty dataflow graph"),
            MapError::UnsupportedOp(op) => {
                write!(
                    f,
                    "operation {op} is supported by no PE of the target architecture"
                )
            }
            MapError::ZeroDistanceCycle => {
                write!(
                    f,
                    "dataflow graph has a zero-distance dependence cycle; no II can satisfy it"
                )
            }
            MapError::BrokenInvariant(msg) => {
                write!(f, "mapping failed invariant validation: {msg}")
            }
            MapError::Infeasible { mii, max_ii } => {
                write!(f, "no feasible mapping for any II in {mii}..={max_ii}")
            }
            MapError::Timeout => write!(f, "mapping timed out: compilation budget exceeded"),
            MapError::Cancelled => write!(f, "mapping cancelled"),
            MapError::Fault(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MapError::Infeasible { mii: 3, max_ii: 20 };
        assert!(e.to_string().contains("3..=20"));
        assert!(MapError::UnsupportedOp(OpKind::Div)
            .to_string()
            .contains("div"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<MapError>();
    }

    #[test]
    fn governor_variant_displays() {
        assert_eq!(
            MapError::Timeout.to_string(),
            "mapping timed out: compilation budget exceeded"
        );
        assert_eq!(MapError::Cancelled.to_string(), "mapping cancelled");
        assert_eq!(
            MapError::Fault("mapper_place".into()).to_string(),
            "injected fault at mapper_place"
        );
    }

    #[test]
    fn budget_exceeded_converts() {
        use ptmap_governor::BudgetExceeded;
        assert_eq!(MapError::from(BudgetExceeded::Timeout), MapError::Timeout);
        assert_eq!(
            MapError::from(BudgetExceeded::WorkExhausted),
            MapError::Timeout
        );
        assert_eq!(
            MapError::from(BudgetExceeded::Cancelled),
            MapError::Cancelled
        );
    }
}
