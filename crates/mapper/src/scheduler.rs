//! Iterative modulo scheduling with integrated placement and routing.
//!
//! For each candidate II (starting at the MII), the scheduler places
//! operations one by one in criticality order onto `(PE, cycle)` slots
//! and routes every data edge incident to already-placed operations
//! through the time-extended MRRG with a layered breadth-first search.
//! Each II gets several randomized restarts before escalating; the first
//! complete placement wins.
//!
//! Modeling notes:
//!
//! * Fanout is routed as a shared *route tree* per produced value: a new
//!   consumer may tap the value anywhere (and anywhen) it already exists,
//!   and only newly claimed `(slot, cycle)` residencies consume routing
//!   capacity — mirroring RAMP's resource-aware routing.
//! * A value may wait in a PE's local register file; every claimed
//!   residency consumes one routing-capacity unit of the slot it
//!   occupies (LRF entries for PEs, GRF entries for the hub).

use crate::config::MapperConfig;
use crate::error::MapError;
use crate::mapping::Mapping;
use crate::mii;
use crate::router::route_value;
use crate::state::{Overlay, RouterBuffers, SearchStats, State};
use ptmap_arch::{CgraArch, Mrrg, PeId};
use ptmap_governor::{faultpoint, Budget};
use ptmap_ir::{Dfg, OpKind};
use ptmap_trace::Tracer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::AtomicU32;

/// The scheduling engine. Construct with [`Scheduler::new`], then call
/// [`Scheduler::run`].
#[derive(Debug)]
pub struct Scheduler<'a> {
    dfg: &'a Dfg,
    arch: &'a CgraArch,
    config: &'a MapperConfig,
    mii: u32,
    asap: Vec<u32>,
    alap: Vec<u32>,
    /// Incoming edges per node: (src, dist, routed?).
    in_edges: Vec<Vec<(usize, u32, bool)>>,
    /// Outgoing edges per node: (dst, dist, routed?).
    out_edges: Vec<Vec<(usize, u32, bool)>>,
}

impl<'a> Scheduler<'a> {
    /// Prepares a scheduler, validating the DFG against the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::EmptyDfg`], [`MapError::UnsupportedOp`], or
    /// [`MapError::ZeroDistanceCycle`] (a dependence cycle no II can
    /// satisfy, which previously escaped as a bogus finite RecMII).
    pub fn new(
        dfg: &'a Dfg,
        arch: &'a CgraArch,
        config: &'a MapperConfig,
    ) -> Result<Self, MapError> {
        if dfg.is_empty() {
            return Err(MapError::EmptyDfg);
        }
        for (op, _) in dfg.op_counts() {
            if arch.pes_supporting(op) == 0 {
                return Err(MapError::UnsupportedOp(op));
            }
        }
        let rec = mii::try_rec_mii(dfg).ok_or(MapError::ZeroDistanceCycle)?;
        let n = dfg.len();
        let mut in_edges = vec![Vec::new(); n];
        let mut out_edges = vec![Vec::new(); n];
        for e in dfg.edges() {
            let routed = e.kind == ptmap_ir::dfg::EdgeKind::Data;
            in_edges[e.dst.index()].push((e.src.index(), e.dist, routed));
            out_edges[e.src.index()].push((e.dst.index(), e.dist, routed));
        }
        Ok(Scheduler {
            dfg,
            arch,
            config,
            mii: mii::res_mii(dfg, arch).max(rec),
            asap: dfg.asap(),
            alap: dfg.alap(),
            in_edges,
            out_edges,
        })
    }

    /// The minimum II bound for this problem.
    pub fn mii(&self) -> u32 {
        self.mii
    }

    /// Runs the II escalation loop with an unlimited budget.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Infeasible`] when no II up to the configured
    /// maximum works.
    pub fn run(&self) -> Result<Mapping, MapError> {
        self.run_budgeted(&Budget::unlimited())
    }

    /// Runs the II escalation loop under a cooperative [`Budget`].
    ///
    /// The budget is checked per placement attempt (once per node per
    /// restart), never inside the router's per-node BFS, so an
    /// unlimited (or deadline-free) budget adds no measurable cost to
    /// the hot path.
    ///
    /// # Errors
    ///
    /// [`MapError::Infeasible`] when no II up to the configured maximum
    /// works; [`MapError::Timeout`] / [`MapError::Cancelled`] when the
    /// budget runs out first.
    pub fn run_budgeted(&self, budget: &Budget) -> Result<Mapping, MapError> {
        self.run_traced(budget, &Tracer::disabled())
    }

    /// [`Scheduler::run_budgeted`] with span-tree instrumentation: one
    /// `ii_attempt` span per candidate II carrying the restart /
    /// placement / backtrack / route-failure / BFS-expansion counters
    /// of that rung.
    ///
    /// Tracing never perturbs the search: counters are plain integer
    /// adds on scratch state the search already threads around, the
    /// RNG is untouched, and a disabled tracer reduces every span
    /// operation to an `Option` branch — so traced and untraced runs
    /// of the same seed produce bit-identical mappings.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::run_budgeted`].
    pub fn run_traced(&self, budget: &Budget, tracer: &Tracer) -> Result<Mapping, MapError> {
        self.run_traced_counted(budget, tracer).map(|(m, _)| m)
    }

    /// [`Scheduler::run_traced`], additionally reporting how many
    /// speculative ladder rungs were cancelled mid-flight by a lower
    /// II's success (always 0 with [`Speculation::Off`] — see
    /// [`crate::config::Speculation`] — or on any error path).
    ///
    /// With speculation on, consecutive candidate IIs are raced on
    /// scoped-child budgets instead of walked one after another. Each
    /// rung's RNG derives from `(seed, ii)` alone ([`Self::rung_rng`]),
    /// so every rung computes exactly what the sequential walk would
    /// have computed at that II and the winning mapping is
    /// bit-identical to the sequential walk's — speculation changes
    /// wall clock only.
    ///
    /// Metered budgets ([`Budget::has_work_limit`]) force the
    /// sequential path: child budgets get fresh, unlimited work
    /// counters, so racing rungs under children would silently stop
    /// charging the caller's counter.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::run_budgeted`].
    pub fn run_traced_counted(
        &self,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Result<(Mapping, u32), MapError> {
        let start = self.mii.max(1);
        let max_ii = self.config.max_ii.max(start);
        if self.config.speculation.is_parallel() && !budget.has_work_limit() {
            self.run_speculative(start, max_ii, budget, tracer)
        } else {
            self.run_sequential(start, max_ii, budget, tracer)
                .map(|m| (m, 0))
        }
    }

    /// The sequential II escalation walk: one rung at a time, charging
    /// the caller's budget directly (this is the path that keeps
    /// work-limit metering exact).
    fn run_sequential(
        &self,
        start: u32,
        max_ii: u32,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Result<Mapping, MapError> {
        // Routing scratch shared by every attempt: the BFS buffers are
        // epoch-stamped, so reuse is O(1) and allocation-free once warm.
        let mut overlay = Overlay::default();
        let mut bufs = RouterBuffers::default();
        for ii in start..=max_ii {
            bufs.stats = SearchStats::default();
            let span = tracer.span("ii_attempt");
            let result = self.run_ii(ii, &mut overlay, &mut bufs, budget);
            record_rung_attrs(&span, ii, &bufs.stats, &result, None);
            drop(span);
            match result {
                Ok(Some(m)) => return Ok(m),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        Err(MapError::Infeasible { mii: start, max_ii })
    }

    /// The speculative ladder: waves of consecutive candidate IIs raced
    /// on scoped-child budgets.
    ///
    /// The first rung is *probed inline* with no threads at all — most
    /// calls accept the MII outright, and spawning workers for rungs
    /// that are then immediately cancelled costs more than a
    /// sub-millisecond `run_ii` itself. Only after the probe fails does
    /// the wave machinery start, and within each wave the lowest rung
    /// again runs on the coordinating thread while workers race the
    /// higher rungs with per-worker scratch (pooled across waves so the
    /// epoch-stamped buffers stay allocation-free once warm). The first
    /// rung to find a mapping publishes its II into a shared bound and
    /// cancels every *higher* rung's budget; lower rungs are never
    /// cancelled, so the lowest feasible II in the wave always gets to
    /// finish and win. Results are resolved in ascending II order with
    /// exactly the sequential walk's semantics — first success returns,
    /// first non-cancellation error propagates — except that errors on
    /// rungs above the winning II (our own cancellations) are ignored
    /// and counted instead.
    fn run_speculative(
        &self,
        start: u32,
        max_ii: u32,
        budget: &Budget,
        tracer: &Tracer,
    ) -> Result<(Mapping, u32), MapError> {
        let spec = self.config.speculation;
        let mut width = spec.initial_width();
        // Workers are fresh threads with no thread-local fault scope;
        // capture the spawning thread's scope so `@scope`-filtered
        // fault injection still reaches speculative rungs.
        let scope = faultpoint::current_scope();
        // Coordinator scratch (probe + each wave's lowest rung) and the
        // per-worker pool, all reused across waves.
        let mut overlay = Overlay::default();
        let mut bufs = RouterBuffers::default();
        let mut pool: Vec<(Overlay, RouterBuffers)> = Vec::new();
        let mut cancelled_total = 0u32;
        // Inline probe of the first rung: identical to the sequential
        // walk's first iteration, so the common no-escalation path pays
        // zero speculative overhead.
        {
            bufs.stats = SearchStats::default();
            let span = tracer.span("ii_attempt");
            let result = self.run_ii(start, &mut overlay, &mut bufs, budget);
            record_rung_attrs(&span, start, &bufs.stats, &result, Some(false));
            drop(span);
            match result {
                Ok(Some(m)) => return Ok((m, 0)),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
        let mut next_ii = start + 1;
        while next_ii <= max_ii {
            let wave: Vec<u32> = (next_ii..=max_ii.min(next_ii + width - 1)).collect();
            while pool.len() < wave.len().saturating_sub(1) {
                pool.push((Overlay::default(), RouterBuffers::default()));
            }
            // Spans pre-created in ascending II order on this thread,
            // so the trace layout is deterministic regardless of how
            // the rungs interleave.
            let spans: Vec<_> = wave.iter().map(|_| tracer.span("ii_attempt")).collect();
            let budgets: Vec<Budget> = wave.iter().map(|_| budget.scoped_child(None)).collect();
            // Lowest successful II of the wave (u32::MAX = none yet).
            let best = AtomicU32::new(u32::MAX);
            let mut results: Vec<Option<Result<Option<Mapping>, MapError>>> =
                wave.iter().map(|_| None).collect();
            let (rung0, rest) = results.split_at_mut(1);
            std::thread::scope(|s| {
                let wave = &wave;
                let budgets = &budgets;
                let best = &best;
                let scope = &scope;
                // Workers race the higher rungs...
                for ((k, slot), (overlay, bufs)) in rest
                    .iter_mut()
                    .enumerate()
                    .map(|(k, s)| (k + 1, s))
                    .zip(pool.iter_mut())
                {
                    s.spawn(move || {
                        let ii = wave[k];
                        let mut run = || {
                            bufs.stats = SearchStats::default();
                            let r = self.run_ii(ii, overlay, bufs, &budgets[k]);
                            if matches!(r, Ok(Some(_))) {
                                best.fetch_min(ii, std::sync::atomic::Ordering::AcqRel);
                                // Higher rungs can at best tie a worse
                                // II: stop them at their next
                                // cooperative budget check.
                                for (j, b) in budgets.iter().enumerate() {
                                    if wave[j] > ii {
                                        b.cancel();
                                    }
                                }
                            }
                            r
                        };
                        *slot = Some(match scope {
                            Some(sc) => faultpoint::with_scope(sc, run),
                            None => run(),
                        });
                    });
                }
                // ...while the coordinating thread runs the lowest one
                // itself: it can never be cancelled, and keeping it here
                // saves one spawn per wave.
                bufs.stats = SearchStats::default();
                let r = self.run_ii(wave[0], &mut overlay, &mut bufs, &budgets[0]);
                if matches!(r, Ok(Some(_))) {
                    best.fetch_min(wave[0], std::sync::atomic::Ordering::AcqRel);
                    for (j, b) in budgets.iter().enumerate() {
                        if wave[j] > wave[0] {
                            b.cancel();
                        }
                    }
                }
                rung0[0] = Some(r);
            });
            let winner = best.load(std::sync::atomic::Ordering::Acquire);
            let mut outcome: Option<Result<Mapping, MapError>> = None;
            for (k, result) in results.into_iter().enumerate() {
                let ii = wave[k];
                let result = result.expect("speculative rung thread completed");
                // An error on a rung above the wave's winning II is our
                // own cancellation (or a racily-observed parent expiry
                // the winner makes moot): count it, don't propagate.
                let cancelled = ii > winner && result.is_err();
                let stats = if k == 0 {
                    &bufs.stats
                } else {
                    &pool[k - 1].1.stats
                };
                record_rung_attrs(&spans[k], ii, stats, &result, Some(cancelled));
                if cancelled {
                    cancelled_total += 1;
                }
                if outcome.is_none() && !cancelled {
                    match result {
                        Ok(Some(m)) => outcome = Some(Ok(m)),
                        Ok(None) => {}
                        Err(e) => outcome = Some(Err(e)),
                    }
                }
            }
            drop(spans);
            match outcome {
                Some(Ok(m)) => return Ok((m, cancelled_total)),
                Some(Err(e)) => return Err(e),
                None => {}
            }
            if spec == crate::config::Speculation::Auto {
                let mut failed: Vec<SearchStats> = vec![bufs.stats];
                failed.extend(pool[..wave.len() - 1].iter().map(|(_, b)| b.stats));
                width = next_wave_width(width, &failed, self.dfg.len());
            }
            next_ii += wave.len() as u32;
        }
        Err(MapError::Infeasible { mii: start, max_ii })
    }

    /// The RNG driving one II rung's randomized restarts.
    ///
    /// Each rung's random stream is derived from `(seed, ii)` alone —
    /// not threaded through from previous rungs — so the search at a
    /// given II is reproducible in isolation, independent of which
    /// (and how many) lower rungs ran before it. That independence is
    /// what lets the speculative ladder race rungs on separate threads
    /// and still produce mappings bit-identical to the sequential walk.
    fn rung_rng(&self, ii: u32) -> StdRng {
        // splitmix64 finalizer over the seed offset by a golden-ratio
        // multiple of the II: cheap, and decorrelates adjacent rungs
        // (StdRng seeded from nearby integers would still be fine, but
        // the mix keeps the streams obviously unrelated).
        let mut z = self
            .config
            .seed
            .wrapping_add((ii as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// All restarts at one candidate II. `Ok(None)` means the II is
    /// infeasible within the restart budget and escalation continues.
    fn run_ii(
        &self,
        ii: u32,
        overlay: &mut Overlay,
        bufs: &mut RouterBuffers,
        budget: &Budget,
    ) -> Result<Option<Mapping>, MapError> {
        let rng = &mut self.rung_rng(ii);
        let mrrg = Mrrg::new(self.arch, ii);
        let mut best: Option<Mapping> = None;
        for restart in 0..self.config.restarts_per_ii() {
            let result = (|| {
                // Fault-injection hook: `delay` here simulates a wedged
                // placement engine (which the budget then catches) and
                // `panic`/`error` exercise the caller's isolation.
                faultpoint::fail_point(faultpoint::sites::MAPPER_PLACE)
                    .map_err(|e| MapError::Fault(e.site))?;
                budget.check()?;
                bufs.stats.restarts += 1;
                // Alternate ordering strategies across restarts:
                // criticality-first packs recurrences tightly; pure
                // topological order never collapses a producer's window.
                let order = if restart % 2 == 0 {
                    self.criticality_order(rng, restart > 0)
                } else {
                    self.topo_order(rng, restart > 1)
                };
                self.attempt(ii, &mrrg, &order, rng, overlay, bufs, budget)
            })();
            match result {
                Ok(Some(m)) => {
                    if !self.config.polish_schedule() {
                        return Ok(Some(m));
                    }
                    if best
                        .as_ref()
                        .is_none_or(|b| m.schedule_length < b.schedule_length)
                    {
                        best = Some(m);
                    }
                }
                Ok(None) => {}
                // Polish restarts are opportunistic: once a complete
                // mapping exists, a budget expiry or injected fault in
                // a *later* restart must not throw it away — return
                // the mapping, not Timeout/Cancelled.
                Err(_) if best.is_some() => return Ok(best),
                Err(e) => return Err(e),
            }
        }
        Ok(best)
    }

    /// Criticality order: smallest slack first, then higher fanout.
    fn criticality_order(&self, rng: &mut StdRng, perturb: bool) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.dfg.len()).collect();
        order.sort_by_key(|&i| {
            let slack = self.alap[i].saturating_sub(self.asap[i]);
            let fanout = self.out_edges[i].len();
            (slack, usize::MAX - fanout, self.asap[i])
        });
        if perturb {
            for i in 1..order.len() {
                if rng.gen_bool(0.3) {
                    order.swap(i - 1, i);
                }
            }
        }
        order
    }

    /// Topological order of the distance-0 subgraph (producers before
    /// consumers, so windows never collapse on an already-placed
    /// consumer), with the ready set prioritized by criticality.
    fn topo_order(&self, rng: &mut StdRng, perturb: bool) -> Vec<usize> {
        let n = self.dfg.len();
        let mut indeg = vec![0usize; n];
        for e in self.dfg.edges().iter().filter(|e| e.dist == 0) {
            indeg[e.dst.index()] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while !ready.is_empty() {
            // Pick the most critical ready node (with jitter on restarts).
            let pick = ready
                .iter()
                .enumerate()
                .min_by_key(|&(_, &i)| {
                    let slack = self.alap[i].saturating_sub(self.asap[i]) as usize;
                    let fanout = self.out_edges[i].len();
                    let jitter = if perturb { rng.gen_range(0..3usize) } else { 0 };
                    (slack + jitter, usize::MAX - fanout, self.asap[i])
                })
                .map(|(k, _)| k)
                .expect("ready non-empty");
            let node = ready.swap_remove(pick);
            order.push(node);
            for &(dst, dist, _) in &self.out_edges[node] {
                if dist == 0 {
                    indeg[dst] -= 1;
                    if indeg[dst] == 0 {
                        ready.push(dst);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n, "dist-0 subgraph must be acyclic");
        order
    }

    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        ii: u32,
        mrrg: &Mrrg,
        order: &[usize],
        rng: &mut StdRng,
        overlay: &mut Overlay,
        bufs: &mut RouterBuffers,
        budget: &Budget,
    ) -> Result<Option<Mapping>, MapError> {
        let mut st = State::new(mrrg, self.dfg.len());
        for &node in order {
            // One work unit per node placement: coarse enough to stay
            // off the router's inner loops, fine enough that a deadline
            // interrupts a single stuck attempt.
            budget.charge(1)?;
            if !self.place_node(node, ii, mrrg, &mut st, rng, overlay, bufs) {
                bufs.stats.backtracks += 1;
                if std::env::var_os("PTMAP_MAPPER_DEBUG").is_some() {
                    eprintln!(
                        "[mapper] II={ii}: failed to place node {node} ({}) window={:?}",
                        self.dfg.nodes()[node].op,
                        self.time_window(node, ii, &st)
                    );
                }
                return Ok(None);
            }
        }
        Ok(Some(crate::backend::assemble_mapping(
            self.dfg, self.arch, self.mii, ii, &mut st,
        )))
    }

    /// Attempts to place one node, routing all edges to already-placed
    /// neighbors. Returns false when no candidate works.
    #[allow(clippy::too_many_arguments)]
    fn place_node(
        &self,
        node: usize,
        ii: u32,
        mrrg: &Mrrg,
        st: &mut State,
        rng: &mut StdRng,
        overlay: &mut Overlay,
        bufs: &mut RouterBuffers,
    ) -> bool {
        let op = self.dfg.nodes()[node].op;
        let (lo, hi) = match self.time_window(node, ii, st) {
            Some(w) => w,
            None => return false,
        };
        let pes = self.candidate_pes(node, op, st, rng);
        let mut tried = 0usize;
        // Spread the candidate budget over start times: affinity-top PEs
        // per time slot, later slots reached before the budget runs out.
        // The budget buys depth (up to 8 PEs per slot); once spent, the
        // remaining start times still each get their single top-affinity
        // candidate, so a wide window never starves its tail (late
        // starts can be the only way to leave room for transport).
        let pes_per_t = 8.min(pes.len().max(1));
        for t in lo..=hi {
            let depth = if tried >= self.config.candidates_per_op() {
                1
            } else {
                pes_per_t
            };
            for &pe in pes.iter().take(depth) {
                tried += 1;
                bufs.stats.placements_tried += 1;
                if self.try_commit(node, pe, t, ii, mrrg, st, overlay, bufs) {
                    return true;
                }
                if tried >= self.config.candidates_per_op() {
                    break;
                }
            }
        }
        false
    }

    /// Feasible start-time window for a node given placed neighbors.
    fn time_window(&self, node: usize, ii: u32, st: &State) -> Option<(u32, u32)> {
        let mut lo = self.asap[node] as i64;
        let mut hi = i64::MAX;
        for &(src, dist, _) in &self.in_edges[node] {
            if src == node {
                continue; // self-loop constrains II, checked at routing
            }
            if let Some((_, ts)) = st.place[src] {
                let dep = ts as i64 + self.dfg.nodes()[src].latency() as i64;
                lo = lo.max(dep - (dist as i64) * ii as i64);
            }
        }
        for &(dst, dist, _) in &self.out_edges[node] {
            if dst == node {
                continue;
            }
            if let Some((_, td)) = st.place[dst] {
                let arrive = td as i64 + (dist as i64) * ii as i64;
                hi = hi.min(arrive - self.dfg.nodes()[node].latency() as i64);
            }
        }
        // Routing consumes absolute cycles, so starting later than `lo`
        // can be the only way to leave room for multi-hop transport: the
        // window extends one II plus a routing margin past `lo`.
        let margin = (self.arch.rows() + self.arch.cols()) as i64 + 2;
        if hi == i64::MAX {
            hi = lo + ii as i64 - 1 + margin;
        } else {
            hi = hi.min(lo + ii as i64 - 1 + margin);
        }
        if lo > hi || hi < 0 {
            return None;
        }
        let lo = lo.max(0) as u32;
        let hi = hi as u32;
        (lo <= hi).then_some((lo, hi))
    }

    /// PEs able to execute `op`, ordered by affinity to placed neighbors.
    fn candidate_pes(&self, node: usize, op: OpKind, st: &State, rng: &mut StdRng) -> Vec<PeId> {
        let cols = self.arch.cols();
        let mut scored: Vec<(i64, PeId)> = self
            .arch
            .pe_ids()
            .filter(|&pe| self.arch.pe(pe).supports(op))
            .map(|pe| {
                let (x, y) = pe.to_xy(cols);
                let mut cost = 0i64;
                for &(other, _, _) in self.in_edges[node].iter().chain(&self.out_edges[node]) {
                    if let Some((ope, _)) = st.place[other] {
                        let (ox, oy) = ope.to_xy(cols);
                        cost += (x as i64 - ox as i64).abs() + (y as i64 - oy as i64).abs();
                    }
                }
                // Mild load balancing: penalize PEs already used.
                let used = st.place.iter().flatten().filter(|&&(p, _)| p == pe).count() as i64;
                cost += used;
                cost += rng.gen_range(0..2);
                (cost, pe)
            })
            .collect();
        scored.sort();
        let mut shortlist: Vec<PeId> = scored.into_iter().map(|(_, pe)| pe).collect();
        // Keep the shortlist bounded on very large arrays.
        shortlist.truncate(self.config.candidates_per_op().max(8));
        shortlist
    }

    /// Tries to place `node` at `(pe, t)`, routing every incident edge to
    /// placed neighbors through shared route trees; commits occupancy on
    /// success.
    #[allow(clippy::too_many_arguments)]
    fn try_commit(
        &self,
        node: usize,
        pe: PeId,
        t: u32,
        ii: u32,
        mrrg: &Mrrg,
        st: &mut State,
        overlay: &mut Overlay,
        bufs: &mut RouterBuffers,
    ) -> bool {
        let slot = mrrg.pe_slot(pe, t % ii);
        if st.compute[slot].is_some() {
            return false;
        }
        // Gather required routes: (producer, consumer, origin pe,
        // departure, consumer pe, arrival).
        let mut routes: Vec<(usize, usize, PeId, u32, PeId, u32)> = Vec::new();
        let lat = self.dfg.nodes()[node].latency();
        for &(src, dist, routed) in &self.in_edges[node] {
            let (producer, spe, dep) = if src == node {
                (node, pe, t + lat)
            } else {
                match st.place[src] {
                    Some((spe, stime)) => (src, spe, stime + self.dfg.nodes()[src].latency()),
                    None => continue,
                }
            };
            let arrive = t as i64 + dist as i64 * ii as i64;
            if arrive < dep as i64 {
                return false;
            }
            if routed {
                routes.push((producer, node, spe, dep, pe, arrive as u32));
            }
        }
        for &(dst, dist, routed) in &self.out_edges[node] {
            if dst == node {
                continue; // handled as an in-edge above
            }
            if let Some((dpe, dt)) = st.place[dst] {
                let dep = t + lat;
                let arrive = dt as i64 + dist as i64 * ii as i64;
                if arrive < dep as i64 {
                    return false;
                }
                if routed {
                    routes.push((node, dst, pe, dep, dpe, arrive as u32));
                }
            }
        }
        // Route one by one against an overlay so the routes of this very
        // candidate contend with (and share with) each other.
        overlay.reset(mrrg.node_count());
        let routes_before = st.routes.len();
        for (producer, consumer, spe, dep, dpe, arrive) in routes {
            match route_value(
                mrrg,
                ii,
                producer,
                spe,
                dep,
                dpe,
                arrive,
                st,
                overlay,
                bufs,
                self.config.share_routes,
            ) {
                Some(source) => st.routes.push(crate::mapping::RouteRecord {
                    src: ptmap_ir::NodeId(producer as u32),
                    dst: ptmap_ir::NodeId(consumer as u32),
                    source,
                }),
                None => {
                    bufs.stats.route_failures += 1;
                    st.routes.truncate(routes_before);
                    return false;
                }
            }
        }
        // Commit.
        st.compute[slot] = Some(node);
        st.place[node] = Some((pe, t));
        for &(producer, idx, at, claims) in overlay.adds() {
            st.trees[producer].insert(idx, at, claims);
            if claims {
                st.route_used[idx as usize] += 1;
                st.route_slots += 1;
            }
        }
        true
    }
}

/// Writes one II rung's `ii_attempt` span attributes. `speculated` is
/// `Some(cancelled)` on the speculative ladder and `None` on the
/// sequential walk, whose spans stay exactly as they always were.
fn record_rung_attrs(
    span: &ptmap_trace::Span,
    ii: u32,
    stats: &SearchStats,
    result: &Result<Option<Mapping>, MapError>,
    speculated: Option<bool>,
) {
    if !span.enabled() {
        return;
    }
    span.attr("backend", "heuristic");
    span.attr("ii", ii as u64);
    span.attr("restarts", stats.restarts);
    span.attr("placements_tried", stats.placements_tried);
    span.attr("backtracks", stats.backtracks);
    span.attr("route_failures", stats.route_failures);
    span.attr("bfs_expansions", stats.bfs_expansions);
    span.attr("success", matches!(result, Ok(Some(_))));
    if let Some(cancelled) = speculated {
        span.attr("speculated", true);
        span.attr("cancelled", cancelled);
    }
    if let Err(e) = result {
        span.attr("error", format!("{e:?}"));
    }
}

/// The adaptive wave-width policy ([`Speculation::Auto`]): widen while
/// the wave that just failed was failing *expensively*.
///
/// A doomed-but-cheap rung backtracks after trying a handful of
/// placements per restart; a rung that churns through several full
/// passes over the DFG before giving up signals a congested II region
/// where several more rungs are likely doomed too — racing wider
/// amortizes them. The decision uses only the completed wave's
/// [`SearchStats`] (no wall clock), so for a fixed seed the wave
/// boundaries — and therefore the trace layout — are identical run to
/// run on a given machine; the widening cap is additionally clamped
/// to the core count, since rungs beyond it can only timeslice.
/// Mappings are machine-independent either way: rung outcomes are
/// pure in `(seed, ii)` and wave shape never feeds back into them.
fn next_wave_width(width: u32, failed: &[SearchStats], dfg_nodes: usize) -> u32 {
    use crate::config::{available_cores, Speculation};
    let restarts: u64 = failed.iter().map(|s| s.restarts).sum::<u64>().max(1);
    let tried: u64 = failed.iter().map(|s| s.placements_tried).sum();
    let expensive = tried / restarts > 2 * dfg_nodes as u64;
    if expensive {
        (width * 2)
            .min(Speculation::MAX_WIDTH)
            .min(available_cores().max(2))
    } else {
        width.max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_dfg;
    use ptmap_arch::presets;
    use ptmap_ir::dfg::build_dfg;
    use ptmap_ir::{Program, ProgramBuilder};

    fn vadd(n: u64) -> Program {
        let mut b = ProgramBuilder::new("vadd");
        let x = b.array("X", &[n]);
        let y = b.array("Y", &[n]);
        let z = b.array("Z", &[n]);
        let i = b.open_loop("i", n);
        let v = b.add(b.load(x, &[b.idx(i)]), b.load(y, &[b.idx(i)]));
        b.store(z, &[b.idx(i)], v);
        b.close_loop();
        b.finish()
    }

    fn gemm(n: u64) -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[n, n]);
        let bb = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        let i = b.open_loop("i", n);
        let j = b.open_loop("j", n);
        let k = b.open_loop("k", n);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn vadd_maps_at_mii() {
        let p = vadd(256);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let m = map_dfg(&dfg, &presets::s4(), &MapperConfig::default()).unwrap();
        assert_eq!(m.mii, 1);
        assert!(m.ii <= 2, "vadd should map at tiny II, got {}", m.ii);
        assert_eq!(m.placements.len(), dfg.len());
    }

    #[test]
    fn gemm_maps_and_respects_recurrence() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let m = map_dfg(&dfg, &presets::s4(), &MapperConfig::default()).unwrap();
        // Through-memory accumulation limits II: load(2) + add(1) + store(1)
        // around a distance-1 cycle -> RecMII 4.
        assert!(m.ii >= 4, "ii = {}", m.ii);
        assert!(m.ii >= m.mii);
        crate::validate::validate(&dfg, &presets::s4(), &m).unwrap();
    }

    #[test]
    fn unrolled_gemm_maps_on_large_array() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        let dfg = build_dfg(&p, &nest, &[(i, 2), (j, 2)]).unwrap();
        let arch = presets::sl8();
        let m = map_dfg(&dfg, &arch, &MapperConfig::default()).unwrap();
        assert!(m.ii >= m.mii);
        assert_eq!(m.placements.len(), dfg.len());
        // At least ceil(#ops / II) PEs must be active.
        let min_pes = (dfg.len() as u32).div_ceil(m.ii);
        assert!(m.pes_used >= min_pes, "pes_used {} < {min_pes}", m.pes_used);
        crate::validate::validate(&dfg, &arch, &m).unwrap();
    }

    #[test]
    fn placement_times_respect_dataflow() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let m = map_dfg(&dfg, &presets::s4(), &MapperConfig::default()).unwrap();
        let time: Vec<u32> = {
            let mut v = vec![0; dfg.len()];
            for p in &m.placements {
                v[p.node.index()] = p.time;
            }
            v
        };
        for e in dfg.edges() {
            let dep = time[e.src.index()] + dfg.nodes()[e.src.index()].latency();
            let arrive = time[e.dst.index()] as i64 + e.dist as i64 * m.ii as i64;
            assert!(
                arrive >= dep as i64,
                "edge {}->{} dist {} violates timing (dep {dep}, arrive {arrive})",
                e.src,
                e.dst,
                e.dist
            );
        }
    }

    #[test]
    fn no_compute_slot_conflicts() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        let dfg = build_dfg(&p, &nest, &[(i, 2), (j, 2)]).unwrap();
        let m = map_dfg(&dfg, &presets::s4(), &MapperConfig::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for p in &m.placements {
            assert!(
                seen.insert((p.pe, p.time % m.ii)),
                "slot conflict at ({}, {})",
                p.pe,
                p.time % m.ii
            );
        }
    }

    #[test]
    fn heterogeneous_ops_go_to_capable_pes() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let r4 = presets::r4();
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let m = map_dfg(&dfg, &r4, &MapperConfig::default()).unwrap();
        for pl in &m.placements {
            let op = dfg.nodes()[pl.node.index()].op;
            assert!(r4.pe(pl.pe).supports(op), "{op} on incapable {}", pl.pe);
        }
    }

    #[test]
    fn empty_dfg_rejected() {
        let dfg = ptmap_ir::Dfg::new();
        assert_eq!(
            map_dfg(&dfg, &presets::s4(), &MapperConfig::default()),
            Err(MapError::EmptyDfg)
        );
    }

    #[test]
    fn zero_distance_cycle_rejected_up_front() {
        // A combinational loop: no II can satisfy it. The old RecMII
        // silently returned its search upper bound, sending the
        // scheduler into a doomed (and slow) II escalation that ended
        // in a misleading `Infeasible`.
        use ptmap_ir::OpKind;
        let mut dfg = ptmap_ir::Dfg::new();
        let a = dfg.add_node(OpKind::Add, None, None);
        let b = dfg.add_node(OpKind::Mul, None, None);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, a, 0);
        assert_eq!(
            map_dfg(&dfg, &presets::s4(), &MapperConfig::default()),
            Err(MapError::ZeroDistanceCycle)
        );
        assert!(Scheduler::new(&dfg, &presets::s4(), &MapperConfig::default()).is_err());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let cfg = MapperConfig::default();
        let a = map_dfg(&dfg, &presets::s4(), &cfg).unwrap();
        let b = map_dfg(&dfg, &presets::s4(), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn higher_effort_never_worse_ii() {
        let p = gemm(16);
        let nest = p.perfect_nests().remove(0);
        let (i, j) = (nest.loops[0], nest.loops[1]);
        let dfg = build_dfg(&p, &nest, &[(i, 2), (j, 2)]).unwrap();
        let base = map_dfg(&dfg, &presets::r4(), &MapperConfig::default());
        let high = map_dfg(
            &dfg,
            &presets::r4(),
            &MapperConfig::default().with_effort(4),
        );
        if let (Ok(b), Ok(h)) = (base, high) {
            assert!(h.ii <= b.ii + 1, "high effort ii {} vs base {}", h.ii, b.ii);
        }
    }

    #[test]
    fn cancelled_budget_stops_mapping() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let budget = ptmap_governor::Budget::cancellable();
        budget.cancel();
        assert_eq!(
            crate::map_dfg_budgeted(&dfg, &presets::s4(), &MapperConfig::default(), &budget),
            Err(MapError::Cancelled)
        );
    }

    #[test]
    fn expired_deadline_times_out() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let budget = ptmap_governor::Budget::with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            crate::map_dfg_budgeted(&dfg, &presets::s4(), &MapperConfig::default(), &budget),
            Err(MapError::Timeout)
        );
    }

    #[test]
    fn work_limit_exhausts_as_timeout() {
        // One placement attempt = one work unit; two units cannot place
        // a full GEMM body.
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let budget = ptmap_governor::Budget::with_work_limit(2);
        assert_eq!(
            crate::map_dfg_budgeted(&dfg, &presets::s4(), &MapperConfig::default(), &budget),
            Err(MapError::Timeout)
        );
    }

    #[test]
    fn generous_budget_matches_unbudgeted_mapping() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let cfg = MapperConfig::default();
        let free = map_dfg(&dfg, &presets::s4(), &cfg).unwrap();
        let budget = ptmap_governor::Budget::with_deadline(std::time::Duration::from_secs(3600));
        let timed = crate::map_dfg_budgeted(&dfg, &presets::s4(), &cfg, &budget).unwrap();
        assert_eq!(free, timed);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_ii_spans() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let cfg = MapperConfig::default();
        let plain = map_dfg(&dfg, &presets::s4(), &cfg).unwrap();
        let tracer = Tracer::root("gemm");
        let traced = crate::map_dfg_traced(
            &dfg,
            &presets::s4(),
            &cfg,
            &ptmap_governor::Budget::unlimited(),
            &tracer,
        )
        .unwrap();
        // Tracing must not perturb the search.
        assert_eq!(plain, traced);
        let trace = tracer.finish().unwrap();
        let attempts: Vec<_> = trace.spans_named("ii_attempt").collect();
        assert!(!attempts.is_empty());
        // IIs escalate from MII to the accepted II; the last attempt
        // succeeded and carries the search counters.
        let last = attempts.last().unwrap();
        let attr = |name: &str| {
            last.attrs
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| panic!("missing attr {name}"))
                .1
                .clone()
        };
        assert_eq!(attr("ii"), ptmap_trace::AttrValue::UInt(traced.ii as u64));
        assert_eq!(attr("success"), ptmap_trace::AttrValue::Bool(true));
        let ptmap_trace::AttrValue::UInt(restarts) = attr("restarts") else {
            panic!("restarts not a uint");
        };
        assert!(restarts >= 1);
        let ptmap_trace::AttrValue::UInt(tried) = attr("placements_tried") else {
            panic!("placements_tried not a uint");
        };
        assert!(tried as usize >= dfg.len());
        for name in ["backtracks", "route_failures", "bfs_expansions"] {
            assert!(matches!(attr(name), ptmap_trace::AttrValue::UInt(_)));
        }
        // Failed rungs (if any) recorded success=false.
        for span in &attempts[..attempts.len() - 1] {
            assert!(span
                .attrs
                .iter()
                .any(|(k, v)| k == "success" && *v == ptmap_trace::AttrValue::Bool(false)));
        }
    }

    #[test]
    fn error_fault_at_mapper_place_surfaces() {
        // Scope-filtered so concurrently running tests in this binary
        // (the registry is process-global) never see the fault.
        let _guard = ptmap_governor::faultpoint::install("mapper_place:error@fault-test").unwrap();
        let p = vadd(64);
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let r = ptmap_governor::faultpoint::with_scope("fault-test", || {
            crate::map_dfg_budgeted(
                &dfg,
                &presets::s4(),
                &MapperConfig::default(),
                &ptmap_governor::Budget::unlimited(),
            )
        });
        assert_eq!(r, Err(MapError::Fault("mapper_place".to_string())));
    }

    #[test]
    fn found_mapping_survives_budget_expiry_in_polish_restart() {
        // Regression: with polish on (effort >= 2), `run_ii` keeps
        // searching after the first complete mapping. A deadline that
        // expires during one of those *later* restarts used to
        // propagate Timeout from `budget.check()` and drop the
        // already-found mapping. Wedge every restart with an injected
        // delay so restart 0 succeeds within the deadline and a later
        // restart reliably lands past it.
        let _guard =
            ptmap_governor::faultpoint::install("mapper_place:delay:150@keep-best").unwrap();
        use ptmap_ir::OpKind;
        let mut dfg = ptmap_ir::Dfg::new();
        let a = dfg.add_node(OpKind::Add, None, None);
        let b = dfg.add_node(OpKind::Mul, None, None);
        let c = dfg.add_node(OpKind::Add, None, None);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, c, 0);
        let cfg = MapperConfig::default().with_effort(2);
        let budget = ptmap_governor::Budget::with_deadline(std::time::Duration::from_millis(400));
        let m = ptmap_governor::faultpoint::with_scope("keep-best", || {
            crate::map_dfg_budgeted(&dfg, &presets::s4(), &cfg, &budget)
        })
        .expect("the mapping found before the deadline expired must be returned");
        assert_eq!(m.placements.len(), dfg.len());
        crate::validate::validate(&dfg, &presets::s4(), &m).unwrap();
    }
}
