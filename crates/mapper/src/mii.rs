//! Minimum initiation interval bounds.
//!
//! `MII = max(ResMII, RecMII)`:
//!
//! * **ResMII** — resource bound: for every operation kind, the ops of
//!   that kind must share the PEs that support it; additionally all ops
//!   share the whole array.
//! * **RecMII** — recurrence bound: every cycle in the DFG must satisfy
//!   `II * total_distance >= total_latency`, so
//!   `RecMII = max over cycles ceil(latency / distance)`. Computed by
//!   testing candidate IIs with a Bellman–Ford positive-cycle check on
//!   the constraint graph (edge weight `lat(u) - II * dist(u, v)`).

use ptmap_arch::CgraArch;
use ptmap_ir::Dfg;

/// Resource-constrained minimum II.
///
/// Returns `u32::MAX` when some operation is supported by no PE.
pub fn res_mii(dfg: &Dfg, arch: &CgraArch) -> u32 {
    let mut worst = 1u64;
    // Whole-array bound.
    let total = dfg.len() as u64;
    let pes = arch.pe_count() as u64;
    worst = worst.max(total.div_ceil(pes));
    // Per-op-kind bound.
    for (op, count) in dfg.op_counts() {
        let supporting = arch.pes_supporting(op) as u64;
        if supporting == 0 {
            return u32::MAX;
        }
        worst = worst.max((count as u64).div_ceil(supporting));
    }
    worst.min(u32::MAX as u64) as u32
}

/// Recurrence-constrained minimum II, or `None` when no II can work.
///
/// `II * total_distance >= total_latency` is satisfiable for *some* II
/// exactly when every cycle carries a positive iteration distance; a
/// zero-distance cycle (a combinational loop, only constructible by
/// hand or by corruption) is infeasible at any II and is reported as
/// `None` instead of a silently-wrong bound.
///
/// Returns `Some(1)` for acyclic DFGs.
pub fn try_rec_mii(dfg: &Dfg) -> Option<u32> {
    // Upper bound on any feasible cycle's requirement: at
    // `II = total latency`, any cycle with distance >= 1 is satisfied.
    // A positive cycle surviving the upper bound therefore proves a
    // zero-distance cycle.
    let max_ii: u32 = dfg.nodes().iter().map(|n| n.latency()).sum::<u32>().max(1);
    if has_positive_cycle(dfg, max_ii) {
        return None;
    }
    // Find the smallest II with no positive cycle.
    if !has_positive_cycle(dfg, 1) {
        return Some(1);
    }
    let mut lo = 1u32;
    let mut hi = max_ii;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(dfg, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Recurrence-constrained minimum II.
///
/// Returns 1 for acyclic DFGs, and `u32::MAX` when the DFG has a
/// zero-distance cycle making every II infeasible (mirroring
/// [`res_mii`]'s convention for unsupported operations); use
/// [`try_rec_mii`] to distinguish that case explicitly.
pub fn rec_mii(dfg: &Dfg) -> u32 {
    try_rec_mii(dfg).unwrap_or(u32::MAX)
}

/// Whether the constraint graph has a positive-weight cycle at this II
/// (meaning the II is infeasible for some recurrence).
fn has_positive_cycle(dfg: &Dfg, ii: u32) -> bool {
    let n = dfg.len();
    if n == 0 {
        return false;
    }
    // Longest-path relaxation; a further relaxation after n-1 rounds
    // proves a positive cycle.
    let mut dist = vec![0i64; n];
    for round in 0..n {
        let mut changed = false;
        for e in dfg.edges() {
            let u = e.src.index();
            let v = e.dst.index();
            let w = dfg.nodes()[u].latency() as i64 - (ii as i64) * (e.dist as i64);
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n - 1 {
            return true;
        }
    }
    false
}

/// The minimum initiation interval `max(ResMII, RecMII)`.
///
/// `u32::MAX` signals an unmappable problem (unsupported operation or
/// zero-distance cycle).
pub fn mii(dfg: &Dfg, arch: &CgraArch) -> u32 {
    res_mii(dfg, arch).max(rec_mii(dfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::{Dfg, OpKind};

    fn chain_with_self_loop(latencies: &[OpKind], loop_dist: u32) -> Dfg {
        let mut dfg = Dfg::new();
        let mut prev = None;
        let mut first = None;
        for &op in latencies {
            let n = dfg.add_node(op, None, None);
            if let Some(p) = prev {
                dfg.add_edge(p, n, 0);
            }
            if first.is_none() {
                first = Some(n);
            }
            prev = Some(n);
        }
        if loop_dist > 0 {
            dfg.add_edge(prev.unwrap(), first.unwrap(), loop_dist);
        }
        dfg
    }

    #[test]
    fn acyclic_rec_mii_is_one() {
        let dfg = chain_with_self_loop(&[OpKind::Add, OpKind::Mul, OpKind::Store], 0);
        assert_eq!(rec_mii(&dfg), 1);
    }

    #[test]
    fn self_loop_rec_mii_equals_latency_over_distance() {
        // add(1) -> mul(2) -> add(1), back edge dist 1: cycle latency 4.
        let dfg = chain_with_self_loop(&[OpKind::Add, OpKind::Mul, OpKind::Add], 1);
        assert_eq!(rec_mii(&dfg), 4);
        // Same cycle with distance 2: ceil(4/2) = 2.
        let dfg = chain_with_self_loop(&[OpKind::Add, OpKind::Mul, OpKind::Add], 2);
        assert_eq!(rec_mii(&dfg), 2);
    }

    #[test]
    fn zero_distance_cycle_detected() {
        // a -> b -> a, both edges at distance 0: a combinational loop
        // no II can break. Previously this silently returned the upper
        // bound (`sum of latencies`) as if it were feasible.
        let mut dfg = Dfg::new();
        let a = dfg.add_node(OpKind::Add, None, None);
        let b = dfg.add_node(OpKind::Mul, None, None);
        dfg.add_edge(a, b, 0);
        dfg.add_edge(b, a, 0);
        assert_eq!(try_rec_mii(&dfg), None);
        assert_eq!(rec_mii(&dfg), u32::MAX);
    }

    #[test]
    fn zero_distance_self_loop_detected() {
        let mut dfg = Dfg::new();
        let acc = dfg.add_node(OpKind::Add, None, None);
        dfg.add_edge(acc, acc, 0);
        assert_eq!(try_rec_mii(&dfg), None);
    }

    #[test]
    fn accumulator_self_edge() {
        let mut dfg = Dfg::new();
        let acc = dfg.add_node(OpKind::Add, None, None);
        dfg.add_edge(acc, acc, 1);
        assert_eq!(rec_mii(&dfg), 1);
    }

    #[test]
    fn res_mii_counts_array_pressure() {
        let mut dfg = Dfg::new();
        for _ in 0..33 {
            dfg.add_node(OpKind::Add, None, None);
        }
        // 33 ops on 16 PEs -> ceil = 3.
        assert_eq!(res_mii(&dfg, &presets::s4()), 3);
    }

    #[test]
    fn res_mii_respects_heterogeneity() {
        let r4 = presets::r4();
        let muls = r4.pes_supporting(OpKind::Mul) as u32;
        let mut dfg = Dfg::new();
        for _ in 0..muls * 2 {
            dfg.add_node(OpKind::Mul, None, None);
        }
        assert_eq!(res_mii(&dfg, &r4), 2);
        // The homogeneous S4 fits them in a single slot round.
        assert!(res_mii(&dfg, &presets::s4()) <= 2);
    }

    #[test]
    fn unsupported_op_gives_max() {
        use ptmap_arch::{CgraArchBuilder, Pe};
        use ptmap_ir::OpClass;
        // An array whose PEs lack logic ops entirely.
        let arch = CgraArchBuilder::new("nologic", 2, 2)
            .uniform_pe(Pe::with_classes(&[OpClass::Arithmetic, OpClass::Memory], 1))
            .build()
            .unwrap();
        let mut dfg = Dfg::new();
        dfg.add_node(OpKind::Xor, None, None);
        assert_eq!(res_mii(&dfg, &arch), u32::MAX);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        let dfg = chain_with_self_loop(&[OpKind::Add, OpKind::Mul, OpKind::Add], 1);
        let arch = presets::s4();
        assert_eq!(mii(&dfg, &arch), rec_mii(&dfg).max(res_mii(&dfg, &arch)));
    }
}
