//! The routing hot path: layered BFS over the time-extended MRRG.
//!
//! `route_value` transports one produced value from its origin
//! `(PE, cycle)` to a consumer's `(PE, cycle)`, sharing the producer's
//! existing route tree (multi-source search) and respecting per-node
//! routing capacity. The search state space is `(mrrg node, cycle
//! offset)`; all bookkeeping lives in the flat epoch-stamped arrays of
//! [`RouterBuffers`], so a call performs no allocation once the
//! buffers are warm. The discovery order is identical to the previous
//! `BTreeMap`-based implementation, keeping default-seed mappings
//! bit-identical.

use crate::mapping::OperandSource;
use crate::state::{Overlay, RouterBuffers, State};
use ptmap_arch::{Mrrg, PeId, RouteNode};

/// Routes `producer`'s value (first available at `(src, dep)`) to `dst`
/// arriving exactly at cycle `arrive`, sharing the producer's existing
/// route tree when `share` is set. On success the new positions are
/// recorded in `overlay` and the consumer's operand source is returned.
///
/// Public so every [`crate::backend::MapperBackend`] routes through the
/// same deterministic oracle — the exact backend's optimality proofs
/// are stated relative to this router.
#[allow(clippy::too_many_arguments)]
pub fn route_value(
    mrrg: &Mrrg,
    ii: u32,
    producer: usize,
    src: PeId,
    dep: u32,
    dst: PeId,
    arrive: u32,
    st: &State,
    overlay: &mut Overlay,
    bufs: &mut RouterBuffers,
    share: bool,
) -> Option<OperandSource> {
    if arrive < dep || arrive - dep > ii * 8 + 64 {
        return None;
    }
    let origin = mrrg.pe_slot(src, dep % ii) as u32;
    let goal = mrrg.pe_slot(dst, arrive % ii) as u32;
    let tree = &st.trees[producer];
    let in_tree = |overlay: &Overlay, idx: u32, at: u32| -> bool {
        if share {
            tree.contains(idx, at)
                || overlay.contains(producer, idx, at)
                || (idx == origin && at == dep)
        } else {
            idx == origin && at == dep
        }
    };
    // Fast path: the value is already present at the goal position
    // (another consumer pulled it here, or it waits in the local RF).
    if in_tree(overlay, goal, arrive) {
        return Some(OperandSource::Local);
    }
    if arrive == dep {
        // Zero transport cycles: only a same-PE bypass works.
        return (goal == origin).then_some(OperandSource::Local);
    }
    // Multi-source BFS over (mrrg node, absolute cycle) states, seeded
    // from every existing position of the value at cycles <= arrive (or
    // only the origin when route sharing is disabled).
    let t0 = dep;
    let span = (arrive - t0) as usize;
    let nodes = mrrg.node_count();
    let width = span + 1;
    bufs.begin(nodes, span);
    let mut seeds = std::mem::take(&mut bufs.seeds);
    seeds.push((origin, dep));
    if share {
        for &(idx, at, _) in tree.positions() {
            if at >= t0 && at < arrive {
                seeds.push((idx, at));
            }
        }
        overlay.seeds_into(producer, t0, arrive, &mut seeds);
    }
    for &(idx, at) in &seeds {
        let k = (at - t0) as usize;
        let cell = idx as usize * width + k;
        if !bufs.visited(cell) {
            bufs.visit(cell, (idx, at));
            bufs.buckets[k].push(idx);
        }
    }
    bufs.seeds = seeds;
    let mut found = false;
    'layers: for k in 0..span {
        let at = t0 + k as u32;
        let nat = at + 1;
        let nk = k + 1;
        let mut fi = 0;
        while fi < bufs.buckets[k].len() {
            let cur = bufs.buckets[k][fi];
            fi += 1;
            bufs.stats.bfs_expansions += 1;
            for &s in mrrg.succ(cur as usize) {
                let cell = s as usize * width + nk;
                if bufs.visited(cell) {
                    continue;
                }
                let is_goal = s == goal && nat == arrive;
                if nat == arrive && !is_goal {
                    continue;
                }
                if !is_goal && !in_tree(overlay, s, nat) {
                    let cap = st.route_cap[s as usize];
                    if st.route_used[s as usize] + overlay.claimed_at(s) >= cap {
                        continue;
                    }
                }
                bufs.visit(cell, (cur, at));
                bufs.buckets[nk].push(s);
                if is_goal {
                    found = true;
                }
            }
            if found {
                break 'layers;
            }
        }
    }
    if !found {
        return None;
    }
    // The operand source is the position the value moves from on its
    // final hop into the consumer.
    let last_hop = bufs.parent_of(goal as usize * width + span);
    let source = match mrrg.decode(last_hop.0 as usize) {
        RouteNode::Pe { pe, .. } if pe == dst => OperandSource::Local,
        RouteNode::Pe { pe, .. } => OperandSource::Pe(pe),
        RouteNode::Grf { .. } => OperandSource::Grf,
    };
    // Walk back from the goal, collecting new positions. The goal itself
    // is the consumer's operand port: recorded as shareable but free.
    let mut cur = (goal, arrive);
    let mut first = true;
    bufs.path.clear();
    loop {
        let prev = bufs.parent_of(cur.0 as usize * width + (cur.1 - t0) as usize);
        let exempt = if share {
            tree.contains(cur.0, cur.1)
                || overlay.contains(producer, cur.0, cur.1)
                || (cur.0 == origin && cur.1 == dep)
        } else {
            cur.0 == origin && cur.1 == dep
        };
        if !exempt {
            bufs.path.push((cur.0, cur.1, !first));
        }
        first = false;
        if prev == cur {
            break;
        }
        cur = prev;
    }
    // Re-check capacity against the path's *combined* claims before
    // recording anything: one path may hold the value in the same
    // (mod-II) MRRG slot across several absolute cycles (an LRF hold
    // wrapping around the II), and the BFS admitted each step against
    // the overlay as it was before this route existed, so the claims
    // of the path itself can overcommit a slot.
    for i in 0..bufs.path.len() {
        let (s, _, c) = bufs.path[i];
        if !c || bufs.path[..i].iter().any(|&(s2, _, c2)| c2 && s2 == s) {
            continue;
        }
        let new = bufs
            .path
            .iter()
            .filter(|&&(s2, _, c2)| c2 && s2 == s)
            .count() as u32;
        if st.route_used[s as usize] + overlay.claimed_at(s) + new > st.route_cap[s as usize] {
            return None;
        }
    }
    for i in 0..bufs.path.len() {
        let (s, at, c) = bufs.path[i];
        overlay.insert_if_absent(producer, s, at, c);
    }
    Some(source)
}
