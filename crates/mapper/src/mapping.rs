//! The mapping artifact produced by the scheduler.

use ptmap_arch::PeId;
use ptmap_ir::NodeId;
use serde::{Deserialize, Serialize};

/// Where a consumed operand arrives from in the consumer's cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandSource {
    /// Produced on the same PE (ALU bypass or local register file).
    Local,
    /// Arrives over the interconnect from this PE.
    Pe(PeId),
    /// Read from the global register file hub.
    Grf,
}

/// The routing outcome of one data edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteRecord {
    /// Producing DFG node.
    pub src: NodeId,
    /// Consuming DFG node.
    pub dst: NodeId,
    /// Where the value enters the consumer.
    pub source: OperandSource,
}

/// One occupied position of a produced value in the time-extended MRRG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutePos {
    /// MRRG node index (see `ptmap_arch::Mrrg::decode`, built for the
    /// mapping's II).
    pub slot: u32,
    /// Absolute cycle at which the value occupies the node.
    pub cycle: u32,
    /// Routing-capacity units claimed at this position (0 for consumer
    /// operand ports; may exceed 1 when route sharing is disabled and
    /// several independent routes traverse the same position).
    pub claims: u32,
}

/// The full route tree of one producer: everywhere (and everywhen) its
/// value exists beyond the producing slot itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerRoutes {
    /// The producing DFG node.
    pub producer: NodeId,
    /// Occupied positions, sorted by `(slot, cycle)`.
    pub positions: Vec<RoutePos>,
}

/// Placement of one DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The placed DFG node.
    pub node: NodeId,
    /// The PE executing it.
    pub pe: PeId,
    /// Absolute start cycle within the (unwrapped) schedule.
    pub time: u32,
}

/// A complete modulo schedule of a DFG on a CGRA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Achieved initiation interval.
    pub ii: u32,
    /// The minimum II bound the search started from.
    pub mii: u32,
    /// Schedule length: cycles from the first issue to the last
    /// completion of a single iteration.
    pub schedule_length: u32,
    /// Per-node placements.
    pub placements: Vec<Placement>,
    /// Number of MRRG routing-slot occupancies consumed by data movement
    /// (used by the energy model).
    pub route_slots: u32,
    /// Per-data-edge routing outcomes (operand sources for context
    /// generation).
    pub routes: Vec<RouteRecord>,
    /// Per-producer route trees: the MRRG positions each produced value
    /// occupies. Consumed by the mapping invariant validator
    /// (`crate::validate`) to check capacity and connectivity.
    #[serde(default)]
    pub route_trees: Vec<ProducerRoutes>,
    /// Number of PEs used by at least one operation.
    pub pes_used: u32,
    /// Total PEs of the target architecture.
    pub pe_count: u32,
}

impl Mapping {
    /// Pipeline fill + drain overhead (`ProEpi` in Eqn. 1): the cycles a
    /// single iteration spends in flight beyond its II slot.
    pub fn pro_epi(&self) -> u32 {
        self.schedule_length.saturating_sub(self.ii)
    }

    /// Total cycles to execute the pipelined loop for `tripcount`
    /// iterations (Eqn. 1): `TC * II + ProEpi`.
    pub fn cycles(&self, tripcount: u64) -> u64 {
        tripcount * self.ii as u64 + self.pro_epi() as u64
    }

    /// Compute-slot utilization of the PE array: placed operations over
    /// `II * pe_count` slots (the Fig. 2a metric).
    pub fn utilization(&self) -> f64 {
        let slots = (self.ii * self.pe_count) as f64;
        if slots == 0.0 {
            return 0.0;
        }
        self.placements.len() as f64 / slots
    }

    /// Residual over the lower bound: `II - MII` (the GNN's regression
    /// target `II_res`).
    pub fn ii_residual(&self) -> u32 {
        self.ii - self.mii
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> Mapping {
        Mapping {
            ii: 3,
            mii: 2,
            schedule_length: 8,
            placements: vec![
                Placement {
                    node: NodeId(0),
                    pe: PeId(0),
                    time: 0,
                },
                Placement {
                    node: NodeId(1),
                    pe: PeId(1),
                    time: 2,
                },
            ],
            route_slots: 4,
            routes: Vec::new(),
            route_trees: Vec::new(),
            pes_used: 2,
            pe_count: 16,
        }
    }

    #[test]
    fn pro_epi_and_cycles() {
        let m = mapping();
        assert_eq!(m.pro_epi(), 5);
        assert_eq!(m.cycles(100), 305);
    }

    #[test]
    fn utilization() {
        let m = mapping();
        let expected = 2.0 / 48.0;
        assert!((m.utilization() - expected).abs() < 1e-12);
    }

    #[test]
    fn residual() {
        assert_eq!(mapping().ii_residual(), 1);
    }
}
