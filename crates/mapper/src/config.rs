//! Mapper configuration.

use crate::backend::BackendKind;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the modulo scheduler.
///
/// The defaults model the paper's RAMP setup (max II 20). `effort`
/// scales the per-II attempt and candidate budgets; the baselines crate
/// raises it to emulate the stronger learned schedulers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Largest initiation interval to try (paper: 20).
    pub max_ii: u32,
    /// Search effort multiplier (≥ 1). Scales restarts per II and the
    /// number of placement candidates examined per operation.
    pub effort: u32,
    /// RNG seed for the randomized placement order perturbations.
    pub seed: u64,
    /// Share route trees across a value's consumers (RAMP-style
    /// resource-aware routing). Disabling routes every fanout edge
    /// independently — an ablation knob; see DESIGN.md.
    pub share_routes: bool,
    /// Run the post-hoc invariant validator ([`crate::validate`]) on
    /// every mapping [`crate::map_dfg`] produces, turning silent route
    /// mis-accounting into a hard [`crate::MapError::BrokenInvariant`].
    /// Off by default (it costs an extra pass per accepted mapping);
    /// the `PTMAP_VALIDATE` environment variable force-enables it
    /// regardless of this flag (set in CI).
    #[serde(default)]
    pub validate: bool,
    /// Which search backend produces the mapping (see
    /// [`crate::backend`]). The heuristic scheduler is the default; the
    /// exact and portfolio backends live in the `ptmap-exact` crate and
    /// are dispatched by its `map_with_backend`. Serialized, so the
    /// pipeline cache key differs per backend by construction.
    #[serde(default)]
    pub backend: BackendKind,
    /// Deterministic cap on branch-and-bound steps (placement
    /// candidates examined) per candidate II for the exact backend.
    /// Hitting the cap downgrades an infeasibility proof to
    /// "exhausted" — the sweep stops claiming optimality but still
    /// returns the best mapping found.
    #[serde(default = "default_exact_steps_per_ii")]
    pub exact_steps_per_ii: u64,
}

fn default_exact_steps_per_ii() -> u64 {
    2_000_000
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            max_ii: 20,
            effort: 1,
            seed: 0xC6_4A,
            share_routes: true,
            validate: false,
            backend: BackendKind::Heuristic,
            exact_steps_per_ii: default_exact_steps_per_ii(),
        }
    }
}

impl MapperConfig {
    /// A configuration with a different effort level.
    pub fn with_effort(mut self, effort: u32) -> Self {
        self.effort = effort.max(1);
        self
    }

    /// A configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A configuration with the invariant validator enabled.
    pub fn with_validation(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// A configuration with a different search backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Placement restarts attempted per candidate II.
    pub fn restarts_per_ii(&self) -> u32 {
        3 + self.effort
    }

    /// Placement candidates ((pe, t) pairs) examined per operation before
    /// the attempt is abandoned.
    pub fn candidates_per_op(&self) -> usize {
        (96 * self.effort) as usize
    }

    /// Whether to keep searching at a feasible II for a schedule with a
    /// shorter fill/drain (higher-effort schedulers polish ProEpi, which
    /// multiplies across pipeline launches).
    pub fn polish_schedule(&self) -> bool {
        self.effort >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_max_ii() {
        assert_eq!(MapperConfig::default().max_ii, 20);
    }

    #[test]
    fn effort_scales_budgets() {
        let base = MapperConfig::default();
        let hi = MapperConfig::default().with_effort(4);
        assert!(hi.restarts_per_ii() > base.restarts_per_ii());
        assert!(hi.candidates_per_op() > base.candidates_per_op());
    }

    #[test]
    fn effort_floor_is_one() {
        assert_eq!(MapperConfig::default().with_effort(0).effort, 1);
    }
}
