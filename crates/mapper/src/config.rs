//! Mapper configuration.

use crate::backend::BackendKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Speculative parallel II racing in the heuristic scheduler's
/// escalation ladder (see [`crate::scheduler::Scheduler::run_traced`]).
///
/// With speculation on, consecutive candidate IIs are raced on worker
/// threads instead of being tried one after another; the lowest
/// successful II always wins and — because each rung derives its RNG
/// from `(seed, ii)` alone — the produced mapping is bit-identical to
/// the sequential walk's. Speculation therefore only changes wall
/// clock, never results, which is also why the field is *not* part of
/// the serialized config (see [`MapperConfig::speculation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Speculation {
    /// Walk the II ladder sequentially (the default).
    #[default]
    Off,
    /// Race a fixed number of consecutive candidate IIs per wave.
    /// `Fixed(1)` degenerates to the sequential walk.
    Fixed(u32),
    /// Start two rungs wide and widen (up to
    /// [`Speculation::MAX_WIDTH`]) while completed rungs keep failing
    /// expensively, judged from their [`crate::state::SearchStats`]
    /// counters. Width is additionally clamped to the machine's
    /// available parallelism, so on a single core `Auto` degenerates
    /// to the sequential walk instead of timeslicing raced rungs.
    Auto,
}

impl Speculation {
    /// The widest wave any policy will race. Bounds thread fan-out per
    /// mapping attempt; batch-level parallelism multiplies on top.
    pub const MAX_WIDTH: u32 = 8;

    /// The width of the first wave under this policy.
    pub fn initial_width(self) -> u32 {
        match self {
            Speculation::Off => 1,
            Speculation::Fixed(w) => w.clamp(1, Self::MAX_WIDTH),
            Speculation::Auto => 2u32.min(available_cores()),
        }
    }

    /// Whether this policy ever races more than one rung at a time.
    ///
    /// `Auto` answers `false` on a single-core machine: raced rungs
    /// would only timeslice the one core, so the ladder runs
    /// sequentially there (the produced mapping is identical either
    /// way — speculation is wall-clock-only by construction).
    /// `Fixed(w)` takes the caller at their word and always races.
    pub fn is_parallel(self) -> bool {
        match self {
            Speculation::Off => false,
            Speculation::Fixed(w) => w > 1,
            Speculation::Auto => available_cores() > 1,
        }
    }
}

/// The machine's available parallelism, 1 when unknown.
pub(crate) fn available_cores() -> u32 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u32)
}

impl fmt::Display for Speculation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Speculation::Off => f.write_str("off"),
            Speculation::Fixed(w) => write!(f, "{w}"),
            Speculation::Auto => f.write_str("auto"),
        }
    }
}

impl FromStr for Speculation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Speculation::Off),
            "auto" => Ok(Speculation::Auto),
            other => match other.parse::<u32>() {
                Ok(w) if (1..=Speculation::MAX_WIDTH).contains(&w) => Ok(Speculation::Fixed(w)),
                _ => Err(format!(
                    "bad speculation width {other:?} (expected off, auto, or 1..={})",
                    Speculation::MAX_WIDTH
                )),
            },
        }
    }
}

/// Tuning knobs of the modulo scheduler.
///
/// The defaults model the paper's RAMP setup (max II 20). `effort`
/// scales the per-II attempt and candidate budgets; the baselines crate
/// raises it to emulate the stronger learned schedulers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Largest initiation interval to try (paper: 20).
    pub max_ii: u32,
    /// Search effort multiplier (≥ 1). Scales restarts per II and the
    /// number of placement candidates examined per operation.
    pub effort: u32,
    /// RNG seed for the randomized placement order perturbations.
    pub seed: u64,
    /// Share route trees across a value's consumers (RAMP-style
    /// resource-aware routing). Disabling routes every fanout edge
    /// independently — an ablation knob; see DESIGN.md.
    pub share_routes: bool,
    /// Run the post-hoc invariant validator ([`crate::validate`]) on
    /// every mapping [`crate::map_dfg`] produces, turning silent route
    /// mis-accounting into a hard [`crate::MapError::BrokenInvariant`].
    /// Off by default (it costs an extra pass per accepted mapping);
    /// the `PTMAP_VALIDATE` environment variable force-enables it
    /// regardless of this flag (set in CI).
    #[serde(default)]
    pub validate: bool,
    /// Which search backend produces the mapping (see
    /// [`crate::backend`]). The heuristic scheduler is the default; the
    /// exact and portfolio backends live in the `ptmap-exact` crate and
    /// are dispatched by its `map_with_backend`. Serialized, so the
    /// pipeline cache key differs per backend by construction.
    #[serde(default)]
    pub backend: BackendKind,
    /// Deterministic cap on branch-and-bound steps (placement
    /// candidates examined) per candidate II for the exact backend.
    /// Hitting the cap downgrades an infeasibility proof to
    /// "exhausted" — the sweep stops claiming optimality but still
    /// returns the best mapping found.
    #[serde(default = "default_exact_steps_per_ii")]
    pub exact_steps_per_ii: u64,
    /// Speculative parallel II racing in the heuristic ladder (see
    /// [`Speculation`]). Deliberately `#[serde(skip)]`: fixed-seed
    /// mappings are bit-identical whatever the width, so the pipeline
    /// cache key — a hash of the serialized config — must not fragment
    /// on an execution-strategy knob that cannot change results.
    #[serde(skip)]
    pub speculation: Speculation,
}

fn default_exact_steps_per_ii() -> u64 {
    2_000_000
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            max_ii: 20,
            effort: 1,
            seed: 0xC6_4A,
            share_routes: true,
            validate: false,
            backend: BackendKind::Heuristic,
            exact_steps_per_ii: default_exact_steps_per_ii(),
            speculation: Speculation::Off,
        }
    }
}

impl MapperConfig {
    /// A configuration with a different effort level.
    pub fn with_effort(mut self, effort: u32) -> Self {
        self.effort = effort.max(1);
        self
    }

    /// A configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A configuration with the invariant validator enabled.
    pub fn with_validation(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// A configuration with a different search backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// A configuration with a different speculation policy.
    pub fn with_speculation(mut self, speculation: Speculation) -> Self {
        self.speculation = speculation;
        self
    }

    /// Placement restarts attempted per candidate II.
    pub fn restarts_per_ii(&self) -> u32 {
        3 + self.effort
    }

    /// Placement candidates ((pe, t) pairs) examined per operation before
    /// the attempt is abandoned.
    pub fn candidates_per_op(&self) -> usize {
        (96 * self.effort) as usize
    }

    /// Whether to keep searching at a feasible II for a schedule with a
    /// shorter fill/drain (higher-effort schedulers polish ProEpi, which
    /// multiplies across pipeline launches).
    pub fn polish_schedule(&self) -> bool {
        self.effort >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_max_ii() {
        assert_eq!(MapperConfig::default().max_ii, 20);
    }

    #[test]
    fn effort_scales_budgets() {
        let base = MapperConfig::default();
        let hi = MapperConfig::default().with_effort(4);
        assert!(hi.restarts_per_ii() > base.restarts_per_ii());
        assert!(hi.candidates_per_op() > base.candidates_per_op());
    }

    #[test]
    fn effort_floor_is_one() {
        assert_eq!(MapperConfig::default().with_effort(0).effort, 1);
    }

    #[test]
    fn speculation_parses_and_displays() {
        assert_eq!("off".parse(), Ok(Speculation::Off));
        assert_eq!("auto".parse(), Ok(Speculation::Auto));
        assert_eq!("1".parse(), Ok(Speculation::Fixed(1)));
        assert_eq!("4".parse(), Ok(Speculation::Fixed(4)));
        assert!("0".parse::<Speculation>().is_err());
        assert!("999".parse::<Speculation>().is_err());
        assert!("wide".parse::<Speculation>().is_err());
        for s in [Speculation::Off, Speculation::Auto, Speculation::Fixed(3)] {
            assert_eq!(s.to_string().parse(), Ok(s));
        }
        assert!(!Speculation::Off.is_parallel());
        assert!(!Speculation::Fixed(1).is_parallel());
        assert!(Speculation::Fixed(2).is_parallel());
        // `Auto` races exactly when the machine can actually run rungs
        // concurrently (single-core machines stay sequential).
        assert_eq!(
            Speculation::Auto.is_parallel(),
            available_cores() > 1,
            "Auto must track available parallelism"
        );
    }

    #[test]
    fn speculation_does_not_change_serialized_config() {
        // The pipeline cache key hashes the serialized config;
        // speculation cannot change mappings (fixed-seed outputs are
        // bit-identical at any width), so it must not change the key.
        // This is load-bearing for `#[serde(skip)]` above — if the
        // field ever starts serializing, cache entries fragment per
        // width for no semantic reason.
        let base = serde_json::to_string(&MapperConfig::default()).unwrap();
        for s in [
            Speculation::Fixed(1),
            Speculation::Fixed(4),
            Speculation::Auto,
        ] {
            let spec = serde_json::to_string(&MapperConfig::default().with_speculation(s)).unwrap();
            assert_eq!(base, spec, "speculation {s} leaked into the wire config");
        }
        // And deserializing a config without the field defaults to Off.
        let cfg: MapperConfig = serde_json::from_str(&base).unwrap();
        assert_eq!(cfg.speculation, Speculation::Off);
    }
}
