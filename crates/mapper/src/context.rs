//! Context generation: turning a [`Mapping`] into per-PE configuration
//! memories.
//!
//! A CGRA executes by cycling each PE through `II` context words; a word
//! selects the ALU operation, the operand sources (interconnect
//! direction, local register file, GRF, or an immediate), and whether
//! the result is latched. This module emits that artifact — the actual
//! *output* of the paper's pipeline — plus a disassembler for
//! inspection, and checks it against the context-buffer capacity.

use crate::mapping::{Mapping, OperandSource};
use ptmap_arch::{CgraArch, PeId};
use ptmap_ir::{Dfg, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One context word: what a PE does in one slot of the II cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextWord {
    /// Operation issued this slot.
    pub op: OpKind,
    /// Immediate value for constant nodes.
    pub imm: Option<i64>,
    /// Operand sources, in DFG in-edge order.
    pub operands: Vec<OperandSource>,
    /// The DFG node realized by this word (for disassembly).
    pub node: ptmap_ir::NodeId,
}

/// The full configuration image: `per_pe[pe][slot]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextImage {
    /// The initiation interval (= context count per PE).
    pub ii: u32,
    /// One optional word per (PE, slot); `None` = the PE idles (or only
    /// routes) that cycle.
    pub per_pe: Vec<Vec<Option<ContextWord>>>,
}

impl ContextImage {
    /// Number of non-idle context words.
    pub fn words(&self) -> usize {
        self.per_pe.iter().flatten().filter(|w| w.is_some()).count()
    }

    /// Whether the image fits the architecture's context buffer.
    pub fn fits(&self, arch: &CgraArch) -> bool {
        self.ii <= arch.cb_capacity()
    }

    /// The word executed by `pe` at `slot`.
    pub fn word(&self, pe: PeId, slot: u32) -> Option<&ContextWord> {
        self.per_pe
            .get(pe.index())
            .and_then(|v| v.get(slot as usize))
            .and_then(Option::as_ref)
    }
}

impl fmt::Display for ContextImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; context image, II = {}", self.ii)?;
        for (pe, slots) in self.per_pe.iter().enumerate() {
            if slots.iter().all(Option::is_none) {
                continue;
            }
            writeln!(f, "PE{pe}:")?;
            for (t, w) in slots.iter().enumerate() {
                match w {
                    None => writeln!(f, "  t{t}: nop")?,
                    Some(w) => {
                        write!(f, "  t{t}: {}", w.op)?;
                        if let Some(imm) = w.imm {
                            write!(f, " #{imm}")?;
                        }
                        for (k, src) in w.operands.iter().enumerate() {
                            let s = match src {
                                OperandSource::Local => "local".to_string(),
                                OperandSource::Pe(p) => format!("{p}"),
                                OperandSource::Grf => "GRF".to_string(),
                            };
                            write!(f, "{}{}", if k == 0 { " <- " } else { ", " }, s)?;
                        }
                        writeln!(f, "    ; {}", w.node)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Emits the configuration image of a mapping.
///
/// # Panics
///
/// Panics if the mapping does not belong to this DFG/architecture pair
/// (placement out of range).
pub fn generate_contexts(dfg: &Dfg, mapping: &Mapping, arch: &CgraArch) -> ContextImage {
    let ii = mapping.ii;
    let mut per_pe: Vec<Vec<Option<ContextWord>>> = vec![vec![None; ii as usize]; arch.pe_count()];
    for p in &mapping.placements {
        let node = &dfg.nodes()[p.node.index()];
        // Operand sources, in in-edge order, from the recorded routes.
        let operands: Vec<OperandSource> = dfg
            .preds(p.node)
            .filter(|e| e.kind == ptmap_ir::dfg::EdgeKind::Data)
            .map(|e| {
                mapping
                    .routes
                    .iter()
                    .find(|r| r.src == e.src && r.dst == e.dst)
                    .map(|r| r.source)
                    // Unrouted in-edge (producer placed later than the
                    // consumer recorded it): resolved locally.
                    .unwrap_or(OperandSource::Local)
            })
            .collect();
        let word = ContextWord {
            op: node.op,
            imm: node.imm,
            operands,
            node: p.node,
        };
        per_pe[p.pe.index()][(p.time % ii) as usize] = Some(word);
    }
    ContextImage { ii, per_pe }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{map_dfg, MapperConfig};
    use ptmap_arch::presets;
    use ptmap_ir::dfg::build_dfg;
    use ptmap_ir::ProgramBuilder;

    fn mapped() -> (Dfg, Mapping, CgraArch) {
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array("X", &[256]);
        let y = b.array("Y", &[256]);
        let i = b.open_loop("i", 256);
        let v = b.add(
            b.mul(b.load(x, &[b.idx(i)]), b.constant(3)),
            b.load(y, &[b.idx(i)]),
        );
        b.store(y, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let arch = presets::s4();
        let m = map_dfg(&dfg, &arch, &MapperConfig::default()).unwrap();
        (dfg, m, arch)
    }

    #[test]
    fn every_placement_gets_a_word() {
        let (dfg, m, arch) = mapped();
        let img = generate_contexts(&dfg, &m, &arch);
        assert_eq!(img.words(), dfg.len());
        assert!(img.fits(&arch));
    }

    #[test]
    fn operand_counts_match_data_in_edges() {
        let (dfg, m, arch) = mapped();
        let img = generate_contexts(&dfg, &m, &arch);
        for p in &m.placements {
            let w = img.word(p.pe, p.time % m.ii).expect("word exists");
            let in_data = dfg
                .preds(p.node)
                .filter(|e| e.kind == ptmap_ir::dfg::EdgeKind::Data)
                .count();
            assert_eq!(w.operands.len(), in_data, "node {}", p.node);
        }
    }

    #[test]
    fn disassembly_lists_every_op() {
        let (dfg, m, arch) = mapped();
        let img = generate_contexts(&dfg, &m, &arch);
        let text = img.to_string();
        for n in dfg.nodes() {
            assert!(text.contains(&n.op.to_string()), "missing {}", n.op);
        }
        assert!(text.contains("; context image, II ="));
    }

    #[test]
    fn route_records_cover_all_data_edges() {
        let (dfg, m, _) = mapped();
        for e in dfg
            .edges()
            .iter()
            .filter(|e| e.kind == ptmap_ir::dfg::EdgeKind::Data)
        {
            assert!(
                m.routes.iter().any(|r| r.src == e.src && r.dst == e.dst),
                "edge {}->{} has no route record",
                e.src,
                e.dst
            );
        }
    }

    #[test]
    fn slots_unique_per_pe() {
        let (dfg, m, arch) = mapped();
        let img = generate_contexts(&dfg, &m, &arch);
        // Image words count equals placements count (no overwrite).
        assert_eq!(img.words(), m.placements.len());
        let _ = dfg;
    }
}
