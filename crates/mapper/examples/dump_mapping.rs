//! Dumps deterministic mapping fingerprints for a few reference
//! kernels, as stable JSON on stdout.
//!
//! Used to check that scheduler/router refactors keep default-seed
//! mappings bit-identical: run before and after a change and diff.
//!
//! ```text
//! cargo run --release -p ptmap-mapper --example dump_mapping
//! ```

use ptmap_arch::presets;
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::{Program, ProgramBuilder};
use ptmap_mapper::{map_dfg, MapperConfig, Mapping};
use serde_json::Value;

/// The stable subset of a `Mapping` (fields that predate the validator
/// work) as a JSON object, so fingerprints compare across schema
/// additions.
fn fingerprint(case: &str, m: &Mapping) -> Value {
    Value::Object(vec![
        ("case".into(), Value::Str(case.into())),
        ("ii".into(), Value::UInt(m.ii as u64)),
        ("mii".into(), Value::UInt(m.mii as u64)),
        (
            "schedule_length".into(),
            Value::UInt(m.schedule_length as u64),
        ),
        ("route_slots".into(), Value::UInt(m.route_slots as u64)),
        ("pes_used".into(), Value::UInt(m.pes_used as u64)),
        (
            "placements".into(),
            serde_json::to_value(&m.placements).unwrap(),
        ),
        ("routes".into(), serde_json::to_value(&m.routes).unwrap()),
    ])
}

fn gemm(n: u64) -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[n, n]);
    let bb = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let i = b.open_loop("i", n);
    let j = b.open_loop("j", n);
    let k = b.open_loop("k", n);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bb, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.finish()
}

fn fanout() -> Program {
    let mut b = ProgramBuilder::new("fanout");
    let x = b.array("X", &[256]);
    let outs: Vec<_> = (0..4).map(|k| b.array(format!("O{k}"), &[256])).collect();
    let i = b.open_loop("i", 256);
    for (k, &o) in outs.iter().enumerate() {
        let v = b.add(b.load(x, &[b.idx(i)]), b.constant(k as i64 + 1));
        b.store(o, &[b.idx(i)], v);
    }
    b.close_loop();
    b.finish()
}

fn main() {
    let cases: Vec<(&str, Program, Vec<usize>, ptmap_arch::CgraArch)> = vec![
        ("gemm24@S4", gemm(24), vec![], presets::s4()),
        ("gemm24-u2x2@S4", gemm(24), vec![0, 1], presets::s4()),
        ("gemm24-u2x2@SL8", gemm(24), vec![0, 1], presets::sl8()),
        ("fanout-u2@S4", fanout(), vec![0], presets::s4()),
    ];
    for (name, p, unroll_loops, arch) in cases {
        let nest = p.perfect_nests().remove(0);
        let unroll: Vec<_> = unroll_loops.iter().map(|&l| (nest.loops[l], 2)).collect();
        let dfg = build_dfg(&p, &nest, &unroll).unwrap();
        match map_dfg(&dfg, &arch, &MapperConfig::default()) {
            Ok(m) => {
                println!("{}", serde_json::to_string(&fingerprint(name, &m)).unwrap());
            }
            Err(e) => println!("{{\"case\": \"{name}\", \"error\": \"{e}\"}}"),
        }
    }
}
