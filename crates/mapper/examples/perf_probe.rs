use ptmap_arch::presets;
use ptmap_ir::{dfg::build_dfg, ProgramBuilder};
use ptmap_mapper::{map_dfg, MapperConfig};
use std::time::Instant;

fn main() {
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[24, 24]);
    let bb = b.array("B", &[24, 24]);
    let c = b.array("C", &[24, 24]);
    let i = b.open_loop("i", 24);
    let j = b.open_loop("j", 24);
    let k = b.open_loop("k", 24);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bb, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    let p = b.finish();
    let nest = p.perfect_nests().remove(0);
    for f in [1u32, 2, 4, 8] {
        let dfg = build_dfg(&p, &nest, &[(nest.loops[0], f), (nest.loops[1], f.min(4))]).unwrap();
        let t0 = Instant::now();
        let r = map_dfg(&dfg, &presets::sl8(), &MapperConfig::default());
        match r {
            Ok(m) => println!(
                "unroll {}x{}: nodes={} ii={} mii={} util={:.3} t={:?}",
                f,
                f.min(4),
                dfg.len(),
                m.ii,
                m.mii,
                m.utilization(),
                t0.elapsed()
            ),
            Err(e) => println!(
                "unroll {}x{}: nodes={} FAILED {e} t={:?}",
                f,
                f.min(4),
                dfg.len(),
                t0.elapsed()
            ),
        }
    }
}
