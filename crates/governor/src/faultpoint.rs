//! Named fail-points for fault injection.
//!
//! Production code plants [`fail_point`] calls at the places the
//! robustness story cares about (the site inventory lives in
//! [`sites`]). A fail-point is inert — one relaxed atomic load — until
//! faults are configured, either:
//!
//! * from the environment: `PTMAP_FAULT=<site>:<mode>[:<arg>][@<scope>]`
//!   (comma-separated list), parsed once at first use; or
//! * programmatically in tests via [`install`], which also serializes
//!   concurrent test threads through a global lock and clears the
//!   configuration when the returned guard drops.
//!
//! Modes:
//!
//! * `panic` — panic at the site (exercises `catch_unwind` isolation);
//! * `error` — return a structured [`FaultError`] from the site;
//! * `delay[:<ms>]` — sleep `<ms>` milliseconds (default 100) and then
//!   succeed, simulating a wedged dependency so deadlines can be
//!   proven to fire;
//! * `refuse` — return a [`FaultError`] with [`FaultError::refused`]
//!   set, *without* any delay: the network-shaped failure of a peer
//!   whose port is closed (connection refused). The gateway maps it to
//!   a connect error, so retry/breaker paths are testable in-process
//!   without killing real daemons.
//!
//! The optional `@<scope>` suffix restricts a fault to call sites whose
//! thread-local scope (set by the batch scheduler to the job name via
//! [`with_scope`]) contains the given substring — this is how one job
//! of a batch is made to hang while its siblings run clean.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once, PoisonError, RwLock};
use std::time::Duration;

/// The inventory of fail-point sites compiled into the workspace.
pub mod sites {
    /// Disk read of a cache entry (`ptmap-pipeline`).
    pub const CACHE_READ: &str = "cache_read";
    /// Disk write of a cache entry (`ptmap-pipeline`).
    pub const CACHE_WRITE: &str = "cache_write";
    /// One placement attempt of the modulo scheduler (`ptmap-mapper`).
    pub const MAPPER_PLACE: &str = "mapper_place";
    /// Loading a GNN predictor checkpoint (`ptmap-pipeline`).
    pub const PREDICTOR_LOAD: &str = "predictor_load";
    /// Spawning a batch worker thread (`ptmap-pipeline`).
    pub const WORKER_SPAWN: &str = "worker_spawn";
    /// One gateway→peer request forward (`ptmap-serve`). Scoped to the
    /// peer address, so `refuse@127.0.0.1:PORT` kills one peer's
    /// forwarding path deterministically.
    pub const GATEWAY_FORWARD: &str = "gateway_forward";
    /// One gateway health probe of a peer (`ptmap-serve`). Scoped to
    /// the peer address, like [`GATEWAY_FORWARD`].
    pub const PEER_HEALTH: &str = "peer_health";
    /// Reading a versioned model snapshot from `--model-dir`
    /// (`ptmap-learn`). Scoped to the snapshot file name, so one
    /// version's load can be failed while the others restore clean.
    pub const MODEL_LOAD: &str = "model_load";
}

/// The structured error an `error`- or `refuse`-mode fault surfaces at
/// its site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site that fired.
    pub site: String,
    /// True for `refuse`-mode faults: the failure is network-shaped
    /// (connection refused) rather than an internal error. Callers
    /// forwarding over a network map this onto their connect-error
    /// variant.
    pub refused: bool,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.refused {
            write!(f, "injected connection refusal at {}", self.site)
        } else {
            write!(f, "injected fault at {}", self.site)
        }
    }
}

impl std::error::Error for FaultError {}

/// What a matched fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    Panic,
    Error,
    Delay(Duration),
    Refuse,
}

#[derive(Debug, Clone)]
struct FaultSpec {
    site: String,
    mode: FaultMode,
    /// Substring the thread's scope must contain ("" = any).
    filter: String,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static REGISTRY: RwLock<Vec<FaultSpec>> = RwLock::new(Vec::new());
static TEST_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    static SCOPE: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn parse_specs(text: &str) -> Result<Vec<FaultSpec>, String> {
    let mut out = Vec::new();
    for entry in text.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (body, filter) = match entry.rsplit_once('@') {
            Some((b, f)) => (b, f.to_string()),
            None => (entry, String::new()),
        };
        let mut parts = body.split(':');
        let site = parts.next().unwrap_or("").trim();
        let mode = parts.next().unwrap_or("").trim();
        let arg = parts.next().map(str::trim);
        if site.is_empty() {
            return Err(format!("fault spec {entry:?}: missing site"));
        }
        let mode = match mode {
            "panic" => FaultMode::Panic,
            "error" => FaultMode::Error,
            "delay" => {
                let ms: u64 = match arg {
                    None => 100,
                    Some(a) => a
                        .parse()
                        .map_err(|_| format!("fault spec {entry:?}: bad delay {a:?}"))?,
                };
                FaultMode::Delay(Duration::from_millis(ms))
            }
            "refuse" => FaultMode::Refuse,
            other => {
                return Err(format!(
                    "fault spec {entry:?}: unknown mode {other:?} \
                     (expected panic, error, delay, or refuse)"
                ))
            }
        };
        out.push(FaultSpec {
            site: site.to_string(),
            mode,
            filter,
        });
    }
    Ok(out)
}

fn set_registry(specs: Vec<FaultSpec>) {
    let enabled = !specs.is_empty();
    *REGISTRY.write().unwrap_or_else(PoisonError::into_inner) = specs;
    ENABLED.store(enabled, Ordering::Release);
}

fn init_from_env() {
    if let Ok(text) = std::env::var("PTMAP_FAULT") {
        match parse_specs(&text) {
            Ok(specs) => set_registry(specs),
            Err(e) => eprintln!("warning: ignoring PTMAP_FAULT: {e}"),
        }
    }
}

/// Runs `f` with the thread's fault scope set to `scope` (restored on
/// exit, including on panic). The batch scheduler scopes each job to
/// its name so `@<scope>` filters can target individual jobs.
pub fn with_scope<T>(scope: &str, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            SCOPE.with(|s| *s.borrow_mut() = prev);
        }
    }
    let prev = SCOPE.with(|s| s.borrow_mut().replace(scope.to_string()));
    let _restore = Restore(prev);
    f()
}

/// The calling thread's current fault scope, if one is set.
///
/// Scopes are thread-local, so worker threads spawned *inside* a
/// scoped region (the mapper's speculative II rungs, for example)
/// start scopeless and would silently escape an `@<scope>`-filtered
/// fault. Such workers capture the spawning thread's scope with this
/// getter and re-enter it via [`with_scope`].
pub fn current_scope() -> Option<String> {
    SCOPE.with(|s| s.borrow().clone())
}

/// The fail-point hook. Inert (one atomic load) unless faults are
/// configured; otherwise the first spec matching `site` and the
/// thread's scope fires its mode.
///
/// # Errors
///
/// Returns [`FaultError`] when an `error`-mode fault matches.
///
/// # Panics
///
/// Panics when a `panic`-mode fault matches (by design).
#[inline]
pub fn fail_point(site: &str) -> Result<(), FaultError> {
    ENV_INIT.call_once(init_from_env);
    if !ENABLED.load(Ordering::Acquire) {
        return Ok(());
    }
    fire(site)
}

/// The armed slow path of [`fail_point`], kept out of line so the
/// disarmed fast path stays a single inlinable atomic load.
#[cold]
fn fire(site: &str) -> Result<(), FaultError> {
    let mode = {
        let registry = REGISTRY.read().unwrap_or_else(PoisonError::into_inner);
        let matched = registry.iter().find(|spec| {
            spec.site == site
                && (spec.filter.is_empty()
                    || SCOPE.with(|s| {
                        s.borrow()
                            .as_deref()
                            .is_some_and(|scope| scope.contains(&spec.filter))
                    }))
        });
        match matched {
            Some(spec) => spec.mode,
            None => return Ok(()),
        }
    };
    match mode {
        FaultMode::Panic => panic!("injected panic at fault point {site}"),
        FaultMode::Error => Err(FaultError {
            site: site.to_string(),
            refused: false,
        }),
        FaultMode::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FaultMode::Refuse => Err(FaultError {
            site: site.to_string(),
            refused: true,
        }),
    }
}

/// Guard for programmatic fault configuration in tests. Holds a global
/// lock (so concurrent tests cannot interleave fault configurations)
/// and clears the configuration when dropped.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        set_registry(Vec::new());
    }
}

/// Installs a fault configuration (same grammar as `PTMAP_FAULT`) for
/// the lifetime of the returned guard.
///
/// # Errors
///
/// Returns a description of the first malformed spec.
pub fn install(spec: &str) -> Result<FaultGuard, String> {
    ENV_INIT.call_once(init_from_env);
    let lock = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    set_registry(parse_specs(spec)?);
    Ok(FaultGuard { _lock: lock })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_configuration() {
        let _guard = install("").unwrap();
        assert_eq!(fail_point("anything"), Ok(()));
    }

    #[test]
    fn error_mode_returns_structured_error() {
        let _guard = install("cache_read:error").unwrap();
        let err = fail_point(sites::CACHE_READ).unwrap_err();
        assert_eq!(err.site, "cache_read");
        assert_eq!(err.to_string(), "injected fault at cache_read");
        assert_eq!(fail_point(sites::CACHE_WRITE), Ok(()));
    }

    #[test]
    fn panic_mode_panics() {
        let _guard = install("mapper_place:panic").unwrap();
        let r = std::panic::catch_unwind(|| fail_point(sites::MAPPER_PLACE));
        assert!(r.is_err());
    }

    #[test]
    fn delay_mode_sleeps_then_succeeds() {
        let _guard = install("cache_write:delay:20").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(fail_point(sites::CACHE_WRITE), Ok(()));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn refuse_mode_is_instant_and_marked_refused() {
        let _guard = install("gateway_forward:refuse").unwrap();
        let t0 = std::time::Instant::now();
        let err = fail_point(sites::GATEWAY_FORWARD).unwrap_err();
        assert!(err.refused, "refuse mode must mark the error refused");
        assert!(err.to_string().contains("connection refusal"), "{err}");
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "refuse must not delay"
        );
        // error mode stays un-refused.
        drop(_guard);
        let _guard = install("peer_health:error").unwrap();
        assert!(!fail_point(sites::PEER_HEALTH).unwrap_err().refused);
    }

    #[test]
    fn refuse_scope_targets_one_peer_address() {
        let _guard = install("gateway_forward:refuse@127.0.0.1:7311").unwrap();
        assert!(
            with_scope("127.0.0.1:7311", || fail_point(sites::GATEWAY_FORWARD)).is_err(),
            "the targeted peer is refused"
        );
        assert_eq!(
            with_scope("127.0.0.1:7312", || fail_point(sites::GATEWAY_FORWARD)),
            Ok(()),
            "other peers are untouched"
        );
    }

    #[test]
    fn scope_filter_targets_one_job() {
        let _guard = install("mapper_place:error@jobB").unwrap();
        assert_eq!(
            with_scope("jobA@S4", || fail_point(sites::MAPPER_PLACE)),
            Ok(())
        );
        assert!(with_scope("jobB@S4", || fail_point(sites::MAPPER_PLACE)).is_err());
        // No scope set: filtered faults do not fire.
        assert_eq!(fail_point(sites::MAPPER_PLACE), Ok(()));
    }

    #[test]
    fn scope_restored_after_panic() {
        let _guard = install("").unwrap();
        let caught = std::panic::catch_unwind(|| with_scope("x", || panic!("boom")));
        assert!(caught.is_err());
        SCOPE.with(|s| assert!(s.borrow().is_none()));
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(parse_specs("mapper_place:explode").is_err());
        assert!(parse_specs(":error").is_err());
        assert!(parse_specs("cache_read:delay:abc").is_err());
        let specs = parse_specs("a:error, b:delay:5@job, ,c:panic").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[1].filter, "job");
    }
}
