//! The compilation governor: cooperative budgets and fault injection.
//!
//! PT-Map's value proposition is *bounded* compilation cost, so every
//! long-running stage of the pipeline — exploration, evaluation, modulo
//! scheduling — checks a [`Budget`] cooperatively and exits with a
//! structured `Timeout`/`Cancelled` error instead of hanging. The crate
//! sits below every other `ptmap-*` crate (it is std-only and has no
//! dependencies) so that the mapper, the transformer, and the evaluator
//! can all share one budget type; `ptmap-core` re-exports it as its
//! public face.
//!
//! Two modules:
//!
//! * [`budget`] — a cheap, clonable deadline + cancel-flag + work-unit
//!   budget. An unlimited budget is a `None` inside and costs nothing
//!   to check, which keeps the mapper hot path unaffected when no
//!   deadline is configured.
//! * [`faultpoint`] — named fail-points (`PTMAP_FAULT=<site>:<mode>`)
//!   compiled into the cache, mapper, predictor-load, and worker-spawn
//!   paths, with `panic`/`error`/`delay` modes, so the robustness story
//!   is provable rather than asserted.

pub mod budget;
pub mod faultpoint;

pub use budget::{Budget, BudgetExceeded, CancelOnDrop};
pub use faultpoint::{fail_point, FaultError};
