//! Cooperative compilation budgets.
//!
//! A [`Budget`] bounds one unit of work — a whole batch, one job, or
//! one mapping attempt — by any combination of a wall-clock deadline,
//! an external cancel flag, and a work-unit counter. Budgets are
//! checked *cooperatively*: long-running loops call [`Budget::check`]
//! (or [`Budget::charge`]) at natural attempt boundaries — per
//! placement attempt in the mapper, per variant branch in exploration,
//! per candidate in evaluation — never inside per-node BFS steps, so a
//! configured-but-untriggered budget costs one atomic load per check.
//!
//! The unlimited budget ([`Budget::unlimited`], also `Default`) holds
//! no allocation at all and checks are a branch on `None`; threading a
//! budget through an API therefore costs nothing for callers that do
//! not use it.
//!
//! Cancellation propagates through [`Budget::child`]: a child budget
//! shares its parent's cancel flag (cancelling the batch cancels every
//! job) while tightening the deadline to the minimum of the parent's
//! and its own.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Timeout,
    /// The budget (or an ancestor) was cancelled.
    Cancelled,
    /// The work-unit counter ran out.
    WorkExhausted,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Timeout => write!(f, "compilation deadline exceeded"),
            BudgetExceeded::Cancelled => write!(f, "compilation cancelled"),
            BudgetExceeded::WorkExhausted => write!(f, "compilation work budget exhausted"),
        }
    }
}

impl BudgetExceeded {
    /// The short machine-readable class, matching the vocabulary the
    /// pipeline uses for `error_class` (`timeout`, `cancelled`, ...).
    pub fn class(&self) -> &'static str {
        match self {
            BudgetExceeded::Timeout => "timeout",
            BudgetExceeded::Cancelled => "cancelled",
            BudgetExceeded::WorkExhausted => "work-exhausted",
        }
    }
}

impl std::error::Error for BudgetExceeded {}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    /// Cancel flags of enclosing scopes ([`Budget::scoped_child`]):
    /// observed by [`Budget::check`], never raised by
    /// [`Budget::cancel`].
    ancestors: Vec<Arc<AtomicBool>>,
    /// `u64::MAX` = no work limit.
    work_limit: u64,
    work_done: AtomicU64,
}

/// A cheap, clonable compilation budget (deadline + cancel flag +
/// optional work-unit counter). Clones share all state: cancelling any
/// clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

impl Budget {
    /// The unlimited budget: never expires, cannot be cancelled, and
    /// checks at zero cost.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// A budget with only a cancel flag (no deadline, no work limit).
    pub fn cancellable() -> Budget {
        Budget::build(None, None)
    }

    /// A budget expiring `after` from now.
    pub fn with_deadline(after: Duration) -> Budget {
        Budget::build(Some(Instant::now() + after), None)
    }

    /// A budget expiring at an absolute instant.
    pub fn with_deadline_at(at: Instant) -> Budget {
        Budget::build(Some(at), None)
    }

    /// A budget allowing `limit` work units (see [`Budget::charge`]).
    pub fn with_work_limit(limit: u64) -> Budget {
        Budget::build(None, Some(limit))
    }

    fn build(deadline: Option<Instant>, work_limit: Option<u64>) -> Budget {
        Budget {
            inner: Some(Arc::new(Inner {
                deadline,
                cancelled: Arc::new(AtomicBool::new(false)),
                ancestors: Vec::new(),
                work_limit: work_limit.unwrap_or(u64::MAX),
                work_done: AtomicU64::new(0),
            })),
        }
    }

    /// Derives a child budget that shares this budget's cancel flag and
    /// tightens the deadline to `min(parent deadline, now + timeout)`.
    /// The child gets a fresh work counter. A `None` timeout on an
    /// unlimited parent stays unlimited.
    pub fn child(&self, timeout: Option<Duration>) -> Budget {
        let parent_deadline = self.deadline();
        let own_deadline = timeout.map(|t| Instant::now() + t);
        let deadline = match (parent_deadline, own_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match &self.inner {
            None if deadline.is_none() => Budget::unlimited(),
            None => Budget::build(deadline, None),
            Some(inner) => Budget {
                inner: Some(Arc::new(Inner {
                    deadline,
                    cancelled: Arc::clone(&inner.cancelled),
                    ancestors: inner.ancestors.clone(),
                    work_limit: u64::MAX,
                    work_done: AtomicU64::new(0),
                })),
            },
        }
    }

    /// Derives a child budget with its *own* cancel scope: cancelling
    /// the scoped child does **not** cancel the parent (unlike
    /// [`Budget::child`], whose cancel flag is shared both ways), but
    /// cancelling the parent — or any enclosing scope — still cancels
    /// the child. The deadline tightens to
    /// `min(parent deadline, now + timeout)` exactly as for `child`.
    ///
    /// This is the building block for per-request budgets in a
    /// long-running service: each request gets a scope it can cancel on
    /// client disconnect without tearing down the server-wide budget,
    /// while a server shutdown still propagates into every request.
    pub fn scoped_child(&self, timeout: Option<Duration>) -> Budget {
        let parent_deadline = self.deadline();
        let own_deadline = timeout.map(|t| Instant::now() + t);
        let deadline = match (parent_deadline, own_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let ancestors = match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let mut a = inner.ancestors.clone();
                a.push(Arc::clone(&inner.cancelled));
                a
            }
        };
        Budget {
            inner: Some(Arc::new(Inner {
                deadline,
                cancelled: Arc::new(AtomicBool::new(false)),
                ancestors,
                work_limit: u64::MAX,
                work_done: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this is the zero-cost unlimited budget.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Whether a finite work-unit limit is in force
    /// ([`Budget::with_work_limit`]). Children never inherit the work
    /// counter, so callers that would otherwise split work across
    /// [`Budget::scoped_child`] siblings use this to keep metered
    /// budgets on the single-threaded path where every
    /// [`Budget::charge`] lands on this counter.
    pub fn has_work_limit(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.work_limit != u64::MAX)
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Time left before the deadline (`None` when no deadline is set;
    /// zero when already past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Raises the cancel flag (shared with every clone and child). A
    /// no-op on the unlimited budget.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether the cancel flag is raised (on this budget or any
    /// enclosing scope).
    pub fn is_cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| {
            i.cancelled.load(Ordering::Acquire)
                || i.ancestors.iter().any(|a| a.load(Ordering::Acquire))
        })
    }

    /// Checks the budget: cancel flag first, then deadline, then the
    /// work counter. `Instant::now()` is only consulted when a deadline
    /// is actually set, keeping deadline-free budgets at one atomic
    /// load per check.
    #[inline]
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Acquire)
            || inner.ancestors.iter().any(|a| a.load(Ordering::Acquire))
        {
            return Err(BudgetExceeded::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::Timeout);
            }
        }
        if inner.work_done.load(Ordering::Relaxed) >= inner.work_limit {
            return Err(BudgetExceeded::WorkExhausted);
        }
        Ok(())
    }

    /// Charges `units` of work, then checks the budget.
    #[inline]
    pub fn charge(&self, units: u64) -> Result<(), BudgetExceeded> {
        if let Some(inner) = &self.inner {
            if inner.work_limit != u64::MAX {
                inner.work_done.fetch_add(units, Ordering::Relaxed);
            }
        }
        self.check()
    }
}

/// Cancels a budget when dropped, unless [`CancelOnDrop::disarm`]ed.
///
/// The disconnect-driven cancellation hook for request-scoped budgets:
/// a connection handler creates the guard next to the work it admits
/// and disarms it once the response is on the wire. If the handler
/// unwinds, returns early, or a disconnect watcher drops the guard, the
/// budget — typically a [`Budget::scoped_child`] of the server-wide one
/// — is cancelled and the compile backing the request stops at its next
/// cooperative check instead of pinning a worker.
#[derive(Debug)]
pub struct CancelOnDrop {
    budget: Budget,
    armed: bool,
}

impl CancelOnDrop {
    /// Arms a guard over (a clone of) `budget`.
    pub fn new(budget: &Budget) -> CancelOnDrop {
        CancelOnDrop {
            budget: budget.clone(),
            armed: true,
        }
    }

    /// Defuses the guard: the budget survives the drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CancelOnDrop {
    fn drop(&mut self) {
        if self.armed {
            self.budget.cancel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_ok() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(), Ok(()));
        assert_eq!(b.charge(1 << 40), Ok(()));
        b.cancel(); // no-op
        assert!(!b.is_cancelled());
        assert!(b.remaining().is_none());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = Budget::cancellable();
        let c = b.clone();
        assert_eq!(c.check(), Ok(()));
        b.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn deadline_expires() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.check(), Err(BudgetExceeded::Timeout));
        let far = Budget::with_deadline(Duration::from_secs(3600));
        assert_eq!(far.check(), Ok(()));
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn work_limit_exhausts() {
        let b = Budget::with_work_limit(3);
        assert_eq!(b.charge(1), Ok(()));
        assert_eq!(b.charge(1), Ok(()));
        assert_eq!(b.charge(1), Err(BudgetExceeded::WorkExhausted));
        assert_eq!(b.check(), Err(BudgetExceeded::WorkExhausted));
    }

    #[test]
    fn child_shares_cancel_and_tightens_deadline() {
        let parent = Budget::with_deadline(Duration::from_secs(3600));
        let child = parent.child(Some(Duration::from_secs(7200)));
        // Child deadline is capped by the parent's.
        assert!(child.deadline().unwrap() <= parent.deadline().unwrap());
        parent.cancel();
        assert_eq!(child.check(), Err(BudgetExceeded::Cancelled));

        let tighter =
            Budget::with_deadline(Duration::from_secs(3600)).child(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(tighter.check(), Err(BudgetExceeded::Timeout));
    }

    #[test]
    fn child_of_unlimited() {
        assert!(Budget::unlimited().child(None).is_unlimited());
        let timed = Budget::unlimited().child(Some(Duration::from_secs(60)));
        assert!(!timed.is_unlimited());
        assert!(timed.deadline().is_some());
    }

    #[test]
    fn exceeded_displays() {
        assert_eq!(
            BudgetExceeded::Timeout.to_string(),
            "compilation deadline exceeded"
        );
        assert_eq!(
            BudgetExceeded::Cancelled.to_string(),
            "compilation cancelled"
        );
        assert_eq!(
            BudgetExceeded::WorkExhausted.to_string(),
            "compilation work budget exhausted"
        );
    }

    #[test]
    fn scoped_child_cancel_does_not_propagate_up() {
        let root = Budget::cancellable();
        let request = root.scoped_child(None);
        request.cancel();
        assert_eq!(request.check(), Err(BudgetExceeded::Cancelled));
        assert_eq!(root.check(), Ok(()), "request cancel must stay scoped");
        assert!(!root.is_cancelled());
    }

    #[test]
    fn scoped_child_observes_ancestor_cancel() {
        let root = Budget::cancellable();
        let request = root.scoped_child(Some(Duration::from_secs(3600)));
        let attempt = request.child(None); // plain child of the scope
        assert_eq!(attempt.check(), Ok(()));
        root.cancel();
        assert!(request.is_cancelled());
        assert_eq!(request.check(), Err(BudgetExceeded::Cancelled));
        assert_eq!(
            attempt.check(),
            Err(BudgetExceeded::Cancelled),
            "ancestor flags survive through plain children of a scope"
        );
    }

    #[test]
    fn scoped_child_tightens_deadline() {
        let parent = Budget::with_deadline(Duration::from_secs(3600));
        let child = parent.scoped_child(Some(Duration::from_secs(7200)));
        assert!(child.deadline().unwrap() <= parent.deadline().unwrap());
        let tight = parent.scoped_child(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(tight.check(), Err(BudgetExceeded::Timeout));
        // Unlimited parent: the scope still gets its own deadline.
        let timed = Budget::unlimited().scoped_child(Some(Duration::from_secs(60)));
        assert!(timed.deadline().is_some());
        assert_eq!(timed.check(), Ok(()));
    }

    #[test]
    fn nested_scopes_cancel_downward_only() {
        let a = Budget::cancellable();
        let b = a.scoped_child(None);
        let c = b.scoped_child(None);
        b.cancel();
        assert_eq!(a.check(), Ok(()));
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
        assert_eq!(c.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn work_limit_visibility() {
        assert!(!Budget::unlimited().has_work_limit());
        assert!(!Budget::cancellable().has_work_limit());
        assert!(Budget::with_work_limit(3).has_work_limit());
        // Children get fresh (unlimited) counters, and report so.
        assert!(!Budget::with_work_limit(3).child(None).has_work_limit());
        assert!(!Budget::with_work_limit(3)
            .scoped_child(None)
            .has_work_limit());
    }

    #[test]
    fn cancel_on_drop_fires_unless_disarmed() {
        let b = Budget::cancellable();
        {
            let _guard = CancelOnDrop::new(&b);
        }
        assert!(b.is_cancelled(), "dropped guard must cancel");

        let ok = Budget::cancellable();
        let guard = CancelOnDrop::new(&ok);
        guard.disarm();
        assert!(!ok.is_cancelled(), "disarmed guard must not cancel");
    }

    #[test]
    fn cancel_beats_timeout_in_reporting() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        b.cancel();
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
    }
}
