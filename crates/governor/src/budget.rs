//! Cooperative compilation budgets.
//!
//! A [`Budget`] bounds one unit of work — a whole batch, one job, or
//! one mapping attempt — by any combination of a wall-clock deadline,
//! an external cancel flag, and a work-unit counter. Budgets are
//! checked *cooperatively*: long-running loops call [`Budget::check`]
//! (or [`Budget::charge`]) at natural attempt boundaries — per
//! placement attempt in the mapper, per variant branch in exploration,
//! per candidate in evaluation — never inside per-node BFS steps, so a
//! configured-but-untriggered budget costs one atomic load per check.
//!
//! The unlimited budget ([`Budget::unlimited`], also `Default`) holds
//! no allocation at all and checks are a branch on `None`; threading a
//! budget through an API therefore costs nothing for callers that do
//! not use it.
//!
//! Cancellation propagates through [`Budget::child`]: a child budget
//! shares its parent's cancel flag (cancelling the batch cancels every
//! job) while tightening the deadline to the minimum of the parent's
//! and its own.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budget check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Timeout,
    /// The budget (or an ancestor) was cancelled.
    Cancelled,
    /// The work-unit counter ran out.
    WorkExhausted,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Timeout => write!(f, "compilation deadline exceeded"),
            BudgetExceeded::Cancelled => write!(f, "compilation cancelled"),
            BudgetExceeded::WorkExhausted => write!(f, "compilation work budget exhausted"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    /// `u64::MAX` = no work limit.
    work_limit: u64,
    work_done: AtomicU64,
}

/// A cheap, clonable compilation budget (deadline + cancel flag +
/// optional work-unit counter). Clones share all state: cancelling any
/// clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    inner: Option<Arc<Inner>>,
}

impl Budget {
    /// The unlimited budget: never expires, cannot be cancelled, and
    /// checks at zero cost.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// A budget with only a cancel flag (no deadline, no work limit).
    pub fn cancellable() -> Budget {
        Budget::build(None, None)
    }

    /// A budget expiring `after` from now.
    pub fn with_deadline(after: Duration) -> Budget {
        Budget::build(Some(Instant::now() + after), None)
    }

    /// A budget expiring at an absolute instant.
    pub fn with_deadline_at(at: Instant) -> Budget {
        Budget::build(Some(at), None)
    }

    /// A budget allowing `limit` work units (see [`Budget::charge`]).
    pub fn with_work_limit(limit: u64) -> Budget {
        Budget::build(None, Some(limit))
    }

    fn build(deadline: Option<Instant>, work_limit: Option<u64>) -> Budget {
        Budget {
            inner: Some(Arc::new(Inner {
                deadline,
                cancelled: Arc::new(AtomicBool::new(false)),
                work_limit: work_limit.unwrap_or(u64::MAX),
                work_done: AtomicU64::new(0),
            })),
        }
    }

    /// Derives a child budget that shares this budget's cancel flag and
    /// tightens the deadline to `min(parent deadline, now + timeout)`.
    /// The child gets a fresh work counter. A `None` timeout on an
    /// unlimited parent stays unlimited.
    pub fn child(&self, timeout: Option<Duration>) -> Budget {
        let parent_deadline = self.deadline();
        let own_deadline = timeout.map(|t| Instant::now() + t);
        let deadline = match (parent_deadline, own_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match &self.inner {
            None if deadline.is_none() => Budget::unlimited(),
            None => Budget::build(deadline, None),
            Some(inner) => Budget {
                inner: Some(Arc::new(Inner {
                    deadline,
                    cancelled: Arc::clone(&inner.cancelled),
                    work_limit: u64::MAX,
                    work_done: AtomicU64::new(0),
                })),
            },
        }
    }

    /// Whether this is the zero-cost unlimited budget.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// Time left before the deadline (`None` when no deadline is set;
    /// zero when already past it).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Raises the cancel flag (shared with every clone and child). A
    /// no-op on the unlimited budget.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether the cancel flag is raised.
    pub fn is_cancelled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.cancelled.load(Ordering::Acquire))
    }

    /// Checks the budget: cancel flag first, then deadline, then the
    /// work counter. `Instant::now()` is only consulted when a deadline
    /// is actually set, keeping deadline-free budgets at one atomic
    /// load per check.
    #[inline]
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(BudgetExceeded::Cancelled);
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded::Timeout);
            }
        }
        if inner.work_done.load(Ordering::Relaxed) >= inner.work_limit {
            return Err(BudgetExceeded::WorkExhausted);
        }
        Ok(())
    }

    /// Charges `units` of work, then checks the budget.
    #[inline]
    pub fn charge(&self, units: u64) -> Result<(), BudgetExceeded> {
        if let Some(inner) = &self.inner {
            if inner.work_limit != u64::MAX {
                inner.work_done.fetch_add(units, Ordering::Relaxed);
            }
        }
        self.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_ok() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(), Ok(()));
        assert_eq!(b.charge(1 << 40), Ok(()));
        b.cancel(); // no-op
        assert!(!b.is_cancelled());
        assert!(b.remaining().is_none());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = Budget::cancellable();
        let c = b.clone();
        assert_eq!(c.check(), Ok(()));
        b.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn deadline_expires() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.check(), Err(BudgetExceeded::Timeout));
        let far = Budget::with_deadline(Duration::from_secs(3600));
        assert_eq!(far.check(), Ok(()));
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn work_limit_exhausts() {
        let b = Budget::with_work_limit(3);
        assert_eq!(b.charge(1), Ok(()));
        assert_eq!(b.charge(1), Ok(()));
        assert_eq!(b.charge(1), Err(BudgetExceeded::WorkExhausted));
        assert_eq!(b.check(), Err(BudgetExceeded::WorkExhausted));
    }

    #[test]
    fn child_shares_cancel_and_tightens_deadline() {
        let parent = Budget::with_deadline(Duration::from_secs(3600));
        let child = parent.child(Some(Duration::from_secs(7200)));
        // Child deadline is capped by the parent's.
        assert!(child.deadline().unwrap() <= parent.deadline().unwrap());
        parent.cancel();
        assert_eq!(child.check(), Err(BudgetExceeded::Cancelled));

        let tighter =
            Budget::with_deadline(Duration::from_secs(3600)).child(Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(tighter.check(), Err(BudgetExceeded::Timeout));
    }

    #[test]
    fn child_of_unlimited() {
        assert!(Budget::unlimited().child(None).is_unlimited());
        let timed = Budget::unlimited().child(Some(Duration::from_secs(60)));
        assert!(!timed.is_unlimited());
        assert!(timed.deadline().is_some());
    }

    #[test]
    fn exceeded_displays() {
        assert_eq!(
            BudgetExceeded::Timeout.to_string(),
            "compilation deadline exceeded"
        );
        assert_eq!(
            BudgetExceeded::Cancelled.to_string(),
            "compilation cancelled"
        );
        assert_eq!(
            BudgetExceeded::WorkExhausted.to_string(),
            "compilation work budget exhausted"
        );
    }

    #[test]
    fn cancel_beats_timeout_in_reporting() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        b.cancel();
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
    }
}
