use ptmap_arch::presets;
use ptmap_gnn::dataset::{generate_dataset, DatasetConfig};
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use ptmap_gnn::train::{mape_cycles, mape_cycles_mii, train, TrainConfig};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let data = generate_dataset(&DatasetConfig {
        samples: 3000,
        archs: presets::evaluation_suite(),
        seed: 21,
        ..DatasetConfig::default()
    });
    println!("dataset: {} samples in {:?}", data.len(), t0.elapsed());
    let split = data.len() * 4 / 5;
    let (tr, te) = data.split_at(split);
    println!("MII-model MAPE (test): {:.1}%", mape_cycles_mii(te));
    for variant in [GnnVariant::Full, GnnVariant::Basic] {
        let t1 = Instant::now();
        let mut model = PtMapGnn::new(ModelConfig {
            variant,
            ..ModelConfig::default()
        });
        train(
            &mut model,
            tr,
            &TrainConfig {
                epochs: 120,
                ..TrainConfig::default()
            },
        );
        println!(
            "{variant:?}: train {:.1}%, test {:.1}% ({:?})",
            mape_cycles(&model, tr),
            mape_cycles(&model, te),
            t1.elapsed()
        );
    }
}
