//! Quick probe: does the trained GNN beat the MII model on held-out data?
use ptmap_arch::presets;
use ptmap_gnn::dataset::{generate_dataset, DatasetConfig};
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use ptmap_gnn::train::{mape_cycles, mape_cycles_mii, train, TrainConfig};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let data = generate_dataset(&DatasetConfig {
        samples: 1200,
        archs: presets::evaluation_suite(),
        seed: 21,
        ..DatasetConfig::default()
    });
    println!("dataset: {} samples in {:?}", data.len(), t0.elapsed());
    let split = data.len() * 3 / 4;
    let (tr, te) = data.split_at(split);
    println!("MII-model MAPE (test): {:.1}%", mape_cycles_mii(te));
    for variant in [
        GnnVariant::Full,
        GnnVariant::Basic,
        GnnVariant::NoAlign,
        GnnVariant::Direct,
    ] {
        let t1 = Instant::now();
        let mut model = PtMapGnn::new(ModelConfig {
            variant,
            ..ModelConfig::default()
        });
        train(&mut model, tr, &TrainConfig::default());
        println!(
            "{variant:?}: train MAPE {:.1}%, test MAPE {:.1}% ({:?})",
            mape_cycles(&model, tr),
            mape_cycles(&model, te),
            t1.elapsed()
        );
    }
}
