use ptmap_arch::presets;
use ptmap_gnn::dataset::{generate_dataset, DatasetConfig};

fn main() {
    let data = generate_dataset(&DatasetConfig {
        samples: 600,
        archs: presets::evaluation_suite(),
        seed: 21,
        ..DatasetConfig::default()
    });
    let mut res_hist = std::collections::BTreeMap::new();
    let mut pe_hist = std::collections::BTreeMap::new();
    for s in &data {
        *res_hist.entry(s.ii - s.mii).or_insert(0) += 1;
        *pe_hist.entry(s.pro_epi / 5).or_insert(0) += 1;
    }
    println!("II residual histogram: {res_hist:?}");
    println!("ProEpi/5 histogram: {pe_hist:?}");
    let eq = data.iter().filter(|s| s.ii == s.mii).count();
    println!("II == MII: {}/{}", eq, data.len());
}
