//! Model persistence tests: the bench harness caches trained models as
//! JSON, so serialization must round-trip exactly.

use ptmap_arch::presets;
use ptmap_gnn::dataset::{generate_dataset, DatasetConfig};
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use ptmap_gnn::train::{train, TrainConfig};

#[test]
fn serde_round_trip_preserves_predictions() {
    let data = generate_dataset(&DatasetConfig {
        samples: 12,
        archs: vec![presets::s4()],
        seed: 33,
        ..DatasetConfig::default()
    });
    let mut model = PtMapGnn::new(ModelConfig {
        hidden: 8,
        ..ModelConfig::default()
    });
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    );

    let json = serde_json::to_string(&model).unwrap();
    let restored: PtMapGnn = serde_json::from_str(&json).unwrap();
    for s in &data {
        assert_eq!(model.predict(&s.input), restored.predict(&s.input));
    }
}

#[test]
fn byte_encoding_is_deterministic() {
    // The snapshot store checksums `to_bytes()` output, so the byte
    // encoding must be stable: encode -> decode -> encode produces the
    // identical byte string, and two encodes of the same value agree.
    let data = generate_dataset(&DatasetConfig {
        samples: 6,
        archs: vec![presets::s4()],
        seed: 34,
        ..DatasetConfig::default()
    });
    let mut model = PtMapGnn::new(ModelConfig {
        hidden: 8,
        ..ModelConfig::default()
    });
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    );

    let b1 = model.to_bytes();
    assert_eq!(b1, model.to_bytes(), "repeat encodes must agree");
    let restored = PtMapGnn::from_bytes(&b1).expect("decode");
    let b2 = restored.to_bytes();
    assert_eq!(b1, b2, "decode/encode must be byte-identical");
    for s in &data {
        assert_eq!(model.predict(&s.input), restored.predict(&s.input));
    }
}

#[test]
fn from_bytes_rejects_garbage() {
    assert!(PtMapGnn::from_bytes(b"not a model").is_err());
    assert!(PtMapGnn::from_bytes(&[0xff, 0xfe, 0x00]).is_err());
    assert!(PtMapGnn::from_bytes(b"{\"config\":{}}").is_err());
}

#[test]
fn all_variants_serialize() {
    for variant in [
        GnnVariant::Full,
        GnnVariant::Basic,
        GnnVariant::NoAlign,
        GnnVariant::Direct,
    ] {
        let model = PtMapGnn::new(ModelConfig {
            hidden: 8,
            variant,
            ..ModelConfig::default()
        });
        let json = serde_json::to_string(&model).unwrap();
        let restored: PtMapGnn = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.config.variant, variant);
        assert_eq!(restored.param_count(), model.param_count());
    }
}
