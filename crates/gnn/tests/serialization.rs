//! Model persistence tests: the bench harness caches trained models as
//! JSON, so serialization must round-trip exactly.

use ptmap_arch::presets;
use ptmap_gnn::dataset::{generate_dataset, DatasetConfig};
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use ptmap_gnn::train::{train, TrainConfig};

#[test]
fn serde_round_trip_preserves_predictions() {
    let data = generate_dataset(&DatasetConfig {
        samples: 12,
        archs: vec![presets::s4()],
        seed: 33,
        ..DatasetConfig::default()
    });
    let mut model = PtMapGnn::new(ModelConfig {
        hidden: 8,
        ..ModelConfig::default()
    });
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    );

    let json = serde_json::to_string(&model).unwrap();
    let restored: PtMapGnn = serde_json::from_str(&json).unwrap();
    for s in &data {
        assert_eq!(model.predict(&s.input), restored.predict(&s.input));
    }
}

#[test]
fn all_variants_serialize() {
    for variant in [
        GnnVariant::Full,
        GnnVariant::Basic,
        GnnVariant::NoAlign,
        GnnVariant::Direct,
    ] {
        let model = PtMapGnn::new(ModelConfig {
            hidden: 8,
            variant,
            ..ModelConfig::default()
        });
        let json = serde_json::to_string(&model).unwrap();
        let restored: PtMapGnn = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.config.variant, variant);
        assert_eq!(restored.param_count(), model.param_count());
    }
}
