//! A minimal dense `f32` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Xavier-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying mutable row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul inner dims");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.data[k * rhs.cols + j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
