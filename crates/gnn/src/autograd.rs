//! Tape-based reverse-mode automatic differentiation over matrices.
//!
//! A [`Graph`] records operations as they execute; [`Graph::backward`]
//! replays the tape in reverse, accumulating gradients. Parameters live
//! outside the graph (see [`crate::train::Param`]): each training step
//! feeds them in as inputs and reads their gradients back out.

use crate::tensor::Matrix;

/// Handle to a value in the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Input,
    MatMul(Var, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    Mul(Var, Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    MeanRows(Var),
    ConcatCols(Var, Var),
    KronRows(Var, Var),
    BroadcastSum(Var, Var),
    MaskedSoftmaxRows(Var, Var),
    Scale(Var, f32),
    Mse(Var, Var),
    CeLogits2(Var, usize),
}

/// The autograd tape.
#[derive(Debug, Default)]
pub struct Graph {
    vals: Vec<Matrix>,
    ops: Vec<Op>,
}

impl Graph {
    /// A fresh empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, m: Matrix, op: Op) -> Var {
        self.vals.push(m);
        self.ops.push(op);
        Var(self.vals.len() - 1)
    }

    /// The current value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.vals[v.0]
    }

    /// Registers an input (leaf) value.
    pub fn input(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Input)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let m = self.vals[a.0].matmul(&self.vals[b.0]);
        self.push(m, Op::MatMul(a, b))
    }

    /// Element-wise sum of same-shape matrices.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut m = self.vals[a.0].clone();
        m.add_assign(&self.vals[b.0]);
        self.push(m, Op::Add(a, b))
    }

    /// Adds a `[1, d]` bias row to every row of `[n, d]`.
    pub fn add_row(&mut self, a: Var, bias: Var) -> Var {
        let x = &self.vals[a.0];
        let r = &self.vals[bias.0];
        assert_eq!(x.cols(), r.cols());
        let mut m = x.clone();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                m.set(i, j, m.get(i, j) + r.get(0, j));
            }
        }
        self.push(m, Op::AddRow(a, bias))
    }

    /// Element-wise (Hadamard) product of same-shape matrices.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let x = &self.vals[a.0];
        let y = &self.vals[b.0];
        assert_eq!((x.rows(), x.cols()), (y.rows(), y.cols()));
        let data = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(p, q)| p * q)
            .collect();
        let m = Matrix::from_vec(x.rows(), x.cols(), data);
        self.push(m, Op::Mul(a, b))
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let m = self.vals[a.0].map(|x| x.max(0.0));
        self.push(m, Op::Relu(a))
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let m = self.vals[a.0].map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(m, Op::LeakyRelu(a, alpha))
    }

    /// Mean over rows: `[n, d] -> [1, d]` (the average pooling operator).
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let x = &self.vals[a.0];
        let n = x.rows().max(1);
        let mut m = Matrix::zeros(1, x.cols());
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                m.set(0, j, m.get(0, j) + x.get(i, j) / n as f32);
            }
        }
        self.push(m, Op::MeanRows(a))
    }

    /// Concatenates two row vectors.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let x = &self.vals[a.0];
        let y = &self.vals[b.0];
        assert_eq!(x.rows(), 1);
        assert_eq!(y.rows(), 1);
        let mut data = x.as_slice().to_vec();
        data.extend_from_slice(y.as_slice());
        let m = Matrix::row(data);
        self.push(m, Op::ConcatCols(a, b))
    }

    /// Kronecker product of two row vectors: `[1,m] ⊗ [1,n] -> [1,mn]`
    /// (the SW×HW feature-alignment operator).
    pub fn kron_rows(&mut self, a: Var, b: Var) -> Var {
        let x = &self.vals[a.0];
        let y = &self.vals[b.0];
        assert_eq!(x.rows(), 1);
        assert_eq!(y.rows(), 1);
        let mut data = Vec::with_capacity(x.cols() * y.cols());
        for i in 0..x.cols() {
            for j in 0..y.cols() {
                data.push(x.get(0, i) * y.get(0, j));
            }
        }
        let m = Matrix::row(data);
        self.push(m, Op::KronRows(a, b))
    }

    /// `S_ij = a_i + b_j` from two `[n,1]` columns (attention scores).
    pub fn broadcast_sum(&mut self, a: Var, b: Var) -> Var {
        let x = &self.vals[a.0];
        let y = &self.vals[b.0];
        assert_eq!(x.cols(), 1);
        assert_eq!(y.cols(), 1);
        assert_eq!(x.rows(), y.rows());
        let n = x.rows();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, x.get(i, 0) + y.get(j, 0));
            }
        }
        self.push(m, Op::BroadcastSum(a, b))
    }

    /// Row-wise softmax restricted to `mask` (1 = edge, 0 = none); masked
    /// entries output 0, all-zero rows stay zero. The mask is treated as
    /// a constant.
    pub fn masked_softmax_rows(&mut self, scores: Var, mask: Var) -> Var {
        let s = &self.vals[scores.0];
        let k = &self.vals[mask.0];
        assert_eq!((s.rows(), s.cols()), (k.rows(), k.cols()));
        let mut m = Matrix::zeros(s.rows(), s.cols());
        for i in 0..s.rows() {
            let mut maxv = f32::NEG_INFINITY;
            for j in 0..s.cols() {
                if k.get(i, j) > 0.0 {
                    maxv = maxv.max(s.get(i, j));
                }
            }
            if maxv == f32::NEG_INFINITY {
                continue;
            }
            let mut denom = 0.0;
            for j in 0..s.cols() {
                if k.get(i, j) > 0.0 {
                    denom += (s.get(i, j) - maxv).exp();
                }
            }
            for j in 0..s.cols() {
                if k.get(i, j) > 0.0 {
                    m.set(i, j, (s.get(i, j) - maxv).exp() / denom);
                }
            }
        }
        self.push(m, Op::MaskedSoftmaxRows(scores, mask))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let m = self.vals[a.0].map(|x| c * x);
        self.push(m, Op::Scale(a, c))
    }

    /// Mean-squared-error loss against a constant target of the same
    /// shape; returns a `[1,1]` scalar.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let p = &self.vals[pred.0];
        let t = &self.vals[target.0];
        assert_eq!((p.rows(), p.cols()), (t.rows(), t.cols()));
        let k = (p.rows() * p.cols()) as f32;
        let loss: f32 = p
            .as_slice()
            .iter()
            .zip(t.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / k;
        self.push(Matrix::from_vec(1, 1, vec![loss]), Op::Mse(pred, target))
    }

    /// Two-class cross-entropy over `[1,2]` logits; returns `[1,1]`.
    pub fn ce_logits2(&mut self, logits: Var, label: usize) -> Var {
        let l = &self.vals[logits.0];
        assert_eq!((l.rows(), l.cols()), (1, 2));
        assert!(label < 2);
        let m = l.get(0, 0).max(l.get(0, 1));
        let z = (l.get(0, 0) - m).exp() + (l.get(0, 1) - m).exp();
        let logp = l.get(0, label) - m - z.ln();
        self.push(
            Matrix::from_vec(1, 1, vec![-logp]),
            Op::CeLogits2(logits, label),
        )
    }

    /// Runs backpropagation from the scalar `loss`, returning gradients
    /// for every variable (indexable via [`Gradients::get`]).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `[1,1]`.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!((self.vals[loss.0].rows(), self.vals[loss.0].cols()), (1, 1));
        let mut grads: Vec<Matrix> = self
            .vals
            .iter()
            .map(|v| Matrix::zeros(v.rows(), v.cols()))
            .collect();
        grads[loss.0].set(0, 0, 1.0);
        for idx in (0..self.ops.len()).rev() {
            let g = grads[idx].clone();
            if g.norm() == 0.0 {
                continue;
            }
            match &self.ops[idx] {
                Op::Input => {}
                Op::MatMul(a, b) => {
                    let da = g.matmul(&self.vals[b.0].transpose());
                    let db = self.vals[a.0].transpose().matmul(&g);
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::Add(a, b) => {
                    grads[a.0].add_assign(&g);
                    grads[b.0].add_assign(&g);
                }
                Op::AddRow(a, bias) => {
                    grads[a.0].add_assign(&g);
                    let mut dr = Matrix::zeros(1, g.cols());
                    for i in 0..g.rows() {
                        for j in 0..g.cols() {
                            dr.set(0, j, dr.get(0, j) + g.get(i, j));
                        }
                    }
                    grads[bias.0].add_assign(&dr);
                }
                Op::Mul(a, b) => {
                    let da = hadamard(&g, &self.vals[b.0]);
                    let db = hadamard(&g, &self.vals[a.0]);
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::Relu(a) => {
                    let x = &self.vals[a.0];
                    let da = Matrix::from_vec(
                        x.rows(),
                        x.cols(),
                        x.as_slice()
                            .iter()
                            .zip(g.as_slice())
                            .map(|(&xi, &gi)| if xi > 0.0 { gi } else { 0.0 })
                            .collect(),
                    );
                    grads[a.0].add_assign(&da);
                }
                Op::LeakyRelu(a, alpha) => {
                    let x = &self.vals[a.0];
                    let da = Matrix::from_vec(
                        x.rows(),
                        x.cols(),
                        x.as_slice()
                            .iter()
                            .zip(g.as_slice())
                            .map(|(&xi, &gi)| if xi > 0.0 { gi } else { alpha * gi })
                            .collect(),
                    );
                    grads[a.0].add_assign(&da);
                }
                Op::MeanRows(a) => {
                    let n = self.vals[a.0].rows().max(1);
                    let mut da = Matrix::zeros(self.vals[a.0].rows(), g.cols());
                    for i in 0..da.rows() {
                        for j in 0..da.cols() {
                            da.set(i, j, g.get(0, j) / n as f32);
                        }
                    }
                    grads[a.0].add_assign(&da);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.vals[a.0].cols();
                    let da = Matrix::row(g.as_slice()[..ca].to_vec());
                    let db = Matrix::row(g.as_slice()[ca..].to_vec());
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::KronRows(a, b) => {
                    let x = &self.vals[a.0];
                    let y = &self.vals[b.0];
                    let mut da = Matrix::zeros(1, x.cols());
                    let mut db = Matrix::zeros(1, y.cols());
                    for i in 0..x.cols() {
                        for j in 0..y.cols() {
                            let gij = g.get(0, i * y.cols() + j);
                            da.set(0, i, da.get(0, i) + gij * y.get(0, j));
                            db.set(0, j, db.get(0, j) + gij * x.get(0, i));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::BroadcastSum(a, b) => {
                    let n = g.rows();
                    let mut da = Matrix::zeros(n, 1);
                    let mut db = Matrix::zeros(n, 1);
                    for i in 0..n {
                        for j in 0..n {
                            da.set(i, 0, da.get(i, 0) + g.get(i, j));
                            db.set(j, 0, db.get(j, 0) + g.get(i, j));
                        }
                    }
                    grads[a.0].add_assign(&da);
                    grads[b.0].add_assign(&db);
                }
                Op::MaskedSoftmaxRows(s, _mask) => {
                    let y = &self.vals[idx];
                    let mut ds = Matrix::zeros(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let dot: f32 = (0..y.cols()).map(|j| g.get(i, j) * y.get(i, j)).sum();
                        for j in 0..y.cols() {
                            let yj = y.get(i, j);
                            if yj != 0.0 {
                                ds.set(i, j, yj * (g.get(i, j) - dot));
                            }
                        }
                    }
                    grads[s.0].add_assign(&ds);
                }
                Op::Scale(a, c) => {
                    let da = g.map(|x| c * x);
                    grads[a.0].add_assign(&da);
                }
                Op::Mse(pred, target) => {
                    let p = &self.vals[pred.0];
                    let t = &self.vals[target.0];
                    let k = (p.rows() * p.cols()) as f32;
                    let scale = 2.0 * g.get(0, 0) / k;
                    let dp = Matrix::from_vec(
                        p.rows(),
                        p.cols(),
                        p.as_slice()
                            .iter()
                            .zip(t.as_slice())
                            .map(|(a, b)| scale * (a - b))
                            .collect(),
                    );
                    grads[pred.0].add_assign(&dp);
                }
                Op::CeLogits2(logits, label) => {
                    let l = &self.vals[logits.0];
                    let m = l.get(0, 0).max(l.get(0, 1));
                    let e0 = (l.get(0, 0) - m).exp();
                    let e1 = (l.get(0, 1) - m).exp();
                    let z = e0 + e1;
                    let p = [e0 / z, e1 / z];
                    let gd = g.get(0, 0);
                    let mut dl = Matrix::zeros(1, 2);
                    for (j, &pj) in p.iter().enumerate() {
                        let onehot = if j == *label { 1.0 } else { 0.0 };
                        dl.set(0, j, gd * (pj - onehot));
                    }
                    grads[logits.0].add_assign(&dl);
                }
            }
        }
        Gradients { grads }
    }
}

fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_vec(
        a.rows(),
        a.cols(),
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x * y)
            .collect(),
    )
}

/// Gradients produced by [`Graph::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Matrix>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`.
    pub fn get(&self, v: Var) -> &Matrix {
        &self.grads[v.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check for a scalar-valued function of
    /// one input matrix.
    fn grad_check(input: Matrix, f: impl Fn(&mut Graph, Var) -> Var, tol: f32) {
        let mut g = Graph::new();
        let x = g.input(input.clone());
        let loss = f(&mut g, x);
        let grads = g.backward(loss);
        let analytic = grads.get(x).clone();

        let eps = 1e-3;
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let eval = |delta: f32| {
                    let mut m = input.clone();
                    m.set(r, c, m.get(r, c) + delta);
                    let mut g = Graph::new();
                    let x = g.input(m);
                    let loss = f(&mut g, x);
                    g.value(loss).get(0, 0)
                };
                let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (numeric - a).abs() < tol,
                    "grad mismatch at ({r},{c}): numeric {numeric}, analytic {a}"
                );
            }
        }
    }

    #[test]
    fn grad_matmul_mse() {
        let w = Matrix::from_vec(3, 2, vec![0.5, -0.2, 0.1, 0.4, -0.3, 0.2]);
        let target = Matrix::row(vec![1.0, -1.0]);
        let input = Matrix::row(vec![0.3, -0.7, 0.9]);
        grad_check(
            input,
            move |g, x| {
                let w = g.input(w.clone());
                let t = g.input(target.clone());
                let y = g.matmul(x, w);
                g.mse(y, t)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_relu_chain() {
        let input = Matrix::row(vec![0.5, -0.5, 1.5]);
        grad_check(
            input,
            |g, x| {
                let r = g.relu(x);
                let s = g.scale(r, 2.0);
                let t = g.input(Matrix::row(vec![1.0, 0.0, 0.0]));
                g.mse(s, t)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_kron() {
        let b = Matrix::row(vec![0.2, -0.4]);
        let input = Matrix::row(vec![1.0, 2.0, 3.0]);
        grad_check(
            input,
            move |g, x| {
                let bv = g.input(b.clone());
                let k = g.kron_rows(x, bv);
                let t = g.input(Matrix::row(vec![0.0; 6]));
                g.mse(k, t)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_masked_softmax_attention() {
        // 3 nodes, attention over a small mask.
        let mask = Matrix::from_vec(3, 3, vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0]);
        let input = Matrix::from_vec(3, 1, vec![0.3, -0.2, 0.8]);
        grad_check(
            input,
            move |g, x| {
                let m = g.input(mask.clone());
                let s = g.broadcast_sum(x, x);
                let a = g.masked_softmax_rows(s, m);
                let pooled = g.mean_rows(a);
                let t = g.input(Matrix::row(vec![0.1, 0.2, 0.3]));
                g.mse(pooled, t)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_ce_logits() {
        let input = Matrix::row(vec![0.7, -0.3]);
        grad_check(input, |g, x| g.ce_logits2(x, 1), 1e-2);
    }

    #[test]
    fn grad_mean_rows_and_concat() {
        let input = Matrix::from_vec(2, 2, vec![0.1, 0.9, -0.4, 0.2]);
        grad_check(
            input,
            |g, x| {
                let p = g.mean_rows(x);
                let q = g.concat_cols(p, p);
                let t = g.input(Matrix::row(vec![0.0; 4]));
                g.mse(q, t)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_add_row_bias() {
        let input = Matrix::row(vec![0.3, -0.1]);
        grad_check(
            input,
            |g, bias| {
                let x = g.input(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
                let y = g.add_row(x, bias);
                let p = g.mean_rows(y);
                let t = g.input(Matrix::row(vec![0.0, 0.0]));
                g.mse(p, t)
            },
            1e-2,
        );
    }
}
