//! Parameters, Adam, losses, and the alternating multi-task training
//! loop (Tab. 2 and Tab. 4).

use crate::autograd::Graph;
use crate::dataset::Sample;
use crate::model::{GnnVariant, PtMapGnn, PROEPI_SCALE, RES_SCALE};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A trainable parameter with Adam moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    /// Xavier-initialized parameter.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Self {
        Param {
            value: Matrix::xavier(rows, cols, rng),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// Zero-initialized parameter (biases).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Param {
            value: Matrix::zeros(rows, cols),
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// One Adam update.
    pub fn adam_step(&mut self, grad: &Matrix, lr: f32, t: u64) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.value.rows() * self.value.cols() {
            let g = grad.as_slice()[i];
            let m = B1 * self.m.as_slice()[i] + (1.0 - B1) * g;
            let v = B2 * self.v.as_slice()[i] + (1.0 - B2) * g * g;
            self.m.as_mut_slice()[i] = m;
            self.v.as_mut_slice()[i] = v;
            let mhat = m / bc1;
            let vhat = v / bc2;
            self.value.as_mut_slice()[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

/// Training hyper-parameters (Tab. 4, scaled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate (paper: 3e-4).
    pub lr: f32,
    /// Minibatch size (paper: 256; default here 32).
    pub batch: usize,
    /// Training epochs (paper: 300).
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 1e-3,
            batch: 32,
            epochs: 90,
            seed: 3,
        }
    }
}

/// Per-epoch loss traces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean loss of the epoch's active task, per epoch.
    pub epoch_losses: Vec<f32>,
}

/// The three predictive sub-tasks (Tab. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    Equivalence,
    Residual,
    ProEpi,
}

/// Trains a model in place with alternating task optimization; returns
/// loss traces.
pub fn train(model: &mut PtMapGnn, dataset: &[Sample], config: &TrainConfig) -> TrainStats {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = TrainStats::default();
    let mut step = 0u64;
    let direct = model.config.variant == GnnVariant::Direct;
    let alpha = model.config.alpha;
    for _epoch in 0..config.epochs {
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch.max(1)) {
            // Alternate the optimized task per minibatch (Tab. 2's
            // alternating training at finer granularity).
            let task = match step % 3 {
                0 => Task::Equivalence,
                1 => Task::Residual,
                _ => Task::ProEpi,
            };
            let shapes: Vec<(usize, usize)> = model
                .params()
                .iter()
                .map(|p| (p.value.rows(), p.value.cols()))
                .collect();
            let mut acc: Vec<Matrix> = shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect();
            let mut batch_loss = 0.0f32;
            for &si in chunk {
                let s = &dataset[si];
                let mut g = Graph::new();
                let out = model.forward(&mut g, &s.input);
                let loss = match (task, direct) {
                    (Task::Equivalence, false) => {
                        let label = usize::from(s.ii == s.mii);
                        g.ce_logits2(out.eq_logits, label)
                    }
                    (Task::Residual, false) => {
                        // MSE(y, ŷ) + α · MSE(1, (MII + ŷ)/(MII + y)).
                        let res_target = (s.ii - s.mii) as f32 * RES_SCALE;
                        let t = g.input(Matrix::row(vec![res_target]));
                        let abs = g.mse(out.res, t);
                        let denom = s.mii as f32 * RES_SCALE + res_target;
                        let mii_c = g.input(Matrix::row(vec![s.mii as f32 * RES_SCALE]));
                        let pred_plus = g.add(out.res, mii_c);
                        let ratio = g.scale(pred_plus, 1.0 / denom.max(1e-3));
                        let one = g.input(Matrix::row(vec![1.0]));
                        let rel = g.mse(ratio, one);
                        let rel = g.scale(rel, alpha);
                        g.add(abs, rel)
                    }
                    (Task::ProEpi, _) => {
                        let t = g.input(Matrix::row(vec![s.pro_epi as f32 * PROEPI_SCALE]));
                        g.mse(out.pro_epi, t)
                    }
                    // Direct variant: one regression on the raw II for
                    // both the equivalence and residual rounds.
                    (_, true) => {
                        let t = g.input(Matrix::row(vec![s.ii as f32 * RES_SCALE]));
                        g.mse(out.res, t)
                    }
                };
                batch_loss += g.value(loss).get(0, 0);
                let grads = g.backward(loss);
                for (i, &v) in out.param_vars.iter().enumerate() {
                    acc[i].add_assign(grads.get(v));
                }
            }
            step += 1;
            let scale = 1.0 / chunk.len() as f32;
            for (p, mut g) in model.params_mut().into_iter().zip(acc) {
                for x in g.as_mut_slice() {
                    *x *= scale;
                }
                p.adam_step(&g, config.lr, step);
            }
            epoch_loss += batch_loss / chunk.len() as f32;
            batches += 1;
        }
        stats.epoch_losses.push(epoch_loss / batches.max(1) as f32);
    }
    stats
}

/// Incremental fine-tuning entry point: continues training an
/// already-initialized (typically already-trained) model on a fresh
/// sample batch. Identical machinery to [`train`] — the distinction is
/// contractual: callers pass a *copy* of a serving model and a small
/// live-traffic batch, and the Adam moments stored in each [`Param`]
/// carry over from the previous round, so successive fine-tunes keep
/// their per-weight step-size adaptation instead of restarting cold.
pub fn fine_tune(model: &mut PtMapGnn, samples: &[Sample], config: &TrainConfig) -> TrainStats {
    train(model, samples, config)
}

/// A MAPE aggregate that is explicit about coverage: samples whose
/// actual cycle count is zero cannot contribute a percentage error
/// (the denominator would be zero), so they are skipped *and counted*
/// instead of silently dropped or NaN-poisoning the mean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MapeStats {
    /// Mean absolute percentage error over the `used` samples, in
    /// percent. `0.0` when no sample was usable.
    pub mape: f64,
    /// Samples that contributed to the mean.
    pub used: usize,
    /// Samples skipped because their actual cycle count was zero.
    pub skipped: usize,
}

impl MapeStats {
    /// Folds one `(predicted, actual)` cycle pair into an accumulating
    /// `(sum, used, skipped)` triple-in-progress; finish with
    /// [`MapeStats::finish`].
    fn fold(acc: &mut (f64, usize, usize), predicted: f64, actual: f64) {
        if actual > 0.0 {
            acc.0 += ((predicted - actual) / actual).abs();
            acc.1 += 1;
        } else {
            acc.2 += 1;
        }
    }

    fn finish(acc: (f64, usize, usize)) -> MapeStats {
        MapeStats {
            mape: 100.0 * acc.0 / acc.1.max(1) as f64,
            used: acc.1,
            skipped: acc.2,
        }
    }
}

/// Mean absolute percentage error of predicted computation cycles
/// (`Cycle(l) = TC · II + ProEpi`, Eqn. 1) over a sample set — the
/// Fig. 6 metric. Zero-actual samples are excluded; use
/// [`mape_cycles_detailed`] to see how many were.
pub fn mape_cycles(model: &PtMapGnn, samples: &[Sample]) -> f64 {
    mape_cycles_detailed(model, samples).mape
}

/// [`mape_cycles`] with coverage counts (used vs skipped samples).
pub fn mape_cycles_detailed(model: &PtMapGnn, samples: &[Sample]) -> MapeStats {
    let mut acc = (0.0f64, 0usize, 0usize);
    for s in samples {
        let pred = model.predict(&s.input);
        let actual = s.tc as f64 * s.ii as f64 + s.pro_epi as f64;
        let predicted = s.tc as f64 * pred.ii as f64 + pred.pro_epi as f64;
        MapeStats::fold(&mut acc, predicted, actual);
    }
    MapeStats::finish(acc)
}

/// MAPE of the MII-based analytical model on the same samples (the PBP
/// baseline in Fig. 6): predicts `II = MII` and `ProEpi` from the
/// critical path. Zero-actual samples are excluded; use
/// [`mape_cycles_mii_detailed`] for the counts.
pub fn mape_cycles_mii(samples: &[Sample]) -> f64 {
    mape_cycles_mii_detailed(samples).mape
}

/// [`mape_cycles_mii`] with coverage counts (used vs skipped samples).
pub fn mape_cycles_mii_detailed(samples: &[Sample]) -> MapeStats {
    let mut acc = (0.0f64, 0usize, 0usize);
    for s in samples {
        let actual = s.tc as f64 * s.ii as f64 + s.pro_epi as f64;
        let predicted = s.tc as f64 * s.mii as f64 + s.cp_estimate as f64;
        MapeStats::fold(&mut acc, predicted, actual);
    }
    MapeStats::finish(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, DatasetConfig};
    use crate::model::ModelConfig;
    use ptmap_arch::presets;

    fn tiny_dataset() -> Vec<Sample> {
        generate_dataset(&DatasetConfig {
            samples: 40,
            archs: vec![presets::s4(), presets::sl8()],
            seed: 5,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn adam_reduces_loss() {
        let data = tiny_dataset();
        assert!(data.len() >= 20, "only {} samples", data.len());
        let mut model = PtMapGnn::new(ModelConfig {
            hidden: 16,
            ..ModelConfig::default()
        });
        let stats = train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 12,
                batch: 8,
                ..TrainConfig::default()
            },
        );
        // Compare first vs last epoch of the same task (stride 3).
        let first = stats.epoch_losses[2];
        let last = *stats.epoch_losses.last().unwrap();
        assert!(
            last <= first * 1.5,
            "loss diverged: first {first}, last {last} ({:?})",
            stats.epoch_losses
        );
    }

    #[test]
    fn trained_model_beats_untrained() {
        let data = tiny_dataset();
        let untrained = PtMapGnn::new(ModelConfig {
            hidden: 16,
            ..ModelConfig::default()
        });
        let before = mape_cycles(&untrained, &data);
        let mut model = untrained.clone();
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 90,
                batch: 8,
                ..TrainConfig::default()
            },
        );
        let after = mape_cycles(&model, &data);
        // Small-sample training is noisy; it must at least not blow up
        // and usually improves substantially.
        assert!(
            after <= before * 1.25 + 2.0,
            "training degraded train-set MAPE: before {before:.1}%, after {after:.1}%"
        );
    }

    #[test]
    fn zero_actual_cycles_skip_and_count_instead_of_poisoning() {
        let mut data = tiny_dataset();
        let model = PtMapGnn::new(ModelConfig {
            hidden: 8,
            ..ModelConfig::default()
        });
        let clean = mape_cycles_detailed(&model, &data);
        assert_eq!(clean.skipped, 0);
        assert_eq!(clean.used, data.len());
        assert!(clean.mape.is_finite());

        // Poison two samples with zero actual cycles (tc = 0 and
        // pro_epi = 0 makes `tc·II + ProEpi` exactly zero).
        for s in data.iter_mut().take(2) {
            s.tc = 0;
            s.pro_epi = 0;
            s.ii = 0;
        }
        let stats = mape_cycles_detailed(&model, &data);
        assert_eq!(stats.skipped, 2, "zero-cycle samples must be counted");
        assert_eq!(stats.used, data.len() - 2);
        assert!(
            stats.mape.is_finite() && !stats.mape.is_nan(),
            "zero-actual samples must not NaN-poison the aggregate"
        );
        // The aggregate over the surviving samples matches recomputing
        // on just those samples.
        let survivors = &data[2..];
        assert!((stats.mape - mape_cycles(&model, survivors)).abs() < 1e-9);

        let mii = mape_cycles_mii_detailed(&data);
        assert_eq!(mii.skipped, 2);
        assert_eq!(mii.used, data.len() - 2);
        assert!(mii.mape.is_finite());

        // All-zero input: no usable sample, a defined (zero) mean.
        let all_zero: Vec<Sample> = data[..2].to_vec();
        let empty = mape_cycles_detailed(&model, &all_zero);
        assert_eq!((empty.used, empty.skipped), (0, 2));
        assert_eq!(empty.mape, 0.0);
    }

    #[test]
    fn fine_tune_continues_training() {
        let data = tiny_dataset();
        let mut model = PtMapGnn::new(ModelConfig {
            hidden: 16,
            ..ModelConfig::default()
        });
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 30,
                batch: 8,
                ..TrainConfig::default()
            },
        );
        let before = mape_cycles(&model, &data);
        let mut tuned = model.clone();
        fine_tune(
            &mut tuned,
            &data,
            &TrainConfig {
                epochs: 30,
                batch: 8,
                ..TrainConfig::default()
            },
        );
        let after = mape_cycles(&tuned, &data);
        assert!(
            after <= before * 1.25 + 2.0,
            "fine-tuning diverged: {before:.1}% -> {after:.1}%"
        );
    }

    #[test]
    fn adam_step_moves_toward_gradient_descent() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = Param::xavier(2, 2, &mut rng);
        let before = p.value.clone();
        let grad = Matrix::from_vec(2, 2, vec![1.0, 1.0, -1.0, -1.0]);
        p.adam_step(&grad, 0.01, 1);
        // Positive gradient -> value decreases; negative -> increases.
        assert!(p.value.get(0, 0) < before.get(0, 0));
        assert!(p.value.get(1, 1) > before.get(1, 1));
    }
}
