//! Dataset generation: paired `<G_sw, G_hw, Vec> -> <II_map, ProEpi>`
//! samples labeled by the modulo-scheduling mapper (Tab. 4's synthetic
//! benchmark, at a reduced default scale).

use crate::features::{build_input, GnnInput};
use ptmap_arch::CgraArch;
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::{Dfg, PerfectNest, Program};
use ptmap_mapper::{map_dfg, MapperConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One labeled sample.
///
/// Serializes for the online-learning spill log: a daemon's live
/// samples are the same shape as offline dataset rows, so both feed
/// [`crate::train`] and [`crate::mape_cycles`] unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Model input.
    pub input: GnnInput,
    /// Labeled mapped II.
    pub ii: u32,
    /// Labeled ProEpi.
    pub pro_epi: u32,
    /// MII prior of the sample.
    pub mii: u32,
    /// Tripcount of the pipelined loop (for cycle MAPE).
    pub tc: u64,
    /// Critical-path ProEpi estimate (what the MII-based analytical
    /// model would use).
    pub cp_estimate: u32,
}

/// Configuration of synthetic dataset generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Target number of labeled samples (failed mappings are skipped).
    pub samples: usize,
    /// Architectures to sample from.
    #[serde(skip)]
    pub archs: Vec<CgraArch>,
    /// Unroll factors to sample from.
    pub unroll_factors: Vec<u32>,
    /// Mapper configuration used for labeling.
    pub mapper: MapperConfig,
    /// Generator seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            samples: 512,
            archs: ptmap_arch::presets::evaluation_suite(),
            unroll_factors: vec![1, 2, 4, 8],
            mapper: MapperConfig::default(),
            seed: 1,
        }
    }
}

/// Generates a synthetic dataset: random single-level loops ×
/// randomly-sampled architectures × random unroll factors, labeled by
/// the mapper.
pub fn generate_dataset(config: &DatasetConfig) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gen = ptmap_workloads_randgen(config.seed);
    let mut out = Vec::with_capacity(config.samples);
    let mut attempts = 0usize;
    while out.len() < config.samples && attempts < config.samples * 8 {
        attempts += 1;
        let program = gen.next_program();
        let nest = program.perfect_nests().remove(0);
        let arch = &config.archs[rng.gen_range(0..config.archs.len())];
        let f = config.unroll_factors[rng.gen_range(0..config.unroll_factors.len())];
        let unroll: Vec<(ptmap_ir::LoopId, u32)> = if f > 1 {
            vec![(nest.pipelined_loop(), f)]
        } else {
            Vec::new()
        };
        if let Some(s) = label_sample(&program, &nest, &unroll, arch, &config.mapper) {
            out.push(s);
        }
    }
    out
}

/// Labels one (program, nest, unroll, arch) combination by running the
/// mapper; `None` when the mapping fails.
pub fn label_sample(
    program: &Program,
    nest: &PerfectNest,
    unroll: &[(ptmap_ir::LoopId, u32)],
    arch: &CgraArch,
    mapper: &MapperConfig,
) -> Option<Sample> {
    let dfg = build_dfg(program, nest, unroll).ok()?;
    if dfg.is_empty() || dfg.len() > 200 {
        return None;
    }
    let mapping = map_dfg(&dfg, arch, mapper).ok()?;
    let input = build_input(&dfg, arch);
    let factor: u64 = unroll
        .iter()
        .filter(|&&(l, _)| l == nest.pipelined_loop())
        .map(|&(_, f)| f as u64)
        .product::<u64>()
        .max(1);
    Some(Sample {
        mii: input.mii,
        cp_estimate: cp_proepi(&dfg, input.mii),
        input,
        ii: mapping.ii,
        pro_epi: mapping.pro_epi(),
        tc: nest.pipelined_tripcount().div_ceil(factor),
    })
}

fn cp_proepi(dfg: &Dfg, mii: u32) -> u32 {
    dfg.critical_path().saturating_sub(mii)
}

fn ptmap_workloads_randgen(seed: u64) -> ptmap_workloads::RandomProgramGenerator {
    ptmap_workloads::RandomProgramGenerator::new(
        ptmap_workloads::RandomProgramConfig::default(),
        seed ^ 0x5EED,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;

    #[test]
    fn generates_requested_count() {
        let data = generate_dataset(&DatasetConfig {
            samples: 30,
            archs: vec![presets::s4()],
            seed: 2,
            ..DatasetConfig::default()
        });
        assert!(data.len() >= 25, "got {}", data.len());
        for s in &data {
            assert!(s.ii >= s.mii);
            assert!(s.tc >= 8);
        }
    }

    #[test]
    fn unrolled_samples_show_residuals() {
        // With unrolling in the mix some samples have II > MII — the
        // signal the residual task learns.
        let data = generate_dataset(&DatasetConfig {
            samples: 60,
            archs: vec![presets::sl8(), presets::r4()],
            seed: 9,
            ..DatasetConfig::default()
        });
        let with_res = data.iter().filter(|s| s.ii > s.mii).count();
        assert!(
            with_res > 0,
            "no sample with II > MII out of {}",
            data.len()
        );
    }

    #[test]
    fn deterministic() {
        let cfg = DatasetConfig {
            samples: 10,
            archs: vec![presets::s4()],
            seed: 4,
            ..DatasetConfig::default()
        };
        let a = generate_dataset(&cfg);
        let b = generate_dataset(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.ii, x.pro_epi, x.mii), (y.ii, y.pro_epi, y.mii));
        }
    }
}
