//! Input representations for the predictive model (Tab. 3).
//!
//! * `G_sw`: the DFG with base attributes (operation one-hot, fan-in/out)
//!   and extended attributes (ASAP/ALAP schedules, in/out-degree);
//! * `G_hw`: the PE graph with the array shape/topology as adjacency and
//!   per-PE attributes (`op_list` multi-hot, LRF size, GRF size); the GRF
//!   appears as an extra node with an empty op list, connected to all;
//! * `Vec`: mapping meta-data — MII prior, max fanout, critical path.

use crate::tensor::Matrix;
use ptmap_arch::CgraArch;
use ptmap_ir::{Dfg, OpKind};

/// Software node feature width: op one-hot + [fan-in, fan-out, asap,
/// alap, latency].
pub const SW_FEATS: usize = OpKind::ALL.len() + 5;
/// Hardware node feature width: op multi-hot + [lrf, grf, x, y].
pub const HW_FEATS: usize = OpKind::ALL.len() + 4;
/// Meta-data width: [MII, max fanout, critical path length].
pub const VEC_FEATS: usize = 3;

/// Offset of the first *extended* software feature (everything past the
/// op one-hot and fan-in/out base attributes).
pub const SW_EXT_START: usize = OpKind::ALL.len() + 2;
/// Offset of the first *extended* hardware feature (LRF/GRF sizes).
pub const HW_EXT_START: usize = OpKind::ALL.len();

/// Dense model inputs for one (DFG, architecture) pair.
///
/// Serializes so live-traffic samples can spill to the online-learning
/// JSONL log (`ptmap-learn`) and be replayed into training.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GnnInput {
    /// `[n_sw, SW_FEATS]` node features of the DFG.
    pub sw_x: Matrix,
    /// `[n_sw, n_sw]` attention mask (directed edges both ways plus self
    /// loops).
    pub sw_mask: Matrix,
    /// `[n_hw, HW_FEATS]` node features of the PE graph.
    pub hw_x: Matrix,
    /// `[n_hw, n_hw]` symmetric-normalized adjacency with self loops.
    pub hw_adj: Matrix,
    /// `[1, VEC_FEATS]` meta-data (scaled).
    pub vec: Matrix,
    /// Raw MII prior.
    pub mii: u32,
}

/// Builds the full-featured input for a DFG/architecture pair.
pub fn build_input(dfg: &Dfg, arch: &CgraArch) -> GnnInput {
    let n = dfg.len();
    let asap = dfg.asap();
    let alap = dfg.alap();
    let mut sw_x = Matrix::zeros(n, SW_FEATS);
    for (i, node) in dfg.nodes().iter().enumerate() {
        sw_x.set(i, node.op.code(), 1.0);
        let base = OpKind::ALL.len();
        sw_x.set(i, base, dfg.in_degree(node.id) as f32 / 4.0);
        sw_x.set(i, base + 1, dfg.out_degree(node.id) as f32 / 4.0);
        sw_x.set(i, base + 2, asap[i] as f32 / 16.0);
        sw_x.set(i, base + 3, alap[i] as f32 / 16.0);
        sw_x.set(i, base + 4, node.latency() as f32 / 4.0);
    }
    let mut sw_mask = Matrix::zeros(n, n);
    for i in 0..n {
        sw_mask.set(i, i, 1.0);
    }
    for e in dfg.edges() {
        sw_mask.set(e.src.index(), e.dst.index(), 1.0);
        sw_mask.set(e.dst.index(), e.src.index(), 1.0);
    }

    let pe_count = arch.pe_count();
    let has_grf = arch.grf_size() > 0;
    let m = pe_count + usize::from(has_grf);
    let mut hw_x = Matrix::zeros(m, HW_FEATS);
    for (i, pe) in arch.pe_ids().enumerate() {
        for op in &arch.pe(pe).ops {
            hw_x.set(i, op.code(), 1.0);
        }
        let (x, y) = pe.to_xy(arch.cols());
        hw_x.set(i, HW_EXT_START, arch.pe(pe).lrf_size as f32 / 8.0);
        hw_x.set(i, HW_EXT_START + 1, arch.grf_size() as f32 / 8.0);
        hw_x.set(i, HW_EXT_START + 2, x as f32 / 8.0);
        hw_x.set(i, HW_EXT_START + 3, y as f32 / 8.0);
    }
    if has_grf {
        // GRF: empty op list, LRF 0, full GRF feature.
        hw_x.set(pe_count, HW_EXT_START + 1, arch.grf_size() as f32 / 8.0);
    }
    let mut adj = Matrix::zeros(m, m);
    for i in 0..m {
        adj.set(i, i, 1.0);
    }
    for (i, pe) in arch.pe_ids().enumerate() {
        for n in arch.neighbors(pe) {
            adj.set(i, n.index(), 1.0);
            adj.set(n.index(), i, 1.0);
        }
        if has_grf {
            adj.set(i, pe_count, 1.0);
            adj.set(pe_count, i, 1.0);
        }
    }
    let hw_adj = sym_normalize(&adj);

    let mii = ptmap_mapper::mii(dfg, arch);
    let vec = Matrix::row(vec![
        mii as f32 / 16.0,
        dfg.max_fanout() as f32 / 8.0,
        dfg.critical_path() as f32 / 32.0,
    ]);

    GnnInput {
        sw_x,
        sw_mask,
        hw_x,
        hw_adj,
        vec,
        mii,
    }
}

/// Zeroes the extended attributes, producing the GNN-b ablation's input.
pub fn strip_extended(input: &GnnInput) -> GnnInput {
    let mut out = input.clone();
    for i in 0..out.sw_x.rows() {
        for j in SW_EXT_START..SW_FEATS {
            out.sw_x.set(i, j, 0.0);
        }
    }
    for i in 0..out.hw_x.rows() {
        for j in HW_EXT_START..HW_FEATS {
            out.hw_x.set(i, j, 0.0);
        }
    }
    out
}

/// `D^{-1/2} (A) D^{-1/2}` (A already contains self loops).
fn sym_normalize(a: &Matrix) -> Matrix {
    let n = a.rows();
    let deg: Vec<f32> = (0..n)
        .map(|i| (0..n).map(|j| a.get(i, j)).sum::<f32>().max(1e-6))
        .collect();
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = a.get(i, j);
            if v != 0.0 {
                out.set(i, j, v / (deg[i].sqrt() * deg[j].sqrt()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::{dfg::build_dfg, ProgramBuilder};

    fn sample_dfg() -> Dfg {
        let mut b = ProgramBuilder::new("k");
        let x = b.array("X", &[64]);
        let s = b.scalar("s");
        let i = b.open_loop("i", 64);
        let v = b.add(b.read_scalar(s), b.load(x, &[b.idx(i)]));
        b.assign(s, v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        build_dfg(&p, &nest, &[]).unwrap()
    }

    #[test]
    fn shapes_are_consistent() {
        let dfg = sample_dfg();
        let arch = presets::s4();
        let input = build_input(&dfg, &arch);
        assert_eq!(input.sw_x.rows(), dfg.len());
        assert_eq!(input.sw_x.cols(), SW_FEATS);
        assert_eq!(input.sw_mask.rows(), dfg.len());
        // S4 has a GRF -> 17 hardware nodes.
        assert_eq!(input.hw_x.rows(), 17);
        assert_eq!(input.vec.cols(), VEC_FEATS);
        assert!(input.mii >= 1);
    }

    #[test]
    fn grfless_arch_has_no_hub_node() {
        let dfg = sample_dfg();
        let input = build_input(&dfg, &presets::sl8());
        assert_eq!(input.hw_x.rows(), 64);
    }

    #[test]
    fn normalization_entries_bounded() {
        let dfg = sample_dfg();
        let input = build_input(&dfg, &presets::s4());
        for i in 0..input.hw_adj.rows() {
            for j in 0..input.hw_adj.cols() {
                let v = input.hw_adj.get(i, j);
                assert!((0.0..=1.0).contains(&v), "entry ({i},{j}) = {v}");
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn strip_extended_zeroes_only_extended() {
        let dfg = sample_dfg();
        let input = build_input(&dfg, &presets::s4());
        let basic = strip_extended(&input);
        // Base one-hot preserved.
        for i in 0..basic.sw_x.rows() {
            let onehot: f32 = (0..OpKind::ALL.len()).map(|j| basic.sw_x.get(i, j)).sum();
            assert_eq!(onehot, 1.0);
            for j in SW_EXT_START..SW_FEATS {
                assert_eq!(basic.sw_x.get(i, j), 0.0);
            }
        }
        assert_ne!(&basic, &input);
    }
}
