//! Graph-neural-network predictive model for PT-Map, built from scratch.
//!
//! The paper predicts the two quantities only loop scheduling can
//! normally provide — the mapped initiation interval (`II_map`) and the
//! pipeline fill/drain cycles (`ProEpi`) — with a GNN over the DFG
//! (`G_sw`, GAT layers), the PE graph (`G_hw`, GCN layers), and a small
//! meta-feature vector. This crate implements the full stack with no ML
//! dependencies:
//!
//! * [`tensor`] — a dense `f32` matrix;
//! * [`autograd`] — a tape-based reverse-mode differentiation engine
//!   (gradient-checked in its tests);
//! * [`features`] — the Tab. 3 input representations;
//! * [`model`] — the Fig. 5d architecture with the three Tab. 2 task
//!   heads and the Fig. 6 ablation variants;
//! * [`mod@train`] — Adam, the two-term II-residual loss, alternating
//!   multi-task training, and MAPE evaluation;
//! * [`dataset`] — synthetic dataset generation labeled by the
//!   modulo-scheduling mapper (Tab. 4's pipeline at reduced scale).
//!
//! # Example
//!
//! Train a small model on a synthetic dataset and predict:
//!
//! ```
//! use ptmap_gnn::dataset::{generate_dataset, DatasetConfig};
//! use ptmap_gnn::model::{ModelConfig, PtMapGnn};
//! use ptmap_gnn::train::{train, TrainConfig};
//!
//! let data = generate_dataset(&DatasetConfig {
//!     samples: 24,
//!     archs: vec![ptmap_arch::presets::s4()],
//!     ..DatasetConfig::default()
//! });
//! let mut model = PtMapGnn::new(ModelConfig { hidden: 8, ..ModelConfig::default() });
//! train(&mut model, &data, &TrainConfig { epochs: 3, ..TrainConfig::default() });
//! let p = model.predict(&data[0].input);
//! assert!(p.ii >= 1);
//! ```

pub mod autograd;
pub mod dataset;
pub mod features;
pub mod model;
pub mod tensor;
pub mod train;

pub use dataset::{DatasetConfig, Sample};
pub use features::{build_input, GnnInput};
pub use model::{GnnVariant, ModelConfig, Prediction, PtMapGnn};
pub use tensor::Matrix;
pub use train::{
    fine_tune, mape_cycles, mape_cycles_detailed, mape_cycles_mii, mape_cycles_mii_detailed, train,
    MapeStats, TrainConfig, TrainStats,
};
