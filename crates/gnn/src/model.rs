//! The PT-Map predictive model (Fig. 5d, Tab. 2).
//!
//! Stacked GAT layers embed `G_sw`, stacked GCN layers embed `G_hw`;
//! average pooling gives graph-level vectors which are aligned by a
//! Kronecker product (letting SW and HW gradients interact), fused with
//! the `Vec` meta-features via a Hadamard product, and fed to per-task
//! FC heads:
//!
//! * **II equivalence** — classifies `II_map == MII`;
//! * **II residual** — regresses `II_res = II_map − MII` with the
//!   two-term loss (absolute + α·relative);
//! * **ProEpi** — regresses the pipeline fill/drain cycles.
//!
//! The ablation variants of Fig. 6 are selected by [`GnnVariant`].

use crate::autograd::{Graph, Var};
use crate::features::{self, GnnInput};
use crate::train::Param;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Internal scale applied to the ProEpi regression target.
pub const PROEPI_SCALE: f32 = 0.1;
/// Internal scale applied to the II-residual regression target.
pub const RES_SCALE: f32 = 0.25;

/// Model variants (the paper's Fig. 6 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GnnVariant {
    /// The full GNN-PT-Map model.
    Full,
    /// GNN-b: only base features in `G_sw`/`G_hw`.
    Basic,
    /// GNN-c: no Kronecker/Hadamard alignment (plain concatenation).
    NoAlign,
    /// GNN-e: direct II/ProEpi regression without the three sub-tasks.
    Direct,
}

/// Model hyper-parameters (Tab. 4; hidden size scaled down by default
/// for laptop-scale training — see DESIGN.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden dimension (paper: 128; default here: 32).
    pub hidden: usize,
    /// Stacked GAT/GCN layer count (paper: 3).
    pub layers: usize,
    /// Variant selector.
    pub variant: GnnVariant,
    /// α of the two-term II-residual loss (paper: 0.5).
    pub alpha: f32,
    /// Parameter-initialization seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            hidden: 32,
            layers: 3,
            variant: GnnVariant::Full,
            alpha: 0.5,
            seed: 17,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GatParams {
    w: Param,
    a_src: Param,
    a_dst: Param,
    b: Param,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GcnParams {
    w: Param,
    b: Param,
}

/// The predictive model: parameters plus forward/predict logic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PtMapGnn {
    /// Configuration this model was built with.
    pub config: ModelConfig,
    gat: Vec<GatParams>,
    gcn: Vec<GcnParams>,
    pool_sw_w: Param,
    pool_sw_b: Param,
    pool_hw_w: Param,
    pool_hw_b: Param,
    align_w: Param,
    align_b: Param,
    vec_w: Param,
    vec_b: Param,
    shared_w: Param,
    shared_b: Param,
    head_eq_w: Param,
    head_eq_b: Param,
    head_res_w: Param,
    head_res_b: Param,
    head_pe_w: Param,
    head_pe_b: Param,
}

/// Forward-pass outputs (task heads) plus the parameter vars needed to
/// read gradients back.
pub struct Forward {
    /// `[1,2]` equivalence logits (heads reinterpreted for `Direct`).
    pub eq_logits: Var,
    /// `[1,1]` scaled II-residual (or direct II for `Direct`).
    pub res: Var,
    /// `[1,1]` scaled ProEpi.
    pub pro_epi: Var,
    /// Parameter vars, in [`PtMapGnn::params`] order.
    pub param_vars: Vec<Var>,
}

/// A prediction in integer metrics (Eqn. 3–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted mapped II.
    pub ii: u32,
    /// Predicted pipeline fill/drain cycles.
    pub pro_epi: u32,
}

impl PtMapGnn {
    /// Initializes a model with Xavier-uniform parameters.
    pub fn new(config: ModelConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        let mut gat = Vec::new();
        let mut gcn = Vec::new();
        for l in 0..config.layers {
            let sw_in = if l == 0 { features::SW_FEATS } else { h };
            let hw_in = if l == 0 { features::HW_FEATS } else { h };
            gat.push(GatParams {
                w: Param::xavier(sw_in, h, &mut rng),
                a_src: Param::xavier(h, 1, &mut rng),
                a_dst: Param::xavier(h, 1, &mut rng),
                b: Param::zeros(1, h),
            });
            gcn.push(GcnParams {
                w: Param::xavier(hw_in, h, &mut rng),
                b: Param::zeros(1, h),
            });
        }
        let align_in = if config.variant == GnnVariant::NoAlign {
            2 * h
        } else {
            h * h
        };
        PtMapGnn {
            gat,
            gcn,
            pool_sw_w: Param::xavier(2 * h, h, &mut rng),
            pool_sw_b: Param::zeros(1, h),
            pool_hw_w: Param::xavier(2 * h, h, &mut rng),
            pool_hw_b: Param::zeros(1, h),
            align_w: Param::xavier(align_in, h, &mut rng),
            align_b: Param::zeros(1, h),
            vec_w: Param::xavier(features::VEC_FEATS, h, &mut rng),
            vec_b: Param::zeros(1, h),
            shared_w: Param::xavier(2 * h, h, &mut rng),
            shared_b: Param::zeros(1, h),
            head_eq_w: Param::xavier(h, 2, &mut rng),
            head_eq_b: Param::zeros(1, 2),
            head_res_w: Param::xavier(h, 1, &mut rng),
            head_res_b: Param::zeros(1, 1),
            head_pe_w: Param::xavier(h, 1, &mut rng),
            head_pe_b: Param::zeros(1, 1),
            config,
        }
    }

    /// Immutable parameter list in a stable order.
    pub fn params(&self) -> Vec<&Param> {
        let mut out = Vec::new();
        for g in &self.gat {
            out.extend([&g.w, &g.a_src, &g.a_dst, &g.b]);
        }
        for g in &self.gcn {
            out.extend([&g.w, &g.b]);
        }
        out.extend([
            &self.pool_sw_w,
            &self.pool_sw_b,
            &self.pool_hw_w,
            &self.pool_hw_b,
            &self.align_w,
            &self.align_b,
            &self.vec_w,
            &self.vec_b,
            &self.shared_w,
            &self.shared_b,
            &self.head_eq_w,
            &self.head_eq_b,
            &self.head_res_w,
            &self.head_res_b,
            &self.head_pe_w,
            &self.head_pe_b,
        ]);
        out
    }

    /// Mutable parameter list in the same order as [`params`](Self::params).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = Vec::new();
        for g in &mut self.gat {
            out.push(&mut g.w);
            out.push(&mut g.a_src);
            out.push(&mut g.a_dst);
            out.push(&mut g.b);
        }
        for g in &mut self.gcn {
            out.push(&mut g.w);
            out.push(&mut g.b);
        }
        out.push(&mut self.pool_sw_w);
        out.push(&mut self.pool_sw_b);
        out.push(&mut self.pool_hw_w);
        out.push(&mut self.pool_hw_b);
        out.push(&mut self.align_w);
        out.push(&mut self.align_b);
        out.push(&mut self.vec_w);
        out.push(&mut self.vec_b);
        out.push(&mut self.shared_w);
        out.push(&mut self.shared_b);
        out.push(&mut self.head_eq_w);
        out.push(&mut self.head_eq_b);
        out.push(&mut self.head_res_w);
        out.push(&mut self.head_res_b);
        out.push(&mut self.head_pe_w);
        out.push(&mut self.head_pe_b);
        out
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.params()
            .iter()
            .map(|p| p.value.rows() * p.value.cols())
            .sum()
    }

    /// Runs the forward pass on a tape.
    pub fn forward(&self, g: &mut Graph, input: &GnnInput) -> Forward {
        let input_owned;
        let input = if self.config.variant == GnnVariant::Basic {
            input_owned = features::strip_extended(input);
            &input_owned
        } else {
            input
        };
        // Feed parameters in `params()` order, remembering their vars.
        let param_vars: Vec<Var> = self
            .params()
            .iter()
            .map(|p| g.input(p.value.clone()))
            .collect();
        let mut k = 0usize;
        let mut next = || {
            let v = param_vars[k];
            k += 1;
            v
        };
        // GAT stack over G_sw.
        let mask = g.input(input.sw_mask.clone());
        let mut sw = g.input(input.sw_x.clone());
        for _ in 0..self.config.layers {
            let (w, a_s, a_d, b) = (next(), next(), next(), next());
            let hw = g.matmul(sw, w);
            let s = g.matmul(hw, a_s);
            let d = g.matmul(hw, a_d);
            let scores = g.broadcast_sum(s, d);
            let scores = g.leaky_relu(scores, 0.2);
            let att = g.masked_softmax_rows(scores, mask);
            let agg = g.matmul(att, hw);
            let agg = g.add_row(agg, b);
            sw = g.relu(agg);
        }
        // GCN stack over G_hw.
        let adj = g.input(input.hw_adj.clone());
        let mut hwv = g.input(input.hw_x.clone());
        for _ in 0..self.config.layers {
            let (w, b) = (next(), next());
            let xw = g.matmul(hwv, w);
            let prop = g.matmul(adj, xw);
            let prop = g.add_row(prop, b);
            hwv = g.relu(prop);
        }
        // Pooling: mean embedding concatenated with a count-scaled copy
        // (average pooling alone erases graph size, the dominant
        // congestion signal), projected back to the hidden width.
        let n_sw = input.sw_x.rows() as f32;
        let n_hw = input.hw_x.rows() as f32;
        let sw_mean = g.mean_rows(sw);
        let sw_sum = g.scale(sw_mean, n_sw / 16.0);
        let sw_cat = g.concat_cols(sw_mean, sw_sum);
        let (psw_w, psw_b) = (next(), next());
        let sw_vec = g.matmul(sw_cat, psw_w);
        let sw_vec = g.add_row(sw_vec, psw_b);
        let sw_vec = g.relu(sw_vec);
        let hw_mean = g.mean_rows(hwv);
        let hw_sum = g.scale(hw_mean, n_hw / 16.0);
        let hw_cat = g.concat_cols(hw_mean, hw_sum);
        let (phw_w, phw_b) = (next(), next());
        let hw_vec = g.matmul(hw_cat, phw_w);
        let hw_vec = g.add_row(hw_vec, phw_b);
        let hw_vec = g.relu(hw_vec);
        // Alignment.
        let (align_w, align_b) = (next(), next());
        let aligned_in = if self.config.variant == GnnVariant::NoAlign {
            g.concat_cols(sw_vec, hw_vec)
        } else {
            g.kron_rows(sw_vec, hw_vec)
        };
        let aligned = g.matmul(aligned_in, align_w);
        let aligned = g.add_row(aligned, align_b);
        let aligned = g.relu(aligned);
        // Vec features.
        let (vec_w, vec_b) = (next(), next());
        let vec_in = g.input(input.vec.clone());
        let vec_h = g.matmul(vec_in, vec_w);
        let vec_h = g.add_row(vec_h, vec_b);
        let vec_h = g.relu(vec_h);
        // Hadamard fusion (skipped by NoAlign) + concat + shared FC.
        let fused = if self.config.variant == GnnVariant::NoAlign {
            aligned
        } else {
            g.mul(aligned, vec_h)
        };
        let unified = g.concat_cols(fused, vec_h);
        let (shared_w, shared_b) = (next(), next());
        let shared = g.matmul(unified, shared_w);
        let shared = g.add_row(shared, shared_b);
        let shared = g.relu(shared);
        // Heads.
        let (eq_w, eq_b) = (next(), next());
        let eq = g.matmul(shared, eq_w);
        let eq_logits = g.add_row(eq, eq_b);
        let (res_w, res_b) = (next(), next());
        let res = g.matmul(shared, res_w);
        let res = g.add_row(res, res_b);
        let (pe_w, pe_b) = (next(), next());
        let pe = g.matmul(shared, pe_w);
        let pro_epi = g.add_row(pe, pe_b);
        Forward {
            eq_logits,
            res,
            pro_epi,
            param_vars,
        }
    }

    /// Predicts integer metrics per Eqn. 3–4.
    pub fn predict(&self, input: &GnnInput) -> Prediction {
        let mut g = Graph::new();
        let out = self.forward(&mut g, input);
        let pro_epi = (g.value(out.pro_epi).get(0, 0) / PROEPI_SCALE)
            .round()
            .max(0.0) as u32;
        let ii = match self.config.variant {
            GnnVariant::Direct => {
                // Direct variant: `res` regresses the raw II.
                (g.value(out.res).get(0, 0) / RES_SCALE).round().max(1.0) as u32
            }
            _ => {
                let l = g.value(out.eq_logits);
                let equal = l.get(0, 1) >= l.get(0, 0);
                if equal {
                    input.mii
                } else {
                    let res = (g.value(out.res).get(0, 0) / RES_SCALE).round().max(0.0) as u32;
                    input.mii + res.max(1)
                }
            }
        };
        Prediction { ii, pro_epi }
    }

    /// Serializes the model (weights, Adam moments, config) to a
    /// deterministic JSON byte string. The encoding is stable for a
    /// given model value — `from_bytes(to_bytes(m)).to_bytes()` is
    /// byte-identical — which lets snapshot stores content-address and
    /// checksum model versions.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("model serialization cannot fail")
            .into_bytes()
    }

    /// Deserializes a model produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("model not utf-8: {e}"))?;
        serde_json::from_str(text).map_err(|e| format!("model decode failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::{dfg::build_dfg, ProgramBuilder};

    fn input() -> GnnInput {
        let mut b = ProgramBuilder::new("k");
        let x = b.array("X", &[64]);
        let y = b.array("Y", &[64]);
        let i = b.open_loop("i", 64);
        let v = b.mul(b.load(x, &[b.idx(i)]), b.load(y, &[b.idx(i)]));
        b.store(y, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        features::build_input(&dfg, &presets::s4())
    }

    #[test]
    fn forward_shapes() {
        let model = PtMapGnn::new(ModelConfig::default());
        let mut g = Graph::new();
        let out = model.forward(&mut g, &input());
        assert_eq!(g.value(out.eq_logits).cols(), 2);
        assert_eq!(g.value(out.res).cols(), 1);
        assert_eq!(g.value(out.pro_epi).cols(), 1);
        assert_eq!(out.param_vars.len(), model.params().len());
    }

    #[test]
    fn predict_is_deterministic_and_sane() {
        let model = PtMapGnn::new(ModelConfig::default());
        let inp = input();
        let a = model.predict(&inp);
        let b = model.predict(&inp);
        assert_eq!(a, b);
        assert!(a.ii >= 1);
    }

    #[test]
    fn variants_share_param_ordering() {
        for variant in [
            GnnVariant::Full,
            GnnVariant::Basic,
            GnnVariant::NoAlign,
            GnnVariant::Direct,
        ] {
            let model = PtMapGnn::new(ModelConfig {
                variant,
                ..ModelConfig::default()
            });
            assert_eq!(
                model.params().len(),
                model
                    .param_count()
                    .max(1)
                    .min(model.params().len())
                    .max(model.params().len())
            );
            let mut g = Graph::new();
            let out = model.forward(&mut g, &input());
            assert_eq!(out.param_vars.len(), model.params().len());
        }
    }

    #[test]
    fn param_lists_agree() {
        let mut model = PtMapGnn::new(ModelConfig::default());
        let shapes: Vec<(usize, usize)> = model
            .params()
            .iter()
            .map(|p| (p.value.rows(), p.value.cols()))
            .collect();
        let shapes_mut: Vec<(usize, usize)> = model
            .params_mut()
            .iter()
            .map(|p| (p.value.rows(), p.value.cols()))
            .collect();
        assert_eq!(shapes, shapes_mut);
    }

    #[test]
    fn full_model_has_nontrivial_capacity() {
        let model = PtMapGnn::new(ModelConfig::default());
        assert!(model.param_count() > 10_000);
    }
}
