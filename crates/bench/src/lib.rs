//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every figure/table of the paper's evaluation has a binary in
//! `src/bin/` that prints the same rows/series the paper reports (and
//! writes JSON under `results/`), plus a Criterion bench wrapping a
//! scaled-down version. See DESIGN.md's experiment index.

use ptmap_arch::{presets, CgraArch};
use ptmap_core::PtMapConfig;
use ptmap_eval::RankMode;
use ptmap_gnn::dataset::{generate_dataset, DatasetConfig, Sample};
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use ptmap_gnn::train::{train, TrainConfig};
use ptmap_ir::Program;
use ptmap_pipeline::{run_batch, BatchConfig, Job, JobOutcome, PredictorSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;

pub mod fig6;
pub mod suite;

/// Directory for cached models and result JSON.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PTMAP_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// The evaluation applications with their paper codes.
pub fn apps() -> Vec<(&'static str, Program)> {
    ptmap_workloads::apps::all()
}

/// The four evaluation architectures.
pub fn archs() -> Vec<CgraArch> {
    presets::evaluation_suite()
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Scale knobs for dataset/training, overridable via env for quick runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Synthetic training samples.
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Scale {
    /// Full (default) experiment scale.
    pub fn full() -> Self {
        Scale {
            samples: env_usize("PTMAP_SAMPLES", 3000),
            epochs: env_usize("PTMAP_EPOCHS", 120),
        }
    }

    /// Reduced scale for Criterion smoke runs.
    pub fn quick() -> Self {
        Scale {
            samples: 120,
            epochs: 12,
        }
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Trains (or loads from the results cache) a GNN variant on the
/// synthetic dataset.
pub fn trained_model(variant: GnnVariant, scale: Scale) -> PtMapGnn {
    let tag = format!("{variant:?}").to_lowercase();
    let path = results_dir().join(format!("gnn_{tag}_{}_{}.json", scale.samples, scale.epochs));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(model) = serde_json::from_str::<PtMapGnn>(&text) {
            return model;
        }
    }
    let data = synthetic_dataset(scale);
    let mut model = PtMapGnn::new(ModelConfig {
        variant,
        ..ModelConfig::default()
    });
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: scale.epochs,
            ..TrainConfig::default()
        },
    );
    if let Ok(text) = serde_json::to_string(&model) {
        let _ = std::fs::write(&path, text);
    }
    model
}

/// The synthetic training dataset (Tab. 4 pipeline at reduced scale).
pub fn synthetic_dataset(scale: Scale) -> Vec<Sample> {
    generate_dataset(&DatasetConfig {
        samples: scale.samples,
        archs: archs(),
        seed: 21,
        ..DatasetConfig::default()
    })
}

/// Runs every (app × arch) PT-Map compilation through the batch
/// pipeline: parallel across jobs (`PTMAP_JOBS`, default = available
/// cores), persistent report cache under `results/ptmap-cache`, batch
/// metrics written as a JSON artifact. Returns the outcomes keyed by
/// `"<app>@<arch>"`.
pub fn ptmap_app_batch(
    gnn: &PtMapGnn,
    mode: RankMode,
    metrics_name: &str,
) -> BTreeMap<String, JobOutcome> {
    let model = Box::new(gnn.clone());
    let mut jobs = Vec::new();
    for arch in archs() {
        for (app, program) in apps() {
            jobs.push(Job {
                name: format!("{app}@{}", arch.name()),
                program,
                arch: arch.clone(),
                predictor: PredictorSpec::Gnn(model.clone()),
                mode,
                degraded: None,
            });
        }
    }
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = BatchConfig {
        workers: env_usize("PTMAP_JOBS", default_workers),
        cache_dir: Some(results_dir().join("ptmap-cache")),
        base: PtMapConfig {
            eval_workers: env_usize("PTMAP_EVAL_WORKERS", 1),
            ..PtMapConfig::default()
        },
        ..BatchConfig::default()
    };
    let batch = run_batch(&jobs, &config);
    write_json(metrics_name, &batch.metrics);
    batch
        .outcomes
        .into_iter()
        .map(|o| (o.name.clone(), o))
        .collect()
}

/// Writes a JSON result artifact.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn apps_and_archs_load() {
        assert_eq!(apps().len(), 11);
        assert_eq!(archs().len(), 4);
    }
}
