//! Real-benchmark model-accuracy evaluation (Fig. 6).
//!
//! The paper measures each model's MAPE on *real benchmark*
//! transformations: candidates drawn from the exploration of the eleven
//! applications, labeled by actual loop scheduling.

use ptmap_arch::CgraArch;
use ptmap_gnn::dataset::{label_sample, Sample};
use ptmap_mapper::MapperConfig;
use ptmap_transform::{explore, ExploreConfig};

/// Builds labeled samples from the real benchmark's transformation
/// candidates on one architecture (up to `per_app` candidates per app).
pub fn real_benchmark_samples(arch: &CgraArch, per_app: usize) -> Vec<Sample> {
    let mapper = MapperConfig::default();
    let mut out = Vec::new();
    for (_, program) in ptmap_workloads::apps::all() {
        let forest = explore(&program, &ExploreConfig::default());
        let mut taken = 0usize;
        'outer: for variant in &forest.variants {
            for ra in &variant.pnl_candidates {
                // Stride through the result array for diversity.
                let stride = (ra.len() / 4).max(1);
                for cand in ra.iter().step_by(stride) {
                    if taken >= per_app {
                        break 'outer;
                    }
                    if let Some(s) =
                        label_sample(&cand.program, &cand.nest, &cand.unroll, arch, &mapper)
                    {
                        out.push(s);
                        taken += 1;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;

    #[test]
    fn real_samples_have_residual_diversity() {
        let samples = real_benchmark_samples(&presets::s4(), 3);
        assert!(samples.len() >= 20, "only {} samples", samples.len());
        let residuals: std::collections::BTreeSet<u32> =
            samples.iter().map(|s| s.ii - s.mii).collect();
        assert!(residuals.len() >= 2, "residuals all equal: {residuals:?}");
    }
}
