//! Fig. 7: normalized performance (relative to RAMP) of LISA, MapZero,
//! IP, PBP, and PT-Map across the four architectures.
//!
//! The PT-Map compilations run through the batch pipeline
//! (`ptmap-pipeline`): parallel across (app, arch) jobs, cached under
//! `results/ptmap-cache` (a re-run after warming is nearly free), with
//! per-stage metrics written to `results/fig7_metrics.json`.

use ptmap_bench::suite::{baseline_suite, MapperResult, MapperSet};
use ptmap_bench::{geomean, ptmap_app_batch, trained_model, Scale};
use ptmap_eval::RankMode;
use ptmap_gnn::model::GnnVariant;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    arch: String,
    app: String,
    mapper: String,
    cycles: Option<u64>,
    speedup_vs_ramp: Option<f64>,
    compile_seconds: f64,
}

fn main() {
    let gnn = trained_model(GnnVariant::Full, Scale::full());
    // All PT-Map jobs up front, through the scheduler + cache.
    let ptmap = ptmap_app_batch(&gnn, RankMode::Performance, "fig7_metrics.json");
    let mut rows = Vec::new();
    for arch in ptmap_bench::archs() {
        println!("\n=== {} ===", arch.name());
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "app", "RAMP", "LISA", "MapZero", "IP", "PBP", "PT-Map"
        );
        let mut per_mapper: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
        for (app, program) in ptmap_bench::apps() {
            let mut results = baseline_suite(
                &program,
                &arch,
                RankMode::Performance,
                MapperSet::Comparison,
            );
            let outcome = &ptmap[&format!("{app}@{}", arch.name())];
            results.push(MapperResult::from_option("PT-Map", outcome.report.clone()));
            let ramp = results
                .iter()
                .find(|r| r.mapper == "RAMP")
                .and_then(|r| r.cycles);
            let mut cells = Vec::new();
            for r in &results {
                let speedup = match (ramp, r.cycles) {
                    (Some(rc), Some(c)) => Some(rc as f64 / c as f64),
                    _ => None,
                };
                cells.push(
                    speedup
                        .map(|s| format!("{s:.2}x"))
                        .unwrap_or_else(|| "fail".into()),
                );
                if let Some(s) = speedup {
                    per_mapper.entry(r.mapper.clone()).or_default().push(s);
                }
                rows.push(Row {
                    arch: arch.name().to_string(),
                    app: app.to_string(),
                    mapper: r.mapper.clone(),
                    cycles: r.cycles,
                    speedup_vs_ramp: speedup,
                    compile_seconds: r.compile_seconds,
                });
            }
            println!(
                "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                app, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
            );
        }
        print!("{:<6}", "GEO");
        for mapper in ["RAMP", "LISA", "MapZero", "IP", "PBP", "PT-Map"] {
            let g = geomean(per_mapper.get(mapper).map(Vec::as_slice).unwrap_or(&[]));
            print!(" {:>9.2}x", g);
        }
        println!();
        // PT-Map speedups vs each baseline (geomean over apps).
        let pt = per_mapper.get("PT-Map").cloned().unwrap_or_default();
        for mapper in ["LISA", "MapZero", "IP", "PBP"] {
            let base = per_mapper.get(mapper).cloned().unwrap_or_default();
            let ratios: Vec<f64> = pt.iter().zip(&base).map(|(p, b)| p / b).collect();
            println!("  PT-Map vs {mapper}: {:.2}x geomean", geomean(&ratios));
        }
    }
    ptmap_bench::write_json("fig7.json", &rows);
}
