//! Design-choice ablations called out in DESIGN.md (beyond the paper's
//! Tab. 6):
//!
//! 1. **Route-tree sharing** — the mapper with and without shared fanout
//!    routes, on progressively unrolled GEMM (congestion-bound SL8);
//! 2. **Two-term II-residual loss** — the Tab. 2 loss (absolute +
//!    α·relative) versus plain MSE (α = 0);
//! 3. **Reordering depth** — exploring the innermost 1 vs 3 levels.

use ptmap_arch::presets;
use ptmap_bench::{synthetic_dataset, Scale};
use ptmap_core::{PtMap, PtMapConfig};
use ptmap_eval::AnalyticalPredictor;
use ptmap_gnn::model::{ModelConfig, PtMapGnn};
use ptmap_gnn::train::{mape_cycles, train, TrainConfig};
use ptmap_ir::dfg::build_dfg;
use ptmap_mapper::{map_dfg, MapperConfig};
use ptmap_transform::ExploreConfig;
use ptmap_workloads::micro;
use serde::Serialize;

#[derive(Debug, Serialize, Default)]
struct Ablations {
    route_sharing: Vec<(u32, Option<u32>, Option<u32>)>,
    loss_two_term_mape: f64,
    loss_plain_mape: f64,
    reorder_depth: Vec<(usize, u64)>,
}

fn main() {
    let mut out = Ablations::default();

    // 1. Route sharing.
    println!("== route-tree sharing (GEMM 24^3 on SL8) ==");
    println!("{:<8} {:>10} {:>10}", "unroll", "shared II", "unshared II");
    let program = micro::gemm24();
    let nest = program.perfect_nests().remove(0);
    let (i, j) = (nest.loops[0], nest.loops[1]);
    let arch = presets::sl8();
    for f in [1u32, 2, 4] {
        let unroll: Vec<_> = [(i, f), (j, f)]
            .into_iter()
            .filter(|&(_, x)| x > 1)
            .collect();
        let dfg = build_dfg(&program, &nest, &unroll).unwrap();
        let shared = map_dfg(&dfg, &arch, &MapperConfig::default())
            .ok()
            .map(|m| m.ii);
        let unshared_cfg = MapperConfig {
            share_routes: false,
            ..MapperConfig::default()
        };
        let unshared = map_dfg(&dfg, &arch, &unshared_cfg).ok().map(|m| m.ii);
        let show = |x: Option<u32>| x.map(|v| v.to_string()).unwrap_or_else(|| "fail".into());
        println!("{:<8} {:>10} {:>10}", f * f, show(shared), show(unshared));
        out.route_sharing.push((f * f, shared, unshared));
    }

    // 2. Two-term residual loss vs plain MSE.
    println!("\n== II-residual loss (synthetic dataset, held-out MAPE) ==");
    let scale = Scale {
        samples: 600,
        epochs: 60,
    };
    let data = synthetic_dataset(scale);
    let split = data.len() * 4 / 5;
    let (tr, te) = data.split_at(split);
    for (label, alpha) in [("two-term (α=0.5)", 0.5f32), ("plain MSE (α=0)", 0.0)] {
        let mut model = PtMapGnn::new(ModelConfig {
            alpha,
            ..ModelConfig::default()
        });
        train(
            &mut model,
            tr,
            &TrainConfig {
                epochs: scale.epochs,
                ..TrainConfig::default()
            },
        );
        let mape = mape_cycles(&model, te);
        println!("{label:<18}: {mape:.1}% MAPE");
        if alpha > 0.0 {
            out.loss_two_term_mape = mape;
        } else {
            out.loss_plain_mape = mape;
        }
    }

    // 3. Reordering depth.
    println!("\n== reordering depth (GEMM 64^3 on S4, analytical predictor) ==");
    let program = micro::gemm(64);
    let arch = presets::s4();
    for depth in [1usize, 2, 3] {
        let explore = ExploreConfig {
            reorder_depth: depth,
            ..ExploreConfig::default()
        };
        let config = PtMapConfig {
            explore,
            ..PtMapConfig::default()
        };
        let r = PtMap::new(Box::new(AnalyticalPredictor), config)
            .compile(&program, &arch)
            .expect("gemm compiles");
        println!("depth {depth}: {} cycles", r.cycles);
        out.reorder_depth.push((depth, r.cycles));
    }

    ptmap_bench::write_json("ablations.json", &out);
}
