//! Fig. 2b: accuracy of the MII-based analytical model on the vector
//! reduction under unrolling, across same-PE-count architectures.
//!
//! The legend `abc` denotes an `a×b` CGRA with `c` LRF entries per PE.
//! The plotted value is `actual cycles / estimated cycles`: 1.0 means
//! the MII model is exact; larger means it is optimistic.

use ptmap_arch::presets;
use ptmap_ir::dfg::build_dfg;
use ptmap_mapper::{map_dfg, mii, MapperConfig};
use ptmap_workloads::micro;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    arch: String,
    factor: u32,
    ratio: f64,
    actual_ii: u32,
    mii: u32,
}

fn main() {
    let n = 1024u64;
    let program = micro::vec_reduction(n);
    let nest = program.perfect_nests().remove(0);
    let mapper = MapperConfig::default();
    let mut rows = Vec::new();
    println!(
        "{:<6} {:>7} {:>6} {:>9} {:>8}",
        "arch", "factor", "MII", "actual II", "ratio"
    );
    for arch in presets::fig2b_family() {
        for factor in [1u32, 2, 4, 8] {
            let unroll: Vec<(ptmap_ir::LoopId, u32)> = if factor > 1 {
                vec![(nest.pipelined_loop(), factor)]
            } else {
                Vec::new()
            };
            let dfg = build_dfg(&program, &nest, &unroll).expect("dfg");
            let bound = mii(&dfg, &arch);
            let tc = n / factor as u64;
            let est = tc * bound as u64 + dfg.critical_path().saturating_sub(bound) as u64;
            match map_dfg(&dfg, &arch, &mapper) {
                Ok(m) => {
                    let actual = m.cycles(tc);
                    let ratio = actual as f64 / est as f64;
                    println!(
                        "{:<6} {:>7} {:>6} {:>9} {:>8.2}",
                        arch.name(),
                        factor,
                        bound,
                        m.ii,
                        ratio
                    );
                    rows.push(Row {
                        arch: arch.name().to_string(),
                        factor,
                        ratio,
                        actual_ii: m.ii,
                        mii: bound,
                    });
                }
                Err(_) => {
                    println!(
                        "{:<6} {:>7} {:>6} {:>9} {:>8}",
                        arch.name(),
                        factor,
                        bound,
                        "-",
                        "fail"
                    );
                }
            }
        }
    }
    ptmap_bench::write_json("fig2b.json", &rows);
}
