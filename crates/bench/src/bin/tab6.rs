//! Tab. 6: ablation on SL8 — normalized performance of RAMP, AL
//! (black-box tuning), AM (MII-model evaluation), and PT-Map.

use ptmap_arch::presets;
use ptmap_bench::suite::{run_suite, MapperSet};
use ptmap_bench::{geomean, trained_model, Scale};
use ptmap_eval::RankMode;
use ptmap_gnn::model::GnnVariant;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    app: String,
    mapper: String,
    cycles: Option<u64>,
    normalized: Option<f64>,
}

fn main() {
    let gnn = trained_model(GnnVariant::Full, Scale::full());
    let arch = presets::sl8();
    let mut rows = Vec::new();
    let mut per_mapper: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8}",
        "app", "RAMP", "AL", "AM", "PT-Map"
    );
    for (app, program) in ptmap_bench::apps() {
        let results = run_suite(
            &program,
            &arch,
            &gnn,
            RankMode::Performance,
            MapperSet::Ablation,
        );
        let pt = results
            .iter()
            .find(|r| r.mapper == "PT-Map")
            .and_then(|r| r.cycles);
        let mut cells = Vec::new();
        for r in &results {
            let norm = match (pt, r.cycles) {
                (Some(p), Some(c)) => Some(p as f64 / c as f64),
                _ => None,
            };
            cells.push(
                norm.map(|n| format!("{n:.2}"))
                    .unwrap_or_else(|| "fail".into()),
            );
            if let Some(n) = norm {
                per_mapper.entry(r.mapper.clone()).or_default().push(n);
            }
            rows.push(Row {
                app: app.to_string(),
                mapper: r.mapper.clone(),
                cycles: r.cycles,
                normalized: norm,
            });
        }
        println!(
            "{:<6} {:>8} {:>8} {:>8} {:>8}",
            app, cells[0], cells[1], cells[2], cells[3]
        );
    }
    print!("{:<6}", "GEO");
    for mapper in ["RAMP", "AL", "AM", "PT-Map"] {
        match per_mapper.get(mapper) {
            Some(v) if v.len() == ptmap_bench::apps().len() => {
                print!(" {:>8.2}", geomean(v));
            }
            _ => print!(" {:>8}", "-"),
        }
    }
    println!();
    ptmap_bench::write_json("tab6.json", &rows);
}
