//! Fig. 8: geomean EDP reduction of each transformation mapper relative
//! to the baselines, with the original and doubled DB capacities
//! (PT-Map in Pareto mode; IP and PBP use the same PVol ranking for
//! fairness, as in the paper).

use ptmap_bench::suite::{run_suite, MapperSet};
use ptmap_bench::{geomean, trained_model, Scale};
use ptmap_eval::RankMode;
use ptmap_gnn::model::GnnVariant;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    db_scale: u64,
    arch: String,
    app: String,
    mapper: String,
    edp: Option<f64>,
}

fn main() {
    let gnn = trained_model(GnnVariant::Full, Scale::full());
    let mut rows = Vec::new();
    for db_scale in [1u64, 2] {
        println!("\n=== DB capacity x{db_scale} ===");
        // EDP ratios PT-Map / baseline, pooled over (arch, app).
        let mut ratios: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
        for base_arch in ptmap_bench::archs() {
            let arch = base_arch.with_db_bytes(base_arch.db_bytes() * db_scale);
            for (app, program) in ptmap_bench::apps() {
                let results = run_suite(
                    &program,
                    &arch,
                    &gnn,
                    RankMode::Pareto,
                    MapperSet::Comparison,
                );
                let pt_edp = results
                    .iter()
                    .find(|r| r.mapper == "PT-Map")
                    .and_then(|r| r.edp);
                for r in &results {
                    rows.push(Row {
                        db_scale,
                        arch: base_arch.name().to_string(),
                        app: app.to_string(),
                        mapper: r.mapper.clone(),
                        edp: r.edp,
                    });
                    if r.mapper != "PT-Map" {
                        if let (Some(pt), Some(b)) = (pt_edp, r.edp) {
                            ratios.entry(r.mapper.clone()).or_default().push(pt / b);
                        }
                    }
                }
            }
        }
        for mapper in ["RAMP", "LISA", "MapZero", "IP", "PBP"] {
            let r = geomean(ratios.get(mapper).map(Vec::as_slice).unwrap_or(&[]));
            println!(
                "PT-Map EDP reduction vs {mapper:<8}: {:.1}%",
                (1.0 - r) * 100.0
            );
        }
    }
    ptmap_bench::write_json("fig8.json", &rows);
}
