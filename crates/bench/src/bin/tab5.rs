//! Tab. 5: the applications and their default #PNLs.

use ptmap_transform::Lit;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    app: String,
    pnls: usize,
    stmts: usize,
    arrays: usize,
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<6} {:>6} {:>7} {:>7}",
        "app", "#PNLs", "#stmts", "#arrays"
    );
    for (name, program) in ptmap_bench::apps() {
        let lit = Lit::build(&program);
        let pnls = lit.pnl_count();
        assert_eq!(pnls, program.perfect_nests().len(), "LIT and IR disagree");
        println!(
            "{:<6} {:>6} {:>7} {:>7}",
            name,
            pnls,
            program.all_stmts().len(),
            program.arrays().len()
        );
        rows.push(Row {
            app: name.to_string(),
            pnls,
            stmts: program.all_stmts().len(),
            arrays: program.arrays().len(),
        });
    }
    ptmap_bench::write_json("tab5.json", &rows);
}
