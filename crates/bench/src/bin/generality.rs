//! Generality experiment: the unseen HReA-like 4×4 architecture. The
//! GNN is fine-tuned with 400 random programs labeled on the new
//! architecture, then PT-Map is compared against MapZero, IP, and PBP.

use ptmap_arch::presets;
use ptmap_baselines::{Baseline, Ip, MapZero, Pbp};
use ptmap_bench::suite::ptmap_with;
use ptmap_bench::{geomean, trained_model, Scale};
use ptmap_eval::RankMode;
use ptmap_gnn::dataset::{generate_dataset, DatasetConfig};
use ptmap_gnn::model::GnnVariant;
use ptmap_gnn::train::{train, TrainConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    app: String,
    mapper: String,
    cycles: Option<u64>,
}

fn main() {
    let arch = presets::hrea4();
    // Fine-tune the pre-trained model with 400 random programs on the
    // unseen architecture (the paper's recipe).
    let mut gnn = trained_model(GnnVariant::Full, Scale::full());
    let tune = generate_dataset(&DatasetConfig {
        samples: 400,
        archs: vec![arch.clone()],
        seed: 77,
        ..DatasetConfig::default()
    });
    train(
        &mut gnn,
        &tune,
        &TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        },
    );

    let mut rows = Vec::new();
    let mut per_mapper: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "app", "MapZero", "IP", "PBP", "PT-Map"
    );
    for (app, program) in ptmap_bench::apps() {
        let mut results: Vec<(String, Option<u64>)> = Vec::new();
        results.push((
            "MapZero".into(),
            MapZero::default()
                .run(&program, &arch)
                .ok()
                .map(|r| r.cycles),
        ));
        results.push((
            "IP".into(),
            Ip::default().run(&program, &arch).ok().map(|r| r.cycles),
        ));
        results.push((
            "PBP".into(),
            Pbp::default().run(&program, &arch).ok().map(|r| r.cycles),
        ));
        let ptmap = ptmap_with(gnn.clone(), RankMode::Performance);
        results.push((
            "PT-Map".into(),
            ptmap.compile(&program, &arch).ok().map(|r| r.cycles),
        ));
        let pt = results.last().and_then(|(_, c)| *c);
        let mut cells = Vec::new();
        for (mapper, cycles) in &results {
            let speedup = match (pt, cycles) {
                (Some(p), Some(c)) => Some(*c as f64 / p as f64),
                _ => None,
            };
            cells.push(
                speedup
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "fail".into()),
            );
            if let Some(s) = speedup {
                per_mapper.entry(mapper.clone()).or_default().push(s);
            }
            rows.push(Row {
                app: app.to_string(),
                mapper: mapper.clone(),
                cycles: *cycles,
            });
        }
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10}",
            app, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\nPT-Map geomean speedups on the unseen architecture:");
    for mapper in ["MapZero", "IP", "PBP"] {
        let g = geomean(per_mapper.get(mapper).map(Vec::as_slice).unwrap_or(&[]));
        println!("  vs {mapper:<8}: {g:.2}x");
    }
    ptmap_bench::write_json("generality.json", &rows);
}
