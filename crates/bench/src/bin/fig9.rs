//! Fig. 9: PT-Map compilation time per application and architecture.
//!
//! All compilations run through the batch pipeline: a cold run measures
//! real compile times (recorded in the cached reports), a warm re-run
//! serves everything from `results/ptmap-cache`. Stage-level timings go
//! to `results/fig9_metrics.json`.

use ptmap_bench::{ptmap_app_batch, trained_model, Scale};
use ptmap_eval::RankMode;
use ptmap_gnn::model::GnnVariant;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    arch: String,
    app: String,
    seconds: f64,
    candidates: usize,
}

fn main() {
    let gnn = trained_model(GnnVariant::Full, Scale::full());
    let outcomes = ptmap_app_batch(&gnn, RankMode::Performance, "fig9_metrics.json");
    let mut rows = Vec::new();
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8}",
        "app", "S4", "R4", "H6", "SL8"
    );
    let archs = ptmap_bench::archs();
    for (app, _program) in ptmap_bench::apps() {
        let mut cells = Vec::new();
        for arch in &archs {
            match &outcomes[&format!("{app}@{}", arch.name())].report {
                Some(r) => {
                    cells.push(format!("{:.2}s", r.compile_seconds));
                    rows.push(Row {
                        arch: arch.name().to_string(),
                        app: app.to_string(),
                        seconds: r.compile_seconds,
                        candidates: r.candidates_explored,
                    });
                }
                None => cells.push("fail".into()),
            }
        }
        println!(
            "{:<6} {:>8} {:>8} {:>8} {:>8}",
            app, cells[0], cells[1], cells[2], cells[3]
        );
    }
    if let Some(worst) = rows.iter().max_by(|a, b| a.seconds.total_cmp(&b.seconds)) {
        println!(
            "\nlongest case: {} on {} ({:.2}s, {} candidates)",
            worst.app, worst.arch, worst.seconds, worst.candidates
        );
    }
    ptmap_bench::write_json("fig9.json", &rows);
}
