//! Fig. 6: model accuracy (MAPE of predicted computation cycles) on the
//! real benchmark, per architecture:
//!
//! * PBP — the MII-based analytical model;
//! * GNN-b — base features only;
//! * GNN-c — no Kronecker/Hadamard alignment;
//! * GNN-e — direct regression without the three sub-tasks;
//! * GNN-PT-Map — the full model.

use ptmap_bench::{fig6::real_benchmark_samples, trained_model, Scale};
use ptmap_gnn::model::GnnVariant;
use ptmap_gnn::train::{mape_cycles, mape_cycles_mii};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    arch: String,
    model: String,
    mape: f64,
    samples: usize,
}

fn main() {
    let scale = Scale::full();
    let per_app: usize = std::env::var("PTMAP_FIG6_PER_APP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let variants = [
        ("GNN-b", GnnVariant::Basic),
        ("GNN-c", GnnVariant::NoAlign),
        ("GNN-e", GnnVariant::Direct),
        ("GNN-PT-Map", GnnVariant::Full),
    ];
    // Train (or load) each variant once on the synthetic set.
    let models: Vec<_> = variants
        .iter()
        .map(|&(name, v)| (name, trained_model(v, scale)))
        .collect();

    let mut rows = Vec::new();
    println!(
        "{:<6} {:<12} {:>8} {:>9}",
        "arch", "model", "MAPE %", "samples"
    );
    for arch in ptmap_bench::archs() {
        let samples = real_benchmark_samples(&arch, per_app);
        let mii_mape = mape_cycles_mii(&samples);
        println!(
            "{:<6} {:<12} {:>8.1} {:>9}",
            arch.name(),
            "PBP",
            mii_mape,
            samples.len()
        );
        rows.push(Row {
            arch: arch.name().to_string(),
            model: "PBP".into(),
            mape: mii_mape,
            samples: samples.len(),
        });
        for (name, model) in &models {
            let mape = mape_cycles(model, &samples);
            println!(
                "{:<6} {:<12} {:>8.1} {:>9}",
                arch.name(),
                name,
                mape,
                samples.len()
            );
            rows.push(Row {
                arch: arch.name().to_string(),
                model: (*name).into(),
                mape,
                samples: samples.len(),
            });
        }
    }
    ptmap_bench::write_json("fig6.json", &rows);
}
