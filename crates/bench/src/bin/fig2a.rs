//! Fig. 2a: PE-array utilization and normalized performance of 24×24×24
//! GEMM under loop unrolling, on 3×3 / 4×4 / 8×8 CGRAs.
//!
//! For each unroll factor the best loop order is chosen by actual
//! mapping (factor 1 = inter-loop transformation only, as in the paper).

use ptmap_arch::presets;
use ptmap_ir::dfg::build_dfg;
use ptmap_mapper::{map_dfg, MapperConfig};
use ptmap_transform::primitives::reorder;
use ptmap_workloads::micro;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    arch: String,
    factor: u32,
    utilization: f64,
    normalized_perf: f64,
    ii: u32,
}

fn main() {
    let program = micro::gemm24();
    let nest0 = program.perfect_nests().remove(0);
    let [i, j, k] = [nest0.loops[0], nest0.loops[1], nest0.loops[2]];
    let orders: Vec<Vec<_>> = vec![
        vec![i, j, k],
        vec![i, k, j],
        vec![k, i, j],
        vec![j, k, i],
        vec![k, j, i],
        vec![j, i, k],
    ];
    // Factor -> unroll split over the two non-pipelined dimensions.
    let splits = [(1u32, 1u32), (2, 1), (2, 2), (4, 2)];
    let mapper = MapperConfig::default();
    let mut rows = Vec::new();

    println!(
        "{:<8} {:>7} {:>13} {:>11} {:>5}",
        "arch", "factor", "utilization", "norm perf", "II"
    );
    for (rows_n, cols_n) in [(3u32, 3u32), (4, 4), (8, 8)] {
        let arch = presets::mesh(rows_n, cols_n, 2);
        let mut base_cycles = None;
        for (fa, fb) in splits {
            let factor = fa * fb;
            // Best (order, mapping) by actual cycles.
            let mut best: Option<(u64, f64, u32)> = None;
            for order in &orders {
                let Ok(p) = reorder(&program, nest0.loops[0], order) else {
                    continue;
                };
                let nest = p.perfect_nests().remove(0);
                let (d0, d1) = (nest.loops[0], nest.loops[1]);
                let unroll: Vec<(ptmap_ir::LoopId, u32)> = [(d0, fa), (d1, fb)]
                    .into_iter()
                    .filter(|&(_, f)| f > 1)
                    .collect();
                let Ok(dfg) = build_dfg(&p, &nest, &unroll) else {
                    continue;
                };
                let Ok(m) = map_dfg(&dfg, &arch, &mapper) else {
                    continue;
                };
                let eff_pipelined = nest.pipelined_tripcount();
                let launches = nest.folded_tripcount() / (fa as u64 * fb as u64);
                let cycles = m.cycles(eff_pipelined) * launches.max(1);
                if best.as_ref().is_none_or(|b| cycles < b.0) {
                    best = Some((cycles, m.utilization(), m.ii));
                }
            }
            let Some((cycles, util, ii)) = best else {
                println!(
                    "{:<8} {:>7} {:>13} {:>11}",
                    arch.name(),
                    factor,
                    "fail",
                    "-"
                );
                continue;
            };
            let base = *base_cycles.get_or_insert(cycles);
            let norm = base as f64 / cycles as f64;
            println!(
                "{:<8} {:>7} {:>12.1}% {:>11.2} {:>5}",
                arch.name(),
                factor,
                util * 100.0,
                norm,
                ii
            );
            rows.push(Row {
                arch: arch.name().to_string(),
                factor,
                utilization: util,
                normalized_perf: norm,
                ii,
            });
        }
    }
    ptmap_bench::write_json("fig2a.json", &rows);
}
