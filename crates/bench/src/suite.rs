//! Running every mapper on an (app, architecture) pair.

use ptmap_arch::CgraArch;
use ptmap_baselines::{Al, Am, Baseline, Ip, Lisa, MapZero, Pbp, Ramp};
use ptmap_core::{CompileReport, PtMap, PtMapConfig};
use ptmap_eval::{GnnPredictor, RankMode};
use ptmap_gnn::PtMapGnn;
use ptmap_ir::Program;
use serde::{Deserialize, Serialize};

/// One mapper's outcome on one (app, arch) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapperResult {
    /// Mapper label.
    pub mapper: String,
    /// Total simulated cycles (`None` = fail).
    pub cycles: Option<u64>,
    /// Energy-delay product.
    pub edp: Option<f64>,
    /// Off-CGRA volume (bytes).
    pub volume: Option<u64>,
    /// Compilation wall-clock time.
    pub compile_seconds: f64,
}

impl MapperResult {
    fn from_report(mapper: &str, r: Result<CompileReport, ptmap_core::PtMapError>) -> Self {
        MapperResult::from_option(mapper, r.ok())
    }

    /// Builds a row from an optional report (`None` = fail) — the shape
    /// batch-pipeline outcomes arrive in.
    pub fn from_option(mapper: &str, r: Option<CompileReport>) -> Self {
        match r {
            Some(r) => MapperResult {
                mapper: mapper.to_string(),
                cycles: Some(r.cycles),
                edp: Some(r.edp),
                volume: Some(r.pnls.iter().map(|p| p.volume).sum()),
                compile_seconds: r.compile_seconds,
            },
            None => MapperResult {
                mapper: mapper.to_string(),
                cycles: None,
                edp: None,
                volume: None,
                compile_seconds: 0.0,
            },
        }
    }
}

/// Builds a PT-Map instance around a trained GNN.
pub fn ptmap_with(model: PtMapGnn, mode: RankMode) -> PtMap {
    let config = PtMapConfig {
        mode,
        ..PtMapConfig::default()
    };
    PtMap::new(Box::new(GnnPredictor::new(model)), config)
}

/// Which mappers to include in a suite run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapperSet {
    /// RAMP / LISA / MapZero / IP / PBP / PT-Map (Fig. 7–8).
    Comparison,
    /// RAMP / AL / AM / PT-Map (Tab. 6).
    Ablation,
}

/// Runs the selected mapper set on one (app, arch) pair. `mode` selects
/// performance or Pareto ranking for the transformation mappers.
pub fn run_suite(
    program: &Program,
    arch: &CgraArch,
    gnn: &PtMapGnn,
    mode: RankMode,
    set: MapperSet,
) -> Vec<MapperResult> {
    let mut out = baseline_suite(program, arch, mode, set);
    let ptmap = ptmap_with(gnn.clone(), mode);
    out.push(MapperResult::from_report(
        "PT-Map",
        ptmap.compile(program, arch),
    ));
    out
}

/// Runs only the baseline mappers of a set — figure binaries that push
/// their PT-Map compilations through the batch pipeline combine this
/// with the batch outcomes.
pub fn baseline_suite(
    program: &Program,
    arch: &CgraArch,
    mode: RankMode,
    set: MapperSet,
) -> Vec<MapperResult> {
    let mut out = Vec::new();
    match set {
        MapperSet::Comparison => {
            out.push(MapperResult::from_report(
                "RAMP",
                Ramp::default().run(program, arch),
            ));
            out.push(MapperResult::from_report(
                "LISA",
                Lisa::default().run(program, arch),
            ));
            out.push(MapperResult::from_report(
                "MapZero",
                MapZero::default().run(program, arch),
            ));
            out.push(MapperResult::from_report(
                "IP",
                Ip {
                    mode,
                    ..Ip::default()
                }
                .run(program, arch),
            ));
            out.push(MapperResult::from_report(
                "PBP",
                Pbp {
                    mode,
                    ..Pbp::default()
                }
                .run(program, arch),
            ));
        }
        MapperSet::Ablation => {
            out.push(MapperResult::from_report(
                "RAMP",
                Ramp::default().run(program, arch),
            ));
            out.push(MapperResult::from_report(
                "AL",
                Al::default().run(program, arch),
            ));
            out.push(MapperResult::from_report(
                "AM",
                Am::default().run(program, arch),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_gnn::model::ModelConfig;

    #[test]
    fn suite_produces_all_rows() {
        let p = ptmap_workloads::micro::gemm(24);
        let gnn = PtMapGnn::new(ModelConfig {
            hidden: 8,
            ..ModelConfig::default()
        });
        let rows = run_suite(
            &p,
            &presets::s4(),
            &gnn,
            RankMode::Performance,
            MapperSet::Comparison,
        );
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.cycles.is_some()), "{rows:?}");
    }
}
