//! Criterion bench for the Fig. 8 EDP experiment: prints a reduced
//! EDP series at both DB capacities on one app and times the
//! Pareto-mode compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use ptmap_arch::presets;
use ptmap_bench::suite::ptmap_with;
use ptmap_eval::RankMode;
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let gnn = PtMapGnn::new(ModelConfig {
        hidden: 8,
        variant: GnnVariant::Full,
        ..ModelConfig::default()
    });
    let (app, program) = ptmap_bench::apps().remove(2); // COV
    println!("[fig8 reduced] {app} Pareto-mode EDP:");
    let base = presets::s4();
    for scale in [1u64, 2] {
        let arch = base.with_db_bytes(base.db_bytes() * scale);
        let ptmap = ptmap_with(gnn.clone(), RankMode::Pareto);
        if let Ok(r) = ptmap.compile(&program, &arch) {
            println!("  DB x{scale}: EDP {:.3e}", r.edp);
        }
    }
    let arch = presets::s4();
    c.bench_function("fig8_pareto_compile_cov_s4", |b| {
        b.iter(|| {
            let ptmap = ptmap_with(gnn.clone(), RankMode::Pareto);
            black_box(ptmap.compile(&program, &arch).map(|r| r.edp))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
