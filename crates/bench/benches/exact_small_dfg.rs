//! Microbenchmark for the exact branch-and-bound backend on the small
//! DFGs it is meant for (the optimality-gap study in EXPERIMENTS.md).
//!
//! This is deliberately a *separate* bench from `mapper_hotpath`: the
//! heuristic hot path must stay unchanged within noise across the
//! backend refactor, so its bench is untouched and the exact backend
//! gets its own guard here. Each case also benches the heuristic on
//! the same DFG so a regression in the shared placement/routing stack
//! shows up in both.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ptmap_arch::presets;
use ptmap_exact::ExactBackend;
use ptmap_governor::Budget;
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::{Dfg, Program, ProgramBuilder};
use ptmap_mapper::{map_dfg, MapperBackend, MapperConfig};
use ptmap_trace::Tracer;

fn vecsum(n: u64) -> Program {
    let mut b = ProgramBuilder::new("vecsum");
    let x = b.array("X", &[n]);
    let y = b.array("Y", &[n]);
    let z = b.array("Z", &[n]);
    let i = b.open_loop("i", n);
    let v = b.add(b.load(x, &[b.idx(i)]), b.load(y, &[b.idx(i)]));
    b.store(z, &[b.idx(i)], v);
    b.close_loop();
    b.finish()
}

fn gemm(n: u64) -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[n, n]);
    let bb = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let i = b.open_loop("i", n);
    let j = b.open_loop("j", n);
    let k = b.open_loop("k", n);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bb, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.finish()
}

fn identity_dfg(p: &Program) -> Dfg {
    let nest = p.perfect_nests().remove(0);
    build_dfg(p, &nest, &[]).unwrap()
}

fn exact_small_dfg(c: &mut Criterion) {
    let cfg = MapperConfig::default();
    // Kept to DFGs whose proof finishes in tens of milliseconds; the
    // sweep blows up combinatorially on larger arrays (gemm on SL8 is
    // already seconds per proof), which belongs in EXPERIMENTS.md runs,
    // not a per-commit guard.
    let cases = vec![
        ("vecsum16_s4", identity_dfg(&vecsum(16)), presets::s4()),
        ("gemm8_s4", identity_dfg(&gemm(8)), presets::s4()),
    ];
    let budget = Budget::unlimited();
    let tracer = Tracer::disabled();
    for (name, dfg, arch) in &cases {
        c.bench_function(&format!("exact/{name}"), |b| {
            b.iter(|| {
                ExactBackend
                    .map(black_box(dfg), arch, &cfg, &budget, &tracer)
                    .unwrap()
            });
        });
        c.bench_function(&format!("heuristic/{name}"), |b| {
            b.iter(|| map_dfg(black_box(dfg), arch, &cfg).unwrap());
        });
    }
}

criterion_group!(benches, exact_small_dfg);
criterion_main!(benches);
