//! Criterion bench for the Fig. 7 performance comparison: prints a
//! reduced mapper-vs-mapper series on one app/arch and times a full
//! PT-Map compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use ptmap_arch::presets;
use ptmap_bench::suite::{run_suite, MapperSet};
use ptmap_eval::RankMode;
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Untrained-but-structured GNN keeps the smoke run self-contained;
    // the fig7 binary uses the trained model.
    let gnn = PtMapGnn::new(ModelConfig {
        hidden: 8,
        variant: GnnVariant::Full,
        ..ModelConfig::default()
    });
    let arch = presets::s4();
    let (app, program) = ptmap_bench::apps().remove(4); // TMM
    let rows = run_suite(
        &program,
        &arch,
        &gnn,
        RankMode::Performance,
        MapperSet::Comparison,
    );
    println!("[fig7 reduced] {app} on {}:", arch.name());
    for r in &rows {
        println!(
            "  {:<8} {}",
            r.mapper,
            r.cycles
                .map(|c| c.to_string())
                .unwrap_or_else(|| "fail".into())
        );
    }
    c.bench_function("fig7_ptmap_compile_tmm_s4", |b| {
        b.iter(|| {
            let ptmap = ptmap_bench::suite::ptmap_with(gnn.clone(), RankMode::Performance);
            black_box(ptmap.compile(&program, &arch).map(|r| r.cycles))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
