//! Criterion bench for the Fig. 9 compilation-time measurement: the
//! measured quantity *is* the compile time, so this bench times the
//! pipeline stages separately (exploration vs evaluation vs context
//! generation) for one app.

use criterion::{criterion_group, criterion_main, Criterion};
use ptmap_arch::presets;
use ptmap_eval::{evaluate_forest, AnalyticalPredictor, EvalConfig};
use ptmap_transform::{explore, ExploreConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (app, program) = ptmap_bench::apps().remove(7); // HAR (the paper's longest case)
    let arch = presets::sl8();
    println!("[fig9 reduced] staging {app} on SL8");
    c.bench_function("fig9_explore_har", |b| {
        b.iter(|| black_box(explore(&program, &ExploreConfig::default()).candidate_count()))
    });
    let forest = explore(&program, &ExploreConfig::default());
    c.bench_function("fig9_evaluate_har_sl8", |b| {
        b.iter(|| {
            let eval =
                evaluate_forest(&forest, &arch, &AnalyticalPredictor, &EvalConfig::default());
            black_box(eval.variants.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
