//! Criterion bench for Tab. 5: prints the app/#PNL table and times LIT
//! construction plus PNL extraction across the whole benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use ptmap_transform::Lit;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("[tab5] app -> #PNLs:");
    for (name, program) in ptmap_bench::apps() {
        println!("  {name}: {}", Lit::build(&program).pnl_count());
    }
    let apps = ptmap_bench::apps();
    c.bench_function("tab5_lit_and_pnl_extraction_all_apps", |b| {
        b.iter(|| {
            let total: usize = apps
                .iter()
                .map(|(_, p)| Lit::build(black_box(p)).pnl_count())
                .sum();
            black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
