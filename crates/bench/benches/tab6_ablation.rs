//! Criterion bench for the Tab. 6 ablation: prints a reduced
//! RAMP/AL/AM/PT-Map row for one app on SL8 and times the AL tuner.

use criterion::{criterion_group, criterion_main, Criterion};
use ptmap_arch::presets;
use ptmap_baselines::{Al, Baseline};
use ptmap_bench::suite::{run_suite, MapperSet};
use ptmap_eval::RankMode;
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let gnn = PtMapGnn::new(ModelConfig {
        hidden: 8,
        variant: GnnVariant::Full,
        ..ModelConfig::default()
    });
    let arch = presets::sl8();
    let (app, program) = ptmap_bench::apps().remove(4); // TMM
    let rows = run_suite(
        &program,
        &arch,
        &gnn,
        RankMode::Performance,
        MapperSet::Ablation,
    );
    println!("[tab6 reduced] {app} on SL8:");
    for r in &rows {
        println!(
            "  {:<8} {}",
            r.mapper,
            r.cycles
                .map(|c| c.to_string())
                .unwrap_or_else(|| "fail".into())
        );
    }
    c.bench_function("tab6_al_tuning_budget8", |b| {
        b.iter(|| {
            let al = Al {
                budget: 8,
                ..Al::default()
            };
            black_box(al.run(&program, &arch).map(|r| r.cycles))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
