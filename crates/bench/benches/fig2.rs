//! Criterion bench for the Fig. 2 motivation experiments: times the
//! unrolled-GEMM mapping (2a) and prints a reduced version of both
//! series (2a utilization sweep, 2b MII-model accuracy).

use criterion::{criterion_group, criterion_main, Criterion};
use ptmap_arch::presets;
use ptmap_ir::dfg::build_dfg;
use ptmap_mapper::{map_dfg, mii, MapperConfig};
use ptmap_workloads::micro;
use std::hint::black_box;

fn print_series() {
    let program = micro::gemm24();
    let nest = program.perfect_nests().remove(0);
    let (i, j) = (nest.loops[0], nest.loops[1]);
    let arch = presets::mesh(8, 8, 2);
    println!("[fig2a reduced] 24^3 GEMM on 8x8:");
    for (fa, fb) in [(1u32, 1u32), (2, 1), (2, 2), (4, 2)] {
        let unroll: Vec<_> = [(i, fa), (j, fb)]
            .into_iter()
            .filter(|&(_, f)| f > 1)
            .collect();
        let dfg = build_dfg(&program, &nest, &unroll).unwrap();
        if let Ok(m) = map_dfg(&dfg, &arch, &MapperConfig::default()) {
            println!(
                "  factor {}: utilization {:.1}%, II {}",
                fa * fb,
                m.utilization() * 100.0,
                m.ii
            );
        }
    }
    let vr = micro::vec_reduction(1024);
    let vnest = vr.perfect_nests().remove(0);
    println!("[fig2b reduced] vector reduction on 221:");
    let arch = &presets::fig2b_family()[1];
    for f in [1u32, 4] {
        let unroll: Vec<_> = if f > 1 {
            vec![(vnest.pipelined_loop(), f)]
        } else {
            Vec::new()
        };
        let dfg = build_dfg(&vr, &vnest, &unroll).unwrap();
        let bound = mii(&dfg, arch);
        if let Ok(m) = map_dfg(&dfg, arch, &MapperConfig::default()) {
            println!("  factor {f}: MII {bound}, actual II {}", m.ii);
        }
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let program = micro::gemm24();
    let nest = program.perfect_nests().remove(0);
    let (i, j) = (nest.loops[0], nest.loops[1]);
    let arch = presets::mesh(8, 8, 2);
    let dfg = build_dfg(&program, &nest, &[(i, 2), (j, 2)]).unwrap();
    c.bench_function("fig2a_map_unrolled_gemm_8x8", |b| {
        b.iter(|| {
            let m = map_dfg(black_box(&dfg), &arch, &MapperConfig::default()).unwrap();
            black_box(m.ii)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
