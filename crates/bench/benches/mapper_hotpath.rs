//! Microbenchmark for the modulo-scheduling mapper's hot path.
//!
//! PT-Map calls `map_dfg` once per transformed candidate per kernel, so
//! the router's inner loop dominates batch compile time. The cases here
//! are the routing-dominated ones the ISSUE targets: unrolled gemm on
//! the homogeneous S4 (tight capacity, lots of contention) and the
//! large SL8 (long routes across a 8x8 array), plus a high-fanout
//! kernel that stresses shared route trees.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ptmap_arch::presets;
use ptmap_ir::dfg::build_dfg;
use ptmap_ir::{Dfg, Program, ProgramBuilder};
use ptmap_mapper::{map_dfg, MapperConfig, Speculation};

fn gemm(n: u64) -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[n, n]);
    let bb = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let i = b.open_loop("i", n);
    let j = b.open_loop("j", n);
    let k = b.open_loop("k", n);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bb, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.finish()
}

fn fanout(width: usize) -> Program {
    let mut b = ProgramBuilder::new("fanout");
    let x = b.array("X", &[256]);
    let outs: Vec<_> = (0..width)
        .map(|k| b.array(format!("O{k}"), &[256]))
        .collect();
    let i = b.open_loop("i", 256);
    for (k, &o) in outs.iter().enumerate() {
        let v = b.add(b.load(x, &[b.idx(i)]), b.constant(k as i64 + 1));
        b.store(o, &[b.idx(i)], v);
    }
    b.close_loop();
    b.finish()
}

fn unrolled_dfg(p: &Program, factors: &[(usize, u32)]) -> Dfg {
    let nest = p.perfect_nests().remove(0);
    let unroll: Vec<_> = factors.iter().map(|&(l, f)| (nest.loops[l], f)).collect();
    build_dfg(p, &nest, &unroll).unwrap()
}

fn mapper_hotpath(c: &mut Criterion) {
    let cfg = MapperConfig::default();
    let gemm24 = gemm(24);
    let cases = vec![
        (
            "gemm24_u2x2_s4",
            unrolled_dfg(&gemm24, &[(0, 2), (1, 2)]),
            presets::s4(),
        ),
        (
            "gemm24_u2x2_sl8",
            unrolled_dfg(&gemm24, &[(0, 2), (1, 2)]),
            presets::sl8(),
        ),
        (
            "gemm24_u4x2_sl8",
            unrolled_dfg(&gemm24, &[(0, 4), (1, 2)]),
            presets::sl8(),
        ),
        (
            "fanout8_u2_s4",
            unrolled_dfg(&fanout(8), &[(0, 2)]),
            presets::s4(),
        ),
    ];
    for (name, dfg, arch) in &cases {
        c.bench_function(&format!("map_dfg/{name}"), |b| {
            b.iter(|| map_dfg(black_box(dfg), arch, &cfg).unwrap());
        });
    }
    // The speculative ladder on the same cases, under separate bench
    // IDs so the sequential `map_dfg/*` baselines stay comparable
    // across revisions. Mappings are bit-identical (CI-gated); only
    // wall clock may differ, and only on cases that escalate past the
    // MII.
    let spec = MapperConfig::default().with_speculation(Speculation::Fixed(4));
    for (name, dfg, arch) in &cases {
        c.bench_function(&format!("map_dfg_speculate4/{name}"), |b| {
            b.iter(|| map_dfg(black_box(dfg), arch, &spec).unwrap());
        });
    }
}

criterion_group!(benches, mapper_hotpath);
criterion_main!(benches);
