//! Criterion bench for the Fig. 6 model-accuracy experiment: trains a
//! reduced GNN, prints the MAPE comparison on one architecture, and
//! times a single model inference.

use criterion::{criterion_group, criterion_main, Criterion};
use ptmap_arch::presets;
use ptmap_bench::{fig6::real_benchmark_samples, synthetic_dataset, Scale};
use ptmap_gnn::model::{GnnVariant, ModelConfig, PtMapGnn};
use ptmap_gnn::train::{mape_cycles, mape_cycles_mii, train, TrainConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let data = synthetic_dataset(scale);
    let mut model = PtMapGnn::new(ModelConfig {
        hidden: 16,
        variant: GnnVariant::Full,
        ..ModelConfig::default()
    });
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: scale.epochs,
            ..TrainConfig::default()
        },
    );
    let samples = real_benchmark_samples(&presets::s4(), 2);
    println!(
        "[fig6 reduced] S4: PBP(MII) {:.1}% vs GNN {:.1}% MAPE ({} samples)",
        mape_cycles_mii(&samples),
        mape_cycles(&model, &samples),
        samples.len()
    );
    let input = &samples[0].input;
    c.bench_function("fig6_gnn_inference", |b| {
        b.iter(|| black_box(model.predict(black_box(input))))
    });
    c.bench_function("fig6_training_epoch", |b| {
        b.iter(|| {
            let mut m = model.clone();
            train(
                &mut m,
                &data[..20],
                &TrainConfig {
                    epochs: 1,
                    ..TrainConfig::default()
                },
            );
            black_box(m.param_count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
