//! The PT-Map evaluation workloads.
//!
//! Three groups, matching the paper's benchmark table (Tab. 5):
//!
//! * [`apps`] — the eleven loop-intensive applications: `gemver`,
//!   `trisolv`, `covariance`, `doitgen`, `3mm`, `atax` (PolyBench/C 3.2),
//!   `blur2d`, `harris` (image processing), and `conv`, `tconv`,
//!   `winograd` (deep learning);
//! * [`micro`] — the motivation microbenchmarks: the 24×24×24 GEMM of
//!   Fig. 2a and the vector reduction of Fig. 2b;
//! * [`randgen`] — the random single-level-loop program generator used
//!   to build the GNN training set (Tab. 4): scalars, arrays, affine
//!   accesses and common arithmetic without complex control flow.
//!
//! Triangular iteration domains (trisolv, covariance) are modeled with
//! their average tripcounts — see DESIGN.md; this preserves the cycle
//! and volume totals the models consume while keeping loops rectangular.
//!
//! # Example
//!
//! ```
//! let (name, program) = ptmap_workloads::apps::all()[0].clone();
//! assert_eq!(name, "GEM");
//! assert!(!program.perfect_nests().is_empty());
//! ```

pub mod apps;
pub mod apps_extra;
pub mod micro;
pub mod randgen;

pub use randgen::{RandomProgramConfig, RandomProgramGenerator};
