//! The eleven evaluation applications (Tab. 5).
//!
//! Sizes are chosen so each program comfortably exceeds the on-chip data
//! buffers (4–8 KiB) while keeping simulation fast. Triangular domains
//! are rectangularized (see crate docs).

use ptmap_ir::{Program, ProgramBuilder};

/// Matrix dimension for the dense linear-algebra kernels.
pub const N: u64 = 64;
/// Image side for the vision kernels.
pub const IMG: u64 = 64;

/// gemver (GEM): `A += u1 v1' + u2 v2'; x += beta A' y; x += z; w += alpha A x`.
pub fn gemver() -> Program {
    let mut b = ProgramBuilder::new("gemver");
    let a = b.array("A", &[N, N]);
    let u1 = b.array("u1", &[N]);
    let v1 = b.array("v1", &[N]);
    let u2 = b.array("u2", &[N]);
    let v2 = b.array("v2", &[N]);
    let x = b.array("x", &[N]);
    let y = b.array("y", &[N]);
    let z = b.array("z", &[N]);
    let w = b.array("w", &[N]);
    let alpha = b.scalar("alpha");
    let beta = b.scalar("beta");

    let i = b.open_loop("i", N);
    let j = b.open_loop("j", N);
    let t1 = b.mul(b.load(u1, &[b.idx(i)]), b.load(v1, &[b.idx(j)]));
    let t2 = b.mul(b.load(u2, &[b.idx(i)]), b.load(v2, &[b.idx(j)]));
    let v = b.add(b.add(b.load(a, &[b.idx(i), b.idx(j)]), t1), t2);
    b.store(a, &[b.idx(i), b.idx(j)], v);
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i2", N);
    let j = b.open_loop("j2", N);
    let t = b.mul(
        b.read_scalar(beta),
        b.mul(b.load(a, &[b.idx(j), b.idx(i)]), b.load(y, &[b.idx(j)])),
    );
    let v = b.add(b.load(x, &[b.idx(i)]), t);
    b.store(x, &[b.idx(i)], v);
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i3", N);
    let v = b.add(b.load(x, &[b.idx(i)]), b.load(z, &[b.idx(i)]));
    b.store(x, &[b.idx(i)], v);
    b.close_loop();

    let i = b.open_loop("i4", N);
    let j = b.open_loop("j4", N);
    let t = b.mul(
        b.read_scalar(alpha),
        b.mul(b.load(a, &[b.idx(i), b.idx(j)]), b.load(x, &[b.idx(j)])),
    );
    let v = b.add(b.load(w, &[b.idx(i)]), t);
    b.store(w, &[b.idx(i)], v);
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// trisolv (TRI): forward substitution `x = L \ b` (triangular inner loop
/// rectangularized to the average tripcount `N/2`).
pub fn trisolv() -> Program {
    let mut b = ProgramBuilder::new("trisolv");
    let l = b.array("L", &[N, N]);
    let x = b.array("x", &[N]);
    let bb = b.array("b", &[N]);

    let i = b.open_loop("i", N);
    b.store(x, &[b.idx(i)], b.load(bb, &[b.idx(i)]));
    let j = b.open_loop("j", N / 2);
    let t = b.mul(b.load(l, &[b.idx(i), b.idx(j)]), b.load(x, &[b.idx(j)]));
    let v = b.sub(b.load(x, &[b.idx(i)]), t);
    b.store(x, &[b.idx(i)], v);
    b.close_loop();
    let v = b.binary(
        ptmap_ir::OpKind::Div,
        b.load(x, &[b.idx(i)]),
        b.load(l, &[b.idx(i), b.idx(i)]),
    );
    b.store(x, &[b.idx(i)], v);
    b.close_loop();

    b.finish()
}

/// covariance (COV): column means, centering, and the covariance matrix.
pub fn covariance() -> Program {
    let mut b = ProgramBuilder::new("covariance");
    let data = b.array("data", &[N, N]);
    let mean = b.array("mean", &[N]);
    let cov = b.array("cov", &[N, N]);

    let j = b.open_loop("j", N);
    let i = b.open_loop("i", N);
    let v = b.add(
        b.load(mean, &[b.idx(j)]),
        b.load(data, &[b.idx(i), b.idx(j)]),
    );
    b.store(mean, &[b.idx(j)], v);
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i2", N);
    let j = b.open_loop("j2", N);
    let v = b.sub(
        b.load(data, &[b.idx(i), b.idx(j)]),
        b.load(mean, &[b.idx(j)]),
    );
    b.store(data, &[b.idx(i), b.idx(j)], v);
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i3", N);
    let j = b.open_loop("j3", N);
    let k = b.open_loop("k3", N);
    let t = b.mul(
        b.load(data, &[b.idx(k), b.idx(i)]),
        b.load(data, &[b.idx(k), b.idx(j)]),
    );
    let v = b.add(b.load(cov, &[b.idx(i), b.idx(j)]), t);
    b.store(cov, &[b.idx(i), b.idx(j)], v);
    b.close_loop();
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// doitgen (DOI): multi-resolution analysis kernel
/// `sum[p] = Σ_s A[r][q][s] C4[s][p]`, then copy-back.
pub fn doitgen() -> Program {
    const NR: u64 = 16;
    let mut b = ProgramBuilder::new("doitgen");
    let a = b.array("A", &[NR, NR, NR]);
    let c4 = b.array("C4", &[NR, NR]);
    let sum = b.array("sum", &[NR, NR, NR]);

    let r = b.open_loop("r", NR);
    let q = b.open_loop("q", NR);
    let p = b.open_loop("p", NR);
    let s = b.open_loop("s", NR);
    let t = b.mul(
        b.load(a, &[b.idx(r), b.idx(q), b.idx(s)]),
        b.load(c4, &[b.idx(s), b.idx(p)]),
    );
    let v = b.add(b.load(sum, &[b.idx(r), b.idx(q), b.idx(p)]), t);
    b.store(sum, &[b.idx(r), b.idx(q), b.idx(p)], v);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.close_loop();

    let r = b.open_loop("r2", NR);
    let q = b.open_loop("q2", NR);
    let p = b.open_loop("p2", NR);
    b.store(
        a,
        &[b.idx(r), b.idx(q), b.idx(p)],
        b.load(sum, &[b.idx(r), b.idx(q), b.idx(p)]),
    );
    b.close_loop();
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// 3mm (TMM): `G = (A·B) · (C·D)` as three chained matrix products.
pub fn three_mm() -> Program {
    const M: u64 = 32;
    let mut b = ProgramBuilder::new("3mm");
    let names = ["A", "B", "E", "C", "D", "F", "G"];
    let ids: Vec<_> = names.iter().map(|n| b.array(*n, &[M, M])).collect();
    let (a, bb, e, c, d, f, g) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);

    for (out, lhs, rhs, tag) in [(e, a, bb, "1"), (f, c, d, "2"), (g, e, f, "3")] {
        let i = b.open_loop(format!("i{tag}"), M);
        let j = b.open_loop(format!("j{tag}"), M);
        let k = b.open_loop(format!("k{tag}"), M);
        let t = b.mul(
            b.load(lhs, &[b.idx(i), b.idx(k)]),
            b.load(rhs, &[b.idx(k), b.idx(j)]),
        );
        let v = b.add(b.load(out, &[b.idx(i), b.idx(j)]), t);
        b.store(out, &[b.idx(i), b.idx(j)], v);
        b.close_loop();
        b.close_loop();
        b.close_loop();
    }
    b.finish()
}

/// atax (ATA): `y = Aᵀ (A x)`.
pub fn atax() -> Program {
    let mut b = ProgramBuilder::new("atax");
    let a = b.array("A", &[N, N]);
    let x = b.array("x", &[N]);
    let y = b.array("y", &[N]);
    let tmp = b.array("tmp", &[N]);

    let j = b.open_loop("jinit", N);
    b.store(y, &[b.idx(j)], b.constant(0));
    b.close_loop();

    let i = b.open_loop("i", N);
    let j = b.open_loop("j", N);
    let t = b.mul(b.load(a, &[b.idx(i), b.idx(j)]), b.load(x, &[b.idx(j)]));
    let v = b.add(b.load(tmp, &[b.idx(i)]), t);
    b.store(tmp, &[b.idx(i)], v);
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i2", N);
    let j = b.open_loop("j2", N);
    let t = b.mul(b.load(a, &[b.idx(i), b.idx(j)]), b.load(tmp, &[b.idx(i)]));
    let v = b.add(b.load(y, &[b.idx(j)]), t);
    b.store(y, &[b.idx(j)], v);
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// blur2d (BLU): separable 3-tap box blur (horizontal then vertical pass).
pub fn blur2d() -> Program {
    let mut b = ProgramBuilder::new("blur2d");
    let input = b.array("in", &[IMG, IMG]);
    let tmp = b.array("tmp", &[IMG, IMG]);
    let out = b.array("out", &[IMG, IMG]);
    let one = 1i64;

    let y = b.open_loop("y", IMG);
    let x = b.open_loop("x", IMG - 2);
    let s = b.add(
        b.add(
            b.load(input, &[b.idx(y), b.idx(x)]),
            b.load(input, &[b.idx(y), b.idx(x) + one.into()]),
        ),
        b.load(input, &[b.idx(y), b.idx(x) + 2.into()]),
    );
    b.store(tmp, &[b.idx(y), b.idx(x)], s);
    b.close_loop();
    b.close_loop();

    let y = b.open_loop("y2", IMG - 2);
    let x = b.open_loop("x2", IMG - 2);
    let s = b.add(
        b.add(
            b.load(tmp, &[b.idx(y), b.idx(x)]),
            b.load(tmp, &[b.idx(y) + one.into(), b.idx(x)]),
        ),
        b.load(tmp, &[b.idx(y) + 2.into(), b.idx(x)]),
    );
    b.store(out, &[b.idx(y), b.idx(x)], s);
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// harris (HAR): corner response — gradients, products, box sums, and
/// the determinant/trace response (ample fusion opportunities).
pub fn harris() -> Program {
    let mut b = ProgramBuilder::new("harris");
    let input = b.array("in", &[IMG, IMG]);
    let gx = b.array("Ix", &[IMG, IMG]);
    let gy = b.array("Iy", &[IMG, IMG]);
    let xx = b.array("Ixx", &[IMG, IMG]);
    let yy = b.array("Iyy", &[IMG, IMG]);
    let xy = b.array("Ixy", &[IMG, IMG]);
    let sxx = b.array("Sxx", &[IMG, IMG]);
    let syy = b.array("Syy", &[IMG, IMG]);
    let sxy = b.array("Sxy", &[IMG, IMG]);
    let resp = b.array("resp", &[IMG, IMG]);

    let h = IMG - 2;
    let y = b.open_loop("y", h);
    let x = b.open_loop("x", h);
    let dx = b.sub(
        b.load(input, &[b.idx(y), b.idx(x) + 2.into()]),
        b.load(input, &[b.idx(y), b.idx(x)]),
    );
    b.store(gx, &[b.idx(y), b.idx(x)], dx);
    let dy = b.sub(
        b.load(input, &[b.idx(y) + 2.into(), b.idx(x)]),
        b.load(input, &[b.idx(y), b.idx(x)]),
    );
    b.store(gy, &[b.idx(y), b.idx(x)], dy);
    b.close_loop();
    b.close_loop();

    let y = b.open_loop("y2", h);
    let x = b.open_loop("x2", h);
    let ix = b.load(gx, &[b.idx(y), b.idx(x)]);
    let iy = b.load(gy, &[b.idx(y), b.idx(x)]);
    b.store(xx, &[b.idx(y), b.idx(x)], b.mul(ix.clone(), ix.clone()));
    b.store(yy, &[b.idx(y), b.idx(x)], b.mul(iy.clone(), iy.clone()));
    b.store(xy, &[b.idx(y), b.idx(x)], b.mul(ix, iy));
    b.close_loop();
    b.close_loop();

    let y = b.open_loop("y3", h - 2);
    let x = b.open_loop("x3", h - 2);
    for (src, dst) in [(xx, sxx), (yy, syy), (xy, sxy)] {
        let s = b.add(
            b.add(
                b.load(src, &[b.idx(y), b.idx(x)]),
                b.load(src, &[b.idx(y) + 1.into(), b.idx(x) + 1.into()]),
            ),
            b.load(src, &[b.idx(y) + 2.into(), b.idx(x) + 2.into()]),
        );
        b.store(dst, &[b.idx(y), b.idx(x)], s);
    }
    b.close_loop();
    b.close_loop();

    let y = b.open_loop("y4", h - 2);
    let x = b.open_loop("x4", h - 2);
    let det = b.sub(
        b.mul(
            b.load(sxx, &[b.idx(y), b.idx(x)]),
            b.load(syy, &[b.idx(y), b.idx(x)]),
        ),
        b.mul(
            b.load(sxy, &[b.idx(y), b.idx(x)]),
            b.load(sxy, &[b.idx(y), b.idx(x)]),
        ),
    );
    let trace = b.add(
        b.load(sxx, &[b.idx(y), b.idx(x)]),
        b.load(syy, &[b.idx(y), b.idx(x)]),
    );
    // k * trace^2 with k approximated by a shift (k = 1/16).
    let t2 = b.mul(trace.clone(), trace);
    let kt2 = b.binary(ptmap_ir::OpKind::Shr, t2, b.constant(4));
    b.store(resp, &[b.idx(y), b.idx(x)], b.sub(det, kt2));
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// conv (CON): 3×3 single-channel 2D convolution.
pub fn conv() -> Program {
    let mut b = ProgramBuilder::new("conv");
    let input = b.array("in", &[IMG, IMG]);
    let w = b.array("w", &[3, 3]);
    let out = b.array("out", &[IMG, IMG]);
    let h = IMG - 2;

    let y = b.open_loop("y", h);
    let x = b.open_loop("x", h);
    let ky = b.open_loop("ky", 3);
    let kx = b.open_loop("kx", 3);
    let t = b.mul(
        b.load(input, &[b.idx(y) + b.idx(ky), b.idx(x) + b.idx(kx)]),
        b.load(w, &[b.idx(ky), b.idx(kx)]),
    );
    let v = b.add(b.load(out, &[b.idx(y), b.idx(x)]), t);
    b.store(out, &[b.idx(y), b.idx(x)], v);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// tconv (TCO): 3×3 transposed convolution with stride 2.
pub fn tconv() -> Program {
    const IN: u64 = 32;
    let mut b = ProgramBuilder::new("tconv");
    let input = b.array("in", &[IN, IN]);
    let w = b.array("w", &[3, 3]);
    let out = b.array("out", &[2 * IN + 1, 2 * IN + 1]);

    let y = b.open_loop("y", IN);
    let x = b.open_loop("x", IN);
    let ky = b.open_loop("ky", 3);
    let kx = b.open_loop("kx", 3);
    let t = b.mul(
        b.load(input, &[b.idx(y), b.idx(x)]),
        b.load(w, &[b.idx(ky), b.idx(kx)]),
    );
    let oy = b.idx(y) * 2 + b.idx(ky);
    let ox = b.idx(x) * 2 + b.idx(kx);
    let v = b.add(b.load(out, &[oy.clone(), ox.clone()]), t);
    b.store(out, &[oy, ox], v);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// winograd (WIN): 1-D Winograd F(2,3) — weight transform then the tiled
/// main pass with per-tile temporaries.
pub fn winograd() -> Program {
    let mut b = ProgramBuilder::new("winograd");
    let g = b.array("g", &[3]);
    let gw = b.array("gw", &[4]);
    let input = b.array("in", &[IMG, IMG]);
    let out = b.array("out", &[IMG, IMG]);
    let m0 = b.scalar("m0");
    let m1 = b.scalar("m1");
    let m2 = b.scalar("m2");
    let m3 = b.scalar("m3");

    // Weight transform: gw = G g (4 taps from 3 weights); expressed over
    // a size-4 loop with clamped affine taps approximated by two stmts.
    let t = b.open_loop("t", 2);
    let s = b.add(b.load(g, &[b.idx(t)]), b.load(g, &[b.idx(t) + 1.into()]));
    b.store(gw, &[b.idx(t)], s);
    let s2 = b.sub(b.load(g, &[b.idx(t) + 1.into()]), b.load(g, &[b.idx(t)]));
    b.store(gw, &[b.idx(t) + 2.into()], s2);
    b.close_loop();

    // Main pass: per row, tiles of 2 outputs from 4 inputs.
    let y = b.open_loop("y", IMG);
    let t = b.open_loop("t2", IMG / 2 - 1);
    let d0 = b.load(input, &[b.idx(y), b.idx(t) * 2]);
    let d1 = b.load(input, &[b.idx(y), b.idx(t) * 2 + 1.into()]);
    let d2 = b.load(input, &[b.idx(y), b.idx(t) * 2 + 2.into()]);
    let d3 = b.load(input, &[b.idx(y), b.idx(t) * 2 + 3.into()]);
    b.assign(
        m0,
        b.mul(b.sub(d0, d2.clone()), b.load(gw, &[b.idx(t) - b.idx(t)])),
    );
    b.assign(
        m1,
        b.mul(
            b.add(d1.clone(), d2.clone()),
            b.load(gw, &[AffineExpr::constant(1)]),
        ),
    );
    b.assign(
        m2,
        b.mul(
            b.sub(d2, d1.clone()),
            b.load(gw, &[AffineExpr::constant(2)]),
        ),
    );
    b.assign(
        m3,
        b.mul(b.sub(d1, d3), b.load(gw, &[AffineExpr::constant(3)])),
    );
    let y0 = b.add(
        b.add(b.read_scalar(m0), b.read_scalar(m1)),
        b.read_scalar(m2),
    );
    b.store(out, &[b.idx(y), b.idx(t) * 2], y0);
    let y1 = b.sub(
        b.sub(b.read_scalar(m1), b.read_scalar(m2)),
        b.read_scalar(m3),
    );
    b.store(out, &[b.idx(y), b.idx(t) * 2 + 1.into()], y1);
    b.close_loop();
    b.close_loop();

    b.finish()
}

use ptmap_ir::AffineExpr;

/// All eleven applications with the paper's three-letter codes, in the
/// paper's order.
pub fn all() -> Vec<(&'static str, Program)> {
    vec![
        ("GEM", gemver()),
        ("TRI", trisolv()),
        ("COV", covariance()),
        ("DOI", doitgen()),
        ("TMM", three_mm()),
        ("ATA", atax()),
        ("BLU", blur2d()),
        ("HAR", harris()),
        ("CON", conv()),
        ("TCO", tconv()),
        ("WIN", winograd()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_ir::DependenceSet;

    #[test]
    fn pnl_counts() {
        let counts: Vec<(&str, usize)> = all()
            .iter()
            .map(|(n, p)| (*n, p.perfect_nests().len()))
            .collect();
        let expect = |name: &str| counts.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(expect("GEM"), 4);
        assert_eq!(expect("TRI"), 1);
        assert_eq!(expect("COV"), 3);
        assert_eq!(expect("DOI"), 2);
        assert_eq!(expect("TMM"), 3);
        assert_eq!(expect("ATA"), 3);
        assert_eq!(expect("BLU"), 2);
        assert_eq!(expect("HAR"), 4);
        assert_eq!(expect("CON"), 1);
        assert_eq!(expect("TCO"), 1);
        assert_eq!(expect("WIN"), 2);
    }

    #[test]
    fn all_apps_analyze_cleanly() {
        for (name, p) in all() {
            let deps = DependenceSet::analyze(&p);
            assert!(!p.all_stmts().is_empty(), "{name} has statements");
            // Dependence analysis terminates and produces something
            // sensible (apps with accumulations have reductions).
            let _ = deps.len();
        }
    }

    #[test]
    fn dfgs_build_for_every_pnl() {
        for (name, p) in all() {
            for nest in p.perfect_nests() {
                let dfg = ptmap_ir::dfg::build_dfg(&p, &nest, &[]).unwrap();
                assert!(!dfg.is_empty(), "{name} PNL produced an empty DFG");
                dfg.validate().unwrap_or_else(|e| panic!("{name}: {e:?}"));
            }
        }
    }

    #[test]
    fn footprints_exceed_small_db() {
        // The transformation story needs working sets that stress a
        // 4 KiB DB for at least some apps.
        let big = ["GEM", "COV", "TMM", "BLU", "HAR", "CON"];
        for (name, p) in all() {
            if big.contains(&name) {
                let bytes: u64 = p.arrays().iter().map(|a| a.bytes()).sum();
                assert!(bytes > 4096, "{name} arrays only {bytes} bytes");
            }
        }
    }
}
