//! Additional loop-intensive kernels beyond the paper's eleven apps.
//!
//! Useful for stress-testing the exploration and for downstream users:
//! more PolyBench kernels (`2mm`, `mvt`, `bicg`, `gesummv`, `gemm`
//! itself) and two stencils (`jacobi1d`, `heat3d`-style). All follow the
//! same conventions as [`crate::apps`].

use crate::apps::N;
use ptmap_ir::{Program, ProgramBuilder};

/// 2mm: `D = alpha A B C + beta D` as two chained products.
pub fn two_mm() -> Program {
    const M: u64 = 32;
    let mut b = ProgramBuilder::new("2mm");
    let a = b.array("A", &[M, M]);
    let bb = b.array("B", &[M, M]);
    let tmp = b.array("tmp", &[M, M]);
    let c = b.array("C", &[M, M]);
    let d = b.array("D", &[M, M]);
    let alpha = b.scalar("alpha");
    let beta = b.scalar("beta");

    let i = b.open_loop("i", M);
    let j = b.open_loop("j", M);
    let k = b.open_loop("k", M);
    let t = b.mul(
        b.read_scalar(alpha),
        b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        ),
    );
    let v = b.add(b.load(tmp, &[b.idx(i), b.idx(j)]), t);
    b.store(tmp, &[b.idx(i), b.idx(j)], v);
    b.close_loop();
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i2", M);
    let j = b.open_loop("j2", M);
    b.store(
        d,
        &[b.idx(i), b.idx(j)],
        b.mul(b.read_scalar(beta), b.load(d, &[b.idx(i), b.idx(j)])),
    );
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i3", M);
    let j = b.open_loop("j3", M);
    let k = b.open_loop("k3", M);
    let t = b.mul(
        b.load(tmp, &[b.idx(i), b.idx(k)]),
        b.load(c, &[b.idx(k), b.idx(j)]),
    );
    let v = b.add(b.load(d, &[b.idx(i), b.idx(j)]), t);
    b.store(d, &[b.idx(i), b.idx(j)], v);
    b.close_loop();
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// mvt: `x1 += A y1; x2 += Aᵀ y2`.
pub fn mvt() -> Program {
    let mut b = ProgramBuilder::new("mvt");
    let a = b.array("A", &[N, N]);
    let x1 = b.array("x1", &[N]);
    let x2 = b.array("x2", &[N]);
    let y1 = b.array("y1", &[N]);
    let y2 = b.array("y2", &[N]);

    let i = b.open_loop("i", N);
    let j = b.open_loop("j", N);
    let t = b.mul(b.load(a, &[b.idx(i), b.idx(j)]), b.load(y1, &[b.idx(j)]));
    let v = b.add(b.load(x1, &[b.idx(i)]), t);
    b.store(x1, &[b.idx(i)], v);
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i2", N);
    let j = b.open_loop("j2", N);
    let t = b.mul(b.load(a, &[b.idx(j), b.idx(i)]), b.load(y2, &[b.idx(j)]));
    let v = b.add(b.load(x2, &[b.idx(i)]), t);
    b.store(x2, &[b.idx(i)], v);
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// bicg: `s = Aᵀ r; q = A p`.
pub fn bicg() -> Program {
    let mut b = ProgramBuilder::new("bicg");
    let a = b.array("A", &[N, N]);
    let s = b.array("s", &[N]);
    let q = b.array("q", &[N]);
    let p = b.array("p", &[N]);
    let r = b.array("r", &[N]);

    let i = b.open_loop("i", N);
    let j = b.open_loop("j", N);
    let t = b.mul(b.load(r, &[b.idx(i)]), b.load(a, &[b.idx(i), b.idx(j)]));
    let v = b.add(b.load(s, &[b.idx(j)]), t);
    b.store(s, &[b.idx(j)], v);
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i2", N);
    let j = b.open_loop("j2", N);
    let t = b.mul(b.load(a, &[b.idx(i), b.idx(j)]), b.load(p, &[b.idx(j)]));
    let v = b.add(b.load(q, &[b.idx(i)]), t);
    b.store(q, &[b.idx(i)], v);
    b.close_loop();
    b.close_loop();

    b.finish()
}

/// gesummv: `y = alpha A x + beta B x`.
pub fn gesummv() -> Program {
    let mut b = ProgramBuilder::new("gesummv");
    let a = b.array("A", &[N, N]);
    let bb = b.array("B", &[N, N]);
    let x = b.array("x", &[N]);
    let y = b.array("y", &[N]);
    let tmp = b.array("tmp", &[N]);
    let alpha = b.scalar("alpha");
    let beta = b.scalar("beta");

    let i = b.open_loop("i", N);
    let j = b.open_loop("j", N);
    let t = b.mul(b.load(a, &[b.idx(i), b.idx(j)]), b.load(x, &[b.idx(j)]));
    let v = b.add(b.load(tmp, &[b.idx(i)]), t);
    b.store(tmp, &[b.idx(i)], v);
    let t2 = b.mul(b.load(bb, &[b.idx(i), b.idx(j)]), b.load(x, &[b.idx(j)]));
    let v2 = b.add(b.load(y, &[b.idx(i)]), t2);
    b.store(y, &[b.idx(i)], v2);
    b.close_loop();
    b.close_loop();

    let i = b.open_loop("i2", N);
    let v = b.add(
        b.mul(b.read_scalar(alpha), b.load(tmp, &[b.idx(i)])),
        b.mul(b.read_scalar(beta), b.load(y, &[b.idx(i)])),
    );
    b.store(y, &[b.idx(i)], v);
    b.close_loop();

    b.finish()
}

/// jacobi1d: two sweeps of a 3-point stencil (ping-pong buffers).
pub fn jacobi1d() -> Program {
    const LEN: u64 = 512;
    let mut b = ProgramBuilder::new("jacobi1d");
    let a = b.array("A", &[LEN]);
    let bbuf = b.array("B", &[LEN]);

    for (src, dst, tag) in [(a, bbuf, ""), (bbuf, a, "2")] {
        let i = b.open_loop(format!("i{tag}"), LEN - 2);
        let sum = b.add(
            b.add(
                b.load(src, &[b.idx(i)]),
                b.load(src, &[b.idx(i) + 1.into()]),
            ),
            b.load(src, &[b.idx(i) + 2.into()]),
        );
        // Division by 3 approximated with a shift-friendly weighting.
        let v = b.binary(ptmap_ir::OpKind::Shr, sum, b.constant(1));
        b.store(dst, &[b.idx(i) + 1.into()], v);
        b.close_loop();
    }
    b.finish()
}

/// All extra kernels with short codes.
pub fn all_extra() -> Vec<(&'static str, Program)> {
    vec![
        ("2MM", two_mm()),
        ("MVT", mvt()),
        ("BIC", bicg()),
        ("GSM", gesummv()),
        ("JAC", jacobi1d()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_ir::dfg::build_dfg;

    #[test]
    fn extra_apps_have_expected_pnls() {
        let expect = |name: &str, pnls: usize| {
            let p = all_extra().into_iter().find(|(n, _)| *n == name).unwrap().1;
            assert_eq!(p.perfect_nests().len(), pnls, "{name}");
        };
        expect("2MM", 3);
        expect("MVT", 2);
        expect("BIC", 2);
        expect("GSM", 2);
        expect("JAC", 2);
    }

    #[test]
    fn extra_apps_build_dfgs() {
        for (name, p) in all_extra() {
            for nest in p.perfect_nests() {
                let dfg = build_dfg(&p, &nest, &[]).unwrap();
                dfg.validate().unwrap_or_else(|e| panic!("{name}: {e:?}"));
            }
        }
    }

    #[test]
    fn extra_apps_map_on_s4() {
        use ptmap_ir::DependenceSet;
        for (name, p) in all_extra() {
            let deps = DependenceSet::analyze(&p);
            assert!(
                !deps.is_empty() || p.all_stmts().len() == 1,
                "{name} analyzed"
            );
        }
    }
}
