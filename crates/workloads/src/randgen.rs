//! Random C-like program generator for the GNN training set (Tab. 4).
//!
//! Generates single-level loops over scalars and arrays with affine
//! accesses and common arithmetic/logic operators and no complex control
//! flow — the software half of the synthetic benchmark. Indirect
//! accesses from the paper's generator are outside this IR's affine
//! fragment and are approximated by strided/offset affine accesses
//! (documented in DESIGN.md); they exercise the same DFG shapes.

use ptmap_ir::{OpKind, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the random program generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomProgramConfig {
    /// Minimum statements per program.
    pub min_stmts: usize,
    /// Maximum statements per program.
    pub max_stmts: usize,
    /// Maximum expression depth.
    pub max_depth: usize,
    /// Candidate tripcounts for the single loop.
    pub tripcounts: Vec<u64>,
    /// Probability of emitting a scalar reduction statement.
    pub reduction_prob: f64,
    /// Probability a load reads a shifted (stencil-like) element.
    pub stencil_prob: f64,
}

impl Default for RandomProgramConfig {
    fn default() -> Self {
        RandomProgramConfig {
            min_stmts: 1,
            max_stmts: 4,
            max_depth: 3,
            tripcounts: vec![64, 128, 256, 512, 1024],
            reduction_prob: 0.3,
            stencil_prob: 0.25,
        }
    }
}

/// Deterministic random program generator.
#[derive(Debug)]
pub struct RandomProgramGenerator {
    config: RandomProgramConfig,
    rng: StdRng,
    counter: u64,
}

const BIN_OPS: [OpKind; 9] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mul,
    OpKind::Min,
    OpKind::Max,
    OpKind::And,
    OpKind::Or,
    OpKind::Xor,
    OpKind::Shl,
];

impl RandomProgramGenerator {
    /// Creates a generator with the given seed.
    pub fn new(config: RandomProgramConfig, seed: u64) -> Self {
        RandomProgramGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Generates the next random program.
    pub fn next_program(&mut self) -> Program {
        self.counter += 1;
        let tc = self.config.tripcounts[self.rng.gen_range(0..self.config.tripcounts.len())];
        let mut b = ProgramBuilder::new(format!("rand{}", self.counter));
        let n_arrays = self.rng.gen_range(2..=4usize);
        let arrays: Vec<_> = (0..n_arrays)
            .map(|k| b.array(format!("A{k}"), &[tc + 4]))
            .collect();
        let loop_id = b.open_loop("i", tc);
        let idx = b.idx(loop_id);
        let n_stmts = self
            .rng
            .gen_range(self.config.min_stmts..=self.config.max_stmts);
        for s in 0..n_stmts {
            if self.rng.gen_bool(self.config.reduction_prob) {
                // Scalar reduction: acc = acc op expr.
                let acc = b.scalar(format!("acc{s}"));
                let e = self.expr(&mut b, &arrays, &idx, self.config.max_depth);
                let op = [OpKind::Add, OpKind::Max, OpKind::Xor][self.rng.gen_range(0..3)];
                let v = b.binary(op, b.read_scalar(acc), e);
                b.assign(acc, v);
            } else {
                let target = arrays[self.rng.gen_range(0..arrays.len())];
                let e = self.expr(&mut b, &arrays, &idx, self.config.max_depth);
                b.store(target, std::slice::from_ref(&idx), e);
            }
        }
        b.close_loop();
        b.finish()
    }

    fn expr(
        &mut self,
        b: &mut ProgramBuilder,
        arrays: &[ptmap_ir::ArrayId],
        idx: &ptmap_ir::AffineExpr,
        depth: usize,
    ) -> ptmap_ir::Expr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            // Leaf: load or constant.
            if self.rng.gen_bool(0.8) {
                let a = arrays[self.rng.gen_range(0..arrays.len())];
                let offset = if self.rng.gen_bool(self.config.stencil_prob) {
                    self.rng.gen_range(1..=3i64)
                } else {
                    0
                };
                let e = idx.clone() + ptmap_ir::AffineExpr::constant(offset);
                b.load(a, &[e])
            } else {
                b.constant(self.rng.gen_range(1..=16))
            }
        } else {
            let op = BIN_OPS[self.rng.gen_range(0..BIN_OPS.len())];
            let lhs = self.expr(b, arrays, idx, depth - 1);
            let rhs = self.expr(b, arrays, idx, depth - 1);
            b.binary(op, lhs, rhs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_single_level_pnls() {
        let mut g = RandomProgramGenerator::new(RandomProgramConfig::default(), 7);
        for _ in 0..50 {
            let p = g.next_program();
            let nests = p.perfect_nests();
            assert_eq!(nests.len(), 1);
            assert_eq!(nests[0].depth(), 1);
            assert!(!nests[0].stmts.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RandomProgramGenerator::new(RandomProgramConfig::default(), 42);
        let mut b = RandomProgramGenerator::new(RandomProgramConfig::default(), 42);
        for _ in 0..10 {
            assert_eq!(a.next_program(), b.next_program());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomProgramGenerator::new(RandomProgramConfig::default(), 1);
        let mut b = RandomProgramGenerator::new(RandomProgramConfig::default(), 2);
        let pa: Vec<_> = (0..5).map(|_| a.next_program()).collect();
        let pb: Vec<_> = (0..5).map(|_| b.next_program()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn dfgs_build_and_map_shapes_vary() {
        let mut g = RandomProgramGenerator::new(RandomProgramConfig::default(), 11);
        let mut sizes = std::collections::BTreeSet::new();
        for _ in 0..30 {
            let p = g.next_program();
            let nest = p.perfect_nests().remove(0);
            let dfg = ptmap_ir::dfg::build_dfg(&p, &nest, &[]).unwrap();
            dfg.validate().unwrap();
            sizes.insert(dfg.len());
        }
        assert!(sizes.len() > 5, "DFG sizes should vary: {sizes:?}");
    }
}
