//! Motivation microbenchmarks (Fig. 2).

use ptmap_ir::{Program, ProgramBuilder};

/// The 24×24×24 matrix multiplication of Fig. 2a.
pub fn gemm24() -> Program {
    gemm(24)
}

/// A square GEMM of side `n`.
pub fn gemm(n: u64) -> Program {
    let mut b = ProgramBuilder::new("gemm");
    let a = b.array("A", &[n, n]);
    let bb = b.array("B", &[n, n]);
    let c = b.array("C", &[n, n]);
    let i = b.open_loop("i", n);
    let j = b.open_loop("j", n);
    let k = b.open_loop("k", n);
    let prod = b.mul(
        b.load(a, &[b.idx(i), b.idx(k)]),
        b.load(bb, &[b.idx(k), b.idx(j)]),
    );
    let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
    b.store(c, &[b.idx(i), b.idx(j)], sum);
    b.close_loop();
    b.close_loop();
    b.close_loop();
    b.finish()
}

/// The vector reduction of Fig. 2b: `s = Σ A[i]`.
pub fn vec_reduction(n: u64) -> Program {
    let mut b = ProgramBuilder::new("vreduce");
    let a = b.array("A", &[n]);
    let s = b.scalar("s");
    let i = b.open_loop("i", n);
    let v = b.add(b.read_scalar(s), b.load(a, &[b.idx(i)]));
    b.assign(s, v);
    b.close_loop();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm24_shape() {
        let p = gemm24();
        let nest = p.perfect_nests().remove(0);
        assert_eq!(nest.tripcounts, vec![24, 24, 24]);
    }

    #[test]
    fn vreduce_is_reduction() {
        let p = vec_reduction(1024);
        let nest = p.perfect_nests().remove(0);
        assert!(nest.stmts[0].is_reduction());
    }
}
