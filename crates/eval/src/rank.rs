//! Two-mode ranking and selection (Section 3.3.2).

use serde::{Deserialize, Serialize};

/// Ranking mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RankMode {
    /// Ascending by cycles, volume as tie-breaker.
    #[default]
    Performance,
    /// Descending by Pareto hypervolume of `(cycles, volume)`.
    Pareto,
}

/// Hypervolume of a point against a reference point (both axes
/// minimized): the rectangle it dominates.
pub fn hypervolume(point: (u64, u64), reference: (u64, u64)) -> u128 {
    let dc = reference.0.saturating_sub(point.0) as u128;
    let dv = reference.1.saturating_sub(point.1) as u128;
    dc * dv
}

/// Indices of `points`, ranked for performance mode.
pub fn rank_performance(points: &[(u64, u64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by_key(|&i| points[i]);
    idx
}

/// Indices of `points`, ranked for Pareto mode. The reference point is
/// 1.1× the per-axis maxima of the surviving candidates (the paper's
/// "carefully selected" reference).
pub fn rank_pareto(points: &[(u64, u64)]) -> Vec<usize> {
    let reference = pareto_reference(points);
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(hypervolume(points[i], reference)));
    idx
}

/// The Pareto-mode reference point for a candidate set.
pub fn pareto_reference(points: &[(u64, u64)]) -> (u64, u64) {
    let max_c = points.iter().map(|p| p.0).max().unwrap_or(1);
    let max_v = points.iter().map(|p| p.1).max().unwrap_or(1);
    (max_c + max_c / 10 + 1, max_v + max_v / 10 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_orders_by_cycles_then_volume() {
        let pts = [(100, 5), (50, 9), (50, 2), (70, 1)];
        assert_eq!(rank_performance(&pts), vec![2, 1, 3, 0]);
    }

    #[test]
    fn hypervolume_prefers_dominating_points() {
        let r = (100, 100);
        assert!(hypervolume((10, 10), r) > hypervolume((50, 50), r));
        // A point beyond the reference contributes nothing.
        assert_eq!(hypervolume((200, 5), r), 0);
    }

    #[test]
    fn pareto_balances_axes() {
        // (10, 90) and (90, 10) are extremes; (30, 30) balances.
        let pts = [(10, 90), (90, 10), (30, 30), (90, 90)];
        let order = rank_pareto(&pts);
        assert_eq!(order[0], 2, "balanced point should rank first: {order:?}");
        assert_eq!(*order.last().unwrap(), 3, "dominated point ranks last");
    }

    #[test]
    fn pareto_reference_exceeds_maxima() {
        let pts = [(10, 20), (30, 5)];
        let r = pareto_reference(&pts);
        assert!(r.0 > 30 && r.1 > 20);
    }

    #[test]
    fn empty_input_ok() {
        assert!(rank_performance(&[]).is_empty());
        assert!(rank_pareto(&[]).is_empty());
    }
}
