//! Program-level evaluation and selection (Eqn. 5, Fig. 5c).

use crate::pnl::PnlRanking;
use crate::rank::{hypervolume, pareto_reference, RankMode};
use crate::EvalConfig;
use ptmap_ir::{Node, Program};
use ptmap_transform::FusionMode;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An evaluated program variant.
#[derive(Debug, Clone)]
pub struct EvaluatedVariant {
    /// The restructured program.
    pub program: Arc<Program>,
    /// The fusion heuristic that produced it.
    pub fusion: FusionMode,
    /// Per-PNL rankings.
    pub rankings: Vec<PnlRanking>,
}

/// All evaluated variants of a program.
#[derive(Debug, Clone)]
pub struct EvaluatedForest {
    /// The variants.
    pub variants: Vec<EvaluatedVariant>,
}

/// A program-level choice: one candidate per PNL of one variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramChoice {
    /// Index of the variant in the forest.
    pub variant: usize,
    /// Chosen candidate index (into `rankings[i].evaluated`) per PNL.
    pub selection: Vec<usize>,
    /// Program-level cycles (Eqn. 5 plus non-PNL statement cycles).
    pub cycles: u64,
    /// Program-level off-CGRA volume.
    pub volume: u64,
}

/// Cycles spent in statements outside any PNL, computed statically from
/// tripcounts (insight 1 of Section 3.3: no pipelining there, one
/// operation per cycle on the host/controller side).
pub fn non_pnl_cycles(program: &Program) -> u64 {
    // Collect the statement ids inside PNLs.
    let mut pnl_stmts = std::collections::BTreeSet::new();
    for nest in program.perfect_nests() {
        for s in &nest.stmts {
            pnl_stmts.insert(s.id);
        }
    }
    fn rec(
        nodes: &[Node],
        trip: u64,
        pnl_stmts: &std::collections::BTreeSet<ptmap_ir::StmtId>,
    ) -> u64 {
        let mut total = 0;
        for n in nodes {
            match n {
                Node::Stmt(s) if !pnl_stmts.contains(&s.id) => {
                    total += trip * (s.value.op_count() as u64 + 1);
                }
                Node::Stmt(_) => {}
                Node::Loop(l) => {
                    total += rec(&l.body, trip * l.tripcount, pnl_stmts);
                }
            }
        }
        total
    }
    rec(&program.roots, 1, &pnl_stmts)
}

/// Combines per-PNL top-K selections into ranked program-level choices
/// for the requested mode.
pub fn select_programs(
    forest: &EvaluatedForest,
    mode: RankMode,
    config: &EvalConfig,
) -> Vec<ProgramChoice> {
    let mut choices: Vec<ProgramChoice> = Vec::new();
    for (vi, variant) in forest.variants.iter().enumerate() {
        let extra = non_pnl_cycles(&variant.program);
        // Per-PNL shortlists in the requested mode.
        let shortlists: Vec<&[usize]> = variant
            .rankings
            .iter()
            .map(|r| match mode {
                RankMode::Performance => &r.performance[..],
                RankMode::Pareto => &r.pareto[..],
            })
            .collect();
        if shortlists.iter().any(|s| s.is_empty()) {
            continue; // some PNL has no mappable candidate in this variant
        }
        // Enumerate the (capped) cartesian product of shortlists.
        let caps: Vec<usize> = shortlists
            .iter()
            .map(|s| s.len().min(config.combine_k.max(1)))
            .collect();
        let total: usize = caps.iter().product();
        for combo in 0..total.min(1024) {
            let mut rem = combo;
            let mut selection = Vec::with_capacity(shortlists.len());
            let mut cycles = extra;
            let mut volume = 0u64;
            for (s, &cap) in shortlists.iter().zip(&caps) {
                let pick = s[rem % cap];
                rem /= cap;
                let e = &forest.variants[vi].rankings[selection.len()].evaluated[pick];
                selection.push(pick);
                cycles = cycles.saturating_add(e.cycles);
                volume = volume.saturating_add(e.volume);
            }
            choices.push(ProgramChoice {
                variant: vi,
                selection,
                cycles,
                volume,
            });
        }
    }
    // Rank program-level choices.
    match mode {
        RankMode::Performance => choices.sort_by_key(|c| (c.cycles, c.volume)),
        RankMode::Pareto => {
            let pts: Vec<(u64, u64)> = choices.iter().map(|c| (c.cycles, c.volume)).collect();
            let reference = pareto_reference(&pts);
            choices
                .sort_by_key(|c| std::cmp::Reverse(hypervolume((c.cycles, c.volume), reference)));
        }
    }
    choices.truncate(config.top_k);
    choices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pnl::evaluate_forest;
    use crate::predictor::AnalyticalPredictor;
    use ptmap_arch::presets;
    use ptmap_transform::{explore, ExploreConfig};

    #[test]
    fn non_pnl_cycles_counts_imperfect_statements() {
        // trisolv has statements directly under the imperfect i loop.
        let p = ptmap_workloads::apps::trisolv();
        let extra = non_pnl_cycles(&p);
        assert!(extra > 0);
        // A fully perfect program has none.
        let g = ptmap_workloads::micro::gemm(16);
        assert_eq!(non_pnl_cycles(&g), 0);
    }

    #[test]
    fn program_selection_end_to_end() {
        let p = ptmap_workloads::apps::atax();
        let forest = explore(&p, &ExploreConfig::quick());
        let arch = presets::s4();
        let eval = evaluate_forest(&forest, &arch, &AnalyticalPredictor, &EvalConfig::default());
        let perf = select_programs(&eval, RankMode::Performance, &EvalConfig::default());
        assert!(!perf.is_empty());
        // Performance list is sorted.
        for w in perf.windows(2) {
            assert!(w[0].cycles <= w[1].cycles);
        }
        let pareto = select_programs(&eval, RankMode::Pareto, &EvalConfig::default());
        assert!(!pareto.is_empty());
    }

    #[test]
    fn selections_index_valid_candidates() {
        let p = ptmap_workloads::micro::gemm(32);
        let forest = explore(&p, &ExploreConfig::quick());
        let eval = evaluate_forest(
            &forest,
            &presets::sl8(),
            &AnalyticalPredictor,
            &EvalConfig::default(),
        );
        for choice in select_programs(&eval, RankMode::Performance, &EvalConfig::default()) {
            let v = &eval.variants[choice.variant];
            assert_eq!(choice.selection.len(), v.rankings.len());
            for (pnl, &sel) in choice.selection.iter().enumerate() {
                assert!(v.rankings[pnl].evaluated[sel].pruned.is_none());
            }
        }
    }
}
