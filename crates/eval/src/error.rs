//! Evaluation error type.
//!
//! Plain evaluation is total — malformed candidates are *pruned*, not
//! errors — so the only failures are budget exhaustion from the
//! budgeted entry points.

use std::fmt;

/// Errors raised by budgeted evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// The compilation budget's deadline (or work limit) ran out while
    /// profiling candidates; checked per candidate, so evaluation exits
    /// promptly instead of finishing the whole forest.
    Timeout,
    /// The compilation budget was cancelled from outside.
    Cancelled,
}

impl From<ptmap_governor::BudgetExceeded> for EvalError {
    fn from(e: ptmap_governor::BudgetExceeded) -> Self {
        match e {
            ptmap_governor::BudgetExceeded::Cancelled => EvalError::Cancelled,
            ptmap_governor::BudgetExceeded::Timeout
            | ptmap_governor::BudgetExceeded::WorkExhausted => EvalError::Timeout,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Timeout => write!(f, "evaluation timed out: compilation budget exceeded"),
            EvalError::Cancelled => write!(f, "evaluation cancelled"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<EvalError>();
    }

    #[test]
    fn governor_variant_displays() {
        assert_eq!(
            EvalError::Timeout.to_string(),
            "evaluation timed out: compilation budget exceeded"
        );
        assert_eq!(EvalError::Cancelled.to_string(), "evaluation cancelled");
        use ptmap_governor::BudgetExceeded;
        assert_eq!(EvalError::from(BudgetExceeded::Timeout), EvalError::Timeout);
        assert_eq!(
            EvalError::from(BudgetExceeded::Cancelled),
            EvalError::Cancelled
        );
    }
}
