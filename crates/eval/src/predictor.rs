//! Pluggable `(II, ProEpi)` predictors.

use ptmap_arch::CgraArch;
use ptmap_ir::Dfg;
use ptmap_mapper::{map_dfg, MapperConfig};

/// Predicts the mapped II and pipeline fill/drain cycles of a DFG on an
/// architecture, without (necessarily) running loop scheduling.
pub trait IiPredictor {
    /// Returns `(ii, pro_epi)`; implementations must return `ii >= 1`.
    fn predict(&self, dfg: &Dfg, arch: &CgraArch) -> (u32, u32);

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Model-version provenance, when the predictor is backed by a
    /// versioned model snapshot (the online-learning store). `None`
    /// for analytical/oracle predictors and unversioned checkpoints.
    fn version(&self) -> Option<u64> {
        None
    }
}

/// GNN-backed predictor (the PT-Map default).
#[derive(Debug, Clone)]
pub struct GnnPredictor {
    model: ptmap_gnn::PtMapGnn,
    version: Option<u64>,
}

impl GnnPredictor {
    /// Wraps a (trained) model.
    pub fn new(model: ptmap_gnn::PtMapGnn) -> Self {
        GnnPredictor {
            model,
            version: None,
        }
    }

    /// Wraps a model loaded from a versioned snapshot, stamping its
    /// version into compile metrics for provenance.
    pub fn versioned(model: ptmap_gnn::PtMapGnn, version: u64) -> Self {
        GnnPredictor {
            model,
            version: Some(version),
        }
    }

    /// Access to the underlying model (e.g. for fine-tuning).
    pub fn model(&self) -> &ptmap_gnn::PtMapGnn {
        &self.model
    }
}

impl IiPredictor for GnnPredictor {
    fn predict(&self, dfg: &Dfg, arch: &CgraArch) -> (u32, u32) {
        let input = ptmap_gnn::build_input(dfg, arch);
        let p = self.model.predict(&input);
        (p.ii.max(1), p.pro_epi)
    }

    fn name(&self) -> &'static str {
        "gnn"
    }

    fn version(&self) -> Option<u64> {
        self.version
    }
}

/// MII-based analytical predictor (PBP's model; the `AM` ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalPredictor;

impl IiPredictor for AnalyticalPredictor {
    fn predict(&self, dfg: &Dfg, arch: &CgraArch) -> (u32, u32) {
        let ii = ptmap_mapper::mii(dfg, arch).max(1);
        (ii, dfg.critical_path().saturating_sub(ii))
    }

    fn name(&self) -> &'static str {
        "mii-analytical"
    }
}

/// Oracle predictor: actually runs the modulo scheduler. Exact but as
/// expensive as loop scheduling — used for ground truth and tests.
#[derive(Debug, Clone, Default)]
pub struct OraclePredictor {
    /// Mapper configuration used for the oracle runs.
    pub config: MapperConfig,
}

impl IiPredictor for OraclePredictor {
    fn predict(&self, dfg: &Dfg, arch: &CgraArch) -> (u32, u32) {
        match map_dfg(dfg, arch, &self.config) {
            Ok(m) => (m.ii, m.pro_epi()),
            // Infeasible: report an II past any CB capacity so the
            // pruning stage rejects the candidate.
            Err(_) => (u32::MAX / 2, 0),
        }
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::{dfg::build_dfg, ProgramBuilder};

    fn dfg() -> Dfg {
        let mut b = ProgramBuilder::new("k");
        let x = b.array("X", &[128]);
        let i = b.open_loop("i", 128);
        let v = b.add(b.load(x, &[b.idx(i)]), b.constant(1));
        b.store(x, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        build_dfg(&p, &nest, &[]).unwrap()
    }

    #[test]
    fn analytical_matches_mii() {
        let d = dfg();
        let arch = presets::s4();
        let (ii, _) = AnalyticalPredictor.predict(&d, &arch);
        assert_eq!(ii, ptmap_mapper::mii(&d, &arch));
    }

    #[test]
    fn oracle_at_least_analytical() {
        let d = dfg();
        let arch = presets::s4();
        let (ii_a, _) = AnalyticalPredictor.predict(&d, &arch);
        let (ii_o, _) = OraclePredictor::default().predict(&d, &arch);
        assert!(ii_o >= ii_a);
    }

    #[test]
    fn gnn_predictor_runs_untrained() {
        let model = ptmap_gnn::PtMapGnn::new(ptmap_gnn::ModelConfig {
            hidden: 8,
            ..ptmap_gnn::ModelConfig::default()
        });
        let (ii, _) = GnnPredictor::new(model).predict(&dfg(), &presets::s4());
        assert!(ii >= 1);
    }
}
