//! PNL-level evaluation: prediction, profiling, pruning, ranking.

use crate::predictor::IiPredictor;
use crate::rank::{rank_pareto, rank_performance};
use crate::EvalConfig;
use ptmap_arch::CgraArch;
use ptmap_ir::dfg::build_dfg;
use ptmap_model::{pnl_cycles, pnl_total_cycles, MemoryProfiler};
use ptmap_transform::{PnlCandidate, ResultForest};
use serde::{Deserialize, Serialize};

/// Why a candidate was pruned by the architectural constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruneReason {
    /// Predicted II exceeds the context-buffer capacity.
    ContextBuffer {
        /// Predicted II.
        ii: u32,
        /// CB capacity in contexts.
        capacity: u32,
    },
    /// The pipelined working set misses in the data buffer.
    DataBuffer {
        /// Detected capacity misses.
        misses: u64,
    },
    /// The DFG could not be built or is degenerate.
    Malformed,
}

/// A profiled candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluatedCandidate {
    /// The candidate itself.
    pub candidate: PnlCandidate,
    /// Predicted computation cycles for the whole PNL (Eqn. 2).
    pub cycles: u64,
    /// Estimated off-CGRA volume in bytes (data + contexts).
    pub volume: u64,
    /// Predicted II.
    pub ii: u32,
    /// Predicted ProEpi.
    pub pro_epi: u32,
    /// The MII prior.
    pub mii: u32,
    /// Set when the candidate violates a constraint.
    pub pruned: Option<PruneReason>,
}

/// Evaluation result for one PNL: all candidates plus both rankings
/// (indices into `evaluated`, pruned candidates excluded).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PnlRanking {
    /// Profiled candidates, in exploration order.
    pub evaluated: Vec<EvaluatedCandidate>,
    /// Performance-mode ranking (top-K).
    pub performance: Vec<usize>,
    /// Pareto-mode ranking (top-K).
    pub pareto: Vec<usize>,
}

/// Profiles a single candidate.
pub fn evaluate_candidate(
    candidate: &PnlCandidate,
    arch: &CgraArch,
    predictor: &dyn IiPredictor,
) -> EvaluatedCandidate {
    let dfg = match build_dfg(&candidate.program, &candidate.nest, &candidate.unroll) {
        Ok(d) if !d.is_empty() => d,
        _ => {
            return EvaluatedCandidate {
                candidate: candidate.clone(),
                cycles: u64::MAX,
                volume: u64::MAX,
                ii: 0,
                pro_epi: 0,
                mii: 0,
                pruned: Some(PruneReason::Malformed),
            }
        }
    };
    let mii = ptmap_mapper::mii(&dfg, arch);
    let (ii, pro_epi) = predictor.predict(&dfg, arch);
    let cycle_l = pnl_cycles(candidate.effective_pipelined_tc(), ii, pro_epi);
    let compute = pnl_total_cycles(cycle_l, candidate.effective_folded_tc());
    let profile = MemoryProfiler::new(&candidate.program).profile(&candidate.nest, arch, ii);
    // Rank on the same double-buffered total the simulator will charge:
    // memory-bound candidates must not look fast.
    let transfer = profile
        .total_volume()
        .div_ceil(ptmap_sim::exec::OFFCHIP_BYTES_PER_CYCLE);
    let cycles = compute.max(transfer);

    let mut pruned = None;
    if ii > arch.cb_capacity() {
        pruned = Some(PruneReason::ContextBuffer {
            ii,
            capacity: arch.cb_capacity(),
        });
    } else if profile.capacity_misses > 0 {
        pruned = Some(PruneReason::DataBuffer {
            misses: profile.capacity_misses,
        });
    }

    EvaluatedCandidate {
        candidate: candidate.clone(),
        cycles,
        volume: profile.total_volume(),
        ii,
        pro_epi,
        mii,
        pruned,
    }
}

/// Profiles and ranks every candidate of one PNL's result array.
pub fn evaluate_result_array(
    candidates: &[PnlCandidate],
    arch: &CgraArch,
    predictor: &dyn IiPredictor,
    config: &EvalConfig,
) -> PnlRanking {
    let evaluated: Vec<EvaluatedCandidate> = candidates
        .iter()
        .map(|c| evaluate_candidate(c, arch, predictor))
        .collect();
    rank_evaluated(evaluated, config)
}

/// Like [`evaluate_result_array`] but shards candidate profiling across
/// `workers` scoped threads. Candidates are independent, so the merged
/// (exploration-ordered) result is bit-identical to the serial path —
/// batch compilations lean on this for within-job parallelism.
pub fn evaluate_result_array_sharded(
    candidates: &[PnlCandidate],
    arch: &CgraArch,
    predictor: &(dyn IiPredictor + Sync),
    config: &EvalConfig,
    workers: usize,
) -> PnlRanking {
    evaluate_result_array_sharded_budgeted(
        candidates,
        arch,
        predictor,
        config,
        workers,
        &ptmap_governor::Budget::unlimited(),
    )
    .expect("unlimited budget cannot run out")
}

/// [`evaluate_result_array_sharded`] under a cooperative
/// [`ptmap_governor::Budget`]: every shard checks the budget per
/// candidate and stops early when it runs out, so a deadline interrupts
/// profiling within one candidate's latency instead of one PNL's.
///
/// # Errors
///
/// [`crate::EvalError::Timeout`] / [`crate::EvalError::Cancelled`] when
/// the budget runs out mid-evaluation.
pub fn evaluate_result_array_sharded_budgeted(
    candidates: &[PnlCandidate],
    arch: &CgraArch,
    predictor: &(dyn IiPredictor + Sync),
    config: &EvalConfig,
    workers: usize,
    budget: &ptmap_governor::Budget,
) -> Result<PnlRanking, crate::EvalError> {
    if workers <= 1 || candidates.len() < 2 {
        let mut evaluated: Vec<EvaluatedCandidate> = Vec::with_capacity(candidates.len());
        for c in candidates {
            budget.check()?;
            evaluated.push(evaluate_candidate(c, arch, predictor));
        }
        return Ok(rank_evaluated(evaluated, config));
    }
    let chunk = candidates.len().div_ceil(workers.min(candidates.len()));
    let mut evaluated: Vec<Option<EvaluatedCandidate>> = vec![None; candidates.len()];
    std::thread::scope(|s| {
        for (out, work) in evaluated.chunks_mut(chunk).zip(candidates.chunks(chunk)) {
            s.spawn(move || {
                for (slot, c) in out.iter_mut().zip(work) {
                    // Early-out leaves the slot `None`; the caller sees
                    // the budget failure before ever unwrapping slots.
                    if budget.check().is_err() {
                        return;
                    }
                    *slot = Some(evaluate_candidate(c, arch, predictor));
                }
            });
        }
    });
    budget.check()?;
    let evaluated: Vec<EvaluatedCandidate> = evaluated
        .into_iter()
        .map(|e| e.expect("shard filled"))
        .collect();
    Ok(rank_evaluated(evaluated, config))
}

/// Ranking stage shared by the serial and sharded paths.
fn rank_evaluated(evaluated: Vec<EvaluatedCandidate>, config: &EvalConfig) -> PnlRanking {
    let survivors: Vec<usize> = (0..evaluated.len())
        .filter(|&i| evaluated[i].pruned.is_none())
        .collect();
    let points: Vec<(u64, u64)> = survivors
        .iter()
        .map(|&i| (evaluated[i].cycles, evaluated[i].volume))
        .collect();
    let performance: Vec<usize> = rank_performance(&points)
        .into_iter()
        .map(|r| survivors[r])
        .take(config.top_k)
        .collect();
    let pareto: Vec<usize> = rank_pareto(&points)
        .into_iter()
        .map(|r| survivors[r])
        .take(config.top_k)
        .collect();
    PnlRanking {
        evaluated,
        performance,
        pareto,
    }
}

/// Profiles a whole result forest.
pub fn evaluate_forest(
    forest: &ResultForest,
    arch: &CgraArch,
    predictor: &dyn IiPredictor,
    config: &EvalConfig,
) -> crate::program::EvaluatedForest {
    let variants = forest
        .variants
        .iter()
        .map(|v| {
            let rankings: Vec<PnlRanking> = v
                .pnl_candidates
                .iter()
                .map(|ra| evaluate_result_array(ra, arch, predictor, config))
                .collect();
            crate::program::EvaluatedVariant {
                program: v.program.clone(),
                fusion: v.fusion,
                rankings,
            }
        })
        .collect();
    crate::program::EvaluatedForest { variants }
}

/// Profiles a whole result forest with sharded candidate evaluation
/// (see [`evaluate_result_array_sharded`]). `workers <= 1` degenerates
/// to the serial path.
pub fn evaluate_forest_sharded(
    forest: &ResultForest,
    arch: &CgraArch,
    predictor: &(dyn IiPredictor + Sync),
    config: &EvalConfig,
    workers: usize,
) -> crate::program::EvaluatedForest {
    evaluate_forest_sharded_budgeted(
        forest,
        arch,
        predictor,
        config,
        workers,
        &ptmap_governor::Budget::unlimited(),
    )
    .expect("unlimited budget cannot run out")
}

/// [`evaluate_forest_sharded`] under a cooperative
/// [`ptmap_governor::Budget`] (see
/// [`evaluate_result_array_sharded_budgeted`]).
///
/// # Errors
///
/// [`crate::EvalError::Timeout`] / [`crate::EvalError::Cancelled`] when
/// the budget runs out mid-evaluation.
pub fn evaluate_forest_sharded_budgeted(
    forest: &ResultForest,
    arch: &CgraArch,
    predictor: &(dyn IiPredictor + Sync),
    config: &EvalConfig,
    workers: usize,
    budget: &ptmap_governor::Budget,
) -> Result<crate::program::EvaluatedForest, crate::EvalError> {
    let mut variants = Vec::with_capacity(forest.variants.len());
    for v in &forest.variants {
        let mut rankings: Vec<PnlRanking> = Vec::with_capacity(v.pnl_candidates.len());
        for ra in &v.pnl_candidates {
            rankings.push(evaluate_result_array_sharded_budgeted(
                ra, arch, predictor, config, workers, budget,
            )?);
        }
        variants.push(crate::program::EvaluatedVariant {
            program: v.program.clone(),
            fusion: v.fusion,
            rankings,
        });
    }
    Ok(crate::program::EvaluatedForest { variants })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::AnalyticalPredictor;
    use ptmap_arch::presets;
    use ptmap_transform::{explore, ExploreConfig};
    use ptmap_workloads::micro;

    #[test]
    fn gemm_candidates_rank_and_prune() {
        let p = micro::gemm(64);
        let forest = explore(&p, &ExploreConfig::default());
        let arch = presets::s4();
        let ranking = evaluate_result_array(
            &forest.variants[0].pnl_candidates[0],
            &arch,
            &AnalyticalPredictor,
            &EvalConfig::default(),
        );
        assert!(!ranking.performance.is_empty());
        assert!(ranking.performance.len() <= 20);
        // Best performance candidate strictly beats the identity.
        let identity = ranking
            .evaluated
            .iter()
            .position(|e| e.candidate.unroll.is_empty() && e.candidate.nest.depth() == 3)
            .expect("identity candidate present");
        let best = ranking.performance[0];
        assert!(
            ranking.evaluated[best].cycles <= ranking.evaluated[identity].cycles,
            "ranking must not prefer worse-than-identity"
        );
    }

    #[test]
    fn cb_pruning_fires_for_large_predicted_ii() {
        // Oracle predictor on a congested architecture: some heavily
        // unrolled candidate should exceed CB capacity 8 and be pruned,
        // or at minimum no pruned candidate may appear in the rankings.
        let p = micro::gemm(64);
        let forest = explore(&p, &ExploreConfig::default());
        let arch = presets::r4();
        let ranking = evaluate_result_array(
            &forest.variants[0].pnl_candidates[0],
            &arch,
            &crate::predictor::OraclePredictor::default(),
            &EvalConfig::default(),
        );
        for &i in ranking.performance.iter().chain(&ranking.pareto) {
            assert!(ranking.evaluated[i].pruned.is_none());
        }
        let pruned = ranking
            .evaluated
            .iter()
            .filter(|e| e.pruned.is_some())
            .count();
        assert!(pruned > 0, "expected some pruned candidate on R4");
    }

    #[test]
    fn sharded_matches_serial() {
        let p = micro::gemm(48);
        let forest = explore(&p, &ExploreConfig::default());
        let arch = presets::s4();
        let cfg = EvalConfig::default();
        let serial = evaluate_result_array(
            &forest.variants[0].pnl_candidates[0],
            &arch,
            &AnalyticalPredictor,
            &cfg,
        );
        for workers in [2, 3, 8, 64] {
            let sharded = evaluate_result_array_sharded(
                &forest.variants[0].pnl_candidates[0],
                &arch,
                &AnalyticalPredictor,
                &cfg,
                workers,
            );
            assert_eq!(serial.performance, sharded.performance, "workers={workers}");
            assert_eq!(serial.pareto, sharded.pareto, "workers={workers}");
            assert_eq!(serial.evaluated.len(), sharded.evaluated.len());
            for (a, b) in serial.evaluated.iter().zip(&sharded.evaluated) {
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.ii, b.ii);
                assert_eq!(a.pruned, b.pruned);
            }
        }
    }

    #[test]
    fn rankings_exclude_pruned() {
        let p = micro::gemm(64);
        let forest = explore(&p, &ExploreConfig::quick());
        let ranking = evaluate_result_array(
            &forest.variants[0].pnl_candidates[0],
            &presets::s4(),
            &AnalyticalPredictor,
            &EvalConfig {
                top_k: 5,
                combine_k: 2,
            },
        );
        assert!(ranking.performance.len() <= 5);
        assert!(ranking.pareto.len() <= 5);
    }

    #[test]
    fn cancelled_budget_stops_evaluation_serial_and_sharded() {
        let p = micro::gemm(48);
        let forest = explore(&p, &ExploreConfig::quick());
        let candidates = &forest.variants[0].pnl_candidates[0];
        let budget = ptmap_governor::Budget::cancellable();
        budget.cancel();
        for workers in [1, 4] {
            let r = evaluate_result_array_sharded_budgeted(
                candidates,
                &presets::s4(),
                &AnalyticalPredictor,
                &EvalConfig::default(),
                workers,
                &budget,
            );
            assert_eq!(
                r.err(),
                Some(crate::EvalError::Cancelled),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn expired_deadline_times_out_evaluation() {
        let p = micro::gemm(48);
        let forest = explore(&p, &ExploreConfig::quick());
        let candidates = &forest.variants[0].pnl_candidates[0];
        let budget = ptmap_governor::Budget::with_deadline(std::time::Duration::ZERO);
        for workers in [1, 4] {
            let r = evaluate_result_array_sharded_budgeted(
                candidates,
                &presets::s4(),
                &AnalyticalPredictor,
                &EvalConfig::default(),
                workers,
                &budget,
            );
            assert_eq!(
                r.err(),
                Some(crate::EvalError::Timeout),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn generous_budget_matches_unbudgeted_ranking() {
        let p = micro::gemm(48);
        let forest = explore(&p, &ExploreConfig::quick());
        let candidates = &forest.variants[0].pnl_candidates[0];
        let free = evaluate_result_array(
            candidates,
            &presets::s4(),
            &AnalyticalPredictor,
            &EvalConfig::default(),
        );
        let budget = ptmap_governor::Budget::with_deadline(std::time::Duration::from_secs(3600));
        let timed = evaluate_result_array_sharded_budgeted(
            candidates,
            &presets::s4(),
            &AnalyticalPredictor,
            &EvalConfig::default(),
            4,
            &budget,
        )
        .unwrap();
        assert_eq!(free.performance, timed.performance);
        assert_eq!(free.pareto, timed.pareto);
        assert_eq!(free.evaluated.len(), timed.evaluated.len());
    }
}
