//! Live-traffic sample taps for online cost-model learning.
//!
//! A [`SampleTap`] observes every compile the pipeline finishes: the
//! DFG and architecture that were scored, what the predictor said, and
//! what the mapper actually produced. The tap sits strictly off the
//! decision path — implementations must not influence the compile that
//! fed them — which is what keeps `--learn` bit-identical to a
//! learning-free run (the determinism guard tests pin this down).
//!
//! The trait lives in `ptmap-eval` rather than the learning crate so
//! `ptmap-core` (which depends on eval for predictors already) can hook
//! its mapper without a dependency on the learning machinery; the
//! learning engine implements the trait from above.

use ptmap_arch::CgraArch;
use ptmap_ir::Dfg;

/// What the pipeline observed for one accepted mapping: the predictor's
/// guess and the mapper's ground truth, plus enough metadata to turn
/// the pair into a training sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapObservation {
    /// II the predictor forecast for this candidate.
    pub predicted_ii: u32,
    /// ProEpi the predictor forecast for this candidate.
    pub predicted_pro_epi: u32,
    /// II the mapper actually achieved.
    pub actual_ii: u32,
    /// ProEpi of the actual mapping.
    pub actual_pro_epi: u32,
    /// MII lower bound of the mapped DFG.
    pub mii: u32,
    /// Tripcount of the pipelined loop (for cycle-MAPE weighting).
    pub tc: u64,
    /// Mapper backend that produced the accepted mapping.
    pub backend: &'static str,
    /// Trace id of the compile, when tracing was active.
    pub trace_id: Option<String>,
}

/// An observer of completed compiles. Implementations must be cheap
/// and non-blocking (called on the request path) and must never feed
/// information back into compilation.
pub trait SampleTap: Send + Sync {
    /// Records one accepted mapping.
    fn record(&self, dfg: &Dfg, arch: &CgraArch, obs: &TapObservation);
}

/// A tap that counts and stores observations — for tests.
#[derive(Debug, Default)]
pub struct RecordingTap {
    observations: std::sync::Mutex<Vec<TapObservation>>,
}

impl RecordingTap {
    /// Empty recording tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn observations(&self) -> Vec<TapObservation> {
        self.observations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.observations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SampleTap for RecordingTap {
    fn record(&self, _dfg: &Dfg, _arch: &CgraArch, obs: &TapObservation) {
        self.observations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(obs.clone());
    }
}
