//! Bottom-up evaluation of transformation candidates (Section 3.3).
//!
//! The exploration's result forest is profiled PNL-by-PNL:
//!
//! 1. each candidate's DFG gets an `(II, ProEpi)` prediction from a
//!    pluggable [`IiPredictor`] (the GNN, the MII analytical model, or
//!    the mapper itself as an oracle);
//! 2. Eqn. 1–2 turn the prediction into computation cycles, and the
//!    memory profiler estimates the off-CGRA volume;
//! 3. candidates violating the context-buffer (predicted II beyond CB
//!    capacity) or data-buffer (pipelined working set misses) constraints
//!    are pruned;
//! 4. survivors are ranked in *performance* mode (cycles, then volume)
//!    and *Pareto* mode (hypervolume against a reference point), and the
//!    per-PNL top-K selections combine into program-level choices via
//!    Eqn. 5.

pub mod error;
pub mod pnl;
pub mod predictor;
pub mod program;
pub mod rank;
pub mod tap;

pub use error::EvalError;
pub use pnl::{
    evaluate_candidate, evaluate_forest, evaluate_forest_sharded, evaluate_forest_sharded_budgeted,
    evaluate_result_array, evaluate_result_array_sharded, evaluate_result_array_sharded_budgeted,
    EvaluatedCandidate, PnlRanking, PruneReason,
};
pub use predictor::{AnalyticalPredictor, GnnPredictor, IiPredictor, OraclePredictor};
pub use program::{non_pnl_cycles, select_programs, EvaluatedForest, ProgramChoice};
pub use rank::{hypervolume, rank_pareto, rank_performance, RankMode};
pub use tap::{RecordingTap, SampleTap, TapObservation};

use serde::{Deserialize, Serialize};

/// Evaluation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Candidates kept per PNL after ranking (paper: top-20).
    pub top_k: usize,
    /// Per-PNL selections combined at the program level (bounds the
    /// combination product).
    pub combine_k: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            top_k: 20,
            combine_k: 3,
        }
    }
}
