//! Property tests for the ranking machinery.

use proptest::prelude::*;
use ptmap_eval::{hypervolume, rank_pareto, rank_performance};

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The performance-best point is Pareto-optimal: nothing both ranks
    /// above it in Pareto order *and* dominates it.
    #[test]
    fn performance_best_is_pareto_optimal(points in proptest::collection::vec((1u64..1000, 1u64..1000), 1..32)) {
        let best = rank_performance(&points)[0];
        for (i, p) in points.iter().enumerate() {
            if i == best { continue; }
            let dominates = p.0 <= points[best].0 && p.1 <= points[best].1
                && (p.0 < points[best].0 || p.1 < points[best].1);
            // By construction nothing has fewer cycles; domination can
            // only happen on equal cycles with less volume, which the
            // tie-break already prefers.
            prop_assert!(!dominates, "point {i} dominates the performance-best");
        }
    }

    /// Pareto ranking is a permutation with non-increasing hypervolume.
    #[test]
    fn pareto_rank_monotone(points in proptest::collection::vec((1u64..1000, 1u64..1000), 1..32)) {
        let order = rank_pareto(&points);
        let max_c = points.iter().map(|p| p.0).max().unwrap();
        let max_v = points.iter().map(|p| p.1).max().unwrap();
        let reference = (max_c + max_c / 10 + 1, max_v + max_v / 10 + 1);
        for w in order.windows(2) {
            prop_assert!(
                hypervolume(points[w[0]], reference) >= hypervolume(points[w[1]], reference)
            );
        }
    }

    /// A dominated point never outranks its dominator in either mode.
    #[test]
    fn domination_respected(points in proptest::collection::vec((1u64..1000, 1u64..1000), 2..24)) {
        let perf = rank_performance(&points);
        let pareto = rank_pareto(&points);
        let pos = |order: &[usize], i: usize| order.iter().position(|&x| x == i).unwrap();
        for i in 0..points.len() {
            for j in 0..points.len() {
                if points[i].0 < points[j].0 && points[i].1 < points[j].1 {
                    prop_assert!(pos(&perf, i) < pos(&perf, j));
                    prop_assert!(pos(&pareto, i) < pos(&pareto, j));
                }
            }
        }
    }
}
