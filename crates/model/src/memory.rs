//! PNL-level memory profiling: working sets, off-CGRA volume, context
//! volume.
//!
//! The off-CGRA data access is modeled as the paper's two-level problem:
//! the on-chip data buffer (DB) is the first level, off-CGRA memory the
//! second. Working sets are derived by interval analysis of the affine
//! accesses (the analytical spirit of Gysi et al.'s cache model,
//! simplified to bounding boxes): the *reuse level* is the outermost loop
//! level whose per-iteration footprint still fits the DB; everything
//! outside it re-streams that footprint.

use ptmap_arch::CgraArch;
use ptmap_ir::{ArrayId, LoopId, PerfectNest, Program, Stmt};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The memory profile of one PNL transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Bytes touched by one launch of the pipelined loop.
    pub working_set_bytes: u64,
    /// Estimated off-CGRA data volume for the whole PNL (loads +
    /// write-backs), in bytes.
    pub volume_bytes: u64,
    /// Context-loading volume in bytes.
    pub context_bytes: u64,
    /// Capacity misses detected at the pipelined-loop level; positive
    /// values trigger the DB pruning constraint.
    pub capacity_misses: u64,
}

impl MemoryProfile {
    /// Whether the DB constraint passes (no capacity miss at the
    /// pipelined level).
    pub fn fits_db(&self) -> bool {
        self.capacity_misses == 0
    }

    /// Total off-CGRA traffic (data + contexts).
    pub fn total_volume(&self) -> u64 {
        self.volume_bytes + self.context_bytes
    }
}

/// Profiles the memory behavior of PNLs of a program.
#[derive(Debug, Clone, Copy)]
pub struct MemoryProfiler<'a> {
    program: &'a Program,
}

impl<'a> MemoryProfiler<'a> {
    /// Creates a profiler over the program declaring the arrays.
    pub fn new(program: &'a Program) -> Self {
        MemoryProfiler { program }
    }

    /// Profiles a PNL given the II that will execute it (for the context
    /// volume; pass the predicted or measured II).
    pub fn profile(&self, nest: &PerfectNest, arch: &CgraArch, ii: u32) -> MemoryProfile {
        let depth = nest.depth();
        let launches_of = |level: usize| -> u64 {
            // One execution of loops `level..depth` happens once per
            // iteration of the loops outside that band.
            nest.tripcounts[..level].iter().product::<u64>() * nest.outer_tripcount()
        };

        // Footprints of the loop bands `level..depth`.
        let footprints: Vec<(u64, u64)> = (0..depth)
            .map(|level| self.band_footprint(nest, level))
            .collect();

        let (ws_read, ws_write) = footprints[depth - 1];
        let working_set_bytes = ws_read.max(ws_write);
        let db = arch.db_bytes();

        // Capacity misses at the pipelined level.
        let capacity_misses = if working_set_bytes > db {
            (working_set_bytes - db) / 4 * launches_of(depth - 1)
        } else {
            0
        };

        // Reuse level: outermost band whose footprint fits the DB.
        let volume_bytes = if working_set_bytes > db {
            // Thrashing: every access streams from off-chip.
            let per_iter: u64 = nest
                .stmts
                .iter()
                .map(|s| {
                    let (reads, write) = s.accesses();
                    ((reads.len() + write.iter().len()) * 4) as u64
                })
                .sum();
            per_iter * nest.total_iterations()
        } else {
            let mut level = depth - 1;
            while level > 0 {
                let (r, w) = footprints[level - 1];
                if r.max(w) > db {
                    break;
                }
                level -= 1;
            }
            let (r, w) = footprints[level];
            (r + w) * launches_of(level)
        };

        // Context volume: II contexts of pe_count words; reloaded per
        // pipelined-loop launch when the CB cannot hold them.
        let ctx_once = ii as u64 * arch.pe_count() as u64 * 4;
        let context_bytes = if ii <= arch.cb_capacity() {
            ctx_once
        } else {
            ctx_once * launches_of(depth - 1)
        };

        MemoryProfile {
            working_set_bytes,
            volume_bytes,
            context_bytes,
            capacity_misses,
        }
    }

    /// Read and write footprints (bytes) of one execution of the loop
    /// band `level..depth` of the nest (loops outside the band held
    /// fixed).
    fn band_footprint(&self, nest: &PerfectNest, level: usize) -> (u64, u64) {
        let iterating: Vec<(LoopId, u64)> = nest.loops[level..]
            .iter()
            .copied()
            .zip(nest.tripcounts[level..].iter().copied())
            .collect();
        let mut read: BTreeMap<ArrayId, (i64, i64)> = BTreeMap::new();
        let mut write: BTreeMap<ArrayId, (i64, i64)> = BTreeMap::new();
        for stmt in &nest.stmts {
            self.fold_access_bounds(stmt, &iterating, &mut read, &mut write);
        }
        let to_bytes = |m: &BTreeMap<ArrayId, (i64, i64)>| -> u64 {
            m.iter()
                .map(|(&a, &(lo, hi))| {
                    let decl = self.program.array(a).expect("declared array");
                    let span = (hi - lo + 1).max(0) as u64;
                    span.min(decl.len()) * decl.elem_bytes
                })
                .sum()
        };
        (to_bytes(&read), to_bytes(&write))
    }

    fn fold_access_bounds(
        &self,
        stmt: &Stmt,
        iterating: &[(LoopId, u64)],
        read: &mut BTreeMap<ArrayId, (i64, i64)>,
        write: &mut BTreeMap<ArrayId, (i64, i64)>,
    ) {
        let (reads, w) = stmt.accesses();
        for acc in reads {
            let (lo, hi) = linear_bounds(self.program, acc, iterating);
            merge(read, acc.array, lo, hi);
        }
        if let Some(acc) = w {
            let (lo, hi) = linear_bounds(self.program, acc, iterating);
            merge(write, acc.array, lo, hi);
        }
    }
}

fn merge(m: &mut BTreeMap<ArrayId, (i64, i64)>, a: ArrayId, lo: i64, hi: i64) {
    m.entry(a)
        .and_modify(|e| *e = (e.0.min(lo), e.1.max(hi)))
        .or_insert((lo, hi));
}

/// Linearized index bounds of an access over the iterating loops (fixed
/// loops contribute their base value of 0 — only spans matter).
fn linear_bounds(
    program: &Program,
    acc: &ptmap_ir::ArrayAccess,
    iterating: &[(LoopId, u64)],
) -> (i64, i64) {
    let decl = program.array(acc.array).expect("declared array");
    // Per-dimension bounds, then linearize with row-major strides. When
    // the access is already linear (single subscript into a multi-dim
    // array after flattening), the single dimension uses stride 1.
    let dims: Vec<u64> = if acc.indices.len() == decl.dims.len() {
        decl.dims.clone()
    } else {
        vec![decl.len()]
    };
    let mut lo = 0i64;
    let mut hi = 0i64;
    for (e, &d) in acc.indices.iter().zip(&dims) {
        let (mut elo, mut ehi) = (e.constant_term(), e.constant_term());
        for (l, c) in e.terms() {
            if let Some(&(_, tc)) = iterating.iter().find(|&&(il, _)| il == l) {
                let span = c * (tc as i64 - 1);
                elo += span.min(0);
                ehi += span.max(0);
            }
        }
        lo = lo * d as i64 + elo;
        hi = hi * d as i64 + ehi;
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::ProgramBuilder;

    fn gemm(n: u64) -> Program {
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[n, n]);
        let bb = b.array("B", &[n, n]);
        let c = b.array("C", &[n, n]);
        let i = b.open_loop("i", n);
        let j = b.open_loop("j", n);
        let k = b.open_loop("k", n);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        b.finish()
    }

    #[test]
    fn pipelined_working_set_is_small_for_gemm_k() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let prof = MemoryProfiler::new(&p).profile(&nest, &presets::s4(), 4);
        // One k-launch touches a row of A (24 words), a column span of B
        // (bounding box over k: 24*24 words), and one element of C.
        assert!(prof.working_set_bytes >= 24 * 4);
        assert!(prof.fits_db());
    }

    #[test]
    fn volume_scales_with_problem_size() {
        let small = {
            let p = gemm(16);
            let nest = p.perfect_nests().remove(0);
            MemoryProfiler::new(&p)
                .profile(&nest, &presets::s4(), 4)
                .volume_bytes
        };
        let large = {
            let p = gemm(32);
            let nest = p.perfect_nests().remove(0);
            MemoryProfiler::new(&p)
                .profile(&nest, &presets::s4(), 4)
                .volume_bytes
        };
        assert!(large > small);
    }

    #[test]
    fn oversized_working_set_counts_misses() {
        // A single pipelined loop streaming a huge array through a tiny DB.
        let mut b = ProgramBuilder::new("stream");
        let x = b.array("X", &[64 * 1024]);
        let i = b.open_loop("i", 64 * 1024);
        let v = b.add(b.load(x, &[b.idx(i)]), b.constant(1));
        b.store(x, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let prof = MemoryProfiler::new(&p).profile(&nest, &presets::s4(), 2);
        assert!(!prof.fits_db());
        assert!(prof.capacity_misses > 0);
    }

    #[test]
    fn tiled_inner_loop_fits_db() {
        // Same streaming kernel tiled so the pipelined loop touches 1 KiB.
        let mut b = ProgramBuilder::new("stream_tiled");
        let x = b.array("X", &[64 * 1024]);
        let it = b.open_loop("it", 256);
        let ii = b.open_loop("ii", 256);
        let idx = b.idx(it) * 256 + b.idx(ii);
        let v = b.add(b.load(x, std::slice::from_ref(&idx)), b.constant(1));
        b.store(x, &[idx], v);
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let prof = MemoryProfiler::new(&p).profile(&nest, &presets::s4(), 2);
        assert!(
            prof.fits_db(),
            "working set {} bytes",
            prof.working_set_bytes
        );
        assert_eq!(prof.working_set_bytes, 256 * 4);
    }

    #[test]
    fn context_reload_when_ii_exceeds_cb() {
        let p = gemm(24);
        let nest = p.perfect_nests().remove(0);
        let arch = presets::s4(); // CB capacity 8
        let fits = MemoryProfiler::new(&p)
            .profile(&nest, &arch, 8)
            .context_bytes;
        let reload = MemoryProfiler::new(&p)
            .profile(&nest, &arch, 9)
            .context_bytes;
        assert!(reload > fits * 100, "reload {reload} vs fits {fits}");
    }

    #[test]
    fn doubled_db_never_increases_volume() {
        let p = gemm(32);
        let nest = p.perfect_nests().remove(0);
        let arch = presets::s4();
        let doubled = arch.with_db_bytes(arch.db_bytes() * 2);
        let v1 = MemoryProfiler::new(&p)
            .profile(&nest, &arch, 4)
            .volume_bytes;
        let v2 = MemoryProfiler::new(&p)
            .profile(&nest, &doubled, 4)
            .volume_bytes;
        assert!(v2 <= v1);
    }
}
