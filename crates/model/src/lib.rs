//! Analytical performance and memory models for PT-Map.
//!
//! Three model families live here:
//!
//! * [`cycle`] — the paper's cycle formulas: Eqn. 1
//!   (`Cycle(l) = TC_l * II + ProEpi`) and Eqn. 2 (multiplying by the
//!   temporally folded tripcounts), shared by every estimator;
//! * [`analytical`] — the *MII-based analytical model* used by PBP and
//!   the `AM` ablation: it assumes `II_map = MII` and estimates the
//!   pipeline fill/drain from the DFG critical path. Fig. 2b/Fig. 6 show
//!   where this model breaks down; the GNN in `ptmap-gnn` replaces it;
//! * [`memory`] — PNL-level memory profiling: per-loop-level working
//!   sets via interval analysis of affine accesses, off-CGRA data volume
//!   through a two-level (DB vs. off-chip) capacity model, and the
//!   context-loading volume.
//!
//! # Example
//!
//! ```
//! use ptmap_ir::{ProgramBuilder, dfg::build_dfg};
//! use ptmap_arch::presets;
//! use ptmap_model::analytical::AnalyticalModel;
//!
//! let mut b = ProgramBuilder::new("scale");
//! let x = b.array("X", &[1024]);
//! let i = b.open_loop("i", 1024);
//! let v = b.mul(b.load(x, &[b.idx(i)]), b.constant(3));
//! b.store(x, &[b.idx(i)], v);
//! b.close_loop();
//! let p = b.finish();
//! let nest = p.perfect_nests().remove(0);
//! let dfg = build_dfg(&p, &nest, &[]).unwrap();
//!
//! let est = AnalyticalModel.estimate(&dfg, &presets::s4(), &nest);
//! assert!(est.cycles > 0);
//! ```

pub mod analytical;
pub mod cycle;
pub mod memory;

pub use analytical::AnalyticalModel;
pub use cycle::{pnl_cycles, pnl_total_cycles, CycleEstimate};
pub use memory::{MemoryProfile, MemoryProfiler};
