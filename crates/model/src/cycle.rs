//! The paper's cycle formulas (Eqn. 1 and Eqn. 2).

use serde::{Deserialize, Serialize};

/// An estimate of the computation cycles of one PNL, with the II and
/// ProEpi values that produced it (exposing intermediates, C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleEstimate {
    /// Estimated (or measured) initiation interval of the pipelined loop.
    pub ii: u32,
    /// Estimated (or measured) pipeline fill + drain cycles.
    pub pro_epi: u32,
    /// Total cycles for the whole PNL (Eqn. 2), including temporally
    /// folded and imperfect outer loops.
    pub cycles: u64,
}

/// Eqn. 1: cycles of one launch of the pipelined loop `l`:
/// `Cycle(l) = TC_l * II_map,l + ProEpi_l`.
pub fn pnl_cycles(tripcount: u64, ii: u32, pro_epi: u32) -> u64 {
    tripcount * ii as u64 + pro_epi as u64
}

/// Eqn. 2: cycles of a whole PNL transformation `p`:
/// `Cycle(p) = Cycle(l) * prod TC_idx` over the temporally folded loops.
pub fn pnl_total_cycles(cycle_l: u64, folded_tripcount: u64) -> u64 {
    cycle_l * folded_tripcount
}

impl CycleEstimate {
    /// Builds an estimate from the formula inputs.
    pub fn from_formula(tripcount: u64, ii: u32, pro_epi: u32, folded_tripcount: u64) -> Self {
        let cycle_l = pnl_cycles(tripcount, ii, pro_epi);
        CycleEstimate {
            ii,
            pro_epi,
            cycles: pnl_total_cycles(cycle_l, folded_tripcount),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqn1() {
        assert_eq!(pnl_cycles(100, 4, 12), 412);
        assert_eq!(pnl_cycles(0, 4, 12), 12);
    }

    #[test]
    fn eqn2() {
        assert_eq!(pnl_total_cycles(412, 24 * 24), 412 * 576);
    }

    #[test]
    fn from_formula_combines_both() {
        let e = CycleEstimate::from_formula(24, 5, 10, 576);
        assert_eq!(e.cycles, (24 * 5 + 10) * 576);
        assert_eq!(e.ii, 5);
        assert_eq!(e.pro_epi, 10);
    }
}
