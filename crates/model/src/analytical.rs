//! The MII-based analytical performance model (PBP's estimator, and the
//! `AM` ablation inside PT-Map).
//!
//! The model assumes modulo scheduling achieves the lower bound
//! (`II_map = MII`) and approximates the pipeline fill/drain with the DFG
//! critical path. The paper's Fig. 2b shows the assumption holds for
//! small, rolled loops (ratio 1.0 at unroll factor 1) and degrades as
//! unrolling, heterogeneity, or poor interconnects widen the gap between
//! MII and the achievable II — the motivation for the GNN predictor.

use crate::cycle::CycleEstimate;
use ptmap_arch::CgraArch;
use ptmap_ir::{Dfg, PerfectNest};
use ptmap_mapper::mii;

/// The MII-based estimator. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyticalModel;

impl AnalyticalModel {
    /// Estimates the cycles of a PNL transformation from its DFG alone.
    ///
    /// `nest` supplies the (already transformed) tripcounts: the
    /// pipelined tripcount feeds Eqn. 1, the folded and imperfect-outer
    /// tripcounts feed Eqn. 2.
    pub fn estimate(&self, dfg: &Dfg, arch: &CgraArch, nest: &PerfectNest) -> CycleEstimate {
        let ii = mii(dfg, arch);
        let pro_epi = dfg.critical_path().saturating_sub(ii);
        CycleEstimate::from_formula(
            nest.pipelined_tripcount(),
            ii,
            pro_epi,
            nest.folded_tripcount() * nest.outer_tripcount(),
        )
    }

    /// Estimates with an explicit unrolled pipelined tripcount (the nest
    /// descriptor still holds pre-unroll tripcounts; unrolling by factor
    /// `f` divides the pipelined tripcount and is applied by the caller).
    pub fn estimate_with_tripcounts(
        &self,
        dfg: &Dfg,
        arch: &CgraArch,
        pipelined_tc: u64,
        folded_tc: u64,
    ) -> CycleEstimate {
        let ii = mii(dfg, arch);
        let pro_epi = dfg.critical_path().saturating_sub(ii);
        CycleEstimate::from_formula(pipelined_tc, ii, pro_epi, folded_tc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptmap_arch::presets;
    use ptmap_ir::dfg::build_dfg;
    use ptmap_ir::ProgramBuilder;

    #[test]
    fn rolled_loop_matches_mapper_closely() {
        // Simple elementwise kernel: the analytical model should agree
        // with the real mapper at unroll factor 1 (the Fig. 2b ratio-1.0
        // regime).
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array("X", &[512]);
        let y = b.array("Y", &[512]);
        let i = b.open_loop("i", 512);
        let v = b.add(
            b.mul(b.load(x, &[b.idx(i)]), b.constant(3)),
            b.load(y, &[b.idx(i)]),
        );
        b.store(y, &[b.idx(i)], v);
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let dfg = build_dfg(&p, &nest, &[]).unwrap();
        let arch = presets::s4();

        let est = AnalyticalModel.estimate(&dfg, &arch, &nest);
        let mapped =
            ptmap_mapper::map_dfg(&dfg, &arch, &ptmap_mapper::MapperConfig::default()).unwrap();
        let actual = mapped.cycles(nest.pipelined_tripcount());
        let ratio = actual as f64 / est.cycles as f64;
        assert!(
            (0.8..=2.0).contains(&ratio),
            "ratio {ratio} (est {est:?}, actual {actual})"
        );
    }

    #[test]
    fn unrolling_widens_the_gap() {
        // The MII stays flat under unrolling while the real II grows:
        // the model's error increases — the paper's motivating effect.
        let mut b = ProgramBuilder::new("gemm");
        let a = b.array("A", &[16, 16]);
        let bb = b.array("B", &[16, 16]);
        let c = b.array("C", &[16, 16]);
        let i = b.open_loop("i", 16);
        let j = b.open_loop("j", 16);
        let k = b.open_loop("k", 16);
        let prod = b.mul(
            b.load(a, &[b.idx(i), b.idx(k)]),
            b.load(bb, &[b.idx(k), b.idx(j)]),
        );
        let sum = b.add(b.load(c, &[b.idx(i), b.idx(j)]), prod);
        b.store(c, &[b.idx(i), b.idx(j)], sum);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        let p = b.finish();
        let nest = p.perfect_nests().remove(0);
        let arch = presets::sl8();
        let cfg = ptmap_mapper::MapperConfig::default();

        let mut gaps = Vec::new();
        for f in [1u32, 4] {
            let dfg = build_dfg(&p, &nest, &[(nest.loops[0], f), (nest.loops[1], f)]).unwrap();
            let est = AnalyticalModel.estimate(&dfg, &arch, &nest);
            let mapped = ptmap_mapper::map_dfg(&dfg, &arch, &cfg).unwrap();
            gaps.push(mapped.ii as f64 / est.ii as f64);
        }
        assert!(
            gaps[1] >= gaps[0],
            "unrolled gap {} should be at least rolled gap {}",
            gaps[1],
            gaps[0]
        );
    }
}
