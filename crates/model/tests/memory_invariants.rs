//! Memory-profile invariants across workloads.

use ptmap_arch::presets;
use ptmap_model::MemoryProfiler;
use ptmap_transform::primitives::strip_mine;

#[test]
fn tiling_never_increases_pipelined_working_set() {
    for (name, p) in ptmap_workloads::apps::all() {
        let arch = presets::s4();
        for nest in p.perfect_nests() {
            let base = MemoryProfiler::new(&p).profile(&nest, &arch, 4);
            let pipelined = nest.pipelined_loop();
            let tc = nest.pipelined_tripcount();
            if tc <= 16 {
                continue;
            }
            let Ok((q, _)) = strip_mine(&p, pipelined, 16) else {
                continue;
            };
            let qnest = q
                .perfect_nests()
                .into_iter()
                .find(|n| n.pipelined_loop() == pipelined)
                .expect("tiled nest");
            let tiled = MemoryProfiler::new(&q).profile(&qnest, &arch, 4);
            assert!(
                tiled.working_set_bytes <= base.working_set_bytes,
                "{name}: tiling grew the working set ({} -> {})",
                base.working_set_bytes,
                tiled.working_set_bytes
            );
        }
    }
}

#[test]
fn volume_at_least_compulsory() {
    // The off-CGRA volume can never be below the total array footprint
    // touched... it can (reuse within DB), but it must at least cover
    // the *written* data once for kernels writing their whole output.
    let p = ptmap_workloads::micro::gemm(32);
    let nest = p.perfect_nests().remove(0);
    let arch = presets::s4();
    let prof = MemoryProfiler::new(&p).profile(&nest, &arch, 4);
    // C is 32x32 words written.
    assert!(prof.volume_bytes >= 32 * 32 * 4);
}

#[test]
fn context_volume_monotone_in_ii() {
    let p = ptmap_workloads::micro::gemm(32);
    let nest = p.perfect_nests().remove(0);
    let arch = presets::s4();
    let profiler = MemoryProfiler::new(&p);
    let mut last = 0;
    for ii in 1..=8 {
        let ctx = profiler.profile(&nest, &arch, ii).context_bytes;
        assert!(ctx >= last, "context volume dropped at II {ii}");
        last = ctx;
    }
}

#[test]
fn capacity_misses_zero_iff_fits() {
    for (_, p) in ptmap_workloads::apps::all() {
        let arch = presets::sl8();
        for nest in p.perfect_nests() {
            let prof = MemoryProfiler::new(&p).profile(&nest, &arch, 4);
            assert_eq!(
                prof.fits_db(),
                prof.capacity_misses == 0,
                "fits_db inconsistent with miss count"
            );
        }
    }
}
