//! Content-addressed compilation cache.
//!
//! The cache key is the hex SHA-256 of the canonical JSON of everything
//! that determines a compilation's result: the program IR, the
//! architecture description, the predictor identity (for the GNN, a
//! hash of the full parameter checkpoint), the ranking mode, and the
//! result-affecting [`PtMapConfig`] fields (throughput knobs such as
//! `eval_workers` are `#[serde(skip)]`ed out of the config's
//! serialization and therefore out of the key). Canonicalization sorts
//! every object recursively, so key equality is structural, not
//! insertion-ordered.
//!
//! Entries live in a process-wide in-memory map and, when a cache
//! directory is configured, as one checksummed JSON file per key —
//! a warm directory survives across runs and makes re-running a
//! manifest orders of magnitude faster.
//!
//! # On-disk framing (schema 2)
//!
//! Each entry file is `<64-hex-sha256>\n<pretty JSON>`, where the
//! checksum covers the exact JSON bytes that follow the first newline.
//! Loading verifies the checksum before parsing; a truncated, corrupt,
//! or unparsable entry is *quarantined* — renamed to `<name>.corrupt`
//! so it never shadows a recompute and stays on disk for post-mortems —
//! counted, and treated as a miss. Cache corruption therefore degrades
//! to recompilation, never to a panic or a wrong report.

use crate::hash::sha256_hex;
use crate::lock_unpoisoned;
use crate::manifest::Job;
use ptmap_core::{CompileReport, PtMapConfig};
use ptmap_governor::faultpoint::{self, sites};
use serde_json::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version tag mixed into every key: bump when the compilation
/// semantics change in a way the serialized inputs cannot express.
/// Version 2: checksummed on-disk framing + degradation-aware keys.
/// Version 3: mapper backends — `MapperConfig` serializes its
/// `backend` (and exact-search step cap), so exact/portfolio results
/// can never alias heuristic-cached entries; the bump invalidates
/// pre-backend entries whose config serialization lacked the fields.
const SCHEMA_VERSION: u64 = 3;

/// Derives the content-addressed key for one job under a base config.
pub fn cache_key(job: &Job, base: &PtMapConfig) -> String {
    cache_key_degraded(job, base, None)
}

/// The key a *request* for this job resolves to on its first
/// (full-fidelity) attempt: [`cache_key_degraded`] with the job's own
/// resolution-time degradation label (e.g. an unreadable GNN checkpoint
/// replaced by the analytical predictor). This is the identity the
/// serving layer coalesces concurrent requests on — it matches exactly
/// the key attempt 0 of the scheduler's retry ladder reads and writes.
pub fn request_key(job: &Job, base: &PtMapConfig) -> String {
    cache_key_degraded(job, base, job.degraded.as_deref())
}

/// [`cache_key`] for a degraded compilation: the degradation label is
/// part of the key payload, so a best-effort report produced by the
/// retry ladder can never be returned for a full-fidelity request (or
/// vice versa).
pub fn cache_key_degraded(job: &Job, base: &PtMapConfig, degraded: Option<&str>) -> String {
    let config = PtMapConfig {
        mode: job.mode,
        ..base.clone()
    };
    let mut fields = vec![
        ("schema".to_string(), Value::UInt(SCHEMA_VERSION)),
        (
            "program".to_string(),
            serde_json::to_value(&job.program).expect("ir serializes"),
        ),
        (
            "arch".to_string(),
            serde_json::to_value(&job.arch).expect("arch serializes"),
        ),
        ("predictor".to_string(), job.predictor.key_value()),
        (
            "config".to_string(),
            serde_json::to_value(&config).expect("config serializes"),
        ),
    ];
    if let Some(d) = degraded {
        fields.push(("degraded".to_string(), Value::Str(d.to_string())));
    }
    let payload = Value::Object(fields).canonicalize();
    sha256_hex(&serde_json::to_string(&payload).expect("canonical payload serializes"))
}

/// Frames a serialized report for disk: checksum line, then the exact
/// bytes the checksum covers.
fn frame_entry(json: &str) -> String {
    format!("{}\n{json}", sha256_hex(json))
}

/// Decodes and verifies a disk entry; the error string names the first
/// validation that failed (used in the quarantine warning).
fn decode_entry(bytes: &[u8]) -> Result<CompileReport, &'static str> {
    let text = std::str::from_utf8(bytes).map_err(|_| "not UTF-8")?;
    let (checksum, json) = text.split_once('\n').ok_or("missing checksum header")?;
    if checksum.len() != 64 || !checksum.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err("malformed checksum header");
    }
    if sha256_hex(json) != checksum {
        return Err("checksum mismatch");
    }
    serde_json::from_str::<CompileReport>(json).map_err(|_| "unparsable report")
}

/// Thread-safe report cache: in-memory map plus an optional on-disk
/// store (one checksummed JSON file per key).
#[derive(Debug, Default)]
pub struct ReportCache {
    mem: Mutex<HashMap<String, CompileReport>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantines: AtomicU64,
}

/// The warning printed (and counted) when a disk entry fails checksum
/// or parse validation and is moved aside.
pub fn quarantine_message(key: &str, reason: &str) -> String {
    format!("quarantined corrupt cache entry {key}.json ({reason}); recomputing")
}

impl ReportCache {
    /// An in-memory-only cache.
    pub fn in_memory() -> Self {
        ReportCache::default()
    }

    /// A cache backed by a directory (created if missing).
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ReportCache {
            dir: Some(dir),
            ..ReportCache::default()
        })
    }

    /// Looks up a key, falling back from memory to disk. Disk hits are
    /// checksum-verified and promoted into memory; corrupt, truncated,
    /// or unparsable disk entries are quarantined (renamed to
    /// `<name>.corrupt`), counted, and treated as misses — the caller
    /// recomputes and overwrites.
    pub fn get(&self, key: &str) -> Option<CompileReport> {
        if let Some(r) = lock_unpoisoned(&self.mem).get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(r);
        }
        if let Some(dir) = &self.dir {
            // `error` mode models an unreadable disk: the lookup
            // becomes a miss and the job recompiles.
            if faultpoint::fail_point(sites::CACHE_READ).is_err() {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            let path = dir.join(format!("{key}.json"));
            match std::fs::read(&path) {
                Err(_) => {} // absent entry: plain miss
                Ok(bytes) => match decode_entry(&bytes) {
                    Ok(report) => {
                        lock_unpoisoned(&self.mem).insert(key.to_string(), report.clone());
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(report);
                    }
                    Err(reason) => {
                        self.quarantine(&path, key, reason);
                    }
                },
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Moves a failed entry aside so it never shadows the recompute.
    fn quarantine(&self, path: &Path, key: &str, reason: &str) {
        let mut dst = path.as_os_str().to_owned();
        dst.push(".corrupt");
        if std::fs::rename(path, &dst).is_err() {
            // Rename can only fail if someone else already moved or
            // deleted the entry; removal keeps the miss-and-recompute
            // semantics either way.
            let _ = std::fs::remove_file(path);
        }
        self.quarantines.fetch_add(1, Ordering::Relaxed);
        ptmap_trace::obs::logger().warn(
            "cache_quarantine",
            None,
            &quarantine_message(key, reason),
            &[("key", key.into())],
        );
    }

    /// Stores a report under a key (memory and, if configured, disk).
    pub fn put(&self, key: &str, report: &CompileReport) {
        lock_unpoisoned(&self.mem).insert(key.to_string(), report.clone());
        if let Some(dir) = &self.dir {
            // `error` mode models a full/unwritable disk: the entry
            // stays memory-only and a later run recompiles it.
            if faultpoint::fail_point(sites::CACHE_WRITE).is_err() {
                return;
            }
            if let Ok(text) = serde_json::to_string_pretty(report) {
                let text = frame_entry(&text);
                // Write-then-rename so a concurrent reader never sees a
                // half-written entry. The temp name must be unique per
                // writer: with a shared `<key>.json.tmp`, two processes
                // (or threads with separate caches) racing on the same
                // key interleave write/rename and one rename publishes
                // the other writer's possibly half-written file.
                static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
                let tmp = dir.join(format!(
                    "{key}.json.tmp.{}.{}",
                    std::process::id(),
                    WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let dst = dir.join(format!("{key}.json"));
                if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &dst).is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Disk entries quarantined (checksum/parse failures) since
    /// construction.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    /// The backing directory, if this cache persists to disk.
    pub fn dir(&self) -> Option<&std::path::Path> {
        self.dir.as_deref()
    }

    /// Entries currently resident in memory.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.mem).len()
    }

    /// Whether the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{Manifest, PredictorSpec};
    use ptmap_eval::RankMode;

    fn job(kernel: &str, arch: &str) -> Job {
        let m = Manifest::from_json(&format!(
            r#"{{"jobs": [{{"kernel": "{kernel}", "arch": "{arch}"}}]}}"#
        ))
        .unwrap();
        m.resolve().unwrap().remove(0)
    }

    #[test]
    fn key_is_stable_and_input_sensitive() {
        let base = PtMapConfig::default();
        let a = cache_key(&job("gemm:24", "S4"), &base);
        let b = cache_key(&job("gemm:24", "S4"), &base);
        assert_eq!(a, b, "same inputs, same key");
        assert_ne!(
            a,
            cache_key(&job("gemm:32", "S4"), &base),
            "program changes key"
        );
        assert_ne!(
            a,
            cache_key(&job("gemm:24", "R4"), &base),
            "arch changes key"
        );
        let pareto = Job {
            mode: RankMode::Pareto,
            ..job("gemm:24", "S4")
        };
        assert_ne!(a, cache_key(&pareto, &base), "mode changes key");
        let oracle = Job {
            predictor: PredictorSpec::Oracle,
            ..job("gemm:24", "S4")
        };
        assert_ne!(a, cache_key(&oracle, &base), "predictor changes key");
    }

    #[test]
    fn eval_workers_do_not_change_key() {
        let j = job("gemm:24", "S4");
        let serial = PtMapConfig {
            eval_workers: 1,
            ..PtMapConfig::default()
        };
        let wide = PtMapConfig {
            eval_workers: 8,
            ..PtMapConfig::default()
        };
        assert_eq!(cache_key(&j, &serial), cache_key(&j, &wide));
    }

    #[test]
    fn config_changes_key() {
        let j = job("gemm:24", "S4");
        let base = PtMapConfig::default();
        let tweaked = PtMapConfig {
            realize_beam: 9,
            ..PtMapConfig::default()
        };
        assert_ne!(cache_key(&j, &base), cache_key(&j, &tweaked));
    }

    #[test]
    fn backend_changes_key() {
        use ptmap_mapper::BackendKind;
        let j = job("gemm:24", "S4");
        let keys: Vec<String> = [
            BackendKind::Heuristic,
            BackendKind::Exact,
            BackendKind::Portfolio,
        ]
        .into_iter()
        .map(|backend| {
            let mut cfg = PtMapConfig::default();
            cfg.mapper.backend = backend;
            cache_key(&j, &cfg)
        })
        .collect();
        assert_ne!(keys[0], keys[1], "exact must not read heuristic entries");
        assert_ne!(
            keys[0], keys[2],
            "portfolio must not read heuristic entries"
        );
        assert_ne!(keys[1], keys[2], "exact and portfolio entries are distinct");
    }

    #[test]
    fn speculation_does_not_change_key() {
        // Speculative II racing is an execution strategy, not a search
        // semantic: fixed-seed mappings are bit-identical at any wave
        // width, so `MapperConfig::speculation` is `#[serde(skip)]`ed
        // and must never fragment the cache. A sequential compile's
        // entry is a valid (and correct) hit for a speculated request,
        // and vice versa. If this test fails, the field started
        // serializing — that requires a SCHEMA_VERSION bump *and* a
        // semantic justification, since results cannot differ.
        use ptmap_mapper::Speculation;
        let j = job("gemm:24", "S4");
        let base = cache_key(&j, &PtMapConfig::default());
        for spec in [
            Speculation::Fixed(1),
            Speculation::Fixed(4),
            Speculation::Auto,
        ] {
            let mut cfg = PtMapConfig::default();
            cfg.mapper.speculation = spec;
            assert_eq!(
                base,
                cache_key(&j, &cfg),
                "speculation {spec} fragmented the cache key"
            );
        }
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("ptmap-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        {
            let cache = ReportCache::with_dir(&dir).unwrap();
            assert!(cache.get("k").is_none());
            cache.put("k", &report);
            assert_eq!(cache.get("k").unwrap(), report);
        }
        // A fresh cache instance must hydrate from disk.
        let cache = ReportCache::with_dir(&dir).unwrap();
        assert_eq!(cache.get("k").unwrap(), report);
        assert_eq!(cache.stats(), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_puts_on_same_key_leave_one_valid_entry() {
        let dir = std::env::temp_dir().join(format!(
            "ptmap-cache-race-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = std::sync::Arc::new(ReportCache::with_dir(&dir).unwrap());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                let report = CompileReport {
                    cycles: i,
                    ..sample_report()
                };
                for _ in 0..50 {
                    cache.put("contended", &report);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exactly one published file, no leftover temp files, and the
        // entry parses as one writer's complete report.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["contended.json".to_string()], "{names:?}");
        let fresh = ReportCache::with_dir(&dir).unwrap();
        let got = fresh.get("contended").expect("entry readable");
        assert!(got.cycles < 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Write a valid entry, mangle it on disk, and check the fresh
    /// cache quarantines it (renames to `.corrupt`), counts it, treats
    /// the lookup as a miss, and recovers on the next put/get.
    fn assert_quarantined(tag: &str, mangle: impl FnOnce(&Path)) {
        let dir = std::env::temp_dir().join(format!(
            "ptmap-cache-quarantine-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        ReportCache::with_dir(&dir).unwrap().put("k", &report);
        let path = dir.join("k.json");
        mangle(&path);

        let cache = ReportCache::with_dir(&dir).unwrap();
        assert_eq!(cache.get("k"), None, "corrupt entry must read as a miss");
        assert_eq!(cache.quarantines(), 1);
        assert!(
            dir.join("k.json.corrupt").exists(),
            "entry must be moved aside, not deleted"
        );
        assert!(!path.exists(), "corrupt entry must not shadow recompute");

        // Recompute-and-overwrite path: a fresh put publishes a valid
        // entry again.
        cache.put("k", &report);
        let fresh = ReportCache::with_dir(&dir).unwrap();
        assert_eq!(fresh.get("k").unwrap(), report);
        assert_eq!(fresh.quarantines(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_quarantined() {
        assert_quarantined("truncated", |path| {
            let bytes = std::fs::read(path).unwrap();
            std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
        });
    }

    #[test]
    fn bit_flipped_entry_is_quarantined() {
        assert_quarantined("bitflip", |path| {
            let mut bytes = std::fs::read(path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            std::fs::write(path, bytes).unwrap();
        });
    }

    #[test]
    fn headerless_entry_is_quarantined() {
        assert_quarantined("headerless", |path| {
            std::fs::write(path, "no checksum line here").unwrap();
        });
    }

    #[test]
    fn checksum_valid_but_unparsable_entry_is_quarantined() {
        assert_quarantined("unparsable", |path| {
            let json = "{\"not\": \"a report\"}";
            std::fs::write(path, format!("{}\n{json}", sha256_hex(json))).unwrap();
        });
    }

    #[test]
    fn non_utf8_entry_is_quarantined() {
        assert_quarantined("nonutf8", |path| {
            std::fs::write(path, [0xff, 0xfe, 0x00, 0xc1]).unwrap();
        });
    }

    #[test]
    fn quarantine_message_snapshot() {
        assert_eq!(
            quarantine_message("abc123", "checksum mismatch"),
            "quarantined corrupt cache entry abc123.json (checksum mismatch); recomputing"
        );
    }

    #[test]
    fn decode_entry_names_first_failure() {
        assert_eq!(decode_entry(&[0xff, 0xfe]), Err("not UTF-8"));
        assert_eq!(decode_entry(b"no newline"), Err("missing checksum header"));
        assert_eq!(
            decode_entry(b"zz\n{}"),
            Err("malformed checksum header"),
            "short or non-hex first line"
        );
        let bad = format!("{}\n{{}}", "0".repeat(64));
        assert_eq!(decode_entry(bad.as_bytes()), Err("checksum mismatch"));
        let unparsable = format!("{}\n{{}}", sha256_hex("{}"));
        assert_eq!(
            decode_entry(unparsable.as_bytes()),
            Err("unparsable report")
        );
    }

    #[test]
    fn cache_survives_poisoned_lock() {
        // One panicking job must not permanently poison the shared
        // in-memory map of a long-lived daemon's cache.
        let cache = ReportCache::in_memory();
        let report = sample_report();
        cache.put("before", &report);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.mem.lock().unwrap();
            panic!("poison the cache lock");
        }));
        cache.put("after", &report);
        assert_eq!(cache.get("before").unwrap(), report);
        assert_eq!(cache.get("after").unwrap(), report);
        assert_eq!(cache.len(), 2);
    }

    /// Parallel get/put stress over overlapping keys, exercising both
    /// the memory map and the disk store: every get must return either
    /// a miss or one writer's complete report, the disk must end up
    /// with exactly one valid entry per key (no temp files, no corrupt
    /// leftovers), and nothing may panic or deadlock.
    #[test]
    fn concurrent_stress_overlapping_keys() {
        let dir = std::env::temp_dir().join(format!(
            "ptmap-cache-stress-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = std::sync::Arc::new(ReportCache::with_dir(&dir).unwrap());
        const KEYS: usize = 4;
        const THREADS: usize = 8;
        const ROUNDS: usize = 60;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let key = format!("key-{}", (t + round) % KEYS);
                    if (t + round) % 3 == 0 {
                        let report = CompileReport {
                            cycles: (t % KEYS) as u64,
                            ..sample_report()
                        };
                        cache.put(&key, &report);
                    } else if let Some(r) = cache.get(&key) {
                        assert!(
                            (r.cycles as usize) < KEYS,
                            "got a torn report: cycles={}",
                            r.cycles
                        );
                        assert_eq!(r.program, "gemm");
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no stress thread may panic");
        }
        // Disk state: exactly the published entries, all valid.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert!(
            names.iter().all(|n| n.ends_with(".json")),
            "no temp or corrupt files may survive: {names:?}"
        );
        assert!(names.len() <= KEYS);
        let fresh = ReportCache::with_dir(&dir).unwrap();
        for name in &names {
            let key = name.trim_end_matches(".json");
            assert!(fresh.get(key).is_some(), "disk entry {name} must decode");
        }
        assert_eq!(fresh.quarantines(), 0);
        let (hits, misses) = cache.stats();
        assert!(hits + misses > 0, "counters must have moved");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_key_matches_attempt_zero() {
        let base = PtMapConfig::default();
        let j = job("gemm:24", "S4");
        assert_eq!(request_key(&j, &base), cache_key(&j, &base));
        let degraded = Job {
            degraded: Some("predictor=analytical (x)".into()),
            ..job("gemm:24", "S4")
        };
        assert_eq!(
            request_key(&degraded, &base),
            cache_key_degraded(&degraded, &base, degraded.degraded.as_deref()),
        );
        assert_ne!(
            request_key(&degraded, &base),
            request_key(&j, &base),
            "resolution-time degradation must split the request identity"
        );
    }

    #[test]
    fn degraded_label_changes_key() {
        let j = job("gemm:24", "S4");
        let base = PtMapConfig::default();
        let full = cache_key(&j, &base);
        let degraded = cache_key_degraded(&j, &base, Some("explore=quick"));
        assert_ne!(full, degraded, "degraded entries must not alias full ones");
        assert_eq!(
            cache_key_degraded(&j, &base, None),
            full,
            "no label = plain key"
        );
        assert_ne!(
            degraded,
            cache_key_degraded(&j, &base, Some("explore=quick,effort=1,realize_beam=1")),
            "distinct rungs get distinct keys"
        );
    }

    #[test]
    fn cache_read_fault_degrades_to_miss() {
        let dir =
            std::env::temp_dir().join(format!("ptmap-cache-readfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        ReportCache::with_dir(&dir).unwrap().put("k", &report);

        let cache = ReportCache::with_dir(&dir).unwrap();
        {
            // Scope-filtered: the registry is process-global, so an
            // unfiltered spec would fire in concurrently running tests.
            let _guard = faultpoint::install("cache_read:error@readfault-test").unwrap();
            faultpoint::with_scope("readfault-test", || {
                assert_eq!(cache.get("k"), None, "faulted read must miss");
            });
        }
        // Fault cleared: the intact entry is served again and was never
        // quarantined (the file itself is fine).
        assert_eq!(cache.get("k").unwrap(), report);
        assert_eq!(cache.quarantines(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_write_fault_keeps_entry_memory_only() {
        let dir =
            std::env::temp_dir().join(format!("ptmap-cache-writefault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        let cache = ReportCache::with_dir(&dir).unwrap();
        {
            let _guard = faultpoint::install("cache_write:error@writefault-test").unwrap();
            faultpoint::with_scope("writefault-test", || cache.put("k", &report));
        }
        assert_eq!(cache.get("k").unwrap(), report, "memory copy still serves");
        assert!(
            !dir.join("k.json").exists(),
            "faulted write must not publish a disk entry"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sample_report() -> CompileReport {
        CompileReport {
            program: "gemm".into(),
            arch: "S4".into(),
            mode: RankMode::Performance,
            cycles: 10,
            energy_pj: 1.0,
            edp: 10.0,
            pnls: vec![],
            candidates_explored: 2,
            candidates_pruned: 1,
            context_generation_attempts: 1,
            compile_seconds: 0.25,
        }
    }
}
