//! Content-addressed compilation cache.
//!
//! The cache key is the hex SHA-256 of the canonical JSON of everything
//! that determines a compilation's result: the program IR, the
//! architecture description, the predictor identity (for the GNN, a
//! hash of the full parameter checkpoint), the ranking mode, and the
//! result-affecting [`PtMapConfig`] fields (throughput knobs such as
//! `eval_workers` are `#[serde(skip)]`ed out of the config's
//! serialization and therefore out of the key). Canonicalization sorts
//! every object recursively, so key equality is structural, not
//! insertion-ordered.
//!
//! Entries live in a process-wide in-memory map and, when a cache
//! directory is configured, as one pretty-printed JSON file per key —
//! a warm directory survives across runs and makes re-running a
//! manifest orders of magnitude faster.

use crate::hash::sha256_hex;
use crate::manifest::Job;
use ptmap_core::{CompileReport, PtMapConfig};
use serde_json::Value;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version tag mixed into every key: bump when the compilation
/// semantics change in a way the serialized inputs cannot express.
const SCHEMA_VERSION: u64 = 1;

/// Derives the content-addressed key for one job under a base config.
pub fn cache_key(job: &Job, base: &PtMapConfig) -> String {
    let config = PtMapConfig {
        mode: job.mode,
        ..base.clone()
    };
    let payload = Value::Object(vec![
        ("schema".to_string(), Value::UInt(SCHEMA_VERSION)),
        (
            "program".to_string(),
            serde_json::to_value(&job.program).expect("ir serializes"),
        ),
        (
            "arch".to_string(),
            serde_json::to_value(&job.arch).expect("arch serializes"),
        ),
        ("predictor".to_string(), job.predictor.key_value()),
        (
            "config".to_string(),
            serde_json::to_value(&config).expect("config serializes"),
        ),
    ])
    .canonicalize();
    sha256_hex(&serde_json::to_string(&payload).expect("canonical payload serializes"))
}

/// Thread-safe report cache: in-memory map plus an optional on-disk
/// store (one JSON file per key).
#[derive(Debug, Default)]
pub struct ReportCache {
    mem: Mutex<HashMap<String, CompileReport>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReportCache {
    /// An in-memory-only cache.
    pub fn in_memory() -> Self {
        ReportCache::default()
    }

    /// A cache backed by a directory (created if missing).
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ReportCache {
            dir: Some(dir),
            ..ReportCache::default()
        })
    }

    /// Looks up a key, falling back from memory to disk. Disk hits are
    /// promoted into memory; undecodable disk entries count as misses
    /// and are recompiled (then overwritten).
    pub fn get(&self, key: &str) -> Option<CompileReport> {
        if let Some(r) = self.mem.lock().unwrap().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(r);
        }
        if let Some(dir) = &self.dir {
            if let Ok(text) = std::fs::read_to_string(dir.join(format!("{key}.json"))) {
                if let Ok(report) = serde_json::from_str::<CompileReport>(&text) {
                    self.mem
                        .lock()
                        .unwrap()
                        .insert(key.to_string(), report.clone());
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(report);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a report under a key (memory and, if configured, disk).
    pub fn put(&self, key: &str, report: &CompileReport) {
        self.mem
            .lock()
            .unwrap()
            .insert(key.to_string(), report.clone());
        if let Some(dir) = &self.dir {
            if let Ok(text) = serde_json::to_string_pretty(report) {
                // Write-then-rename so a concurrent reader never sees a
                // half-written entry. The temp name must be unique per
                // writer: with a shared `<key>.json.tmp`, two processes
                // (or threads with separate caches) racing on the same
                // key interleave write/rename and one rename publishes
                // the other writer's possibly half-written file.
                static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
                let tmp = dir.join(format!(
                    "{key}.json.tmp.{}.{}",
                    std::process::id(),
                    WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let dst = dir.join(format!("{key}.json"));
                if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &dst).is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
        }
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries currently resident in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    /// Whether the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{Manifest, PredictorSpec};
    use ptmap_eval::RankMode;

    fn job(kernel: &str, arch: &str) -> Job {
        let m = Manifest::from_json(&format!(
            r#"{{"jobs": [{{"kernel": "{kernel}", "arch": "{arch}"}}]}}"#
        ))
        .unwrap();
        m.resolve().unwrap().remove(0)
    }

    #[test]
    fn key_is_stable_and_input_sensitive() {
        let base = PtMapConfig::default();
        let a = cache_key(&job("gemm:24", "S4"), &base);
        let b = cache_key(&job("gemm:24", "S4"), &base);
        assert_eq!(a, b, "same inputs, same key");
        assert_ne!(
            a,
            cache_key(&job("gemm:32", "S4"), &base),
            "program changes key"
        );
        assert_ne!(
            a,
            cache_key(&job("gemm:24", "R4"), &base),
            "arch changes key"
        );
        let pareto = Job {
            mode: RankMode::Pareto,
            ..job("gemm:24", "S4")
        };
        assert_ne!(a, cache_key(&pareto, &base), "mode changes key");
        let oracle = Job {
            predictor: PredictorSpec::Oracle,
            ..job("gemm:24", "S4")
        };
        assert_ne!(a, cache_key(&oracle, &base), "predictor changes key");
    }

    #[test]
    fn eval_workers_do_not_change_key() {
        let j = job("gemm:24", "S4");
        let serial = PtMapConfig {
            eval_workers: 1,
            ..PtMapConfig::default()
        };
        let wide = PtMapConfig {
            eval_workers: 8,
            ..PtMapConfig::default()
        };
        assert_eq!(cache_key(&j, &serial), cache_key(&j, &wide));
    }

    #[test]
    fn config_changes_key() {
        let j = job("gemm:24", "S4");
        let base = PtMapConfig::default();
        let tweaked = PtMapConfig {
            realize_beam: 9,
            ..PtMapConfig::default()
        };
        assert_ne!(cache_key(&j, &base), cache_key(&j, &tweaked));
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("ptmap-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        {
            let cache = ReportCache::with_dir(&dir).unwrap();
            assert!(cache.get("k").is_none());
            cache.put("k", &report);
            assert_eq!(cache.get("k").unwrap(), report);
        }
        // A fresh cache instance must hydrate from disk.
        let cache = ReportCache::with_dir(&dir).unwrap();
        assert_eq!(cache.get("k").unwrap(), report);
        assert_eq!(cache.stats(), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_puts_on_same_key_leave_one_valid_entry() {
        let dir = std::env::temp_dir().join(format!(
            "ptmap-cache-race-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = std::sync::Arc::new(ReportCache::with_dir(&dir).unwrap());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                let report = CompileReport {
                    cycles: i,
                    ..sample_report()
                };
                for _ in 0..50 {
                    cache.put("contended", &report);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exactly one published file, no leftover temp files, and the
        // entry parses as one writer's complete report.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["contended.json".to_string()], "{names:?}");
        let fresh = ReportCache::with_dir(&dir).unwrap();
        let got = fresh.get("contended").expect("entry readable");
        assert!(got.cycles < 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sample_report() -> CompileReport {
        CompileReport {
            program: "gemm".into(),
            arch: "S4".into(),
            mode: RankMode::Performance,
            cycles: 10,
            energy_pj: 1.0,
            edp: 10.0,
            pnls: vec![],
            candidates_explored: 2,
            candidates_pruned: 1,
            context_generation_attempts: 1,
            compile_seconds: 0.25,
        }
    }
}
