//! Batch compilation service for PT-Map.
//!
//! PT-Map's evaluation sweeps hundreds of (kernel, architecture,
//! predictor, ranking-mode) compilations; this crate turns those sweeps
//! into declarative, cached, parallel batch runs:
//!
//! * [`manifest`] — a JSON job manifest with kernel / architecture /
//!   predictor references, resolved to concrete [`Job`]s;
//! * [`scheduler`] — a `std::thread::scope` worker pool over channels
//!   with per-job panic isolation, deterministic (manifest-ordered)
//!   output, and within-job sharding of candidate evaluation via
//!   `PtMapConfig::eval_workers`;
//! * [`cache`] — a content-addressed report cache (SHA-256 over the
//!   canonical JSON of program + architecture + predictor + config)
//!   with an optional on-disk store that persists across runs;
//! * [`metrics`] — a std-only span/counter recorder emitting a JSON
//!   metrics document with per-stage timings, cache-hit counts, and
//!   pruning/mapper-effort counters for every job.
//!
//! The `ptmap batch` CLI subcommand and the `fig7`/`fig9` experiment
//! binaries are thin wrappers over [`run_batch`].
//!
//! # Example
//!
//! ```
//! use ptmap_pipeline::{run_batch, BatchConfig, Manifest};
//!
//! let manifest = Manifest::from_json(
//!     r#"{"jobs": [
//!         {"kernel": "gemm:24", "arch": "S4"},
//!         {"kernel": "gemm:24", "arch": "R4", "mode": "pareto"}
//!     ]}"#,
//! )?;
//! let jobs = manifest.resolve()?;
//! let batch = run_batch(&jobs, &BatchConfig { workers: 2, ..BatchConfig::default() });
//! assert_eq!(batch.outcomes.len(), 2);
//! assert!(batch.outcomes.iter().all(|o| o.report.is_some()));
//! # Ok::<(), String>(())
//! ```

pub mod cache;
pub mod hash;
pub mod manifest;
pub mod metrics;
pub mod scheduler;

pub use cache::{cache_key, request_key, ReportCache};
pub use manifest::{Job, JobSpec, Manifest, PredictorSpec};
pub use metrics::{BatchMetrics, JobMetrics, Recorder, SpanStat};
pub use scheduler::{
    compile_job, compile_job_traced, run_batch, run_batch_with_cache, BatchConfig, BatchReport,
    JobOutcome, TraceSettings,
};

/// Locks a mutex, recovering from poisoning.
///
/// The shared recorder and report cache outlive any one job — in a
/// long-lived daemon they outlive *millions* of jobs — so a panicking
/// compilation (itself isolated by `catch_unwind`) must not leave them
/// permanently poisoned. Every value they guard (counter maps, the
/// report map) is valid after any interrupted mutation: entries are
/// inserted or numerically bumped atomically from the data structure's
/// point of view, so continuing past the poison marker is safe.
pub(crate) fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
