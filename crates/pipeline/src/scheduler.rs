//! The batch job scheduler.
//!
//! [`run_batch`] drains a manifest's resolved jobs through a
//! `std::thread::scope` worker pool fed over an `mpsc` channel: the job
//! indices are queued up front, each worker pulls the next index,
//! compiles (or hits the cache), and sends its outcome back on a result
//! channel. Outcomes are re-ordered by manifest index, so the output is
//! independent of scheduling — a `workers = 8` run is byte-identical
//! (modulo wall-clock fields) to a `workers = 1` run.
//!
//! Each job body runs under `catch_unwind`: a panicking compilation
//! produces an error outcome for that job and the rest of the batch
//! proceeds.
//!
//! # Governor
//!
//! A batch runs under a [`Budget`]: `deadline` caps the whole batch,
//! `job_timeout` caps each compilation attempt (via
//! [`Budget::child`], so the batch deadline still dominates), and
//! external cancellation propagates through the shared cancel flag.
//! A job that times out or panics is retried up to `max_retries`
//! times down a *degradation ladder* — first with a narrowed
//! exploration, then additionally with minimum mapper effort and beam —
//! and any outcome produced that way carries the degradation label
//! (which is also part of its cache key).

use crate::cache::{cache_key_degraded, ReportCache};
use crate::manifest::Job;
use crate::metrics::{BatchMetrics, JobMetrics, Recorder};
use ptmap_core::{CompileMetrics, CompileReport, PtMapConfig, PtMapError};
use ptmap_governor::{faultpoint, Budget};
use ptmap_trace::{SamplePolicy, Tracer};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Batch execution configuration.
#[derive(Clone)]
pub struct BatchConfig {
    /// Job-level worker threads (`<= 1` = serial).
    pub workers: usize,
    /// Directory for the persistent report cache (`None` = in-memory
    /// only).
    pub cache_dir: Option<PathBuf>,
    /// Base compiler configuration; each job overrides the ranking
    /// mode. `base.eval_workers` controls within-job sharding of the
    /// candidate evaluations.
    pub base: PtMapConfig,
    /// Per-attempt compilation timeout (`None` = unlimited). Checked
    /// cooperatively inside every pipeline stage.
    pub job_timeout: Option<Duration>,
    /// The batch-wide budget: set a deadline to cap the whole run,
    /// clone-and-cancel from another thread to stop it early. Every
    /// job attempt runs under a [`Budget::child`] of this.
    pub budget: Budget,
    /// Timed-out or panicking jobs are retried this many times down
    /// the degradation ladder (0 = fail immediately). Deterministic
    /// errors and cancellation are never retried.
    pub max_retries: u32,
    /// Per-compile span-tree tracing (`None` = disabled; the compile
    /// hot path then sees only `Option` branches).
    pub trace: Option<TraceSettings>,
    /// Observe-only sample tap installed on every compilation (the
    /// online-learning ingest hook; see `ptmap_eval::SampleTap`). Taps
    /// never affect compile results or cache keys.
    pub tap: Option<std::sync::Arc<dyn ptmap_eval::SampleTap>>,
}

impl std::fmt::Debug for BatchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchConfig")
            .field("workers", &self.workers)
            .field("cache_dir", &self.cache_dir)
            .field("base", &self.base)
            .field("job_timeout", &self.job_timeout)
            .field("budget", &self.budget)
            .field("max_retries", &self.max_retries)
            .field("trace", &self.trace)
            .field("tap", &self.tap.as_ref().map(|_| "<tap>"))
            .finish()
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 1,
            cache_dir: None,
            base: PtMapConfig::default(),
            job_timeout: None,
            budget: Budget::unlimited(),
            max_retries: 2,
            trace: None,
            tap: None,
        }
    }
}

/// Per-compile tracing policy for a batch run.
#[derive(Debug, Clone)]
pub struct TraceSettings {
    /// Directory receiving one `<job>.trace.json` Chrome trace-event
    /// document per kept compile (`None` = record but do not write —
    /// callers like `ptmap serve` export through their own sink).
    pub dir: Option<PathBuf>,
    /// Head-sampling fraction in `[0.0, 1.0]`: the keep decision
    /// hashes the trace ID, so it is stable across runs.
    pub sample: f64,
    /// Wall-time threshold (milliseconds) that force-keeps a trace
    /// regardless of sampling — slow outliers always survive.
    pub slow_ms: Option<u64>,
}

impl Default for TraceSettings {
    fn default() -> Self {
        TraceSettings {
            dir: None,
            sample: 1.0,
            slow_ms: None,
        }
    }
}

impl TraceSettings {
    /// The sampling policy these settings describe.
    pub fn policy(&self) -> SamplePolicy {
        SamplePolicy {
            sample: self.sample,
            slow_ms: self.slow_ms,
        }
    }
}

/// One rung of the retry ladder: the config for `attempt` (0 = the
/// caller's full-fidelity config) plus the degradation label recorded
/// in the outcome and mixed into the cache key. Later rungs shrink the
/// search so a retry after a timeout actually fits the budget.
fn ladder(base: &PtMapConfig, attempt: u32) -> (PtMapConfig, Option<String>) {
    match attempt {
        0 => (base.clone(), None),
        1 => (
            PtMapConfig {
                explore: ptmap_transform::ExploreConfig::quick(),
                ..base.clone()
            },
            Some("explore=quick".to_string()),
        ),
        _ => {
            // The deepest rung also abandons the exact/portfolio backends:
            // a job that blew its budget twice should not keep paying for
            // an optimality proof.
            let mut mapper = base.mapper.clone().with_effort(1);
            let mut label = "explore=quick,effort=1,realize_beam=1".to_string();
            if mapper.backend != ptmap_mapper::BackendKind::Heuristic {
                mapper.backend = ptmap_mapper::BackendKind::Heuristic;
                label.push_str(",backend=heuristic");
            }
            (
                PtMapConfig {
                    explore: ptmap_transform::ExploreConfig::quick(),
                    mapper,
                    realize_beam: 1,
                    ..base.clone()
                },
                Some(label),
            )
        }
    }
}

/// The outcome of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job display name.
    pub name: String,
    /// Whether the report came from the cache.
    pub cache_hit: bool,
    /// The compilation report (`None` on failure).
    pub report: Option<CompileReport>,
    /// The failure message (`None` on success).
    pub error: Option<String>,
    /// Short machine-readable failure class (`timeout`, `cancelled`,
    /// `panic`, `fault`, `no-pnl`, `nothing-mappable`); `None` on
    /// success.
    #[serde(default)]
    pub error_class: Option<String>,
    /// The degradation ladder rung (plus any predictor fallback) that
    /// produced this outcome; `None` for a full-fidelity result.
    #[serde(default)]
    pub degraded: Option<String>,
    /// Extra attempts spent on this job beyond the first.
    #[serde(default)]
    pub retries: u32,
    /// The trace ID of the span tree recorded for this compile
    /// (`None` when tracing was disabled). Coalesced followers in
    /// `ptmap serve` surface the leader's trace ID here.
    #[serde(default)]
    pub trace_id: Option<String>,
}

impl JobOutcome {
    /// The outcome with wall-clock timing (and the run-unique trace
    /// ID) stripped from the report — the deterministic part, used for
    /// serial-vs-parallel and cache-vs-recompile identity checks.
    pub fn deterministic(&self) -> JobOutcome {
        JobOutcome {
            report: self.report.as_ref().map(CompileReport::without_timing),
            trace_id: None,
            ..self.clone()
        }
    }
}

/// The result of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in manifest order.
    pub outcomes: Vec<JobOutcome>,
    /// The batch metrics document.
    pub metrics: BatchMetrics,
}

impl BatchReport {
    /// JSON of the deterministic part of every outcome (manifest
    /// order, timing stripped). Two runs of the same manifest must
    /// produce identical strings regardless of worker count or cache
    /// temperature.
    pub fn deterministic_json(&self) -> String {
        let outcomes: Vec<JobOutcome> = self
            .outcomes
            .iter()
            .map(JobOutcome::deterministic)
            .collect();
        serde_json::to_string_pretty(&outcomes).expect("outcomes serialize")
    }
}

/// Runs a batch with a cache built from the configuration (persistent
/// when `cache_dir` is set).
pub fn run_batch(jobs: &[Job], config: &BatchConfig) -> BatchReport {
    let cache = match &config.cache_dir {
        Some(dir) => ReportCache::with_dir(dir).unwrap_or_else(|e| {
            ptmap_trace::obs::logger().warn(
                "cache_dir_fallback",
                None,
                &format!("cache dir {}: {e}; falling back to memory", dir.display()),
                &[],
            );
            ReportCache::in_memory()
        }),
        None => ReportCache::in_memory(),
    };
    run_batch_with_cache(jobs, config, &cache)
}

/// Runs a batch against a caller-owned cache (lets several batches —
/// e.g. the bench harness's figure runs — share one store).
pub fn run_batch_with_cache(
    jobs: &[Job],
    config: &BatchConfig,
    cache: &ReportCache,
) -> BatchReport {
    let t0 = Instant::now();
    let recorder = Recorder::new();
    let workers = config.workers.clamp(1, jobs.len().max(1));
    let quarantines_before = cache.quarantines();

    let mut slots: Vec<Option<(JobOutcome, JobMetrics)>> = vec![None; jobs.len()];
    if workers <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(compile_job(&jobs[i], config, cache, &recorder));
        }
    } else {
        // Feed indices through a channel; workers drain it until empty.
        let (index_tx, index_rx) = mpsc::channel::<usize>();
        for i in 0..jobs.len() {
            index_tx.send(i).expect("queue job");
        }
        drop(index_tx);
        let index_rx = Mutex::new(index_rx);
        let (result_tx, result_rx) = mpsc::channel::<(usize, (JobOutcome, JobMetrics))>();
        std::thread::scope(|s| {
            let mut spawned = 0usize;
            for _ in 0..workers {
                // A faulted spawn (any mode) just means one fewer
                // worker; the queue drains through the survivors.
                let spawn_ok = catch_unwind(|| {
                    faultpoint::fail_point(faultpoint::sites::WORKER_SPAWN).is_ok()
                })
                .unwrap_or(false);
                if !spawn_ok {
                    recorder.incr("worker_spawn_failures", 1);
                    continue;
                }
                let result_tx = result_tx.clone();
                let index_rx = &index_rx;
                let recorder = &recorder;
                s.spawn(move || loop {
                    // Hold the receiver lock only for the pull.
                    let next = { index_rx.lock().unwrap().recv() };
                    let Ok(i) = next else { break };
                    let out = compile_job(&jobs[i], config, cache, recorder);
                    if result_tx.send((i, out)).is_err() {
                        break;
                    }
                });
                spawned += 1;
            }
            if spawned == 0 {
                // Every spawn faulted: drain the queue on this thread
                // so the batch still completes (degraded to serial).
                loop {
                    let next = { index_rx.lock().unwrap().recv() };
                    let Ok(i) = next else { break };
                    let out = compile_job(&jobs[i], config, cache, &recorder);
                    if result_tx.send((i, out)).is_err() {
                        break;
                    }
                }
            }
        });
        drop(result_tx);
        for (i, out) in result_rx {
            slots[i] = Some(out);
        }
    }

    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut job_metrics = Vec::with_capacity(jobs.len());
    for slot in slots {
        let (o, m) = slot.expect("every job produced an outcome");
        outcomes.push(o);
        job_metrics.push(m);
    }
    let (spans, counters) = recorder.snapshot();
    let metrics = BatchMetrics {
        wall_seconds: t0.elapsed().as_secs_f64(),
        workers,
        cache_hits: counters.get("cache_hits").copied().unwrap_or(0),
        cache_misses: counters.get("cache_misses").copied().unwrap_or(0),
        cache_quarantines: cache.quarantines() - quarantines_before,
        spans,
        counters,
        jobs: job_metrics,
    };
    BatchReport { outcomes, metrics }
}

/// What one attempt (cache lookup + compilation) produced.
enum Attempt {
    CacheHit(CompileReport),
    Compiled(Result<CompileReport, PtMapError>, CompileMetrics),
}

/// Maps a pipeline error to its short machine-readable class.
fn error_class(e: &PtMapError) -> &'static str {
    match e {
        PtMapError::Timeout => "timeout",
        PtMapError::Cancelled => "cancelled",
        PtMapError::Fault(_) => "fault",
        PtMapError::NoPnl => "no-pnl",
        PtMapError::NothingMappable => "nothing-mappable",
        _ => "error",
    }
}

/// Compiles one job end to end: cache lookup, retry-ladder compilation
/// under the configured budget, metrics accounting — all under the
/// job's fault-injection scope (per-job `@<filter>` fault specs match
/// against the job name).
///
/// This is the shared library entry point behind both the batch
/// scheduler and the `ptmap serve` daemon: a caller owns the
/// [`ReportCache`] and [`Recorder`] (keeping them resident across
/// calls) and passes a [`BatchConfig`] describing the budget and retry
/// policy for this one compilation. `config.workers` and
/// `config.cache_dir` are ignored here — only `base`, `budget`,
/// `job_timeout`, and `max_retries` apply.
pub fn compile_job(
    job: &Job,
    config: &BatchConfig,
    cache: &ReportCache,
    recorder: &Recorder,
) -> (JobOutcome, JobMetrics) {
    match &config.trace {
        None => compile_job_traced(job, config, cache, recorder, &Tracer::disabled()),
        Some(settings) => {
            let tracer = Tracer::root(&job.name);
            let out = compile_job_traced(job, config, cache, recorder, &tracer);
            export_batch_trace(&tracer, settings, &out.1, recorder);
            out
        }
    }
}

/// [`compile_job`] recording its span tree under a caller-owned
/// [`Tracer`] — the daemon path, where the caller adopted the client's
/// `X-Ptmap-Trace-Id` and owns the export sink. `config.trace` is
/// ignored here; the caller decides what to keep.
pub fn compile_job_traced(
    job: &Job,
    config: &BatchConfig,
    cache: &ReportCache,
    recorder: &Recorder,
    tracer: &Tracer,
) -> (JobOutcome, JobMetrics) {
    faultpoint::with_scope(&job.name, || {
        run_one_scoped(job, config, cache, recorder, tracer)
    })
}

/// Applies the batch sampling policy to a finished compile and writes
/// the kept trace as `<job>.trace.json` (Chrome trace-event JSON)
/// under the configured directory.
fn export_batch_trace(
    tracer: &Tracer,
    settings: &TraceSettings,
    metrics: &JobMetrics,
    recorder: &Recorder,
) {
    let Some(dir) = &settings.dir else { return };
    let Some(trace) = tracer.finish() else { return };
    let wall = Duration::from_secs_f64(metrics.wall_seconds.max(0.0));
    if !settings.policy().keep(&trace.trace_id, wall) {
        recorder.incr("traces_sampled_out", 1);
        return;
    }
    let path = dir.join(format!("{}.trace.json", sanitize_file_stem(&metrics.job)));
    let write = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&path, ptmap_trace::chrome_trace_json(&trace)));
    match write {
        Ok(()) => recorder.incr("traces_written", 1),
        Err(e) => {
            ptmap_trace::obs::logger().warn(
                "trace_write_failed",
                Some(&trace.trace_id),
                &format!("writing trace {}: {e}", path.display()),
                &[],
            );
            recorder.incr("trace_write_failures", 1);
        }
    }
}

/// Job names (`gemm:24@S4`) become file stems: anything outside
/// `[A-Za-z0-9._-]` maps to `-` so the name stays one path component.
fn sanitize_file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// The retry-ladder driver: walks attempts 0..=max_retries, each under
/// a fresh child budget and with panic isolation; only timeouts and
/// panics descend the ladder.
fn run_one_scoped(
    job: &Job,
    config: &BatchConfig,
    cache: &ReportCache,
    recorder: &Recorder,
    tracer: &Tracer,
) -> (JobOutcome, JobMetrics) {
    let t0 = Instant::now();
    let mut stages = CompileMetrics::default();
    // Predictor-fallback accounting: manifest resolution degrades a
    // failed GNN checkpoint load to the analytical predictor and labels
    // the job; surface it as a counted metric, once per job.
    if job
        .degraded
        .as_deref()
        .is_some_and(|d| d.contains("predictor=analytical"))
    {
        stages.predictor_fallbacks += 1;
        recorder.incr("predictor_fallbacks", 1);
    }
    let mut retries = 0u32;
    let mut last_error: Option<(String, &'static str)> = None;
    let mut success: Option<(CompileReport, bool, Option<String>)> = None;
    // The per-compile root span; governor events (deadline hits,
    // cancellation, degraded retries) attach to it or to the active
    // attempt span below it.
    let root = tracer.span("compile");
    root.attr("job", job.name.as_str());

    for attempt in 0..=config.max_retries {
        // The batch-wide budget dominates: once it is gone, nothing —
        // not even a first attempt — starts.
        if let Err(e) = config.budget.check() {
            let (msg, event) = match e {
                ptmap_governor::BudgetExceeded::Cancelled => ("batch cancelled", "cancelled"),
                _ => ("batch deadline exceeded", "deadline_hit"),
            };
            root.event_attr(event, "scope", "batch");
            last_error = Some((msg.to_string(), error_class(&PtMapError::from(e))));
            break;
        }
        let (cfg, rung) = ladder(&config.base, attempt);
        let label = match (&job.degraded, &rung) {
            (None, None) => None,
            (Some(d), None) => Some(d.clone()),
            (None, Some(r)) => Some(r.clone()),
            (Some(d), Some(r)) => Some(format!("{d},{r}")),
        };
        let key = cache_key_degraded(job, &cfg, label.as_deref());
        let attempt_span = root.tracer().span("attempt");
        attempt_span.attr("attempt", attempt as u64);
        if let Some(r) = &rung {
            attempt_span.attr("rung", r.as_str());
            root.event_attr("degraded_retry", "rung", r.as_str());
        }
        // Cache lookup and publication join the compilation inside
        // catch_unwind so a `panic`-mode fault at cache_read or
        // cache_write downs this job, not the whole batch.
        let attempted = catch_unwind(AssertUnwindSafe(|| {
            if let Some(report) = cache.get(&key) {
                return Attempt::CacheHit(report);
            }
            let budget = config.budget.child(config.job_timeout);
            let mut compiler = job.compiler(&cfg);
            if let Some(tap) = &config.tap {
                compiler = compiler.with_tap(std::sync::Arc::clone(tap));
            }
            let (result, m) = compiler.compile_instrumented_traced(
                &job.program,
                &job.arch,
                &budget,
                attempt_span.tracer(),
            );
            if let Ok(report) = &result {
                cache.put(&key, report);
            }
            Attempt::Compiled(result, m)
        }));
        if attempt > 0 {
            retries += 1;
            recorder.incr("job_retries", 1);
        }
        match attempted {
            Ok(Attempt::CacheHit(report)) => {
                recorder.incr("cache_hits", 1);
                attempt_span.event("cache_hit");
                success = Some((report, true, label));
                break;
            }
            Ok(Attempt::Compiled(result, m)) => {
                recorder.incr("cache_misses", 1);
                stages.absorb(&m);
                match result {
                    Ok(report) => {
                        if let Some(l) = &label {
                            stages.degradations.push(l.clone());
                        }
                        success = Some((report, false, label));
                        break;
                    }
                    Err(e) => {
                        let class = error_class(&e);
                        let event = match class {
                            "timeout" => "deadline_hit",
                            "cancelled" => "cancelled",
                            _ => "compile_error",
                        };
                        attempt_span.event_attr(event, "class", class);
                        last_error = Some((e.to_string(), class));
                        if class != "timeout" {
                            break; // deterministic failure or cancel: no retry
                        }
                    }
                }
            }
            Err(panic) => {
                attempt_span.event("panic");
                last_error = Some((format!("panicked: {}", panic_message(&panic)), "panic"));
            }
        }
    }

    let ok = success.is_some();
    recorder.incr(if ok { "jobs_ok" } else { "jobs_failed" }, 1);
    recorder.add_seconds("explore", stages.explore_seconds);
    recorder.add_seconds("evaluate", stages.evaluate_seconds);
    recorder.add_seconds("map", stages.map_seconds);
    recorder.add_seconds("simulate", stages.simulate_seconds);
    recorder.incr("candidates_explored", stages.candidates_explored as u64);
    recorder.incr("candidates_pruned", stages.candidates_pruned as u64);
    recorder.incr("mapper_accepts", stages.mapper_accepts as u64);
    recorder.incr("mapper_rejects", stages.mapper_rejects as u64);
    recorder.incr(
        "backend_heuristic_wins",
        stages.backend_heuristic_wins as u64,
    );
    recorder.incr("backend_exact_wins", stages.backend_exact_wins as u64);
    recorder.incr(
        "exact_optimality_proofs",
        stages.exact_optimality_proofs as u64,
    );
    recorder.incr(
        "portfolio_cancellations",
        stages.portfolio_cancellations as u64,
    );
    recorder.incr(
        "speculative_rungs_cancelled",
        stages.speculative_rungs_cancelled as u64,
    );
    let wall = t0.elapsed().as_secs_f64();
    recorder.add_seconds("job", wall);
    let (report, cache_hit, degraded, error, class) = match success {
        Some((report, hit, label)) => {
            if label.is_some() {
                recorder.incr("jobs_degraded", 1);
            }
            (Some(report), hit, label, None, None)
        }
        None => {
            let (msg, class) =
                last_error.unwrap_or_else(|| ("job produced no outcome".to_string(), "error"));
            (None, false, None, Some(msg), Some(class.to_string()))
        }
    };
    root.attr("ok", ok);
    root.attr("cache_hit", cache_hit);
    root.attr("retries", retries as u64);
    drop(root);
    (
        JobOutcome {
            name: job.name.clone(),
            cache_hit,
            report,
            error,
            error_class: class,
            degraded: degraded.clone(),
            retries,
            trace_id: tracer.trace_id().map(str::to_string),
        },
        JobMetrics {
            job: job.name.clone(),
            cache_hit,
            ok,
            wall_seconds: wall,
            stages,
        },
    )
}

/// Best-effort rendering of a panic payload.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn jobs(n: usize) -> Vec<Job> {
        let sizes = [16, 20, 24, 28, 32, 36, 40, 44];
        let jobs: Vec<_> = (0..n)
            .map(|i| {
                format!(
                    r#"{{"kernel": "gemm:{}", "arch": "{}"}}"#,
                    sizes[i % sizes.len()],
                    if i % 2 == 0 { "S4" } else { "R4" }
                )
            })
            .collect();
        Manifest::from_json(&format!(r#"{{"jobs": [{}]}}"#, jobs.join(",")))
            .unwrap()
            .resolve()
            .unwrap()
    }

    fn quick_base() -> PtMapConfig {
        PtMapConfig {
            explore: ptmap_transform::ExploreConfig::quick(),
            ..PtMapConfig::default()
        }
    }

    #[test]
    fn serial_batch_compiles_all() {
        let config = BatchConfig {
            base: quick_base(),
            ..BatchConfig::default()
        };
        let batch = run_batch(&jobs(3), &config);
        assert_eq!(batch.outcomes.len(), 3);
        assert!(
            batch.outcomes.iter().all(|o| o.report.is_some()),
            "{:?}",
            batch.outcomes
        );
        assert_eq!(batch.metrics.cache_misses, 3);
        assert_eq!(batch.metrics.jobs.len(), 3);
        assert!(batch.metrics.spans.contains_key("evaluate"));
    }

    #[test]
    fn parallel_matches_serial() {
        let js = jobs(6);
        let serial = run_batch(
            &js,
            &BatchConfig {
                workers: 1,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        let parallel = run_batch(
            &js,
            &BatchConfig {
                workers: 8,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
    }

    #[test]
    fn in_memory_cache_hits_on_repeat() {
        // Two identical jobs: the second should hit the cache and carry
        // the identical report.
        let mut js = jobs(1);
        js.push(js[0].clone());
        let batch = run_batch(
            &js,
            &BatchConfig {
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        assert_eq!(batch.metrics.cache_hits, 1);
        assert_eq!(batch.metrics.cache_misses, 1);
        assert!(batch.outcomes[1].cache_hit);
        assert_eq!(
            batch.outcomes[0].report.as_ref().unwrap(),
            batch.outcomes[1].report.as_ref().unwrap(),
        );
    }

    fn sample_report() -> CompileReport {
        CompileReport {
            program: "gemm".into(),
            arch: "S4".into(),
            mode: ptmap_eval::RankMode::Performance,
            cycles: 10,
            energy_pj: 1.0,
            edp: 10.0,
            pnls: vec![],
            candidates_explored: 2,
            candidates_pruned: 1,
            context_generation_attempts: 1,
            compile_seconds: 0.25,
        }
    }

    #[test]
    fn batch_trace_dir_writes_chrome_traces() {
        let dir = std::env::temp_dir().join(format!("ptmap-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = BatchConfig {
            base: quick_base(),
            trace: Some(TraceSettings {
                dir: Some(dir.clone()),
                ..TraceSettings::default()
            }),
            ..BatchConfig::default()
        };
        let js = jobs(2);
        let batch = run_batch(&js, &config);
        assert!(batch.outcomes.iter().all(|o| o.report.is_some()));
        assert!(batch.outcomes.iter().all(|o| o.trace_id.is_some()));
        assert_eq!(batch.metrics.counters.get("traces_written"), Some(&2));
        for job in &js {
            let path = dir.join(format!("{}.trace.json", sanitize_file_stem(&job.name)));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let doc: serde::Value = serde_json::from_str(&text).unwrap();
            let events = doc
                .get("traceEvents")
                .and_then(|v| v.as_array())
                .expect("traceEvents");
            let begins: Vec<&str> = events
                .iter()
                .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("B"))
                .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
                .collect();
            // The compile root, the retry-ladder attempt, the pipeline
            // stages, and at least one mapper II rung all show up.
            for name in [
                "compile",
                "attempt",
                "explore",
                "evaluate",
                "map",
                "ii_attempt",
            ] {
                assert!(begins.contains(&name), "{name} span missing: {begins:?}");
            }
            let ends = events
                .iter()
                .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("E"))
                .count();
            assert_eq!(begins.len(), ends, "balanced B/E pairs");
            // II-attempt spans carry the search counters.
            let ii = events
                .iter()
                .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("ii_attempt"))
                .and_then(|e| e.get("args"))
                .expect("ii_attempt args");
            for key in [
                "restarts",
                "backtracks",
                "placements_tried",
                "bfs_expansions",
            ] {
                assert!(ii.get(key).is_some(), "missing counter {key}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_sampling_drops_and_slow_threshold_keeps() {
        let dir =
            std::env::temp_dir().join(format!("ptmap-trace-sample-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // sample=0.0 without a slow threshold: everything sampled out.
        let config = BatchConfig {
            base: quick_base(),
            trace: Some(TraceSettings {
                dir: Some(dir.clone()),
                sample: 0.0,
                slow_ms: None,
            }),
            ..BatchConfig::default()
        };
        let batch = run_batch(&jobs(1), &config);
        assert!(batch.outcomes[0].report.is_some());
        assert_eq!(batch.metrics.counters.get("traces_written"), None);
        assert_eq!(batch.metrics.counters.get("traces_sampled_out"), Some(&1));
        // sample=0.0 but slow_ms=0: every compile is a "slow" outlier.
        let config = BatchConfig {
            base: quick_base(),
            trace: Some(TraceSettings {
                dir: Some(dir.clone()),
                sample: 0.0,
                slow_ms: Some(0),
            }),
            ..BatchConfig::default()
        };
        let batch = run_batch(&jobs(1), &config);
        assert_eq!(batch.metrics.counters.get("traces_written"), Some(&1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ladder_rungs_shrink_search() {
        let base = PtMapConfig::default();
        let (c0, l0) = ladder(&base, 0);
        assert_eq!(l0, None);
        assert_eq!(c0.realize_beam, base.realize_beam);
        let (c1, l1) = ladder(&base, 1);
        assert_eq!(l1.as_deref(), Some("explore=quick"));
        assert_eq!(c1.explore, ptmap_transform::ExploreConfig::quick());
        let (c2, l2) = ladder(&base, 2);
        assert_eq!(l2.as_deref(), Some("explore=quick,effort=1,realize_beam=1"));
        assert_eq!(c2.realize_beam, 1);
        // The ladder bottoms out: further attempts reuse the last rung.
        let (c9, l9) = ladder(&base, 9);
        assert_eq!(l9, l2);
        assert_eq!(c9.realize_beam, 1);
        // A non-heuristic base additionally falls back to the heuristic
        // backend on the deepest rung (and says so in the label).
        let pf = PtMapConfig {
            mapper: base
                .mapper
                .clone()
                .with_backend(ptmap_mapper::BackendKind::Portfolio),
            ..base.clone()
        };
        let (c2p, l2p) = ladder(&pf, 2);
        assert_eq!(
            l2p.as_deref(),
            Some("explore=quick,effort=1,realize_beam=1,backend=heuristic")
        );
        assert_eq!(c2p.mapper.backend, ptmap_mapper::BackendKind::Heuristic);
    }

    #[test]
    fn cancelled_batch_fails_jobs_without_compiling() {
        let budget = Budget::cancellable();
        budget.cancel();
        let batch = run_batch(
            &jobs(3),
            &BatchConfig {
                budget,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        assert_eq!(batch.outcomes.len(), 3);
        for o in &batch.outcomes {
            assert!(o.report.is_none());
            assert_eq!(o.error.as_deref(), Some("batch cancelled"));
            assert_eq!(o.error_class.as_deref(), Some("cancelled"));
            assert_eq!(o.retries, 0, "cancellation must not burn retries");
        }
        assert_eq!(batch.metrics.counters["jobs_failed"], 3);
        assert_eq!(batch.metrics.cache_misses, 0, "nothing may start");
    }

    #[test]
    fn timed_out_job_descends_ladder_to_degraded_result() {
        // Attempt 0 times out (its child budget is already expired);
        // attempt 1's degraded cache key is pre-seeded, so the job
        // recovers with the rung-1 label and one retry on the books.
        let js = jobs(1);
        let config = BatchConfig {
            job_timeout: Some(Duration::from_nanos(1)),
            max_retries: 2,
            ..BatchConfig::default()
        };
        let cache = ReportCache::in_memory();
        let report = sample_report();
        let (rung1_cfg, rung1_label) = ladder(&config.base, 1);
        let key = cache_key_degraded(&js[0], &rung1_cfg, rung1_label.as_deref());
        cache.put(&key, &report);

        let batch = run_batch_with_cache(&js, &config, &cache);
        let o = &batch.outcomes[0];
        assert_eq!(o.report.as_ref(), Some(&report));
        assert_eq!(o.degraded.as_deref(), Some("explore=quick"));
        assert_eq!(o.retries, 1);
        assert!(o.cache_hit);
        assert_eq!(o.error, None);
        assert_eq!(batch.metrics.counters["jobs_degraded"], 1);
        assert_eq!(batch.metrics.counters["job_retries"], 1);
    }

    #[test]
    fn exhausted_retries_surface_timeout_class() {
        let js = jobs(1);
        let batch = run_batch(
            &js,
            &BatchConfig {
                job_timeout: Some(Duration::from_nanos(1)),
                max_retries: 1,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        let o = &batch.outcomes[0];
        assert!(o.report.is_none());
        assert_eq!(o.error_class.as_deref(), Some("timeout"));
        assert_eq!(
            o.error.as_deref(),
            Some("compilation timed out: budget exceeded")
        );
        assert_eq!(o.retries, 1, "every rung was tried");
    }

    #[test]
    fn panicking_job_is_isolated_and_classed() {
        // The fault targets one uniquely named job (the registry is
        // process-global, so the filter must not match the shared
        // `gemm:N@...` names other tests compile concurrently).
        let m = Manifest::from_json(
            r#"{"jobs": [
                {"name": "panicky-target", "kernel": "gemm:24", "arch": "S4"},
                {"kernel": "gemm:20", "arch": "R4"}
            ]}"#,
        )
        .unwrap();
        let js = m.resolve().unwrap();
        let _guard = faultpoint::install("mapper_place:panic@panicky-target").unwrap();
        let batch = run_batch(
            &js,
            &BatchConfig {
                max_retries: 1,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        let bad = &batch.outcomes[0];
        assert!(bad.report.is_none());
        assert_eq!(bad.error_class.as_deref(), Some("panic"));
        assert!(
            bad.error
                .as_deref()
                .unwrap()
                .contains("injected panic at fault point mapper_place"),
            "{:?}",
            bad.error
        );
        assert_eq!(bad.retries, 1, "panics descend the ladder too");
        let good = &batch.outcomes[1];
        assert!(good.report.is_some(), "{:?}", good.error);
        assert_eq!(batch.metrics.counters["jobs_failed"], 1);
    }

    #[test]
    fn all_workers_faulted_degrades_to_serial_drain() {
        // worker_spawn fail-points fire on the batch thread, so scoping
        // the whole run isolates this test from concurrent ones.
        let _guard = faultpoint::install("worker_spawn:error@spawn-fault-test").unwrap();
        let js = jobs(3);
        let batch = faultpoint::with_scope("spawn-fault-test", || {
            run_batch(
                &js,
                &BatchConfig {
                    workers: 3,
                    base: quick_base(),
                    ..BatchConfig::default()
                },
            )
        });
        assert!(
            batch.outcomes.iter().all(|o| o.report.is_some()),
            "{:?}",
            batch
                .outcomes
                .iter()
                .map(|o| o.error.clone())
                .collect::<Vec<_>>()
        );
        assert_eq!(batch.metrics.counters["worker_spawn_failures"], 3);
    }

    #[test]
    fn gnn_fallback_degrades_and_counts() {
        // An unreadable GNN checkpoint degrades to the analytical
        // predictor at resolve time; the scheduler surfaces that as a
        // counted metric, not just a label.
        let m = Manifest::from_json(
            r#"{"jobs": [
                {"kernel": "gemm:24", "arch": "S4",
                 "predictor": "gnn:/nonexistent-model.json"},
                {"kernel": "gemm:20", "arch": "R4"}
            ]}"#,
        )
        .unwrap();
        let js = m.resolve().unwrap();
        let batch = run_batch(
            &js,
            &BatchConfig {
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        let o = &batch.outcomes[0];
        assert!(o.report.is_some(), "{:?}", o.error);
        assert!(
            o.degraded
                .as_deref()
                .is_some_and(|d| d.contains("predictor=analytical")),
            "{:?}",
            o.degraded
        );
        assert_eq!(batch.metrics.counters["predictor_fallbacks"], 1);
        assert_eq!(batch.metrics.jobs[0].stages.predictor_fallbacks, 1);
        assert_eq!(batch.metrics.jobs[1].stages.predictor_fallbacks, 0);
    }

    #[test]
    fn tap_does_not_change_outcomes_or_cache_keys() {
        let js = jobs(2);
        let plain = run_batch(
            &js,
            &BatchConfig {
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        let tap = std::sync::Arc::new(ptmap_eval::RecordingTap::new());
        let cache = ReportCache::in_memory();
        let tapped = run_batch_with_cache(
            &js,
            &BatchConfig {
                base: quick_base(),
                tap: Some(tap.clone()),
                ..BatchConfig::default()
            },
            &cache,
        );
        assert_eq!(plain.deterministic_json(), tapped.deterministic_json());
        assert!(!tap.observations().is_empty(), "tap must see the compiles");
        // A tap-free rerun against the same cache hits every key: the
        // tap is invisible to cache identity.
        let again = run_batch_with_cache(
            &js,
            &BatchConfig {
                base: quick_base(),
                ..BatchConfig::default()
            },
            &cache,
        );
        assert_eq!(again.metrics.cache_hits, 2);
        // Identical modulo the cache_hit marker (plain ran cold).
        let warmth_blind = |batch: &BatchReport| -> String {
            let outcomes: Vec<JobOutcome> = batch
                .outcomes
                .iter()
                .map(|o| JobOutcome {
                    cache_hit: false,
                    ..o.deterministic()
                })
                .collect();
            serde_json::to_string_pretty(&outcomes).expect("outcomes serialize")
        };
        assert_eq!(warmth_blind(&plain), warmth_blind(&again));
    }

    #[test]
    fn failing_job_does_not_sink_batch() {
        let mut js = jobs(2);
        // A PNL-free program fails with NoPnl but must not stop job 2.
        js[0].program = ptmap_ir::ProgramBuilder::new("empty").finish();
        let batch = run_batch(
            &js,
            &BatchConfig {
                workers: 2,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        assert!(batch.outcomes[0].report.is_none());
        assert!(batch.outcomes[0].error.is_some());
        assert!(batch.outcomes[1].report.is_some());
        assert_eq!(batch.metrics.counters["jobs_failed"], 1);
    }
}
