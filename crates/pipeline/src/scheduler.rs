//! The batch job scheduler.
//!
//! [`run_batch`] drains a manifest's resolved jobs through a
//! `std::thread::scope` worker pool fed over an `mpsc` channel: the job
//! indices are queued up front, each worker pulls the next index,
//! compiles (or hits the cache), and sends its outcome back on a result
//! channel. Outcomes are re-ordered by manifest index, so the output is
//! independent of scheduling — a `workers = 8` run is byte-identical
//! (modulo wall-clock fields) to a `workers = 1` run.
//!
//! Each job body runs under `catch_unwind`: a panicking compilation
//! produces an error outcome for that job and the rest of the batch
//! proceeds.

use crate::cache::{cache_key, ReportCache};
use crate::manifest::Job;
use crate::metrics::{BatchMetrics, JobMetrics, Recorder};
use ptmap_core::{CompileMetrics, CompileReport, PtMapConfig};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Batch execution configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Job-level worker threads (`<= 1` = serial).
    pub workers: usize,
    /// Directory for the persistent report cache (`None` = in-memory
    /// only).
    pub cache_dir: Option<PathBuf>,
    /// Base compiler configuration; each job overrides the ranking
    /// mode. `base.eval_workers` controls within-job sharding of the
    /// candidate evaluations.
    pub base: PtMapConfig,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 1,
            cache_dir: None,
            base: PtMapConfig::default(),
        }
    }
}

/// The outcome of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job display name.
    pub name: String,
    /// Whether the report came from the cache.
    pub cache_hit: bool,
    /// The compilation report (`None` on failure).
    pub report: Option<CompileReport>,
    /// The failure message (`None` on success).
    pub error: Option<String>,
}

impl JobOutcome {
    /// The outcome with wall-clock timing stripped from the report —
    /// the deterministic part, used for serial-vs-parallel and
    /// cache-vs-recompile identity checks.
    pub fn deterministic(&self) -> JobOutcome {
        JobOutcome {
            report: self.report.as_ref().map(CompileReport::without_timing),
            ..self.clone()
        }
    }
}

/// The result of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in manifest order.
    pub outcomes: Vec<JobOutcome>,
    /// The batch metrics document.
    pub metrics: BatchMetrics,
}

impl BatchReport {
    /// JSON of the deterministic part of every outcome (manifest
    /// order, timing stripped). Two runs of the same manifest must
    /// produce identical strings regardless of worker count or cache
    /// temperature.
    pub fn deterministic_json(&self) -> String {
        let outcomes: Vec<JobOutcome> = self
            .outcomes
            .iter()
            .map(JobOutcome::deterministic)
            .collect();
        serde_json::to_string_pretty(&outcomes).expect("outcomes serialize")
    }
}

/// Runs a batch with a cache built from the configuration (persistent
/// when `cache_dir` is set).
pub fn run_batch(jobs: &[Job], config: &BatchConfig) -> BatchReport {
    let cache = match &config.cache_dir {
        Some(dir) => ReportCache::with_dir(dir).unwrap_or_else(|e| {
            eprintln!(
                "warning: cache dir {}: {e}; falling back to memory",
                dir.display()
            );
            ReportCache::in_memory()
        }),
        None => ReportCache::in_memory(),
    };
    run_batch_with_cache(jobs, config, &cache)
}

/// Runs a batch against a caller-owned cache (lets several batches —
/// e.g. the bench harness's figure runs — share one store).
pub fn run_batch_with_cache(
    jobs: &[Job],
    config: &BatchConfig,
    cache: &ReportCache,
) -> BatchReport {
    let t0 = Instant::now();
    let recorder = Recorder::new();
    let workers = config.workers.clamp(1, jobs.len().max(1));

    let mut slots: Vec<Option<(JobOutcome, JobMetrics)>> = vec![None; jobs.len()];
    if workers <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_one(&jobs[i], config, cache, &recorder));
        }
    } else {
        // Feed indices through a channel; workers drain it until empty.
        let (index_tx, index_rx) = mpsc::channel::<usize>();
        for i in 0..jobs.len() {
            index_tx.send(i).expect("queue job");
        }
        drop(index_tx);
        let index_rx = Mutex::new(index_rx);
        let (result_tx, result_rx) = mpsc::channel::<(usize, (JobOutcome, JobMetrics))>();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let result_tx = result_tx.clone();
                let index_rx = &index_rx;
                let recorder = &recorder;
                s.spawn(move || loop {
                    // Hold the receiver lock only for the pull.
                    let next = { index_rx.lock().unwrap().recv() };
                    let Ok(i) = next else { break };
                    let out = run_one(&jobs[i], config, cache, recorder);
                    if result_tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(result_tx);
        for (i, out) in result_rx {
            slots[i] = Some(out);
        }
    }

    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut job_metrics = Vec::with_capacity(jobs.len());
    for slot in slots {
        let (o, m) = slot.expect("every job produced an outcome");
        outcomes.push(o);
        job_metrics.push(m);
    }
    let (spans, counters) = recorder.snapshot();
    let metrics = BatchMetrics {
        wall_seconds: t0.elapsed().as_secs_f64(),
        workers,
        cache_hits: counters.get("cache_hits").copied().unwrap_or(0),
        cache_misses: counters.get("cache_misses").copied().unwrap_or(0),
        spans,
        counters,
        jobs: job_metrics,
    };
    BatchReport { outcomes, metrics }
}

/// Runs one job: cache lookup, then panic-isolated compilation.
fn run_one(
    job: &Job,
    config: &BatchConfig,
    cache: &ReportCache,
    recorder: &Recorder,
) -> (JobOutcome, JobMetrics) {
    let t0 = Instant::now();
    let key = cache_key(job, &config.base);
    if let Some(report) = cache.get(&key) {
        recorder.incr("cache_hits", 1);
        recorder.incr("jobs_ok", 1);
        let wall = t0.elapsed().as_secs_f64();
        recorder.add_seconds("job", wall);
        return (
            JobOutcome {
                name: job.name.clone(),
                cache_hit: true,
                report: Some(report),
                error: None,
            },
            JobMetrics {
                job: job.name.clone(),
                cache_hit: true,
                ok: true,
                wall_seconds: wall,
                stages: CompileMetrics::default(),
            },
        );
    }
    recorder.incr("cache_misses", 1);
    let compiled = catch_unwind(AssertUnwindSafe(|| {
        job.compiler(&config.base)
            .compile_instrumented(&job.program, &job.arch)
    }));
    let (report, error, stages) = match compiled {
        Ok((Ok(report), m)) => {
            cache.put(&key, &report);
            (Some(report), None, m)
        }
        Ok((Err(e), m)) => (None, Some(e.to_string()), m),
        Err(panic) => (
            None,
            Some(format!("panicked: {}", panic_message(&panic))),
            { CompileMetrics::default() },
        ),
    };
    let ok = report.is_some();
    recorder.incr(if ok { "jobs_ok" } else { "jobs_failed" }, 1);
    recorder.add_seconds("explore", stages.explore_seconds);
    recorder.add_seconds("evaluate", stages.evaluate_seconds);
    recorder.add_seconds("map", stages.map_seconds);
    recorder.add_seconds("simulate", stages.simulate_seconds);
    recorder.incr("candidates_explored", stages.candidates_explored as u64);
    recorder.incr("candidates_pruned", stages.candidates_pruned as u64);
    recorder.incr("mapper_accepts", stages.mapper_accepts as u64);
    recorder.incr("mapper_rejects", stages.mapper_rejects as u64);
    let wall = t0.elapsed().as_secs_f64();
    recorder.add_seconds("job", wall);
    (
        JobOutcome {
            name: job.name.clone(),
            cache_hit: false,
            report,
            error,
        },
        JobMetrics {
            job: job.name.clone(),
            cache_hit: false,
            ok,
            wall_seconds: wall,
            stages,
        },
    )
}

/// Best-effort rendering of a panic payload.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn jobs(n: usize) -> Vec<Job> {
        let sizes = [16, 20, 24, 28, 32, 36, 40, 44];
        let jobs: Vec<_> = (0..n)
            .map(|i| {
                format!(
                    r#"{{"kernel": "gemm:{}", "arch": "{}"}}"#,
                    sizes[i % sizes.len()],
                    if i % 2 == 0 { "S4" } else { "R4" }
                )
            })
            .collect();
        Manifest::from_json(&format!(r#"{{"jobs": [{}]}}"#, jobs.join(",")))
            .unwrap()
            .resolve()
            .unwrap()
    }

    fn quick_base() -> PtMapConfig {
        PtMapConfig {
            explore: ptmap_transform::ExploreConfig::quick(),
            ..PtMapConfig::default()
        }
    }

    #[test]
    fn serial_batch_compiles_all() {
        let config = BatchConfig {
            base: quick_base(),
            ..BatchConfig::default()
        };
        let batch = run_batch(&jobs(3), &config);
        assert_eq!(batch.outcomes.len(), 3);
        assert!(
            batch.outcomes.iter().all(|o| o.report.is_some()),
            "{:?}",
            batch.outcomes
        );
        assert_eq!(batch.metrics.cache_misses, 3);
        assert_eq!(batch.metrics.jobs.len(), 3);
        assert!(batch.metrics.spans.contains_key("evaluate"));
    }

    #[test]
    fn parallel_matches_serial() {
        let js = jobs(6);
        let serial = run_batch(
            &js,
            &BatchConfig {
                workers: 1,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        let parallel = run_batch(
            &js,
            &BatchConfig {
                workers: 8,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
    }

    #[test]
    fn in_memory_cache_hits_on_repeat() {
        // Two identical jobs: the second should hit the cache and carry
        // the identical report.
        let mut js = jobs(1);
        js.push(js[0].clone());
        let batch = run_batch(
            &js,
            &BatchConfig {
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        assert_eq!(batch.metrics.cache_hits, 1);
        assert_eq!(batch.metrics.cache_misses, 1);
        assert!(batch.outcomes[1].cache_hit);
        assert_eq!(
            batch.outcomes[0].report.as_ref().unwrap(),
            batch.outcomes[1].report.as_ref().unwrap(),
        );
    }

    #[test]
    fn failing_job_does_not_sink_batch() {
        let mut js = jobs(2);
        // A PNL-free program fails with NoPnl but must not stop job 2.
        js[0].program = ptmap_ir::ProgramBuilder::new("empty").finish();
        let batch = run_batch(
            &js,
            &BatchConfig {
                workers: 2,
                base: quick_base(),
                ..BatchConfig::default()
            },
        );
        assert!(batch.outcomes[0].report.is_none());
        assert!(batch.outcomes[0].error.is_some());
        assert!(batch.outcomes[1].report.is_some());
        assert_eq!(batch.metrics.counters["jobs_failed"], 1);
    }
}
